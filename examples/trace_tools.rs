//! Trace tooling tour: record a run, write it to an on-disk archive,
//! reload it, profile its composition, and render a VAMPIR-style ASCII
//! time-line showing a backward-pointing message before and after CLC
//! correction.
//!
//! ```sh
//! cargo run --release --example trace_tools
//! ```

use drift_lab::clocksync::{controlled_logical_clock, ClcParams};
use drift_lab::prelude::*;
use drift_lab::tracefmt::{archive, profile, render_timeline, RenderOptions};

fn main() {
    // A small cluster with one badly offset node so the timeline actually
    // shows a backward message.
    let shape = MachineShape::new(2, 1, 2);
    let profile_cfg = drift_lab::simclock::ClockProfile::bare(TimerKind::IntelTsc)
        .with_node_spread(100e-6, 1e-6)
        .with_horizon(10.0);
    let clocks = ClockEnsemble::build(shape, ClockDomain::PerNode, &profile_cfg, 13);
    let mut cluster = Cluster::new(
        Placement::one_per_node(shape, 2),
        Topology::Crossbar,
        HierarchicalLatency::xeon_infiniband(),
        clocks,
        13,
    );
    // Ping-pong: with a ±100 µs node offset, whichever direction runs
    // "into" the offset shows up reversed on the raw timeline.
    let prog = Program::build(2, |r| {
        if r.0 == 0 {
            RankProgram::new()
                .enter(RegionId(1000))
                .compute(Dur::from_us(40))
                .send(Rank(1), Tag(0), 256)
                .recv(Rank(1), Tag(1))
                .exit(RegionId(1000))
        } else {
            RankProgram::new()
                .enter(RegionId(1000))
                .recv(Rank(0), Tag(0))
                .compute(Dur::from_us(30))
                .send(Rank(0), Tag(1), 256)
                .exit(RegionId(1000))
        }
    });
    let out = run(&mut cluster, &prog, &RunOptions::default()).expect("runs");
    let mut trace = out.trace;

    // --- profile -------------------------------------------------------
    println!("== trace profile ==\n{}", profile(&trace));

    // --- archive round trip ---------------------------------------------
    let dir = std::env::temp_dir().join(format!("drift-lab-example-{}", std::process::id()));
    archive::write_archive(&dir, &trace).expect("archive written");
    let reloaded = archive::read_archive(&dir).expect("archive read");
    assert_eq!(reloaded.n_events(), trace.n_events());
    println!("\narchived to {} and reloaded {} events", dir.display(), reloaded.n_events());
    std::fs::remove_dir_all(&dir).ok();

    // --- timeline before correction --------------------------------------
    let opts = RenderOptions { width: 80, ..RenderOptions::default() };
    println!("\n== raw timeline (local clocks; note any backward message) ==");
    print!("{}", render_timeline(&trace, &opts));

    // --- CLC and timeline after ------------------------------------------
    let lmin = UniformLatency(Dur::from_us(4));
    let rep = controlled_logical_clock(&mut trace, &lmin, &ClcParams::default())
        .expect("CLC runs");
    println!("\n== after CLC ({} corrections) ==", rep.n_jumps());
    print!("{}", render_timeline(&trace, &opts));
}
