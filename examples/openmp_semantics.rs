//! The paper's Figs. 3 and 8 as a runnable demo: unsynchronised per-chip
//! cycle counters on an Itanium-style SMP node make OpenMP traces violate
//! barrier/fork/join semantics — frequently with small teams, never with
//! large ones.
//!
//! ```sh
//! cargo run --release --example openmp_semantics
//! ```

use drift_lab::experiments::fig1_2_3::fig3;
use drift_lab::workloads::violation_sweep;

fn main() {
    // --- the Fig. 3 timeline -----------------------------------------------
    println!("searching a 4-thread run for a barrier-semantics violation...");
    match fig3(42) {
        Some(rows) => {
            println!("{:>8} {:>14}   event", "thread", "time [us]");
            for (thread, kind, us) in rows {
                println!("{thread:>8} {us:>14.3}   {kind}");
            }
            println!("-> one thread's BarrierExit precedes another's BarrierEnter.\n");
        }
        None => println!("no violation found (unusual at 4 threads)\n"),
    }

    // --- the Fig. 8 sweep ---------------------------------------------------
    println!("POMP violations per team size (300 regions, 3 runs averaged):");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "threads", "any[%]", "entry[%]", "exit[%]", "barrier[%]"
    );
    for row in violation_sweep(&[4, 8, 12, 16], 300, 3, 42) {
        println!(
            "{:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            row.threads, row.any_pct, row.entry_pct, row.exit_pct, row.barrier_pct
        );
    }
    println!("\npaper: 83% of regions affected at 4 threads, none at 16 — rising");
    println!("synchronisation latencies protect larger teams from the fixed");
    println!("inter-chip clock offsets.");
}
