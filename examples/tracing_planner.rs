//! A practical tool built on the reproduction: plan a tracing campaign.
//!
//! Given a platform and timer, answer the questions a performance engineer
//! actually has before tracing a long-running MPI job:
//!
//! 1. How long can I trace before Eq. 3 interpolation stops protecting the
//!    clock condition (and I must post-process with the CLC)?
//! 2. How often would I need mid-run probe epochs (Doleschal-style) to stay
//!    safe without the CLC?
//! 3. What violation probability should I expect for a message with a given
//!    slack at the middle of my run?
//!
//! ```sh
//! cargo run --release --example tracing_planner
//! ```

use drift_lab::clocksync::predict::{violation_probability, WanderModel};
use drift_lab::clocksync::safe_run_length;
use drift_lab::prelude::*;

fn wander_of(platform: Platform, timer: TimerKind) -> WanderModel {
    let p = platform.clock_profile(timer, 60.0);
    WanderModel {
        step_sigma: p.walk_step_sigma,
        step_s: p.walk_step_s,
    }
}

fn main() {
    println!("== tracing-campaign planner ==\n");
    let setups = [
        (Platform::XeonCluster, TimerKind::IntelTsc, 4.29),
        (Platform::PowerPcCluster, TimerKind::IbmTimeBase, 6.65),
        (Platform::OpteronCluster, TimerKind::IntelTsc, 5.28),
    ];

    println!(
        "{:<18} {:<16} {:>12} {:>16} {:>20}",
        "platform", "timer", "l_min [us]", "safe run [s]", "probe epoch [s]"
    );
    for (platform, timer, lmin_us) in setups {
        let model = wander_of(platform, timer);
        let l = Dur::from_us_f64(lmin_us);
        let safe = safe_run_length(&model, l);
        // With periodic probes every E seconds, each inter-anchor segment
        // behaves like an independent bridge of length E: the safe epoch is
        // the same bound applied segment-wise.
        let epoch = safe;
        println!(
            "{:<18} {:<16} {:>12.2} {:>16.0} {:>20.0}",
            platform.label(),
            timer.label(),
            lmin_us,
            safe,
            epoch
        );
    }

    println!("\n== violation probability at mid-run (Xeon TSC) ==\n");
    let model = wander_of(Platform::XeonCluster, TimerKind::IntelTsc);
    println!(
        "{:>12} {:>16} {:>22}",
        "run [s]", "sigma_mid [us]", "P(violate | slack=2us)"
    );
    for run_s in [120.0, 300.0, 900.0, 1800.0, 3600.0] {
        let sigma = model.peak_bridge_std(run_s);
        let p = violation_probability(
            Dur::from_secs_f64(sigma),
            Dur::from_us(2), // a message with 2 µs of true slack
        );
        println!("{:>12.0} {:>16.2} {:>22.4}", run_s, sigma * 1e6, p);
    }

    println!("\nplan: for runs beyond the safe window, either budget periodic probe");
    println!("epochs (and accept their perturbation) or run the CLC postmortem —");
    println!("which is exactly the paper's §VI recommendation.");
}
