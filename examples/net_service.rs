//! `syncd` over the wire: a loopback network server, a client speaking
//! the framed protocol, and a consistent-hash router spreading keyed
//! jobs over two nodes.
//!
//! ```sh
//! cargo run --release --example net_service
//! ```
//!
//! Four acts, each asserting what it demonstrates:
//!
//! 1. **batch over TCP** — upload a drifted trace as a DTC2 stream,
//!    get the corrected trace back, and check it is *bit-identical* to
//!    running the pipeline in-process;
//! 2. **incremental streaming** — the same job in windowed mode, with
//!    corrected frames arriving while the job runs;
//! 3. **typed rejection** — a wrong token fails the handshake with
//!    `AuthFailed`, not a dropped connection;
//! 4. **routed placement** — keyed submissions land on ring-chosen
//!    nodes, and every node returns the same bits for the same job.
//!
//! The CI smoke step runs this binary headless; a non-zero exit fails
//! the gate.

use clocksync::{OffsetMeasurement, PipelineConfig};
use drift_lab::prelude::*;
use drift_lab::syncd::{
    Counter, JobInput, JobSpec, JobRouter, NetServer, NetServerConfig, RouterConfig,
    ServiceConfig, TenantConfig,
};
use drift_lab::syncd_client::{ClientError, JobRequest, SyncClient};
use drift_lab::syncd_wire::{ErrorCode, WireJobConfig, WireLatency, WireMode};
use drift_lab::tracefmt::io::{from_binary_columnar, to_binary_columnar_blocked};
use drift_lab::tracefmt::MinLatency;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const PROCS: usize = 6;

type Measurements = Vec<Option<OffsetMeasurement>>;

/// A causally valid message trace recorded through skewed clocks, plus
/// the offset probes the pipeline needs — the same construction as the
/// network benches.
fn drifted_fixture(seed: u64, msgs: usize) -> (Trace, Measurements, Measurements) {
    let mut rng = StdRng::seed_from_u64(seed);
    let offsets: Vec<i64> = (0..PROCS)
        .map(|p| if p == 0 { 0 } else { rng.gen_range(-300i64..300) })
        .collect();
    let local = |p: usize, t: i64| t + offsets[p];
    let mut trace = Trace::for_ranks(PROCS);
    let mut now = [0i64; PROCS];
    for m in 0..msgs {
        let from = rng.gen_range(0usize..PROCS);
        let to = (from + rng.gen_range(1usize..PROCS)) % PROCS;
        let send_true = now[from] + rng.gen_range(5i64..40);
        now[from] = send_true;
        let recv_true = send_true.max(now[to]) + 4 + rng.gen_range(0i64..20);
        now[to] = recv_true;
        trace.procs[from].push(
            Time::from_us(local(from, send_true)),
            EventKind::Send { to: Rank(to as u32), tag: Tag(m as u32), bytes: 64 },
        );
        trace.procs[to].push(
            Time::from_us(local(to, recv_true)),
            EventKind::Recv { from: Rank(from as u32), tag: Tag(m as u32), bytes: 64 },
        );
    }
    let end = *now.iter().max().expect("non-empty") + 100;
    let measure = |p: usize, t: i64| -> Option<OffsetMeasurement> {
        (p != 0).then(|| OffsetMeasurement {
            worker_time: Time::from_us(local(p, t)),
            offset: Dur::from_us(-offsets[p] + 2),
            rtt: Dur::from_us(10),
        })
    };
    let init: Vec<_> = (0..PROCS).map(|p| measure(p, 0)).collect();
    let fin: Vec<_> = (0..PROCS).map(|p| measure(p, end)).collect();
    (trace, init, fin)
}

/// Bit-identity: every timestamp and event kind equal, rank by rank.
fn same_bits(a: &Trace, b: &Trace) -> bool {
    a.n_procs() == b.n_procs()
        && a.procs.iter().zip(&b.procs).all(|(pa, pb)| {
            pa.events.len() == pb.events.len()
                && pa
                    .events
                    .iter()
                    .zip(&pb.events)
                    .all(|(ea, eb)| ea.time == eb.time && ea.kind == eb.kind)
        })
}

fn main() {
    let lmin = UniformLatency(Dur::from_us(4));
    let lmin_arc: Arc<dyn MinLatency + Send + Sync> = Arc::new(lmin);
    let cfg = PipelineConfig::default();
    let (trace, init, fin) = drifted_fixture(7, 600);
    let bytes = to_binary_columnar_blocked(&trace, 1024).to_vec();
    println!(
        "fixture: {} ranks, {} events, {} DTC2 bytes",
        trace.n_procs(),
        trace.n_events(),
        bytes.len()
    );

    // The in-process answer every network path must reproduce exactly.
    let mut direct = trace.clone();
    let report = clocksync::synchronize(&mut direct, &init, Some(&fin), &lmin, &cfg)
        .expect("direct run");

    // ---- act 1: batch over a real loopback socket --------------------
    let server = NetServer::start_loopback(NetServerConfig {
        tenants: vec![TenantConfig::new("demo")],
        ..NetServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    println!("\nserver listening on {addr}");

    let mut client = SyncClient::connect(addr, "demo").expect("handshake");
    let wire_cfg = WireJobConfig::new(&cfg, WireLatency::Uniform(lmin.0.as_ps()))
        .with_measurements(&init, Some(&fin));
    let out = client
        .submit(&JobRequest { config: wire_cfg.clone(), chunks: vec![bytes.clone()] })
        .expect("batch job over TCP");
    let corrected = from_binary_columnar(out.stream.concat().into()).expect("reply decodes");
    assert!(same_bits(&corrected, &direct), "wire result must match in-process bits");
    println!(
        "batch over TCP: {} jumps, {}/{} events moved, {} µs run — bit-identical to in-process",
        out.summary.n_jumps, out.summary.events_moved, out.summary.events_total,
        out.summary.run_time_us
    );
    let clc = report.clc.as_ref().expect("default config runs the CLC");
    assert_eq!(out.summary.n_jumps, clc.jumps.len() as u64);

    // ---- act 2: incremental streaming --------------------------------
    let out = client
        .submit(&JobRequest {
            config: WireJobConfig {
                mode: WireMode::Incremental { window_events: 256 },
                ..wire_cfg.clone()
            },
            chunks: vec![bytes.clone()],
        })
        .expect("incremental job over TCP");
    println!(
        "incremental:    {} corrected frames streamed while the job ran",
        out.summary.frames
    );
    assert!(out.summary.frames > 1, "windowed mode must stream multiple frames");

    // ---- act 3: a wrong token fails typed ----------------------------
    match SyncClient::connect(addr, "not-a-tenant") {
        Err(ClientError::Remote { code, detail }) => {
            assert_eq!(code, ErrorCode::AuthFailed);
            println!("bad token:      rejected typed — {code:?}: {detail}");
        }
        Err(other) => panic!("expected a typed AuthFailed, got {other}"),
        Ok(_) => panic!("the server accepted an unknown tenant"),
    }
    let snapshot = server.metrics();
    server.shutdown();
    assert_eq!(snapshot.counter(Counter::NetJobs), 2);
    assert_eq!(snapshot.counter(Counter::NetAuthFailures), 1);
    assert_eq!(snapshot.counter(Counter::ServiceCrashes), 0);

    // ---- act 4: consistent-hash routing over two nodes ---------------
    let router = JobRouter::start(RouterConfig {
        nodes: 2,
        node: ServiceConfig::default(),
        ..RouterConfig::default()
    });
    let keys = ["pop/run-1", "pop/run-2", "smg/run-1", "smg/run-2", "smg/run-3"];
    let mut per_node = [0usize; 2];
    let handles: Vec<_> = keys
        .iter()
        .map(|key| {
            let node = router.node_for(key);
            per_node[node] += 1;
            let spec = JobSpec::new(
                JobInput::Trace(trace.clone()),
                init.clone(),
                Some(fin.clone()),
                Arc::clone(&lmin_arc),
                cfg.clone(),
            );
            (key, router.submit_keyed(key, spec).expect("routed submit"))
        })
        .collect();
    for (key, handle) in handles {
        let out = handle.wait().expect("routed job succeeds");
        assert!(
            same_bits(&out.trace, &direct),
            "job {key} must return the same bits regardless of placement"
        );
    }
    println!(
        "router:         {} keys placed {}/{} across 2 nodes, all outputs bit-identical",
        keys.len(),
        per_node[0],
        per_node[1]
    );
    router.shutdown();
    println!("\nall network-path invariants held");
}
