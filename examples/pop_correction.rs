//! The paper's Fig. 7 + §V story on one POP-like run: trace a 32-process
//! ocean-model twin with partial tracing, synchronise Scalasca-style
//! (offset probes at init/finalize + Eq. 3 linear interpolation), count the
//! residual clock-condition violations, then let the CLC finish the job.
//!
//! ```sh
//! cargo run --release --example pop_correction
//! ```

use drift_lab::clocksync::{ClcParams, PipelineConfig, PreSync};
use drift_lab::experiments::fig7::{pop_program, traced_run};
use drift_lab::prelude::*;

fn main() {
    // A scaled-down mref-like POP run (time compression keeps the drift
    // magnitudes representative of the full 25-minute run).
    let (program, expected_duration, compression) = pop_program(20);
    println!(
        "running POP-like workload: 32 ranks, {} ops, ~{:.0} s simulated",
        program.n_ops(),
        expected_duration
    );
    let mut tr = traced_run(&program, expected_duration, compression, 11);
    println!(
        "traced {} events ({} message events)",
        tr.trace.n_events(),
        tr.trace.n_message_events()
    );

    // Freeze the l_min table before handing the trace around.
    let n = tr.trace.n_procs();
    let lmin_table: Vec<Vec<Dur>> = (0..n)
        .map(|a| {
            (0..n)
                .map(|b| tr.cluster.l_min(Rank(a as u32), Rank(b as u32), 0))
                .collect()
        })
        .collect();
    let lmin = move |a: Rank, b: Rank| lmin_table[a.idx()][b.idx()];

    // Scalasca's pipeline: Eq. 3 interpolation, then the CLC, sharded
    // across the machine's cores (bit-identical to the sequential path).
    let cfg = PipelineConfig {
        presync: PreSync::Linear,
        clc: Some(ClcParams::default()),
        parallel: Some(drift_lab::clocksync::ParallelConfig::default()),
        ..Default::default()
    };
    let report = drift_lab::clocksync::synchronize(
        &mut tr.trace,
        &tr.init,
        Some(&tr.fin),
        &lmin,
        &cfg,
    )
    .expect("pipeline runs");

    let print_stage = |name: &str, s: &drift_lab::clocksync::StageReport| {
        let total = s.p2p.total + s.coll.logical_total;
        println!(
            "{name:<28} {:>8} violated of {:>8} constraints ({:>6.2} %), {} reversed messages",
            s.total_violations(),
            total,
            100.0 * s.total_violations() as f64 / total.max(1) as f64,
            s.p2p.reversed + s.coll.logical_reversed,
        );
    };
    print_stage("raw local timestamps:", &report.raw);
    print_stage("after Eq. 3 interpolation:", &report.after_presync);
    print_stage(
        "after the CLC:",
        report.after_clc.as_ref().expect("CLC stage ran"),
    );
    let clc = report.clc.expect("CLC stage ran");
    println!(
        "CLC corrections: {} jumps, largest {:.3} us",
        clc.n_jumps(),
        clc.max_jump.as_us_f64()
    );
    println!("\n{}", report.stats.render());
    assert_eq!(
        report.after_clc.expect("CLC ran").total_violations(),
        0,
        "the CLC must restore the clock condition"
    );
    println!("\nconclusion (paper §VI): interpolation alone is insufficient; CLC removes the rest.");
}
