//! `syncd` as a multi-tenant service: trace two application twins (a
//! POP-like ocean model and an SMG2000-like solver), submit both to one
//! shared `SyncService` — POP twice, once in memory and once as a DTC2
//! byte stream — alongside a *poisoned* stream (corrupted mid-flight) and
//! a tight-quota tenant whose submission admission control bounces, then
//! print the service's metrics exporter.
//!
//! ```sh
//! cargo run --release --example sync_service
//! ```
//!
//! The CI smoke step runs this binary headless and asserts on two
//! exporter lines: at least one retry happened
//! (`syncd_jobs_retried_total`) and no panic ever escaped an executor
//! (`syncd_service_crashes_total 0`).

use drift_lab::clocksync::PipelineConfig;
use drift_lab::experiments::fig7::{pop_program, smg_program, traced_run};
use drift_lab::prelude::*;
use drift_lab::syncd::{
    chunked, Counter, Fault, FaultInjector, JobInput, JobSpec, Priority, ServiceConfig,
    SyncService,
};
use drift_lab::tracefmt::io::to_binary_columnar_blocked;
use drift_lab::tracefmt::{LatencyTable, MinLatency};
use std::sync::Arc;
use std::time::Duration;

type Measurements = Vec<Option<drift_lab::clocksync::OffsetMeasurement>>;

/// Trace one application twin and freeze everything a job spec needs.
fn traced_job(
    name: &str,
    program: &drift_lab::mpisim::Program,
    dur: f64,
    comp: f64,
    seed: u64,
) -> (Trace, Measurements, Measurements, Arc<dyn MinLatency + Send + Sync>) {
    let tr = traced_run(program, dur, comp, seed);
    println!(
        "traced {name}: {} ranks, {} events ({} message events)",
        tr.trace.n_procs(),
        tr.trace.n_events(),
        tr.trace.n_message_events()
    );
    let ranks: Vec<Rank> = (0..tr.trace.n_procs() as u32).map(Rank).collect();
    let model = |a: Rank, b: Rank| tr.cluster.l_min(a, b, 0);
    let lmin = LatencyTable::freeze(&model, &ranks);
    (tr.trace, tr.init, tr.fin, Arc::new(lmin))
}

fn main() {
    // Two tenants' workloads, deliberately small scales so the example
    // runs in seconds.
    let (pop_prog, pop_dur, pop_comp) = pop_program(8);
    let (pop, pop_init, pop_fin, pop_lmin) = traced_job("POP", &pop_prog, pop_dur, pop_comp, 11);
    let (smg_prog, smg_dur, smg_comp) = smg_program(8);
    let (smg, smg_init, smg_fin, smg_lmin) = traced_job("SMG2000", &smg_prog, smg_dur, smg_comp, 23);

    let service = SyncService::start(ServiceConfig {
        max_retries: 2,
        retry_backoff: Duration::from_millis(1),
        ..ServiceConfig::default()
    });
    let cfg = PipelineConfig::default();

    // Tenant 1: POP, in memory, high priority.
    let pop_job = service
        .submit(
            JobSpec::new(
                JobInput::Trace(pop.clone()),
                pop_init.clone(),
                Some(pop_fin.clone()),
                Arc::clone(&pop_lmin),
                cfg.clone(),
            )
            .with_priority(Priority::High),
        )
        .expect("POP job admitted");

    // Tenant 1 again: the same POP trace as a chunked DTC2 byte stream —
    // the wire path a remote tracer would use.
    let pop_bytes = to_binary_columnar_blocked(&pop, 4096);
    let pop_stream_job = service
        .submit(JobSpec::new(
            JobInput::Stream(chunked(&pop_bytes, 64 * 1024)),
            pop_init.clone(),
            Some(pop_fin),
            pop_lmin,
            cfg.clone(),
        ))
        .expect("POP stream job admitted");

    // Tenant 2: SMG2000, normal priority.
    let smg_job = service
        .submit(JobSpec::new(
            JobInput::Trace(smg),
            smg_init.clone(),
            Some(smg_fin),
            Arc::clone(&smg_lmin),
            cfg.clone(),
        ))
        .expect("SMG job admitted");

    // A hostile tenant: the POP stream corrupted mid-flight. The service
    // retries it (metrics below show the attempts) and fails it typed —
    // no executor dies, nobody else's job is touched.
    let poisoned = FaultInjector::new()
        .with(Fault::FlipByte { at: pop_bytes.len() / 2, xor: 0x80 })
        .with(Fault::Truncate { at: pop_bytes.len() - 11 })
        .apply(&chunked(&pop_bytes, 64 * 1024));
    let poisoned_job = service
        .submit(JobSpec::new(
            JobInput::Stream(poisoned),
            pop_init.clone(),
            None,
            smg_lmin,
            cfg.clone(),
        ))
        .expect("poisoned stream passes admission (headers look plausible)");

    // A tenant on a tight quota: its dedicated service instance carries a
    // 4 MB memory budget, and the POP stream's header-only cost estimate
    // (computed without decoding a single payload byte) prices it out at
    // the door.
    let quota_service = SyncService::start(ServiceConfig {
        memory_budget_bytes: 4 << 20,
        ..ServiceConfig::default()
    });
    match quota_service.submit(JobSpec::new(
        JobInput::Stream(chunked(&pop_bytes, 64 * 1024)),
        pop_init,
        None,
        Arc::new(UniformLatency(Dur::from_us(1))),
        cfg,
    )) {
        Err(e) => println!("over-quota submission rejected: {e}"),
        Ok(_) => println!("over-quota submission unexpectedly admitted"),
    }
    assert_eq!(
        quota_service.metrics().counter(Counter::RejectedOverBudget),
        1,
        "the tight-quota tenant must bounce the stream"
    );
    quota_service.shutdown();

    // Collect the outcomes.
    for (name, job) in [("POP", pop_job), ("POP/stream", pop_stream_job), ("SMG2000", smg_job)] {
        let out = job.wait().expect("healthy job succeeds");
        let after = out.report.after_clc.as_ref().expect("CLC ran");
        println!(
            "{name:<11} ok: {} attempts, {:?} run, {} residual violations",
            out.attempts,
            out.run_time,
            after.total_violations()
        );
    }
    match poisoned_job.wait() {
        Err(failure) => println!(
            "poisoned    failed typed after {} attempts: {}",
            failure.attempts, failure.error
        ),
        Ok(_) => println!("poisoned    unexpectedly succeeded"),
    }

    let snapshot = service.metrics();
    service.shutdown();

    println!("\n--- metrics exporter ---");
    print!("{}", snapshot.render_text());

    assert!(
        snapshot.counter(Counter::Retried) >= 1,
        "the poisoned job must have been retried"
    );
    assert_eq!(
        snapshot.counter(Counter::ServiceCrashes),
        0,
        "no panic may escape an executor"
    );
}
