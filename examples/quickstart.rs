//! Quickstart: simulate a drifting cluster, trace a program, watch the
//! clock condition break, and repair it with the Controlled Logical Clock.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use drift_lab::prelude::*;

fn main() {
    // --- 1. a machine with imperfect clocks --------------------------------
    // Four Xeon nodes; each node's chips carry TSCs with ppm-scale rate
    // differences and slow thermal wander, exactly as §II of the paper
    // describes.
    let shape = Platform::XeonCluster.shape(4);
    let profile = Platform::XeonCluster.clock_profile(TimerKind::IntelTsc, 120.0);
    let clocks = ClockEnsemble::build(shape, ClockDomain::PerChip, &profile, 7);
    let mut cluster = Cluster::new(
        Placement::one_per_node(shape, 4),
        Topology::FatTree { leaf_radix: 16 },
        HierarchicalLatency::xeon_infiniband(),
        clocks,
        7,
    );

    // --- 2. a traced MPI program -------------------------------------------
    // A ring exchange plus an allreduce per iteration, 200 iterations.
    let n = 4u32;
    let prog = Program::build(n as usize, |r| {
        let next = Rank((r.0 + 1) % n);
        let prev = Rank((r.0 + n - 1) % n);
        let mut p = RankProgram::new();
        for i in 0..200 {
            p = p
                .compute_jitter(Dur::from_us(300), 0.1)
                .send(next, Tag(i), 1024)
                .recv(prev, Tag(i))
                .allreduce(CommId::WORLD, 8);
        }
        p
    });
    let out = run(&mut cluster, &prog, &RunOptions::default()).expect("simulation runs");
    println!(
        "traced {} events, {} messages, {} collectives; run took {:.3} s of simulated time",
        out.stats.events,
        out.stats.messages,
        out.stats.collectives,
        out.stats.end_time.as_secs_f64()
    );

    // --- 3. how broken are the timestamps? ---------------------------------
    let mut trace = out.trace;
    let lmin_table: Vec<Vec<Dur>> = (0..n)
        .map(|a| (0..n).map(|b| cluster.l_min(Rank(a), Rank(b), 0)).collect())
        .collect();
    let lmin = move |a: Rank, b: Rank| lmin_table[a.idx()][b.idx()];

    let matching = match_messages(&trace);
    let before = check_p2p(&trace, &matching, &lmin);
    println!(
        "raw trace: {}/{} messages violate the clock condition ({} outright reversed)",
        before.violations.len(),
        before.total,
        before.reversed
    );

    // --- 4. repair with the Controlled Logical Clock -----------------------
    let report = controlled_logical_clock(&mut trace, &lmin, &ClcParams::default())
        .expect("CLC runs");
    println!(
        "CLC applied {} corrections (largest {:.3} us), moved {} of {} events",
        report.n_jumps(),
        report.max_jump.as_us_f64(),
        report.events_moved,
        report.events_total
    );

    let matching = match_messages(&trace);
    let after = check_p2p(&trace, &matching, &lmin);
    println!(
        "corrected trace: {}/{} messages violate the clock condition",
        after.violations.len(),
        after.total
    );
    assert!(after.violations.is_empty(), "the CLC must clear all violations");
    println!("the logical event order is consistent again.");
}
