//! A tour of the clock models (paper §II and Fig. 4): how the different
//! timer technologies deviate from true time, and why NTP-steered software
//! clocks defeat linear offset interpolation while hardware counters mostly
//! do not.
//!
//! ```sh
//! cargo run --release --example clock_zoo
//! ```

use drift_lab::prelude::*;
use drift_lab::simclock::{gaussian, DriftModel, NtpDiscipline};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = 13;
    println!("== drift models over 1800 s (deviation from true time, us) ==\n");

    // Build one clock per timer technology on the Xeon platform.
    let configs: [(&str, TimerKind); 3] = [
        ("Intel TSC (hardware)", TimerKind::IntelTsc),
        ("gettimeofday (NTP-steered)", TimerKind::Gettimeofday),
        ("MPI_Wtime (maps to gettimeofday)", TimerKind::MpiWtime),
    ];

    let mut clocks = Vec::new();
    for (i, (name, timer)) in configs.iter().enumerate() {
        let profile = Platform::XeonCluster.clock_profile(*timer, 2000.0);
        let mut rng = StdRng::seed_from_u64(seed + i as u64);
        // One representative clock with a 1.5 ppm intrinsic rate error.
        let offset = gaussian(&mut rng) * 1e-4;
        let clock = profile.build_clock(&mut rng, offset, 1.5e-6);
        clocks.push((*name, clock));
    }

    print!("{:>8}", "t [s]");
    for (name, _) in &clocks {
        print!("{:>34}", name);
    }
    println!();
    for k in 0..=12 {
        let t = Time::from_secs(k * 150);
        print!("{:>8}", t.as_secs_f64() as i64);
        for (_, c) in &clocks {
            let dev = (c.ideal_at(t) - t).as_us_f64();
            print!("{:>34.1}", dev);
        }
        println!();
    }

    println!("\n== the NTP discipline in isolation ==\n");
    let ntp = NtpDiscipline::typical(2e-6);
    let path = ntp.generate(&mut StdRng::seed_from_u64(seed), 0.0, 1800.0);
    println!("{:>8} {:>16} {:>18}", "t [s]", "rate [ppm]", "accumulated [us]");
    let mut last_rate = f64::NAN;
    let mut turning_points = 0;
    for k in 0..=14 {
        let t = Time::from_secs(k * 128);
        let rate = path.rate_at(t);
        if !last_rate.is_nan() && (rate - last_rate).abs() > 1e-8 {
            turning_points += 1;
        }
        last_rate = rate;
        println!(
            "{:>8} {:>16.3} {:>18.1}",
            t.as_secs_f64() as i64,
            rate * 1e6,
            path.integrated(t) * 1e6
        );
    }
    println!(
        "\n{turning_points} slope changes — the 'turning points' of the paper's Fig. 4(a/b)."
    );
    println!("Piecewise-constant rate => piecewise-linear offset: a single");
    println!("interpolation line (Eq. 3) cannot follow it, which is the paper's core point.");
}
