//! Integration tests for the beyond-the-paper extensions, chained across
//! crates: archives, rendering, diffing, POMP/domain CLC, prediction.

use drift_lab::clocksync::{
    controlled_logical_clock, controlled_logical_clock_pomp,
    controlled_logical_clock_with_domains, domain_misalignment, ClcParams,
};
use drift_lab::prelude::*;
use drift_lab::tracefmt::{archive, diff_traces, render_timeline, RenderOptions};
use drift_lab::workloads::SweepConfig;

fn sweep_cluster(seed: u64) -> Cluster {
    let shape = MachineShape::new(8, 2, 1);
    let profile = drift_lab::simclock::ClockProfile::bare(TimerKind::IntelTsc)
        .with_node_spread(150e-6, 2e-6)
        .with_horizon(10.0);
    let clocks = ClockEnsemble::build(shape, ClockDomain::PerChip, &profile, seed);
    Cluster::new(
        Placement::round_robin(shape, 16),
        Topology::Dragonfly { nodes_per_router: 2, routers_per_group: 2 },
        HierarchicalLatency::xeon_infiniband(),
        clocks,
        seed,
    )
}

#[test]
fn archive_render_diff_clc_chain_on_a_wavefront() {
    // 1. run a Sweep3D-like wavefront on a dragonfly with skewed clocks.
    let cfg = SweepConfig::small();
    let mut cluster = sweep_cluster(3);
    let out = run(&mut cluster, &cfg.build(), &RunOptions::default()).unwrap();
    let raw = out.trace;

    // 2. archive round trip.
    let dir = std::env::temp_dir().join(format!("drift-lab-ext-{}", std::process::id()));
    archive::write_archive(&dir, &raw).unwrap();
    let mut reloaded = archive::read_archive(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(reloaded.n_events(), raw.n_events());

    // 3. the raw trace renders with backward messages flagged.
    let rendered = render_timeline(&reloaded, &RenderOptions::default());
    assert!(rendered.contains("backward"), "expected reversed arrows:\n{rendered}");

    // 4. CLC on the reloaded trace; diff quantifies the correction.
    let lmin = UniformLatency(Dur::from_us(4));
    let rep = controlled_logical_clock(&mut reloaded, &lmin, &ClcParams::default()).unwrap();
    assert!(rep.n_jumps() > 0);
    let d = diff_traces(&raw, &reloaded).unwrap();
    assert_eq!(d.moved(), rep.events_moved);
    assert!(d.max_abs_shift_us() > 0.0);

    // 5. all violations gone; rendering no longer flags arrows.
    let m = match_messages(&reloaded);
    assert!(check_p2p(&reloaded, &m, &lmin).violations.is_empty());
    let rendered = render_timeline(&reloaded, &RenderOptions::default());
    assert!(!rendered.contains("backward"));
}

#[test]
fn domain_clc_on_simulated_cluster_respects_chip_domains() {
    // Ranks sharing a chip share a clock; the domain-aware CLC must keep
    // them rigid where the plain CLC tears them apart.
    let cfg = SweepConfig::small();
    let mut cluster = sweep_cluster(9);
    let out = run(&mut cluster, &cfg.build(), &RunOptions::default()).unwrap();
    let raw = out.trace;
    let shape = cluster.placement.shape();
    let domains: Vec<usize> = (0..16)
        .map(|r| shape.chip_of(cluster.placement.core_of(r)))
        .collect();
    let lmin = UniformLatency(Dur::from_us(4));

    let mut plain = raw.clone();
    controlled_logical_clock(&mut plain, &lmin, &ClcParams::default()).unwrap();
    let mut aware = raw.clone();
    controlled_logical_clock_with_domains(&mut aware, &lmin, &ClcParams::default(), &domains)
        .unwrap();

    let mis_plain = domain_misalignment(&raw, &plain, &domains, Dur::from_us(50));
    let mis_aware = domain_misalignment(&raw, &aware, &domains, Dur::from_us(50));
    assert!(
        mis_aware <= mis_plain,
        "domain-aware ({mis_aware:?}) should not be worse than plain ({mis_plain:?})"
    );
    // Both restore the condition.
    for t in [&plain, &aware] {
        let m = match_messages(t);
        assert!(check_p2p(t, &m, &lmin).violations.is_empty());
    }
}

#[test]
fn pomp_clc_fixes_a_full_openmp_benchmark_run() {
    let trace = drift_lab::workloads::run_benchmark(4, 150, 21);
    let regions = match_parallel_regions(&trace).unwrap();
    let before = check_pomp(&trace, &regions);
    assert!(before.any_violations > 0, "4-thread run should violate");

    let mut fixed = trace.clone();
    controlled_logical_clock_pomp(&mut fixed, Dur::from_ns(100), &ClcParams::default())
        .unwrap();
    let regions = match_parallel_regions(&fixed).unwrap();
    assert_eq!(check_pomp(&fixed, &regions).any_violations, 0);
    // The diff shows the corrections were bounded (µs scale, not wild).
    let d = diff_traces(&trace, &fixed).unwrap();
    assert!(d.moved() > 0);
    assert!(d.max_abs_shift_us() < 100.0, "shift {}", d.max_abs_shift_us());
}

#[test]
fn prediction_module_agrees_with_platform_parameters() {
    use drift_lab::clocksync::predict::WanderModel;
    let p = Platform::XeonCluster.clock_profile(TimerKind::IntelTsc, 60.0);
    let m = WanderModel { step_sigma: p.walk_step_sigma, step_s: p.walk_step_s };
    // The safe run length for the paper's inter-node latency must be in the
    // minutes range — consistent with both Fig. 6 and our Fig. 7 setups.
    let safe = drift_lab::clocksync::safe_run_length(&m, Dur::from_us_f64(4.29));
    assert!(safe > 60.0 && safe < 1800.0, "safe window {safe} s");
}
