//! Differential guarantee of the columnar storage engine: for every drift
//! model, pre-synchronisation variant and worker count, running
//! [`synchronize`] with [`TimestampStorage::Columnar`] must produce
//! **bit-identical** corrected timestamps and identical violation reports
//! to the array-of-structs engine ([`TimestampStorage::Aos`]) — and the
//! streaming-ingest entry point [`synchronize_stream`] must reproduce the
//! same results again from the chunked binary encoding, for both wire
//! versions: the big-endian `DTC2` default and the aligned little-endian
//! `DTC3` zero-copy variant.

mod common;

use common::{assert_identical, drifted_trace};
use drift_lab::clocksync::{
    synchronize, synchronize_stream, ClcParams, ParallelConfig, PipelineConfig, PipelineError,
    PreSync, TimestampStorage,
};
use drift_lab::tracefmt::io::to_binary_columnar_blocked;

/// Comparable census totals without requiring PartialEq on reports.
fn totals(r: &drift_lab::clocksync::StageReport) -> (usize, usize, usize) {
    (
        r.p2p.violations.len(),
        r.p2p.reversed,
        r.coll.logical_violated,
    )
}

/// The full matrix: drift models × PreSync variants × worker counts. The
/// AoS engine is the reference; the columnar engine must reproduce it bit
/// for bit — corrected timestamps, violation lists and CLC jumps.
#[test]
fn columnar_is_bit_identical_across_the_config_matrix() {
    let sizes: &[(usize, usize)] = &[(3, 60), (5, 400), (8, 1500)];
    let models = ["constant", "sinusoid", "randomwalk"];
    let presyncs = [PreSync::None, PreSync::AlignOnly, PreSync::Linear];
    for (si, &(procs, msgs)) in sizes.iter().enumerate() {
        for (mi, model) in models.iter().enumerate() {
            let seed = 9000 + (si * 10 + mi) as u64;
            let (base, init, fin, lmin) = drifted_trace(procs, msgs, model, seed);
            for presync in presyncs {
                for workers in [None, Some(1usize), Some(2), Some(8)] {
                    let ctx = format!(
                        "{procs}p/{msgs}m {model} {presync:?} workers={workers:?}"
                    );
                    let parallel =
                        workers.map(|w| ParallelConfig { workers: w, shard_size: 37 });
                    let cfg_aos = PipelineConfig {
                        presync,
                        clc: Some(ClcParams::default()),
                        parallel,
                        storage: TimestampStorage::Aos,
                        ..PipelineConfig::default()
                    };
                    let cfg_col = PipelineConfig {
                        storage: TimestampStorage::Columnar,
                        ..cfg_aos.clone()
                    };
                    let mut aos_trace = base.clone();
                    let aos = synchronize(&mut aos_trace, &init, Some(&fin), &lmin, &cfg_aos)
                        .unwrap_or_else(|e| panic!("{ctx}: AoS pipeline failed: {e}"));
                    let mut col_trace = base.clone();
                    let col = synchronize(&mut col_trace, &init, Some(&fin), &lmin, &cfg_col)
                        .unwrap_or_else(|e| panic!("{ctx}: columnar pipeline failed: {e}"));

                    assert_identical(&aos_trace, &col_trace, &ctx);
                    assert_eq!(
                        aos.raw.p2p.violations, col.raw.p2p.violations,
                        "{ctx}: raw p2p violation lists diverge"
                    );
                    assert_eq!(
                        totals(&aos.after_presync),
                        totals(&col.after_presync),
                        "{ctx}: presync census diverges"
                    );
                    assert_eq!(
                        aos.after_clc.as_ref().map(totals),
                        col.after_clc.as_ref().map(totals),
                        "{ctx}: post-CLC census diverges"
                    );
                    assert_eq!(
                        aos.clc.as_ref().map(|c| c.n_jumps()),
                        col.clc.as_ref().map(|c| c.n_jumps()),
                        "{ctx}: CLC jump counts diverge"
                    );
                    // The columnar engine reports its layout conversions.
                    assert!(col.stats.stage("gather").is_some(), "{ctx}: no gather stage");
                    assert!(col.stats.stage("scatter").is_some(), "{ctx}: no scatter stage");
                    assert!(aos.stats.stage("gather").is_none(), "{ctx}: AoS gathered");
                }
            }
        }
    }
}

/// Streaming ingest end-to-end: encode the drifted trace into the blocked
/// columnar binary format, feed it through [`synchronize_stream`] in small
/// chunks, and require bit-identity with the in-memory pipeline run — plus
/// an `"ingest"` stage (and no `"gather"` stage, since the decoder's
/// columns feed the engine directly).
#[test]
fn streamed_ingest_matches_in_memory_pipeline() {
    for (model, chunk) in [("constant", 7usize), ("sinusoid", 64), ("randomwalk", 4096)] {
        let (base, init, fin, lmin) = drifted_trace(6, 900, model, 31337);
        let cfg = PipelineConfig {
            parallel: Some(ParallelConfig { workers: 4, shard_size: 128 }),
            ..PipelineConfig::default()
        };
        let mut mem_trace = base.clone();
        let mem = synchronize(&mut mem_trace, &init, Some(&fin), &lmin, &cfg)
            .expect("in-memory pipeline runs");

        let bytes = to_binary_columnar_blocked(&base, 256);
        let (stream_trace, stream) = synchronize_stream(
            bytes.chunks(chunk),
            &init,
            Some(&fin),
            &lmin,
            &cfg,
        )
        .expect("streamed pipeline runs");

        let ctx = format!("{model} chunk={chunk}");
        assert_identical(&mem_trace, &stream_trace, &ctx);
        assert_eq!(
            mem.after_clc.as_ref().map(totals),
            stream.after_clc.as_ref().map(totals),
            "{ctx}: post-CLC census diverges"
        );
        let ingest = stream.stats.stage("ingest").expect("ingest stage recorded");
        assert_eq!(ingest.items, base.n_events(), "{ctx}: ingest event accounting");
        assert!(ingest.shards > 0, "{ctx}: ingest block accounting");
        assert!(
            stream.stats.stage("gather").is_none(),
            "{ctx}: decoder columns must skip the gather stage"
        );
    }
}

/// A truncated stream must surface as a codec error from the pipeline, not
/// a panic or a silently shorter trace.
#[test]
fn streamed_ingest_rejects_truncated_input() {
    let (base, init, fin, lmin) = drifted_trace(3, 100, "constant", 7);
    let bytes = to_binary_columnar_blocked(&base, 64);
    let cut = &bytes[..bytes.len() - 1];
    let err = synchronize_stream(
        cut.chunks(16),
        &init,
        Some(&fin),
        &lmin,
        &PipelineConfig::default(),
    );
    assert!(
        matches!(err, Err(PipelineError::Codec(_))),
        "expected a codec error, got {err:?}"
    );
}

/// v3 zero-copy streamed ingest against one-shot v2 decode + synchronize,
/// across drift models × presync × storage × workers (see
/// `common::v3_ingest_differential_matrix`; widened by `DRIFT_STRESS=1`).
/// This binary runs the kernels the host CPU offers (AVX2 where present);
/// `columnar_differential_scalar.rs` repeats it with the scalar kernels.
#[test]
fn v3_streamed_ingest_is_bit_identical_to_v2_decode() {
    common::v3_ingest_differential_matrix();
}
