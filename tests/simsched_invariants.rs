//! Simulation-harness invariants: a seeded smoke campaign, one
//! hand-crafted schedule per `JobError` variant, and pinned regression
//! seeds for the bugs the chaos campaign has already caught.
//!
//! The smoke campaign is the cheap always-on slice of the full VOPR run
//! (`cargo run -p simsched --bin vopr -- --seeds 2000`); the crafted
//! schedules prove each typed failure is *reachable on purpose*, not only
//! by luck of the PRNG.

use simsched::{replay, run_random, Decision, FaultOp, SimConfig};

/// First seed below `bound` whose single-item workload satisfies `shape`
/// and whose replay under `decisions` settles the job as `expected`.
/// Workload generation and replay are both pure functions of the seed, so
/// the search is deterministic — it exists so these tests survive workload
/// re-tuning without hand-picked magic constants going stale silently.
fn find_crafted_seed(
    cfg: &SimConfig,
    shape: impl Fn(&simsched::workload::WorkItem) -> bool,
    decisions: &[Decision],
    expected: &'static str,
) -> u64 {
    const BOUND: u64 = 20_000;
    for seed in 0..BOUND {
        let items = simsched::workload::generate(seed, 1);
        if !shape(&items[0]) {
            continue;
        }
        let rep = replay(seed, cfg, decisions);
        assert!(
            rep.violation.is_none(),
            "seed {seed}: crafted schedule broke an invariant: {:?}",
            rep.violation
        );
        if rep.outcomes.first().copied() == Some(expected) {
            return seed;
        }
    }
    panic!("no seed below {BOUND} reaches outcome {expected:?}");
}

fn one_job_config() -> SimConfig {
    SimConfig {
        jobs: 1,
        ..SimConfig::default()
    }
}

#[test]
fn smoke_campaign_500_seeds() {
    let cfg = SimConfig::default();
    for seed in 0..500 {
        let rec = run_random(seed, &cfg);
        assert!(
            rec.violation.is_none(),
            "seed {seed} broke an invariant: {:?}\nreproduce: cargo run -p simsched --bin vopr -- --seed {seed}",
            rec.violation
        );
        let rep = replay(seed, &cfg, &rec.decisions);
        assert_eq!(
            rep.fingerprint, rec.fingerprint,
            "seed {seed}: replay diverged from recording"
        );
    }
}

#[test]
fn crafted_schedule_reaches_success() {
    // An unpoisoned in-memory trace submitted and drained: completes.
    let cfg = one_job_config();
    find_crafted_seed(
        &cfg,
        |item| !item.poisoned && item.spec.deadline.is_none(),
        &[Decision::Submit],
        "ok",
    );
}

#[test]
fn crafted_schedule_reaches_pipeline_error() {
    // A poisoned stream with no retry budget fails typed on the first
    // attempt. The service default of zero retries applies because the
    // shape filter rejects per-job overrides.
    let cfg = SimConfig {
        max_retries: 0,
        ..one_job_config()
    };
    find_crafted_seed(
        &cfg,
        |item| item.poisoned && item.spec.max_retries.is_none() && item.spec.deadline.is_none(),
        &[Decision::Submit],
        "pipeline",
    );
}

#[test]
fn crafted_schedule_reaches_panicked() {
    // Dispatch the job, then step its attempt with a crash fault armed at
    // the first pipeline checkpoint. Zero retries makes the crash
    // terminal: the worker is lost mid-replay and the caller sees it.
    let cfg = SimConfig {
        max_retries: 0,
        ..one_job_config()
    };
    find_crafted_seed(
        &cfg,
        |item| !item.poisoned && item.spec.max_retries.is_none(),
        &[
            Decision::Submit,
            Decision::Exec { exec: 0 },
            Decision::ExecFault {
                exec: 0,
                skip: 0,
                op: FaultOp::Crash,
            },
        ],
        "panicked",
    );
}

#[test]
fn crafted_schedule_reaches_cancelled() {
    // Cancel from outside while the job is still queued; the first
    // checkpoint of the dispatched run observes the flag.
    let cfg = one_job_config();
    find_crafted_seed(
        &cfg,
        |_| true,
        &[Decision::Submit, Decision::Cancel { nth: 0 }],
        "cancelled",
    );
}

#[test]
fn crafted_schedule_reaches_deadline_exceeded() {
    // Park the job in the queue while the virtual clock jumps a full
    // second — far past any workload deadline (at most 8 ms) — so the
    // dispatch-time deadline check fires before the first attempt.
    let cfg = one_job_config();
    find_crafted_seed(
        &cfg,
        |item| item.spec.deadline.is_some(),
        &[
            Decision::Submit,
            Decision::Advance { ns: 1_000_000_000 },
        ],
        "deadline",
    );
}

#[test]
fn crafted_schedule_reaches_shutdown() {
    // Abandoning shutdown drains the queue; the still-queued job settles
    // as JobError::Shutdown.
    let cfg = one_job_config();
    find_crafted_seed(
        &cfg,
        |_| true,
        &[
            Decision::Submit,
            Decision::Shutdown { abandon: true },
        ],
        "shutdown",
    );
}

/// Seed 61 used to park a retry in a backoff that expired *after* the
/// job's deadline: the retry was doomed, and the executor head-of-line
/// blocked on it for the rest of the deadline. Fixed by failing fast
/// (`DeadlineExceeded`) when the next backoff cannot beat the deadline.
#[test]
fn regression_seed_61_doomed_backoff_parking() {
    let rec = run_random(61, &SimConfig::default());
    assert!(
        rec.violation.is_none(),
        "seed 61 regressed: {:?}",
        rec.violation
    );
}

/// Seed 283 used to panic with a capacity overflow: a flipped byte in a
/// DTC2 block header decoded into a ~4-billion rank id, and the dense
/// `l_min` table allocation (`n * n`) blew up far from the corrupt input.
/// Fixed by validating header rank/thread ids at decode time (typed
/// `CodecError::BadField`) plus a quadratic-table guard in the pipeline.
#[test]
fn regression_seed_283_corrupt_rank_capacity_overflow() {
    let rec = run_random(283, &SimConfig::default());
    assert!(
        rec.violation.is_none(),
        "seed 283 regressed: {:?}",
        rec.violation
    );
}
