//! Shared fixture generator for the differential integration tests.
//!
//! The traces here are generated the way real violations arise: messages
//! and barriers are laid out on a *true* timeline, then each process's
//! recorded timestamps are corrupted by a simclock drift model (constant
//! rate error, thermal sinusoid, or random-walk wander). Offset
//! measurements handed to the pipeline carry a small asymmetric probe
//! error, so interpolation stays imperfect and the CLC has real work to do.

// Each test crate compiles this module independently and uses a different
// subset of it.
#![allow(dead_code)]

use drift_lab::clocksync::OffsetMeasurement;
use drift_lab::prelude::*;
use drift_lab::simclock::{ConstantDrift, DriftModel, RandomWalkDrift, SinusoidalDrift};
use drift_lab::tracefmt::{CollOp, CommId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-process clock: a static offset plus an integrated drift error.
struct ProcClock {
    offset_us: i64,
    drift: Option<Box<dyn DriftModel>>,
}

impl ProcClock {
    /// Local clock reading at true time `true_us` (microseconds).
    fn local_at(&self, true_us: i64) -> i64 {
        let wander_us = match &self.drift {
            None => 0,
            Some(d) => (d.integrated(Time::from_us(true_us)) * 1e6).round() as i64,
        };
        true_us + self.offset_us + wander_us
    }
}

/// Build one clock per process. Process 0 is the (perfect) master; workers
/// get a static offset plus the requested drift model.
fn clocks(procs: usize, model: &str, rng: &mut StdRng) -> Vec<ProcClock> {
    (0..procs)
        .map(|p| {
            if p == 0 {
                return ProcClock { offset_us: 0, drift: None };
            }
            let drift: Box<dyn DriftModel> = match model {
                "constant" => Box::new(ConstantDrift::new(rng.gen_range(-40e-6..40e-6))),
                "sinusoid" => Box::new(SinusoidalDrift::new(
                    rng.gen_range(1e-6..20e-6),
                    rng.gen_range(0.5..3.0),
                    rng.gen_range(0.0..1.0),
                )),
                "randomwalk" => Box::new(RandomWalkDrift::generate(
                    rng,
                    15e-6,
                    0.25,
                    // Generous horizon: the true timelines here stay well
                    // under two minutes.
                    240.0,
                )),
                other => panic!("unknown drift model {other}"),
            };
            ProcClock {
                offset_us: rng.gen_range(-800i64..800),
                drift: Some(drift),
            }
        })
        .collect()
}

/// A causally valid trace on a true timeline, recorded through drifting
/// clocks, plus init/finalize offset measurements with probe error.
pub fn drifted_trace(
    procs: usize,
    msgs: usize,
    model: &str,
    seed: u64,
) -> (
    Trace,
    Vec<Option<OffsetMeasurement>>,
    Vec<Option<OffsetMeasurement>>,
    UniformLatency,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cl = clocks(procs, model, &mut rng);
    let lmin_us = rng.gen_range(2i64..15);
    let mut trace = Trace::for_ranks(procs);
    let mut now = vec![0i64; procs]; // true time per process
    for m in 0..msgs {
        let from = rng.gen_range(0usize..procs);
        let to = (from + rng.gen_range(1usize..procs)) % procs;
        let send_true = now[from] + rng.gen_range(5i64..80);
        now[from] = send_true;
        let recv_true = send_true.max(now[to]) + lmin_us + rng.gen_range(0i64..40);
        now[to] = recv_true;
        trace.procs[from].push(
            Time::from_us(cl[from].local_at(send_true)),
            EventKind::Send { to: Rank(to as u32), tag: Tag(m as u32), bytes: 64 },
        );
        trace.procs[to].push(
            Time::from_us(cl[to].local_at(recv_true)),
            EventKind::Recv { from: Rank(from as u32), tag: Tag(m as u32), bytes: 64 },
        );
        // A barrier every 64 messages exercises the collective census
        // (and its logical-message constraints) in both execution paths.
        if m % 64 == 63 {
            let enter = *now.iter().max().expect("non-empty");
            for (p, t) in now.iter_mut().enumerate() {
                let my_enter = enter + rng.gen_range(0i64..10);
                let exit = my_enter + 5 + rng.gen_range(0i64..5);
                trace.procs[p].push(
                    Time::from_us(cl[p].local_at(my_enter)),
                    EventKind::CollBegin {
                        op: CollOp::Barrier,
                        comm: CommId(0),
                        root: None,
                        bytes: 0,
                    },
                );
                trace.procs[p].push(
                    Time::from_us(cl[p].local_at(exit)),
                    EventKind::CollEnd {
                        op: CollOp::Barrier,
                        comm: CommId(0),
                        root: None,
                        bytes: 0,
                    },
                );
                *t = exit;
            }
        }
    }
    let end = *now.iter().max().expect("non-empty") + 100;
    // Offset probes at init and finalize: `offset` is master − worker at
    // the probe instant, deliberately off by a few µs of asymmetry error.
    let measure = |p: usize, true_us: i64, err_us: i64| -> Option<OffsetMeasurement> {
        if p == 0 {
            return None;
        }
        let local = cl[p].local_at(true_us);
        Some(OffsetMeasurement {
            worker_time: Time::from_us(local),
            offset: Dur::from_us(true_us - local + err_us),
            rtt: Dur::from_us(12),
        })
    };
    let errs: Vec<i64> = (0..procs).map(|_| rng.gen_range(-6i64..6)).collect();
    let init: Vec<_> = (0..procs).map(|p| measure(p, 0, errs[p])).collect();
    let fin: Vec<_> = (0..procs).map(|p| measure(p, end, -errs[p])).collect();
    (trace, init, fin, UniformLatency(Dur::from_us(lmin_us)))
}

/// Assert two traces agree event-for-event (timestamps and kinds).
pub fn assert_identical(seq: &Trace, par: &Trace, ctx: &str) {
    assert_eq!(seq.n_procs(), par.n_procs(), "{ctx}: proc count");
    for (p, (a, b)) in seq.procs.iter().zip(&par.procs).enumerate() {
        assert_eq!(a.events.len(), b.events.len(), "{ctx}: proc {p} length");
        for (i, (ea, eb)) in a.events.iter().zip(&b.events).enumerate() {
            assert_eq!(
                ea.time, eb.time,
                "{ctx}: proc {p} event {i} timestamps diverge"
            );
            assert_eq!(ea.kind, eb.kind, "{ctx}: proc {p} event {i} kinds diverge");
        }
    }
}

// ---------------------------------------------------- CSR edge references --

/// An event-dependency edge as a comparable tuple: (src proc, src idx,
/// dst proc, dst idx, latency in ps).
pub type Edge = (u32, u32, u32, u32, i64);

/// The edge set a communication analysis implies, built *independently* of
/// both the CSR lowering and the CLC's internal dependency maps, straight
/// from the paper's collective semantics (§V data-flow flavours).
pub fn reference_edges(
    analysis: &drift_lab::clocksync::TraceAnalysis,
    lmin: &dyn drift_lab::tracefmt::MinLatency,
) -> std::collections::BTreeSet<Edge> {
    use drift_lab::tracefmt::CollFlavor;
    let mut edges = std::collections::BTreeSet::new();
    for m in &analysis.matching.messages {
        edges.insert((
            m.send.proc,
            m.send.idx,
            m.recv.proc,
            m.recv.idx,
            lmin.l_min(m.from, m.to).as_ps(),
        ));
    }
    for inst in &analysis.instances {
        let root_pos = inst
            .root
            .and_then(|r| inst.members.iter().position(|m| m.rank == r));
        for (pos, me) in inst.members.iter().enumerate() {
            // Which members' *begin* events this member's *end* waits on.
            let feeds_me = |j: usize| match inst.op.flavor() {
                CollFlavor::OneToN => Some(pos) != root_pos && Some(j) == root_pos,
                CollFlavor::NToOne => Some(pos) == root_pos && Some(j) != root_pos,
                CollFlavor::NToN => j != pos,
                CollFlavor::Prefix => j < pos,
            };
            for (j, other) in inst.members.iter().enumerate() {
                if feeds_me(j) {
                    edges.insert((
                        other.begin.proc,
                        other.begin.idx,
                        me.end.proc,
                        me.end.idx,
                        lmin.l_min(other.rank, me.rank).as_ps(),
                    ));
                }
            }
        }
    }
    edges
}

/// Collect a CSR graph's edges through both of its public views (the
/// in-edge and out-edge iterators must describe the same relation).
pub fn graph_edges(
    trace: &Trace,
    graph: &drift_lab::clocksync::DepGraph,
) -> (
    std::collections::BTreeSet<Edge>,
    std::collections::BTreeSet<Edge>,
) {
    let mut via_in = std::collections::BTreeSet::new();
    let mut via_out = std::collections::BTreeSet::new();
    for (id, _) in trace.iter_events() {
        for (src, lat) in graph.in_deps(id) {
            via_in.insert((src.proc, src.idx, id.proc, id.idx, lat.as_ps()));
        }
        for (dst, lat) in graph.out_deps(id) {
            via_out.insert((id.proc, id.idx, dst.proc, dst.idx, lat.as_ps()));
        }
    }
    (via_in, via_out)
}

/// The `DTC2`-v2 vs `DTC3` differential matrix: for every drift model ×
/// [`PreSync`] × [`TimestampStorage`] × worker count, the v3 zero-copy
/// streamed ingest must be bit-identical to one-shot v2 decode followed
/// by [`synchronize`] — corrected timestamps and every stage census.
///
/// Shared by `columnar_differential.rs` (AVX2 kernels where the host has
/// them) and `columnar_differential_scalar.rs` (`TRACEFMT_NO_AVX2`
/// forced before the CPU probe is cached). `DRIFT_STRESS=1` widens the
/// matrix with a 6000-message trace size.
pub fn v3_ingest_differential_matrix() {
    use drift_lab::clocksync::{
        synchronize, synchronize_stream, ClcParams, ParallelConfig, PipelineConfig, PreSync,
        TimestampStorage,
    };
    use drift_lab::tracefmt::io::{
        from_binary_columnar, to_binary_columnar_blocked, to_binary_columnar_v3_blocked,
    };

    let stress = std::env::var("DRIFT_STRESS").is_ok_and(|v| v == "1");
    let sizes: &[(usize, usize)] = if stress {
        &[(3, 60), (5, 400), (8, 1500), (10, 6000)]
    } else {
        &[(3, 60), (5, 400), (8, 1500)]
    };
    let models = ["constant", "sinusoid", "randomwalk"];
    let presyncs = [PreSync::None, PreSync::AlignOnly, PreSync::Linear];
    let storages = [TimestampStorage::Aos, TimestampStorage::Columnar];
    let mut legs = 0usize;
    for (si, &(procs, msgs)) in sizes.iter().enumerate() {
        for (mi, model) in models.iter().enumerate() {
            let seed = 41_000 + (si * 10 + mi) as u64;
            let (base, init, fin, lmin) = drifted_trace(procs, msgs, model, seed);
            let v2 = to_binary_columnar_blocked(&base, 256);
            let v3 = to_binary_columnar_v3_blocked(&base, 256);
            for presync in presyncs {
                for storage in storages {
                    for workers in [None, Some(2usize)] {
                        let ctx = format!(
                            "{procs}p/{msgs}m {model} {presync:?} {storage:?} \
                             workers={workers:?}"
                        );
                        let cfg = PipelineConfig {
                            presync,
                            clc: Some(ClcParams::default()),
                            parallel: workers
                                .map(|w| ParallelConfig { workers: w, shard_size: 57 }),
                            storage,
                            ..PipelineConfig::default()
                        };

                        // Reference: one-shot v2 decode, then synchronize.
                        let mut ref_trace = from_binary_columnar(v2.clone())
                            .unwrap_or_else(|e| panic!("{ctx}: v2 decode failed: {e}"));
                        let reference =
                            synchronize(&mut ref_trace, &init, Some(&fin), &lmin, &cfg)
                                .unwrap_or_else(|e| panic!("{ctx}: v2 pipeline failed: {e}"));

                        // Candidate: v3 zero-copy streamed ingest, awkward
                        // chunk size on purpose.
                        let (v3_trace, candidate) = synchronize_stream(
                            v3.chunks(4096),
                            &init,
                            Some(&fin),
                            &lmin,
                            &cfg,
                        )
                        .unwrap_or_else(|e| panic!("{ctx}: v3 pipeline failed: {e}"));

                        assert_identical(&ref_trace, &v3_trace, &ctx);
                        assert_eq!(
                            reference.raw.p2p.violations, candidate.raw.p2p.violations,
                            "{ctx}: raw p2p violation lists diverge"
                        );
                        assert_eq!(
                            reference.after_presync.total_violations(),
                            candidate.after_presync.total_violations(),
                            "{ctx}: presync census diverges"
                        );
                        assert_eq!(
                            reference.after_clc.as_ref().map(|r| r.total_violations()),
                            candidate.after_clc.as_ref().map(|r| r.total_violations()),
                            "{ctx}: post-CLC census diverges"
                        );
                        legs += 1;
                    }
                }
            }
        }
    }
    // The matrix must not silently collapse after a refactor.
    let floor = sizes.len() * models.len() * presyncs.len() * storages.len() * 2;
    assert!(legs >= floor, "differential matrix ran only {legs} legs (expected {floor})");
}
