//! Robustness of the wire codec and the server's protocol driver against
//! hostile bytes.
//!
//! The frame layer is the network edge of `syncd`'s isolation story:
//! whatever a peer writes into the socket, the scanner and decoders must
//! come back with complete frames or a *typed* [`WireError`] — never a
//! panic, never an unbounded allocation — and the server must release
//! every admission charge it took on behalf of a connection that turns
//! hostile or vanishes. These properties drive random frame sequences
//! through [`FrameScanner`] under adversarial chunkings, truncate and
//! corrupt them at every boundary, forge oversized headers, and replay
//! whole mutated *sessions* (handshake + job) against a live server over
//! the in-memory [`ScriptedTransport`].

mod common;

use common::drifted_trace;
use drift_lab::syncd::{
    NetServer, NetServerConfig, ScriptedTransport, ServiceConfig, TenantConfig,
};
use drift_lab::syncd_client::{JobRequest, SyncClient};
use drift_lab::syncd_wire::{
    encode_frame, ErrorCode, Frame, FrameScanner, WireError, WireJobConfig, WireJump,
    WireLatency, WireMode, MAGIC, MAX_FRAME_PAYLOAD, VERSION,
};
use drift_lab::tracefmt::io::{to_binary_columnar_blocked, to_binary_columnar_v3_blocked};
use drift_lab::clocksync::PipelineConfig;
use proptest::prelude::*;
use std::time::{Duration, Instant};

const CODES: [ErrorCode; 13] = [
    ErrorCode::AuthFailed,
    ErrorCode::VersionMismatch,
    ErrorCode::Protocol,
    ErrorCode::Malformed,
    ErrorCode::QueueFull,
    ErrorCode::OverBudget,
    ErrorCode::Shutdown,
    ErrorCode::Pipeline,
    ErrorCode::Panicked,
    ErrorCode::Cancelled,
    ErrorCode::DeadlineExceeded,
    ErrorCode::QuotaExceeded,
    ErrorCode::Internal,
];

/// One representative frame of every kind, parameterized so proptest
/// explores payload shapes (empty chunks, long tokens, jump batches…).
fn sample_frames(seed: u64, chunk_len: usize, jumps: usize) -> Vec<Frame> {
    let cfg = WireJobConfig {
        mode: if seed.is_multiple_of(2) {
            WireMode::Batch
        } else {
            WireMode::Incremental { window_events: 1 + seed % 4096 }
        },
        ..WireJobConfig::new(
            &PipelineConfig::default(),
            WireLatency::Uniform(1 + seed as i64 % 1_000_000),
        )
    };
    vec![
        Frame::Hello {
            magic: MAGIC,
            version: VERSION,
            token: format!("tenant-{seed}"),
        },
        Frame::HelloAck { version: VERSION, credit: seed },
        Frame::JobConfig(Box::new(cfg)),
        Frame::Chunk((0..chunk_len).map(|i| (i as u64 ^ seed) as u8).collect()),
        Frame::ChunkEnd,
        Frame::CorrectedFrame {
            index: seed,
            bytes: (0..chunk_len / 2).map(|i| (i as u64 + seed) as u8).collect(),
        },
        Frame::Jumps(
            (0..jumps)
                .map(|i| WireJump {
                    proc: i as u32,
                    idx: (seed as u32).wrapping_add(i as u32),
                    size_ps: seed as i64 - i as i64 * 17,
                })
                .collect(),
        ),
        Frame::Error {
            code: CODES[(seed as usize) % CODES.len()],
            detail: format!("detail {seed}"),
        },
        Frame::Credit { grant: seed.wrapping_mul(31) },
        Frame::Cancel,
    ]
}

/// Feed `bytes` to a fresh scanner in `step`-sized chunks, collecting
/// every decoded frame; any typed error ends the feed.
fn scan_chunked(bytes: &[u8], step: usize) -> (Vec<Frame>, Option<WireError>, FrameScanner) {
    let mut scanner = FrameScanner::new();
    let mut frames = Vec::new();
    for chunk in bytes.chunks(step.max(1)) {
        match scanner.feed(chunk) {
            Ok(batch) => frames.extend(batch),
            Err(e) => return (frames, Some(e), scanner),
        }
    }
    (frames, None, scanner)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every frame kind survives encode → arbitrary-chunked scan → decode
    /// bit-exactly, for any read fragmentation down to one byte.
    #[test]
    fn frames_roundtrip_under_any_chunking(
        seed in 0u64..10_000,
        chunk_len in 0usize..4096,
        jumps in 0usize..200,
        step in 1usize..600,
    ) {
        let frames = sample_frames(seed, chunk_len, jumps);
        let bytes: Vec<u8> = frames.iter().flat_map(encode_frame).collect();
        let (decoded, err, scanner) = scan_chunked(&bytes, step);
        prop_assert!(err.is_none(), "intact stream errored: {err:?}");
        prop_assert_eq!(&decoded, &frames);
        prop_assert!(scanner.finish().is_ok(), "intact stream ends at a boundary");
        prop_assert_eq!(scanner.frames(), frames.len() as u64);
    }

    /// Truncation at *every* byte offset: the scanner yields exactly the
    /// frames that fit before the cut, and `finish` reports `Truncated`
    /// iff the cut fell mid-frame. Never a panic, never a phantom frame.
    #[test]
    fn truncation_at_every_boundary_fails_typed(
        seed in 0u64..10_000,
        chunk_len in 0usize..512,
        cut_per_mille in 0u32..1000,
        step in 1usize..97,
    ) {
        let frames = sample_frames(seed, chunk_len, 3);
        let encoded: Vec<Vec<u8>> = frames.iter().map(encode_frame).collect();
        let bytes: Vec<u8> = encoded.concat();
        let cut = (bytes.len() as u64 * cut_per_mille as u64 / 1000) as usize;

        let (decoded, err, scanner) = scan_chunked(&bytes[..cut], step);
        prop_assert!(err.is_none(), "a clean prefix never errors: {err:?}");

        // Which whole frames fit in the prefix?
        let mut fit = 0usize;
        let mut at = 0usize;
        while fit < encoded.len() && at + encoded[fit].len() <= cut {
            at += encoded[fit].len();
            fit += 1;
        }
        prop_assert_eq!(&decoded, &frames[..fit]);
        match scanner.finish() {
            Ok(()) => prop_assert_eq!(at, cut, "clean finish ⇔ cut on a frame boundary"),
            Err(WireError::Truncated) => prop_assert!(at < cut || cut == 0),
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }

    /// One flipped byte anywhere in a valid stream: the scan either still
    /// produces (possibly different) well-formed frames or fails with a
    /// typed error — and the total scanned volume never exceeds the input
    /// (no runaway buffering from a corrupt length prefix).
    #[test]
    fn corrupted_streams_never_panic(
        seed in 0u64..10_000,
        chunk_len in 0usize..512,
        at_per_mille in 0u32..1000,
        xor in 1u8..255,
        step in 1usize..300,
    ) {
        let frames = sample_frames(seed, chunk_len, 5);
        let mut bytes: Vec<u8> = frames.iter().flat_map(encode_frame).collect();
        let at = (bytes.len() as u64 * at_per_mille as u64 / 1000) as usize;
        let at = at.min(bytes.len() - 1);
        bytes[at] ^= xor;

        let (decoded, err, scanner) = scan_chunked(&bytes, step);
        // Reaching here without a panic is most of the property; the
        // rest: errors are typed and accounting stays exact.
        if let Some(e) = err {
            let _typed: &dyn std::error::Error = &e;
        }
        prop_assert!(scanner.consumed() <= bytes.len() as u64);
        prop_assert!(decoded.len() <= frames.len() + bytes.len() / 5);
    }

    /// A forged header declaring an oversized (or zero) length is rejected
    /// the moment the four length bytes arrive — before any payload is
    /// buffered, no matter how the header is fragmented.
    #[test]
    fn oversized_lengths_rejected_before_buffering(
        which in 0usize..4,
        step in 1usize..5,
        prefix_frames in 0usize..3,
    ) {
        let over = [
            0u64,
            1 + MAX_FRAME_PAYLOAD as u64 + 1,
            u32::MAX as u64 / 2,
            u32::MAX as u64,
        ][which];
        // Some valid traffic first, then the hostile header.
        let mut bytes: Vec<u8> = sample_frames(7, 32, 1)[..prefix_frames]
            .iter()
            .flat_map(encode_frame)
            .collect();
        bytes.extend_from_slice(&(over as u32).to_le_bytes());
        // No payload follows — the four header bytes alone must trip it.
        let (_, err, _) = scan_chunked(&bytes, step);
        match err {
            Some(WireError::Oversized { declared }) => {
                prop_assert_eq!(declared, over.min(u32::MAX as u64));
            }
            other => prop_assert!(false, "expected Oversized, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// Whole-session robustness: mutated sessions against a live server.
// ---------------------------------------------------------------------

/// Encode a complete valid client session: handshake, job config, the
/// trace stream as chunk frames, end-of-stream.
fn session_bytes(trace_bytes: &[u8], mode: WireMode) -> Vec<u8> {
    let (_, init, fin, lmin) = drifted_trace(3, 20, "constant", 3);
    let config = WireJobConfig {
        mode,
        ..WireJobConfig::new(
            &PipelineConfig::default(),
            WireLatency::Uniform(lmin.0.as_ps()),
        )
        .with_measurements(&init, Some(&fin))
    };
    let mut out = encode_frame(&Frame::Hello {
        magic: MAGIC,
        version: VERSION,
        token: "tok".into(),
    });
    out.extend(encode_frame(&Frame::JobConfig(Box::new(config))));
    for chunk in trace_bytes.chunks(4096) {
        out.extend(encode_frame(&Frame::Chunk(chunk.to_vec())));
    }
    out.extend(encode_frame(&Frame::ChunkEnd));
    out
}

/// Drive one scripted inbound stream through a fresh single-executor
/// server; afterwards every admission charge must be back to zero and the
/// server must still complete an intact session.
fn assert_no_leak(hostile: Vec<u8>, read_limit: usize, write_quota: Option<u64>) {
    let server = NetServer::start_loopback(NetServerConfig {
        tenants: vec![TenantConfig::new("tok")],
        ingest_window: 1 << 20,
        service: ServiceConfig {
            executors: 1,
            pool_workers: 1,
            max_retries: 1,
            retry_backoff: Duration::from_millis(1),
            ..ServiceConfig::default()
        },
    })
    .expect("bind");

    let mut t = ScriptedTransport::new(hostile).read_limit(read_limit);
    if let Some(q) = write_quota {
        t = t.fail_writes_after(q);
    }
    server.serve_transport(&mut t);

    // The executor releases a running job's charge a beat after the
    // connection driver returns; poll briefly rather than race it.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if server.metrics().admitted_bytes == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "admission charge leaked: {} bytes still admitted",
            server.metrics().admitted_bytes
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The server survived: an intact follow-up session over a *real*
    // socket runs to a result.
    let (trace, init, fin, lmin) = drifted_trace(3, 20, "constant", 3);
    let config = WireJobConfig::new(
        &PipelineConfig::default(),
        WireLatency::Uniform(lmin.0.as_ps()),
    )
    .with_measurements(&init, Some(&fin));
    let req = JobRequest {
        config,
        chunks: vec![to_binary_columnar_blocked(&trace, 16).to_vec()],
    };
    let mut client =
        SyncClient::connect(server.local_addr(), "tok").expect("server still accepts");
    let out = client.submit(&req).expect("follow-up session succeeds");
    assert!(!out.stream.is_empty(), "follow-up job returns a corrected stream");
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sessions truncated at any byte (client vanishes), corrupted by a
    /// byte flip, or fed through a peer that hangs up while the server is
    /// writing: the server must end the connection typed, leak nothing,
    /// and keep serving.
    #[test]
    fn mutated_sessions_never_leak_admission_charges(
        seed in 0u64..1000,
        cut_per_mille in 0u32..1001,
        xor in 0u8..255,
        limit_ix in 0usize..4,
        fail_writes_raw in 0u64..512,
    ) {
        let read_limit = [7usize, 64, 1024, usize::MAX][limit_ix];
        // Upper half of the range means "writes never fail".
        let fail_writes = (fail_writes_raw < 256).then_some(fail_writes_raw);
        let (trace, ..) = drifted_trace(3, 30, "sinusoid", seed);
        let bytes = to_binary_columnar_blocked(&trace, 16);
        let mut session = session_bytes(&bytes, WireMode::Batch);
        let cut = (session.len() as u64 * cut_per_mille as u64 / 1000) as usize;
        session.truncate(cut.max(1));
        if xor != 0 && !session.is_empty() {
            let at = (seed as usize * 7919) % session.len();
            session[at] ^= xor;
        }
        assert_no_leak(session, read_limit, fail_writes);
    }

    /// A job whose stream mixes DTC2 and DTC3 chunks is malformed by
    /// construction; it must fail with a typed error frame (admission or
    /// pipeline), never panic, never leak.
    #[test]
    fn mixed_version_streams_fail_typed(
        seed in 0u64..1000,
        incremental_raw in 0u8..2,
    ) {
        let incremental = incremental_raw == 1;
        let (trace, ..) = drifted_trace(3, 25, "randomwalk", seed);
        let v2 = to_binary_columnar_blocked(&trace, 16);
        let v3 = to_binary_columnar_v3_blocked(&trace, 16);
        let mut mixed = v2.to_vec();
        mixed.extend_from_slice(&v3);
        let mode = if incremental {
            WireMode::Incremental { window_events: 64 }
        } else {
            WireMode::Batch
        };
        let session = session_bytes(&mixed, mode);

        let server = NetServer::start_loopback(NetServerConfig {
            tenants: vec![TenantConfig::new("tok")],
            ingest_window: 1 << 20,
            service: ServiceConfig {
                executors: 1,
                pool_workers: 1,
                max_retries: 1,
                retry_backoff: Duration::from_millis(1),
                ..ServiceConfig::default()
            },
        })
        .expect("bind");
        // The scripted peer stays connected (Idle, not Eof) until the
        // server delivers its verdict, so a job that only fails at decode
        // time still reports typed instead of racing a disconnect.
        let mut t = ScriptedTransport::new(session).close_after_reply(20_000);
        server.serve_transport(&mut t);

        let (frames, err, _) = scan_chunked(t.outbound(), usize::MAX);
        prop_assert!(err.is_none(), "server wrote malformed frames: {err:?}");
        match frames.last() {
            Some(Frame::Error { code, .. }) => prop_assert!(
                matches!(
                    code,
                    ErrorCode::Malformed | ErrorCode::Pipeline | ErrorCode::Panicked
                ),
                "mixed-version stream must fail as a codec/pipeline error, got {code:?}"
            ),
            other => prop_assert!(false, "expected a typed error frame, got {other:?}"),
        }

        let deadline = Instant::now() + Duration::from_secs(10);
        while server.metrics().admitted_bytes != 0 {
            prop_assert!(Instant::now() < deadline, "admission charge leaked");
            std::thread::sleep(Duration::from_millis(10));
        }
        server.shutdown();
    }
}
