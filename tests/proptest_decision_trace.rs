//! Property coverage for the `SIMT` decision-trace codec.
//!
//! A failing VOPR seed is only as good as its trace file: the shrunk
//! `(seed, decisions)` pair written to disk must survive the trip back
//! byte-for-byte, and a damaged file must be rejected with a typed
//! [`TraceError`] — never a panic, never a silently shorter schedule.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simsched::{decode_trace, encode_trace, Decision, FaultOp, TraceError};

/// One decision drawn uniformly over the codec's whole value space,
/// including extremes the harness itself would never schedule.
fn arb_decision(rng: &mut StdRng) -> Decision {
    match rng.gen_range(0u8..6) {
        0 => Decision::Submit,
        1 => Decision::Exec {
            exec: rng.gen_range(0u8..=u8::MAX),
        },
        2 => Decision::ExecFault {
            exec: rng.gen_range(0u8..=u8::MAX),
            skip: rng.gen_range(0u8..=u8::MAX),
            op: match rng.gen_range(0u8..3) {
                0 => FaultOp::Cancel,
                1 => FaultOp::Crash,
                _ => FaultOp::Jump {
                    ns: rng.gen_range(0u64..=u64::MAX),
                },
            },
        },
        3 => Decision::Cancel {
            nth: rng.gen_range(0u16..=u16::MAX),
        },
        4 => Decision::Advance {
            ns: rng.gen_range(0u64..=u64::MAX),
        },
        _ => Decision::Shutdown {
            abandon: rng.gen_bool(0.5),
        },
    }
}

fn arb_trace(seed: u64) -> (u64, Vec<Decision>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let run_seed = rng.gen_range(0u64..=u64::MAX);
    let len = rng.gen_range(0usize..200);
    let decisions = (0..len).map(|_| arb_decision(&mut rng)).collect();
    (run_seed, decisions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity on `(seed, decisions)`.
    #[test]
    fn round_trip(seed in 0u64..10_000) {
        let (run_seed, decisions) = arb_trace(seed);
        let bytes = encode_trace(run_seed, &decisions);
        let (back_seed, back) = decode_trace(&bytes).expect("round trip");
        prop_assert_eq!(back_seed, run_seed);
        prop_assert_eq!(back, decisions);
    }

    /// Every proper prefix of a valid trace is rejected with a typed
    /// error — a truncated file must never decode to a shorter schedule.
    #[test]
    fn truncations_rejected_cleanly(seed in 0u64..2_000) {
        let (run_seed, mut decisions) = arb_trace(seed);
        // Empty traces encode to the fixed header alone; force at least
        // one decision so truncation has a payload to bite into.
        if decisions.is_empty() {
            decisions.push(Decision::Submit);
        }
        let bytes = encode_trace(run_seed, &decisions);
        for cut in 0..bytes.len() {
            match decode_trace(&bytes[..cut]) {
                Err(_) => {}
                Ok((s, d)) => prop_assert!(
                    false,
                    "prefix of {cut}/{} bytes decoded as seed {s}, {} decisions",
                    bytes.len(),
                    d.len()
                ),
            }
        }
    }

    /// Trailing garbage after a complete trace is rejected, not ignored.
    #[test]
    fn trailing_bytes_rejected(seed in 0u64..2_000, extra in 1usize..16) {
        let (run_seed, decisions) = arb_trace(seed);
        let mut bytes = encode_trace(run_seed, &decisions);
        bytes.extend(std::iter::repeat_n(0xAB, extra));
        prop_assert!(matches!(
            decode_trace(&bytes),
            Err(TraceError::TrailingBytes(_)
                | TraceError::UnknownTag(_)
                | TraceError::UnexpectedEof)
        ));
    }

    /// A single flipped byte anywhere in the envelope (magic, version) or
    /// a decision tag decodes to a typed error or a different-but-valid
    /// trace — never a panic.
    #[test]
    fn single_byte_corruption_never_panics(
        seed in 0u64..2_000,
        at_per_mille in 0u32..1000,
        xor in 1u32..256,
    ) {
        let (run_seed, decisions) = arb_trace(seed);
        let mut bytes = encode_trace(run_seed, &decisions);
        let at = (bytes.len() as u64 * at_per_mille as u64 / 1000) as usize;
        bytes[at] ^= xor as u8;
        // Reaching here without a panic is the property; a corrupted
        // payload byte may still parse as a different valid trace.
        let _ = decode_trace(&bytes);
    }
}

#[test]
fn bad_magic_and_version_are_distinguished() {
    let bytes = encode_trace(7, &[Decision::Submit]);
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(decode_trace(&bad_magic), Err(TraceError::BadMagic)));
    let mut bad_version = bytes;
    bad_version[4] = 0xFE;
    assert!(matches!(
        decode_trace(&bad_version),
        Err(TraceError::BadVersion(0xFE))
    ));
}
