//! Property-based round-trip guarantees for the trace codecs: arbitrary
//! traces — every event kind, negative timestamps, uneven timelines —
//! must survive the text format, the v1 record-stream binary format and
//! the v2 blocked columnar format bit-identically, in any chaining order,
//! and the incremental [`StreamDecoder`] must agree with the one-shot
//! decoder for every chunking of the byte stream.
//!
//! [`StreamDecoder`]: drift_lab::tracefmt::io::StreamDecoder

use drift_lab::tracefmt::io::{
    from_binary, from_binary_columnar, from_text, index_columnar_chunks, to_binary,
    to_binary_columnar_blocked, to_binary_columnar_v3_blocked, to_text, to_text_writer,
    CodecError, StreamDecoder, TimesBuilder, TraceBuilder,
};
use drift_lab::tracefmt::{CollOp, CommId, EventKind, Rank, RegionId, Tag, Trace, TraceColumns};
use drift_lab::simclock::Time;
use proptest::prelude::*;

const OPS: [CollOp; 9] = [
    CollOp::Barrier,
    CollOp::Bcast,
    CollOp::Scatter,
    CollOp::Reduce,
    CollOp::Gather,
    CollOp::Allreduce,
    CollOp::Allgather,
    CollOp::Alltoall,
    CollOp::Scan,
];

/// Build one event kind from a selector and an auxiliary number, covering
/// all eleven kinds (regions, p2p, collectives with and without roots,
/// POMP fork/join/barriers).
fn kind_from(k: u8, a: u32, procs: usize) -> EventKind {
    let region = RegionId(a);
    let peer = Rank(a % procs as u32);
    let root = if a.is_multiple_of(3) { Some(peer) } else { None };
    match k % 10 {
        0 => EventKind::Enter { region },
        1 => EventKind::Exit { region },
        2 => EventKind::Send { to: peer, tag: Tag(a), bytes: u64::from(a) * 3 },
        3 => EventKind::Recv { from: peer, tag: Tag(a), bytes: u64::from(a) },
        4 => EventKind::CollBegin {
            op: OPS[a as usize % OPS.len()],
            comm: CommId(a % 4),
            root,
            bytes: u64::from(a),
        },
        5 => EventKind::CollEnd {
            op: OPS[(a as usize + 1) % OPS.len()],
            comm: CommId(a % 4),
            root,
            bytes: u64::from(a) * 7,
        },
        6 => EventKind::Fork { region },
        7 => EventKind::Join { region },
        8 => EventKind::BarrierEnter { region },
        _ => EventKind::BarrierExit { region },
    }
}

/// An arbitrary trace: 1–5 processes, every process non-empty (the text
/// decoder keeps timelines in first-seen order and cannot represent empty
/// ones), timestamps free to be negative or non-monotone — codecs must not
/// care.
fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        1usize..6,
        prop::collection::vec((0u8..10, 0u32..40), 1..150),
        prop::collection::vec(-5_000_000i64..5_000_000, 1..150),
    )
        .prop_map(|(procs, kinds, deltas)| {
            let mut trace = Trace::for_ranks(procs);
            let mut now = vec![0i64; procs];
            // Seed every timeline with one event so no proc is empty.
            for p in 0..procs {
                now[p] += deltas[p % deltas.len()];
                trace.procs[p].push(
                    Time::from_ps(now[p]),
                    kind_from(p as u8, p as u32, procs),
                );
            }
            for (i, &(k, a)) in kinds.iter().enumerate() {
                let p = i % procs;
                now[p] += deltas[i % deltas.len()];
                trace.procs[p].push(Time::from_ps(now[p]), kind_from(k, a, procs));
            }
            trace
        })
}

/// A small arbitrary trace for the quadratic truncation sweep: every
/// prefix of the encoded stream gets decoded, so streams stay short.
fn arb_small_trace() -> impl Strategy<Value = Trace> {
    (
        1usize..4,
        prop::collection::vec((0u8..10, 0u32..40), 1..24),
        prop::collection::vec(-5_000_000i64..5_000_000, 1..24),
    )
        .prop_map(|(procs, kinds, deltas)| {
            let mut trace = Trace::for_ranks(procs);
            let mut now = vec![0i64; procs];
            for p in 0..procs {
                now[p] += deltas[p % deltas.len()];
                trace.procs[p].push(
                    Time::from_ps(now[p]),
                    kind_from(p as u8, p as u32, procs),
                );
            }
            for (i, &(k, a)) in kinds.iter().enumerate() {
                let p = i % procs;
                now[p] += deltas[i % deltas.len()];
                trace.procs[p].push(Time::from_ps(now[p]), kind_from(k, a, procs));
            }
            trace
        })
}

/// First difference between two traces, or `None` when identical.
fn first_difference(a: &Trace, b: &Trace) -> Option<String> {
    if a.n_procs() != b.n_procs() {
        return Some(format!("proc count {} vs {}", a.n_procs(), b.n_procs()));
    }
    for (p, (pa, pb)) in a.procs.iter().zip(&b.procs).enumerate() {
        if pa.location != pb.location {
            return Some(format!("proc {p} location {} vs {}", pa.location, pb.location));
        }
        if pa.events.len() != pb.events.len() {
            return Some(format!(
                "proc {p} length {} vs {}",
                pa.events.len(),
                pb.events.len()
            ));
        }
        for (i, (ea, eb)) in pa.events.iter().zip(&pb.events).enumerate() {
            if ea.time != eb.time {
                return Some(format!("proc {p} event {i} time {:?} vs {:?}", ea.time, eb.time));
            }
            if ea.kind != eb.kind {
                return Some(format!("proc {p} event {i} kind {:?} vs {:?}", ea.kind, eb.kind));
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn text_round_trip_is_lossless(trace in arb_trace()) {
        let text = to_text(&trace);
        let back = from_text(&text).expect("text decodes");
        prop_assert!(first_difference(&trace, &back).is_none(),
            "text round trip diverged: {:?}", first_difference(&trace, &back));
        // The streaming writer emits byte-identical text.
        let mut streamed = Vec::new();
        to_text_writer(&trace, &mut streamed).expect("write to Vec");
        prop_assert_eq!(text.as_bytes(), &streamed[..]);
    }

    #[test]
    fn binary_v1_round_trip_is_lossless(trace in arb_trace()) {
        let back = from_binary(to_binary(&trace)).expect("v1 decodes");
        prop_assert!(first_difference(&trace, &back).is_none(),
            "v1 round trip diverged: {:?}", first_difference(&trace, &back));
    }

    #[test]
    fn columnar_round_trip_is_lossless(trace in arb_trace(), block in 1usize..64) {
        // Both wire versions: big-endian v2 and aligned little-endian v3.
        for bytes in [
            to_binary_columnar_blocked(&trace, block),
            to_binary_columnar_v3_blocked(&trace, block),
        ] {
            let back = from_binary_columnar(bytes).expect("columnar decodes");
            prop_assert!(first_difference(&trace, &back).is_none(),
                "columnar round trip diverged: {:?}", first_difference(&trace, &back));
        }
    }

    #[test]
    fn chained_formats_are_lossless(trace in arb_trace(), block in 1usize..32) {
        // text -> v1 binary -> v2 columnar -> v3 columnar, re-decoding at
        // every hop.
        let hop1 = from_text(&to_text(&trace)).expect("text decodes");
        let hop2 = from_binary(to_binary(&hop1)).expect("v1 decodes");
        let hop3 = from_binary_columnar(to_binary_columnar_blocked(&hop2, block))
            .expect("columnar decodes");
        let hop4 = from_binary_columnar(to_binary_columnar_v3_blocked(&hop3, block))
            .expect("v3 columnar decodes");
        prop_assert!(first_difference(&trace, &hop4).is_none(),
            "format chain diverged: {:?}", first_difference(&trace, &hop4));
    }

    #[test]
    fn streaming_decode_agrees_for_every_chunking(
        trace in arb_trace(),
        block in 1usize..48,
        chunk in 1usize..257,
    ) {
        for bytes in [
            to_binary_columnar_blocked(&trace, block),
            to_binary_columnar_v3_blocked(&trace, block),
        ] {
            let mut dec = StreamDecoder::new();
            let mut builder = TraceBuilder::new();
            for piece in bytes.chunks(chunk) {
                for b in dec.feed(piece).expect("stream decodes") {
                    builder.push_block(b);
                }
            }
            dec.finish().expect("stream complete");
            let (back, cols) = builder.finish_parts();
            prop_assert!(first_difference(&trace, &back).is_none(),
                "streamed decode diverged: {:?}", first_difference(&trace, &back));
            // The decoder's columns are exactly what a gather would produce.
            prop_assert!(cols == TraceColumns::gather(&back),
                "decoder columns differ from gathered columns");

            // The times-only re-ingest lane (zero-copy on v3) must see the
            // identical columns, for the same chunking.
            let mut dec = StreamDecoder::new();
            let mut times = TimesBuilder::new();
            for piece in bytes.chunks(chunk) {
                dec.feed_times_into(piece, &mut times).expect("times-only decodes");
            }
            let (_locs, tcols) = times.finish();
            prop_assert!(tcols == cols, "times-only lane columns diverge");
        }
    }
}

proptest! {
    // Every prefix of every stream is decoded once, so each case is
    // quadratic in the stream length — fewer, smaller cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Truncating a v2 or v3 stream at *any* byte boundary must yield a
    /// typed [`CodecError`] from the one-shot decoder — never a panic,
    /// never a silently shorter trace — and the streaming decoder must
    /// never claim completion on such a prefix.
    #[test]
    fn truncation_at_every_boundary_is_a_typed_error(trace in arb_small_trace()) {
        for bytes in [
            to_binary_columnar_blocked(&trace, 4),
            to_binary_columnar_v3_blocked(&trace, 4),
        ] {
            for cut in 0..bytes.len() {
                match from_binary_columnar(bytes.slice(0..cut)) {
                    Err(CodecError::Truncated)
                    | Err(CodecError::BadField(_))
                    | Err(CodecError::UnknownKind(_)) => {}
                    Err(CodecError::MixedVersions) => prop_assert!(
                        false, "prefix of one stream cannot mix versions (cut={})", cut),
                    Ok(_) => prop_assert!(
                        false, "truncated stream decoded successfully at cut={}", cut),
                }

                let mut dec = StreamDecoder::new();
                let mut builder = TraceBuilder::new();
                let fed: Result<(), CodecError> = bytes[..cut]
                    .chunks(11)
                    .try_fold((), |(), piece| dec.feed_into(piece, &mut builder));
                if fed.is_ok() {
                    prop_assert!(!dec.is_finished(),
                        "decoder claims completion at cut={}", cut);
                    prop_assert!(dec.finish().is_err(),
                        "finish() accepted a truncated stream at cut={}", cut);
                }
            }
        }
    }

    /// A chunk boundary that splits a DTC3 alignment pad, lands exactly on
    /// an 8-byte times-segment boundary, or falls anywhere inside a frame
    /// header must not change what the streaming decoder produces. The
    /// uniform-chunk-size property above reaches these offsets only by
    /// accident; here every such cut is exercised deliberately as a
    /// two-piece split and compared against the one-shot decode.
    #[test]
    fn v3_pad_and_alignment_splits_decode_identically(
        trace in arb_small_trace(),
        block in 1usize..6,
    ) {
        let bytes = to_binary_columnar_v3_blocked(&trace, block);
        let expected = from_binary_columnar(bytes.clone()).expect("one-shot decodes");
        let idx = index_columnar_chunks(&[&bytes[..]]).expect("well-formed stream indexes");

        // Every 8-byte segment boundary, the stream ends, and — per frame —
        // a window sweeping across the header and its alignment pad up to
        // the first times byte.
        let mut cuts: Vec<usize> = (0..=bytes.len()).step_by(8).collect();
        cuts.push(bytes.len());
        for b in &idx.blocks {
            let start = b.times_off as usize;
            for c in start.saturating_sub(24)..=start.min(bytes.len()) {
                cuts.push(c);
            }
        }
        cuts.sort_unstable();
        cuts.dedup();

        for cut in cuts {
            let mut dec = StreamDecoder::new();
            let mut builder = TraceBuilder::new();
            for piece in [&bytes[..cut], &bytes[cut..]] {
                for blk in dec.feed(piece).expect("split stream decodes") {
                    builder.push_block(blk);
                }
            }
            dec.finish().expect("split stream complete");
            let (back, _) = builder.finish_parts();
            prop_assert!(first_difference(&expected, &back).is_none(),
                "two-piece split at {} diverged: {:?}",
                cut, first_difference(&expected, &back));
        }
    }
}
