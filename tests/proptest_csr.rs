//! Property-based round-trip guarantees for the CSR dependency-graph
//! lowering: over random traces — including traces rebuilt from chunked
//! *and truncated* streamed ingest — every edge the communication analysis
//! implies must come back out of the flat offsets/edges arrays with its
//! correct `l_min` latency, and no phantom edge may appear.

mod common;

use common::{graph_edges, reference_edges};
use drift_lab::clocksync::{DepGraph, TraceAnalysis};
use drift_lab::prelude::*;
use drift_lab::tracefmt::io::{to_binary_columnar, StreamDecoder, TraceBuilder};
use drift_lab::tracefmt::CollOp;
use proptest::prelude::*;

// ------------------------------------------------------------ strategies --

/// A random causally valid trace mixing point-to-point rounds with
/// occasional world collectives of every data-flow flavour, recorded
/// through per-process clock skews.
fn arb_mixed_trace() -> impl Strategy<Value = (Trace, i64)> {
    (
        2usize..6,
        4usize..30,
        prop::collection::vec(-200i64..200, 6),
        1i64..15,
        0usize..5,
    )
        .prop_map(|(procs, rounds, skews, lmin_us, coll_kind)| {
            let mut trace = Trace::for_ranks(procs);
            let mut now = vec![0i64; procs];
            for m in 0..rounds {
                let from = m % procs;
                let to = (m * 5 + 1) % procs;
                if from != to {
                    let send_true = now[from] + 8 + (m as i64 * 11) % 40;
                    now[from] = send_true;
                    let recv_true = send_true.max(now[to]) + lmin_us + (m as i64 * 3) % 25;
                    now[to] = recv_true;
                    trace.procs[from].push(
                        Time::from_us(send_true + skews[from]),
                        EventKind::Send { to: Rank(to as u32), tag: Tag(m as u32), bytes: 8 },
                    );
                    trace.procs[to].push(
                        Time::from_us(recv_true + skews[to]),
                        EventKind::Recv { from: Rank(from as u32), tag: Tag(m as u32), bytes: 8 },
                    );
                }
                if m % 4 == 3 {
                    let (op, root) = match coll_kind {
                        0 => (CollOp::Barrier, None),
                        1 => (CollOp::Bcast, Some(Rank((m % procs) as u32))),
                        2 => (CollOp::Reduce, Some(Rank((m % procs) as u32))),
                        3 => (CollOp::Scan, None),
                        _ => (CollOp::Allreduce, None),
                    };
                    let enter = *now.iter().max().expect("non-empty");
                    for (p, t_p) in now.iter_mut().enumerate() {
                        let my_enter = enter + (p as i64 * 3) % 7;
                        let exit = my_enter + 4 + (p as i64) % 5;
                        trace.procs[p].push(
                            Time::from_us(my_enter + skews[p]),
                            EventKind::CollBegin { op, comm: CommId::WORLD, root, bytes: 8 },
                        );
                        trace.procs[p].push(
                            Time::from_us(exit + skews[p]),
                            EventKind::CollEnd { op, comm: CommId::WORLD, root, bytes: 8 },
                        );
                        *t_p = exit;
                    }
                }
            }
            (trace, lmin_us)
        })
}

/// Edge-set equality between the CSR lowering and the analysis-implied
/// reference on `trace`; also checks the in/out views against each other.
/// Panics on any divergence; silently returns when the trace does not
/// analyse (a truncated trace can legitimately cut a collective in half —
/// the pipeline rejects it before any lowering would run).
fn assert_round_trip(trace: &Trace, lmin_us: i64) {
    let lmin = UniformLatency(Dur::from_us(lmin_us));
    let analysis = match TraceAnalysis::capture(trace) {
        Ok(a) => a,
        Err(_) => return,
    };
    let graph = DepGraph::from_trace(trace, &analysis.matching, &analysis.instances, &lmin);
    let want = reference_edges(&analysis, &lmin);
    let (via_in, via_out) = graph_edges(trace, &graph);
    assert_eq!(via_in, want, "in-edge view diverges from the analysis");
    assert_eq!(via_out, want, "out-edge view diverges from the analysis");
    assert_eq!(graph.n_edges(), want.len(), "edge count diverges");
    assert_eq!(graph.n_events(), trace.n_events());
    assert!(graph.local_cycle().is_none(), "spurious local cycle");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Direct round trip: lower a random trace into CSR and read every
    /// edge back out — nothing dropped, nothing invented.
    #[test]
    fn csr_recovers_every_edge_and_no_phantoms((trace, lmin_us) in arb_mixed_trace()) {
        assert_round_trip(&trace, lmin_us);
    }

    /// The same round trip on a trace rebuilt from *streamed* ingest fed
    /// in bounded chunks, and on a trace rebuilt from only a truncated
    /// prefix of the byte stream (the decoder keeps whole frames; the
    /// partial tail frame stays pending). Whatever events survive
    /// truncation must lower to exactly the edges their analysis implies.
    #[test]
    fn csr_round_trips_streamed_and_truncated_ingest(
        (trace, lmin_us) in arb_mixed_trace(),
        chunk in 16usize..512,
        keep_per_mille in 100u32..1001,
    ) {
        let bytes = to_binary_columnar(&trace);

        // Full stream, chunked feeding: must reproduce the trace exactly.
        let mut dec = StreamDecoder::new();
        let mut builder = TraceBuilder::new();
        for c in bytes.chunks(chunk) {
            dec.feed_into(c, &mut builder).expect("stream decodes");
        }
        dec.finish().expect("stream complete");
        let (streamed, _cols) = builder.finish_parts();
        prop_assert_eq!(streamed.n_events(), trace.n_events());
        assert_round_trip(&streamed, lmin_us);

        // Truncated prefix: frames that arrived in full still decode; the
        // partial tail is simply never delivered.
        let cut = (bytes.len() as u64 * keep_per_mille as u64 / 1000) as usize;
        let mut dec = StreamDecoder::new();
        let mut builder = TraceBuilder::new();
        let mut parse_ok = true;
        for c in bytes[..cut].chunks(chunk) {
            if dec.feed_into(c, &mut builder).is_err() {
                // A cut inside a header can make the prefix undecodable —
                // that is a parse error, not a lowering concern.
                parse_ok = false;
                break;
            }
        }
        if parse_ok {
            let (truncated, _cols) = builder.finish_parts();
            prop_assert!(truncated.n_events() <= trace.n_events());
            assert_round_trip(&truncated, lmin_us);
        }
    }
}
