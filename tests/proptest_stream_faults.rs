//! Robustness of the streaming ingest path against hostile bytes.
//!
//! The `syncd` service's isolation story starts one layer down: whatever a
//! tenant feeds [`synchronize_stream`], the pipeline must come back with
//! `Ok` or a *typed* error — never a panic, never an absurd allocation.
//! These properties drive mutated DTC2 streams (bit flips, truncations,
//! dropped chunks, injected garbage, and pure garbage) through the full
//! pipeline under random chunkings, and also pin down that the header-only
//! cost estimator used by admission control never overstates a valid
//! stream and never panics on a corrupt one.

mod common;

use common::{assert_identical, drifted_trace};
use drift_lab::clocksync::{synchronize, synchronize_stream, PipelineConfig};
use drift_lab::syncd::{chunked, Fault, FaultInjector};
use drift_lab::tracefmt::io::{estimate_columnar_stream, to_binary_columnar_blocked};
use proptest::prelude::*;

/// Feed a (possibly corrupt) chunked stream through the whole pipeline.
/// The property under test is simply that this returns — `Ok` for intact
/// streams, a typed error for broken ones.
fn run_stream(chunks: &[Vec<u8>], seed: u64) {
    // Measurements from the *same* generator seed intentionally may not
    // match the corrupted stream's process count — that mismatch is one
    // of the typed-error paths under test.
    let (_, init, fin, lmin) = drifted_trace(4, 8, "constant", seed);
    let result = synchronize_stream(
        chunks.iter().map(|c| c.as_slice()),
        &init,
        Some(&fin),
        &lmin,
        &PipelineConfig::default(),
    );
    // Either outcome is fine; reaching here without a panic is the test.
    let _ = result.map(|(t, _)| t.n_events());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-fault streams: one flip, one truncation, or one dropped
    /// chunk anywhere in a valid stream must fail typed or still decode.
    #[test]
    fn single_fault_streams_never_panic(
        seed in 0u64..1000,
        msgs in 8usize..120,
        block in 4usize..64,
        chunk in 8usize..256,
        at_per_mille in 0u32..1000,
        xor in 1u8..255,
        which in 0usize..3,
    ) {
        let (trace, ..) = drifted_trace(4, msgs, "sinusoid", seed);
        let bytes = to_binary_columnar_blocked(&trace, block);
        let at = (bytes.len() as u64 * at_per_mille as u64 / 1000) as usize;
        let chunks = chunked(&bytes, chunk);
        let fault = match which {
            0 => Fault::FlipByte { at, xor },
            1 => Fault::Truncate { at },
            _ => Fault::DropChunk { index: at / chunk.max(1) },
        };
        let mutated = FaultInjector::new().with(fault).apply(&chunks);
        run_stream(&mutated, seed);
        // The admission estimator must also survive the same bytes.
        let est = estimate_columnar_stream(mutated.iter().map(|c| c.as_slice()));
        prop_assert!(est.bytes <= bytes.len() as u64);
    }

    /// Stacked faults plus injected garbage chunks: still no panic.
    #[test]
    fn stacked_faults_and_garbage_never_panic(
        seed in 0u64..1000,
        msgs in 8usize..80,
        chunk in 8usize..128,
        flips in prop::collection::vec((0usize..6000, 1u8..255), 0..6),
        cut_per_mille in 0u32..1001,
        garbage in prop::collection::vec(0u8..255, 0..200),
        garbage_pos in 0usize..8,
    ) {
        let (trace, ..) = drifted_trace(3, msgs, "randomwalk", seed);
        let bytes = to_binary_columnar_blocked(&trace, 16);
        let mut inj = FaultInjector::new();
        for (at, xor) in flips {
            inj = inj.with(Fault::FlipByte { at, xor });
        }
        let cut = (bytes.len() as u64 * cut_per_mille as u64 / 1000) as usize;
        inj = inj.with(Fault::Truncate { at: cut });
        let mut mutated = inj.apply(&chunked(&bytes, chunk));
        if !garbage.is_empty() {
            let pos = garbage_pos.min(mutated.len());
            mutated.insert(pos, garbage);
        }
        run_stream(&mutated, seed);
    }

    /// Pure garbage — no magic, no structure — fails typed at any
    /// chunking, and its admission estimate is never zero-cost.
    #[test]
    fn pure_garbage_fails_typed(
        garbage in prop::collection::vec(0u8..255, 1..2048),
        chunk in 1usize..257,
    ) {
        let chunks = chunked(&garbage, chunk);
        run_stream(&chunks, 7);
        let est = estimate_columnar_stream(chunks.iter().map(|c| c.as_slice()));
        prop_assert_eq!(est.bytes, garbage.len() as u64);
    }

    /// Control: the untouched stream still decodes and synchronizes to
    /// exactly what the in-memory path produces, and the estimator sees
    /// its true event count — mutation hardening must not tax the happy
    /// path.
    #[test]
    fn intact_streams_still_match_the_direct_path(
        seed in 0u64..1000,
        msgs in 8usize..80,
        block in 4usize..64,
        chunk in 8usize..256,
    ) {
        let (trace, init, fin, lmin) = drifted_trace(4, msgs, "constant", seed);
        let bytes = to_binary_columnar_blocked(&trace, block);
        let cfg = PipelineConfig::default();

        let mut direct = trace.clone();
        synchronize(&mut direct, &init, Some(&fin), &lmin, &cfg).expect("direct path");

        let chunks = chunked(&bytes, chunk);
        let (streamed, _) = synchronize_stream(
            chunks.iter().map(|c| c.as_slice()),
            &init,
            Some(&fin),
            &lmin,
            &cfg,
        )
        .expect("intact stream synchronizes");
        assert_identical(&direct, &streamed, "stream vs direct");

        let est = estimate_columnar_stream(chunks.iter().map(|c| c.as_slice()));
        prop_assert!(est.complete);
        prop_assert_eq!(est.events, trace.n_events() as u64);
    }
}
