//! Cross-crate integration: the full pipeline from clock physics through
//! simulation, tracing, probing, interpolation and CLC correction.

use drift_lab::clocksync::{
    synchronize, ClcParams, PipelineConfig, PreSync, ProbeSample,
};
use drift_lab::prelude::*;

/// Build a 8-rank Xeon-like cluster over 4 nodes with drifting clocks.
fn cluster(seed: u64, horizon_s: f64) -> Cluster {
    let shape = Platform::XeonCluster.shape(4);
    let profile = Platform::XeonCluster.clock_profile(TimerKind::IntelTsc, horizon_s);
    let clocks = ClockEnsemble::build(shape, ClockDomain::PerChip, &profile, seed);
    Cluster::new(
        Placement::round_robin(shape, 8),
        Topology::FatTree { leaf_radix: 16 },
        HierarchicalLatency::xeon_infiniband(),
        clocks,
        seed,
    )
}

fn ring_program(iters: u32) -> Program {
    Program::build(8, |r| {
        let next = Rank((r.0 + 1) % 8);
        let prev = Rank((r.0 + 7) % 8);
        let mut p = RankProgram::new();
        for i in 0..iters {
            p = p
                .compute_jitter(Dur::from_us(200), 0.1)
                .send(next, Tag(i), 256)
                .recv(prev, Tag(i));
            if i % 5 == 0 {
                p = p.allreduce(CommId::WORLD, 8);
            }
        }
        p
    })
}

fn lmin_of(cluster: &Cluster, n: usize) -> impl Fn(Rank, Rank) -> Dur {
    let table: Vec<Vec<Dur>> = (0..n)
        .map(|a| {
            (0..n)
                .map(|b| cluster.l_min(Rank(a as u32), Rank(b as u32), 0))
                .collect()
        })
        .collect();
    move |a: Rank, b: Rank| table[a.idx()][b.idx()]
}

#[test]
fn full_pipeline_on_probed_measurements() {
    let mut c = cluster(1, 60.0);
    // Probe offsets at init.
    let (init_sessions, t0) =
        probe_all_workers(&mut c, Rank(0), 15, Time::ZERO, Dur::from_us(100));
    let mut init = vec![None; 8];
    for s in &init_sessions {
        let rounds: Vec<ProbeSample> = s
            .rounds
            .iter()
            .map(|r| ProbeSample { t1: r.t1, t0: r.t0, t2: r.t2 })
            .collect();
        init[s.worker.idx()] = drift_lab::clocksync::estimate_offset(&rounds);
    }
    // Run the application.
    let opts = RunOptions {
        start_time: t0 + Dur::from_ms(1),
        ..RunOptions::default()
    };
    let out = run(&mut c, &ring_program(100), &opts).unwrap();
    // Probe at finalize.
    let (fin_sessions, _) = probe_all_workers(
        &mut c,
        Rank(0),
        15,
        out.stats.end_time + Dur::from_ms(1),
        Dur::from_us(100),
    );
    let mut fin = vec![None; 8];
    for s in &fin_sessions {
        let rounds: Vec<ProbeSample> = s
            .rounds
            .iter()
            .map(|r| ProbeSample { t1: r.t1, t0: r.t0, t2: r.t2 })
            .collect();
        fin[s.worker.idx()] = drift_lab::clocksync::estimate_offset(&rounds);
    }

    let lmin = lmin_of(&c, 8);
    let mut trace = out.trace;
    let report = synchronize(
        &mut trace,
        &init,
        Some(&fin),
        &lmin,
        &PipelineConfig {
            presync: PreSync::Linear,
            clc: Some(ClcParams::default()),
            parallel: None,
            ..Default::default()
},
    )
    .unwrap();

    // Raw trace has gross violations (clock offsets are milliseconds).
    assert!(report.raw.total_violations() > 0);
    // Interpolation helps massively.
    assert!(report.after_presync.total_violations() < report.raw.total_violations() / 2);
    // The CLC clears everything.
    assert_eq!(report.after_clc.unwrap().total_violations(), 0);
    // Local order survived all corrections.
    assert!(trace.is_locally_monotone());
}

#[test]
fn codecs_round_trip_a_real_simulation_trace() {
    let mut c = cluster(3, 30.0);
    let out = run(&mut c, &ring_program(30), &RunOptions::default()).unwrap();
    let text = drift_lab::tracefmt::io::to_text(&out.trace);
    let from_text = drift_lab::tracefmt::io::from_text(&text).unwrap();
    assert_eq!(from_text.n_events(), out.trace.n_events());
    let bin = drift_lab::tracefmt::io::to_binary(&out.trace);
    let from_bin = drift_lab::tracefmt::io::from_binary(bin).unwrap();
    assert_eq!(from_bin.n_events(), out.trace.n_events());
    for p in 0..8 {
        assert_eq!(out.trace.procs[p].events, from_bin.procs[p].events);
        assert_eq!(out.trace.procs[p].events, from_text.procs[p].events);
    }
}

#[test]
fn determinism_across_identical_runs() {
    let run_once = |seed: u64| {
        let mut c = cluster(seed, 30.0);
        let out = run(&mut c, &ring_program(40), &RunOptions::default()).unwrap();
        drift_lab::tracefmt::io::to_binary(&out.trace)
    };
    assert_eq!(run_once(9), run_once(9), "same seed must give identical traces");
    assert_ne!(run_once(9), run_once(10), "different seeds should differ");
}

#[test]
fn logical_clocks_agree_with_vector_clocks_on_simulated_traces() {
    let mut c = cluster(5, 30.0);
    let out = run(&mut c, &ring_program(20), &RunOptions::default()).unwrap();
    let lamport = drift_lab::clocksync::lamport_timestamps(&out.trace);
    let vectors = drift_lab::clocksync::vector_timestamps(&out.trace);
    let matching = match_messages(&out.trace);
    for m in &matching.messages {
        assert!(
            lamport[m.send.p()][m.send.i()] < lamport[m.recv.p()][m.recv.i()],
            "Lamport condition broken"
        );
        assert!(
            vectors[m.send.p()][m.send.i()]
                .happened_before(&vectors[m.recv.p()][m.recv.i()]),
            "vector-clock condition broken"
        );
    }
}

#[test]
fn partial_tracing_tolerates_unmatched_messages() {
    // Tracing switches on mid-stream: receives without sends appear. The
    // whole analysis chain (matching, checking, CLC) must cope.
    let prog = Program::build(2, |r| {
        let peer = Rank(1 - r.0);
        if r.0 == 0 {
            // Rank 0's first five sends go untraced.
            let mut p = RankProgram::new().trace_off();
            for i in 0..5u32 {
                p = p.send(peer, Tag(i), 8);
            }
            p = p.trace_on();
            for i in 5..10u32 {
                p = p.send(peer, Tag(i), 8);
            }
            p
        } else {
            let mut p = RankProgram::new();
            for i in 0..10u32 {
                p = p.recv(peer, Tag(i));
            }
            p
        }
    });
    let mut c = cluster(7, 30.0);
    let out = run(&mut c, &prog, &RunOptions::default()).unwrap();
    let m = match_messages(&out.trace);
    assert!(!m.unmatched_recvs.is_empty(), "expected dangling receives");
    // CLC still runs and leaves matched constraints satisfied.
    let lmin = lmin_of(&c, 2);
    let mut trace = out.trace;
    drift_lab::clocksync::controlled_logical_clock(&mut trace, &lmin, &ClcParams::default())
        .unwrap();
    let m = match_messages(&trace);
    let rep = check_p2p(&trace, &m, &lmin);
    assert!(rep.violations.is_empty());
}
