//! Differential guarantees for the `syncd` service: a job run through the
//! service — any storage engine, any worker count, any presync, trace or
//! stream input, alone or in a contended mixed batch with a poisoned
//! neighbour — produces **bit-identical** timestamps to calling
//! `clocksync::synchronize` directly with the same configuration.

mod common;

use common::{assert_identical, drifted_trace};
use drift_lab::clocksync::{
    synchronize, ParallelConfig, PipelineConfig, PreSync, TimestampStorage,
};
use drift_lab::syncd::{
    chunked, Counter, Fault, FaultInjector, JobError, JobInput, JobSpec, Priority,
    ServiceConfig, SyncService,
};
use drift_lab::tracefmt::io::to_binary_columnar_blocked;
use drift_lab::tracefmt::{MinLatency, Trace, UniformLatency};
use std::sync::Arc;

fn configs() -> Vec<(String, PipelineConfig)> {
    let mut out = Vec::new();
    for storage in [TimestampStorage::Aos, TimestampStorage::Columnar] {
        for workers in [1usize, 2, 4] {
            for presync in [PreSync::AlignOnly, PreSync::Linear] {
                let cfg = PipelineConfig {
                    presync,
                    parallel: (workers > 1)
                        .then_some(ParallelConfig { workers, shard_size: 64 }),
                    storage,
                    ..PipelineConfig::default()
                };
                out.push((
                    format!("{storage:?}/w{workers}/{presync:?}"),
                    cfg,
                ));
            }
        }
    }
    out
}

fn submit(
    service: &SyncService,
    input: JobInput,
    init: &[Option<drift_lab::clocksync::OffsetMeasurement>],
    fin: &[Option<drift_lab::clocksync::OffsetMeasurement>],
    lmin: UniformLatency,
    cfg: PipelineConfig,
) -> drift_lab::syncd::JobHandle {
    let lmin: Arc<dyn MinLatency + Send + Sync> = Arc::new(lmin);
    service
        .submit(JobSpec::new(
            input,
            init.to_vec(),
            Some(fin.to_vec()),
            lmin,
            cfg,
        ))
        .expect("admission accepts the job")
}

/// Every storage × workers × presync combination, both input kinds, one
/// shared service: each job's output must equal its direct-call twin.
#[test]
fn service_matches_direct_across_the_config_grid() {
    let (trace, init, fin, lmin) = drifted_trace(4, 300, "sinusoid", 42);
    let bytes = to_binary_columnar_blocked(&trace, 32);
    let service = SyncService::start(ServiceConfig {
        executors: 2,
        pool_workers: 8,
        ..ServiceConfig::default()
    });

    // Submit everything up front so jobs genuinely contend for executors.
    let mut jobs = Vec::new();
    for (label, cfg) in configs() {
        let mut direct = trace.clone();
        synchronize(&mut direct, &init, Some(&fin), &lmin, &cfg)
            .unwrap_or_else(|e| panic!("{label}: direct run failed: {e}"));
        let h_trace = submit(
            &service,
            JobInput::Trace(trace.clone()),
            &init,
            &fin,
            lmin,
            cfg.clone(),
        );
        let h_stream = submit(
            &service,
            JobInput::Stream(chunked(&bytes, 128)),
            &init,
            &fin,
            lmin,
            cfg,
        );
        jobs.push((label, direct, h_trace, h_stream));
    }

    for (label, direct, h_trace, h_stream) in jobs {
        let via_trace = h_trace
            .wait()
            .unwrap_or_else(|f| panic!("{label}: trace job failed: {}", f.error));
        assert_identical(&direct, &via_trace.trace, &format!("{label} (trace job)"));
        let via_stream = h_stream
            .wait()
            .unwrap_or_else(|f| panic!("{label}: stream job failed: {}", f.error));
        assert_identical(&direct, &via_stream.trace, &format!("{label} (stream job)"));
    }

    let m = service.metrics();
    // 2 storage × 3 worker counts × 2 presyncs, each as trace + stream.
    assert_eq!(m.counter(Counter::Completed), 12 * 2);
    assert_eq!(m.counter(Counter::Failed), 0);
    assert_eq!(m.counter(Counter::ServiceCrashes), 0);
    service.shutdown();
}

/// A mixed batch: healthy jobs interleaved with one poisoned stream. The
/// poisoned job retries, fails typed, and affects nothing else.
#[test]
fn poisoned_neighbour_cannot_corrupt_healthy_jobs() {
    let (trace, init, fin, lmin) = drifted_trace(3, 200, "randomwalk", 7);
    let cfg = PipelineConfig::default();
    let mut direct = trace.clone();
    synchronize(&mut direct, &init, Some(&fin), &lmin, &cfg).expect("direct run");

    let bytes = to_binary_columnar_blocked(&trace, 16);
    let poisoned = FaultInjector::new()
        .with(Fault::FlipByte { at: bytes.len() / 3, xor: 0x40 })
        .with(Fault::Truncate { at: bytes.len() - 7 })
        .apply(&chunked(&bytes, 96));

    let service = SyncService::start(ServiceConfig {
        executors: 2,
        max_retries: 2,
        retry_backoff: std::time::Duration::from_millis(1),
        ..ServiceConfig::default()
    });

    // Interleave: healthy, healthy, poisoned, healthy, healthy.
    let h1 = submit(&service, JobInput::Trace(trace.clone()), &init, &fin, lmin, cfg.clone());
    let h2 = submit(&service, JobInput::Stream(chunked(&bytes, 96)), &init, &fin, lmin, cfg.clone());
    let bad = submit(&service, JobInput::Stream(poisoned), &init, &fin, lmin, cfg.clone());
    let h3 = submit(&service, JobInput::Trace(trace.clone()), &init, &fin, lmin, cfg.clone());
    let h4 = submit(&service, JobInput::Stream(chunked(&bytes, 32)), &init, &fin, lmin, cfg);

    let failure = bad.wait().expect_err("poisoned job must fail");
    assert!(
        matches!(failure.error, JobError::Pipeline(_) | JobError::Panicked(_)),
        "poisoned job must fail typed, got {:?}",
        failure.error
    );
    assert_eq!(failure.attempts, 3, "retry budget of 2 means 3 attempts");

    for (i, h) in [h1, h2, h3, h4].into_iter().enumerate() {
        let ok = h.wait().unwrap_or_else(|f| {
            panic!("healthy job {i} failed next to a poisoned one: {}", f.error)
        });
        assert_identical(&direct, &ok.trace, &format!("healthy job {i}"));
    }

    let m = service.metrics();
    assert_eq!(m.counter(Counter::Completed), 4);
    assert_eq!(m.counter(Counter::Failed), 1);
    assert!(m.counter(Counter::Retried) >= 2);
    assert_eq!(m.counter(Counter::ServiceCrashes), 0);
    assert_eq!(m.admitted_bytes, 0, "all budget charges released");
    service.shutdown();
}

/// Priorities only reorder execution — they never change results, even on
/// an empty-measurement census-only job mixed with full pipeline runs.
#[test]
fn priorities_and_contention_do_not_change_bits() {
    let (trace, init, fin, lmin) = drifted_trace(4, 150, "constant", 99);
    let cfg = PipelineConfig {
        parallel: Some(ParallelConfig { workers: 4, shard_size: 32 }),
        ..PipelineConfig::default()
    };
    let mut direct = trace.clone();
    synchronize(&mut direct, &init, Some(&fin), &lmin, &cfg).expect("direct run");

    let service = SyncService::start(ServiceConfig {
        executors: 1, // force strict queueing so priority order matters
        pool_workers: 4,
        ..ServiceConfig::default()
    });
    let mut handles = Vec::new();
    for (i, prio) in [Priority::Low, Priority::High, Priority::Normal, Priority::High]
        .into_iter()
        .enumerate()
    {
        let lmin_arc: Arc<dyn MinLatency + Send + Sync> = Arc::new(lmin);
        let h = service
            .submit(
                JobSpec::new(
                    JobInput::Trace(trace.clone()),
                    init.clone(),
                    Some(fin.clone()),
                    lmin_arc,
                    cfg.clone(),
                )
                .with_priority(prio),
            )
            .expect("admitted");
        handles.push((i, h));
    }
    for (i, h) in handles {
        let ok = h.wait().unwrap_or_else(|f| panic!("job {i} failed: {}", f.error));
        assert_identical(&direct, &ok.trace, &format!("job {i}"));
    }
    let m = service.metrics();
    assert_eq!(m.counter(Counter::Completed), 4);
    assert_eq!(m.counter(Counter::ServiceCrashes), 0);
    // Stage totals folded from all four runs account for every event the
    // jobs processed (presync runs once per job on every timeline).
    let presync = m.stages.get("presync").expect("presync stage folded");
    assert_eq!(presync.items, 4 * trace.n_events() as u64);
    service.shutdown();
}

/// An all-empty trace through the service, as a degenerate-input control.
#[test]
fn empty_trace_job_completes() {
    let cfg = PipelineConfig {
        presync: PreSync::None,
        clc: None,
        ..PipelineConfig::default()
    };
    let service = SyncService::start_default();
    let lmin: Arc<dyn MinLatency + Send + Sync> =
        Arc::new(UniformLatency(drift_lab::simclock::Dur::from_us(1)));
    let h = service
        .submit(JobSpec::new(
            JobInput::Trace(Trace::for_ranks(3)),
            vec![None, None, None],
            None,
            lmin,
            cfg,
        ))
        .expect("admitted");
    let ok = h.wait().expect("empty job completes");
    assert_eq!(ok.trace.n_events(), 0);
    service.shutdown();
}
