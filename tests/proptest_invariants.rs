//! Property-based invariants on the core data structures and algorithms.

use drift_lab::clocksync::{controlled_logical_clock, ClcParams, LinearInterpolation,
    OffsetMeasurement, PreSync, TimestampMap};
use drift_lab::prelude::*;
use drift_lab::simclock::{ConstantDrift, NoiseSpec, PiecewiseLinearDrift, SinusoidalDrift};
use drift_lab::simclock::DriftModel;
use drift_lab::tracefmt::io;
use proptest::prelude::*;
use std::sync::Arc;

// ------------------------------------------------------------ strategies --

/// A random but *causally valid* two-to-six-process message trace: messages
/// are generated on a true timeline, then per-process clock skews corrupt
/// the recorded timestamps (which is exactly how real violations arise).
fn arb_skewed_trace() -> impl Strategy<Value = (Trace, i64)> {
    (
        2usize..6,
        5usize..40,
        prop::collection::vec(-300i64..300, 6),
        1i64..20,
    )
        .prop_map(|(procs, msgs, skews, lmin_us)| {
            let mut trace = Trace::for_ranks(procs);
            let mut now = vec![0i64; procs];
            for m in 0..msgs {
                let from = m % procs;
                let to = (m * 7 + 1) % procs;
                if from == to {
                    continue;
                }
                let send_true = now[from] + 10 + (m as i64 * 13) % 50;
                now[from] = send_true;
                let recv_true = send_true.max(now[to]) + lmin_us + (m as i64 * 5) % 30;
                now[to] = recv_true;
                trace.procs[from].push(
                    Time::from_us(send_true + skews[from]),
                    EventKind::Send { to: Rank(to as u32), tag: Tag(m as u32), bytes: 8 },
                );
                trace.procs[to].push(
                    Time::from_us(recv_true + skews[to]),
                    EventKind::Recv { from: Rank(from as u32), tag: Tag(m as u32), bytes: 8 },
                );
            }
            (trace, lmin_us)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- CLC postconditions -------------------------------------------------

    #[test]
    fn clc_always_restores_the_clock_condition((trace, lmin_us) in arb_skewed_trace()) {
        let mut t = trace;
        let lmin = UniformLatency(Dur::from_us(lmin_us));
        controlled_logical_clock(&mut t, &lmin, &ClcParams::default()).unwrap();
        let m = match_messages(&t);
        let rep = check_p2p(&t, &m, &lmin);
        prop_assert!(rep.violations.is_empty(),
            "CLC left {} violations", rep.violations.len());
        prop_assert!(t.is_locally_monotone(), "CLC broke local order");
    }

    #[test]
    fn clc_never_moves_events_backward((trace, lmin_us) in arb_skewed_trace()) {
        let before = trace.clone();
        let mut t = trace;
        let lmin = UniformLatency(Dur::from_us(lmin_us));
        controlled_logical_clock(&mut t, &lmin, &ClcParams::default()).unwrap();
        for p in 0..t.n_procs() {
            for (a, b) in t.procs[p].events.iter().zip(&before.procs[p].events) {
                prop_assert!(a.time >= b.time,
                    "event moved backward on proc {p}");
            }
        }
    }

    #[test]
    fn clc_is_idempotent((trace, lmin_us) in arb_skewed_trace()) {
        let mut t = trace;
        let lmin = UniformLatency(Dur::from_us(lmin_us));
        controlled_logical_clock(&mut t, &lmin, &ClcParams::default()).unwrap();
        let snapshot = t.clone();
        let rep = controlled_logical_clock(&mut t, &lmin, &ClcParams::default()).unwrap();
        prop_assert_eq!(rep.n_jumps(), 0, "second application found jumps");
        for p in 0..t.n_procs() {
            prop_assert_eq!(&t.procs[p].events, &snapshot.procs[p].events);
        }
    }

    #[test]
    fn parallel_clc_equals_serial((trace, lmin_us) in arb_skewed_trace()) {
        let lmin = UniformLatency(Dur::from_us(lmin_us));
        let params = ClcParams::default();
        let mut serial = trace.clone();
        let mut par = trace;
        controlled_logical_clock(&mut serial, &lmin, &params).unwrap();
        drift_lab::clocksync::controlled_logical_clock_parallel(&mut par, &lmin, &params)
            .unwrap();
        for p in 0..serial.n_procs() {
            prop_assert_eq!(&serial.procs[p].events, &par.procs[p].events);
        }
    }

    // --- codecs ---------------------------------------------------------------

    #[test]
    fn codecs_round_trip((trace, _) in arb_skewed_trace()) {
        let text = io::to_text(&trace);
        let back = io::from_text(&text).unwrap();
        prop_assert_eq!(back.n_events(), trace.n_events());
        let bin = io::to_binary(&trace);
        let back = io::from_binary(bin).unwrap();
        for p in 0..trace.n_procs() {
            prop_assert_eq!(&back.procs[p].events, &trace.procs[p].events);
        }
    }

    // --- logical clocks --------------------------------------------------------

    #[test]
    fn lamport_and_vector_conditions_hold((trace, _) in arb_skewed_trace()) {
        let lamport = drift_lab::clocksync::lamport_timestamps(&trace);
        prop_assert!(drift_lab::clocksync::satisfies_lamport_condition(&trace, &lamport));
        let vectors = drift_lab::clocksync::vector_timestamps(&trace);
        let m = match_messages(&trace);
        for msg in &m.messages {
            prop_assert!(vectors[msg.send.p()][msg.send.i()]
                .happened_before(&vectors[msg.recv.p()][msg.recv.i()]));
        }
    }

    // --- clock physics --------------------------------------------------------

    #[test]
    fn clock_ideal_time_is_monotone_for_sane_drifts(
        rate in -1e-4f64..1e-4,
        offset_us in -1_000_000i64..1_000_000,
        amp in 0.0f64..1e-5,
        period in 10.0f64..2000.0,
    ) {
        let drift = drift_lab::simclock::CompositeDrift::new(vec![
            Box::new(ConstantDrift::new(rate)),
            Box::new(SinusoidalDrift::new(amp, period, 0.0)),
        ]);
        let clock = SimClock::new(
            TimerKind::IntelTsc,
            Dur::from_us(offset_us),
            Arc::new(drift),
            NoiseSpec::noiseless(),
            0,
        );
        // |rate| + amp << 1, so local time must be strictly increasing.
        let mut prev = clock.ideal_at(Time::ZERO);
        for k in 1..200 {
            let t = Time::from_ms(k * 37);
            let v = clock.ideal_at(t);
            prop_assert!(v > prev, "ideal time not increasing at step {k}");
            prev = v;
        }
    }

    #[test]
    fn piecewise_drift_integral_matches_numeric_integration(
        rates in prop::collection::vec(-1e-5f64..1e-5, 2..6),
    ) {
        let points: Vec<(Time, f64)> = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| (Time::from_secs(i as i64 * 10), r))
            .collect();
        let d = PiecewiseLinearDrift::new(points);
        // Trapezoid-rule numeric integral at fine resolution.
        let end = Time::from_secs((rates.len() as i64 - 1) * 10 + 5);
        let steps = 2000;
        let h = end.as_secs_f64() / steps as f64;
        let mut num = 0.0;
        for i in 0..steps {
            let a = d.rate_at(Time::from_secs_f64(i as f64 * h));
            let b = d.rate_at(Time::from_secs_f64((i + 1) as f64 * h));
            num += 0.5 * (a + b) * h;
        }
        let exact = d.integrated(end);
        prop_assert!((num - exact).abs() < 1e-9,
            "integral mismatch: numeric {num}, analytic {exact}");
    }

    // --- interpolation ----------------------------------------------------------

    #[test]
    fn interpolation_is_exact_at_anchors_and_linear_between(
        w1 in 0i64..1000, o1 in -500i64..500,
        dw in 1i64..1000, do_ in -500i64..500,
    ) {
        let a = OffsetMeasurement {
            worker_time: Time::from_ms(w1),
            offset: Dur::from_us(o1),
            rtt: Dur::from_us(10),
        };
        let b = OffsetMeasurement {
            worker_time: Time::from_ms(w1 + dw),
            offset: Dur::from_us(o1 + do_),
            rtt: Dur::from_us(10),
        };
        let li = LinearInterpolation::new(&a, &b);
        prop_assert_eq!(li.map(a.worker_time), a.worker_time + a.offset);
        prop_assert_eq!(li.map(b.worker_time), b.worker_time + b.offset);
        // Midpoint maps to the midpoint of the corrected anchors.
        let mid = a.worker_time + (b.worker_time - a.worker_time) / 2;
        let expected = {
            let ca = li.map(a.worker_time);
            let cb = li.map(b.worker_time);
            ca + (cb - ca) / 2
        };
        let got = li.map(mid);
        prop_assert!((got - expected).abs() <= Dur::from_ps(1000),
            "midpoint off by {:?}", got - expected);
    }
}

// -------- pipeline invariants (sequential and sharded) ---------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After the pipeline's CLC stage, no matched message may violate
    /// `t_recv >= t_send + l_min` — checked explicitly against the event
    /// times, not just via the report.
    #[test]
    fn pipeline_clc_leaves_no_latency_violations(
        (trace, lmin_us) in arb_skewed_trace(),
        workers in 1usize..5,
    ) {
        let n = trace.n_procs();
        let mut t = trace;
        let lmin = Dur::from_us(lmin_us);
        let cfg = drift_lab::clocksync::PipelineConfig {
            presync: PreSync::None,
            clc: Some(ClcParams::default()),
            parallel: Some(drift_lab::clocksync::ParallelConfig {
                workers,
                shard_size: 16,
            }),
            ..Default::default()
        };
        let rep = drift_lab::clocksync::synchronize(
            &mut t, &vec![None; n], None, &UniformLatency(lmin), &cfg,
        ).unwrap();
        prop_assert_eq!(rep.after_clc.unwrap().total_violations(), 0);
        let m = match_messages(&t);
        for msg in &m.messages {
            let ts = t.procs[msg.send.p()].events[msg.send.i()].time;
            let tr = t.procs[msg.recv.p()].events[msg.recv.i()].time;
            prop_assert!(tr >= ts + lmin,
                "message {:?} -> {:?} violates t_recv >= t_send + l_min", msg.send, msg.recv);
        }
    }

    /// Corrected timestamps stay monotone along every rank's timeline.
    #[test]
    fn pipeline_output_is_monotone_per_rank(
        (trace, lmin_us) in arb_skewed_trace(),
    ) {
        let n = trace.n_procs();
        let mut t = trace;
        let cfg = drift_lab::clocksync::PipelineConfig {
            presync: PreSync::None,
            clc: Some(ClcParams::default()),
            parallel: Some(drift_lab::clocksync::ParallelConfig::default()),
            ..Default::default()
        };
        drift_lab::clocksync::synchronize(
            &mut t, &vec![None; n], None, &UniformLatency(Dur::from_us(lmin_us)), &cfg,
        ).unwrap();
        prop_assert!(t.is_locally_monotone(), "pipeline broke local order");
        for p in 0..n {
            for w in t.procs[p].events.windows(2) {
                prop_assert!(w[0].time <= w[1].time, "non-monotone on rank {p}");
            }
        }
    }

    /// The identity configuration — no pre-synchronisation, no CLC — must
    /// leave every timestamp untouched, sequentially and sharded.
    #[test]
    fn identity_pipeline_leaves_trace_unchanged(
        (trace, lmin_us) in arb_skewed_trace(),
        par_flag in 0usize..2,
    ) {
        let n = trace.n_procs();
        let before = trace.clone();
        let mut t = trace;
        let cfg = drift_lab::clocksync::PipelineConfig {
            presync: PreSync::None,
            clc: None,
            parallel: (par_flag == 1).then_some(drift_lab::clocksync::ParallelConfig {
                workers: 3,
                shard_size: 8,
            }),
            ..Default::default()
        };
        let rep = drift_lab::clocksync::synchronize(
            &mut t, &vec![None; n], None, &UniformLatency(Dur::from_us(lmin_us)), &cfg,
        ).unwrap();
        for p in 0..n {
            prop_assert_eq!(&t.procs[p].events, &before.procs[p].events,
                "identity pipeline modified rank {}", p);
        }
        prop_assert_eq!(
            rep.raw.total_violations(),
            rep.after_presync.total_violations()
        );
    }
}

// -------- extensions: POMP CLC and clock-domain-aware CLC -----------------

/// A random POMP trace: a team of 2–6 threads, several region instances,
/// per-thread clock skews corrupting the recorded timestamps.
fn arb_pomp_trace() -> impl Strategy<Value = Trace> {
    (
        2usize..6,
        2usize..8,
        prop::collection::vec(-20i64..20, 6),
    )
        .prop_map(|(threads, regions, skews)| {
            let r = RegionId(0);
            let mut t = Trace::for_threads(threads);
            let mut now = 10i64;
            for k in 0..regions {
                t.procs[0].push(
                    Time::from_us(now + skews[0]),
                    EventKind::Fork { region: r },
                );
                let start = now + 2;
                let mut enters = Vec::new();
                #[allow(clippy::needless_range_loop)]
                for th in 0..threads {
                    let body_end = start + 30 + ((th + k) as i64 * 7) % 17;
                    t.procs[th].push(
                        Time::from_us(start + skews[th]),
                        EventKind::Enter { region: r },
                    );
                    t.procs[th].push(
                        Time::from_us(body_end + skews[th]),
                        EventKind::BarrierEnter { region: r },
                    );
                    enters.push(body_end);
                }
                let all_in = *enters.iter().max().expect("non-empty") + 1;
                #[allow(clippy::needless_range_loop)]
                for th in 0..threads {
                    t.procs[th].push(
                        Time::from_us(all_in + th as i64 + skews[th]),
                        EventKind::BarrierExit { region: r },
                    );
                }
                now = all_in + threads as i64 + 2;
                t.procs[0].push(
                    Time::from_us(now + skews[0]),
                    EventKind::Join { region: r },
                );
                now += 10;
            }
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pomp_clc_always_restores_pomp_rules(trace in arb_pomp_trace()) {
        use drift_lab::clocksync::controlled_logical_clock_pomp;
        let mut t = trace;
        controlled_logical_clock_pomp(
            &mut t,
            Dur::from_ns(100),
            &drift_lab::clocksync::ClcParams::default(),
        )
        .unwrap();
        let regions = match_parallel_regions(&t).unwrap();
        let rep = check_pomp(&t, &regions);
        prop_assert_eq!(rep.any_violations, 0, "POMP CLC left violations");
        prop_assert!(t.is_locally_monotone());
    }

    #[test]
    fn domain_clc_keeps_constraints_and_never_moves_backward(
        (trace, lmin_us) in arb_skewed_trace(),
        split in 1usize..4,
    ) {
        use drift_lab::clocksync::controlled_logical_clock_with_domains;
        let n = trace.n_procs();
        // Group processes into `split` clock domains round-robin.
        let domains: Vec<usize> = (0..n).map(|p| p % split.min(n)).collect();
        let before = trace.clone();
        let mut t = trace;
        let lmin = UniformLatency(Dur::from_us(lmin_us));
        controlled_logical_clock_with_domains(
            &mut t,
            &lmin,
            &drift_lab::clocksync::ClcParams::default(),
            &domains,
        )
        .unwrap();
        let m = match_messages(&t);
        let rep = check_p2p(&t, &m, &lmin);
        prop_assert!(rep.violations.is_empty(), "domain CLC left violations");
        prop_assert!(t.is_locally_monotone());
        for p in 0..n {
            for (a, b) in t.procs[p].events.iter().zip(&before.procs[p].events) {
                prop_assert!(a.time >= b.time, "domain CLC moved an event backward");
            }
        }
    }
}
