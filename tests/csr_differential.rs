//! Differential guarantee of the CSR dependency-graph lowering: the flat
//! offsets/edges arrays built by [`DepGraph`] must encode exactly the edge
//! set implied by the reconstructed communication analysis — every matched
//! message and every collective begin→end constraint, with the correct
//! `l_min` latency, and nothing else — and the CLC must produce
//! bit-identical output whether it walks the map-based dependency
//! structure (serial AoS reference) or the CSR graph (columnar kernels and
//! batched-ring replay). (The fixture generator lives in
//! `tests/common/mod.rs`.)

mod common;

use common::{assert_identical, drifted_trace, graph_edges, reference_edges};
use drift_lab::clocksync::{
    synchronize, ClcParams, DepGraph, ParallelConfig, PipelineConfig, PreSync,
    TimestampStorage, TraceAnalysis,
};
use drift_lab::simclock::Time;
use drift_lab::tracefmt::{CollOp, CommId, EventKind, Rank, Trace, UniformLatency};

// ----------------------------------------------------------------- tests --

/// CSR lowering vs the analysis-implied edge set, across drift models and
/// trace sizes: no dropped edges, no phantom edges, correct latencies, and
/// the in-edge and out-edge views agree with each other.
#[test]
fn csr_edge_set_matches_analysis_across_models() {
    let sizes: &[(usize, usize)] = &[(3, 80), (5, 500), (8, 1500)];
    let models = ["constant", "sinusoid", "randomwalk"];
    for (si, &(procs, msgs)) in sizes.iter().enumerate() {
        for (mi, model) in models.iter().enumerate() {
            let seed = 4000 + (si * 10 + mi) as u64;
            let (trace, _, _, lmin) = drifted_trace(procs, msgs, model, seed);
            let ctx = format!("{procs}p/{msgs}m {model}");
            let analysis = TraceAnalysis::capture(&trace).expect("well-formed trace");
            let graph =
                DepGraph::from_trace(&trace, &analysis.matching, &analysis.instances, &lmin);
            let want = reference_edges(&analysis, &lmin);
            let (via_in, via_out) = graph_edges(&trace, &graph);
            assert_eq!(via_in, want, "{ctx}: in-edge view diverges from analysis");
            assert_eq!(via_out, want, "{ctx}: out-edge view diverges from analysis");
            assert_eq!(graph.n_edges(), want.len(), "{ctx}: edge count");
            assert!(graph.local_cycle().is_none(), "{ctx}: spurious cycle");
        }
    }
}

/// Every collective flavour lowers correctly: a hand-built trace with one
/// instance of each data-flow class (1-to-N, N-to-1, N-to-N, prefix).
#[test]
fn csr_lowers_every_collective_flavour() {
    let procs = 4;
    let mut t = Trace::for_ranks(procs);
    let mut now = vec![0i64; procs];
    let ops = [
        (CollOp::Bcast, Some(Rank(1))),
        (CollOp::Reduce, Some(Rank(2))),
        (CollOp::Allreduce, None),
        (CollOp::Scan, None),
    ];
    for (op, root) in ops {
        for (p, t_p) in now.iter_mut().enumerate() {
            *t_p += 10 + p as i64;
            t.procs[p].push(
                Time::from_us(*t_p),
                EventKind::CollBegin { op, comm: CommId::WORLD, root, bytes: 8 },
            );
            *t_p += 5;
            t.procs[p].push(
                Time::from_us(*t_p),
                EventKind::CollEnd { op, comm: CommId::WORLD, root, bytes: 8 },
            );
        }
    }
    let lmin = UniformLatency(drift_lab::simclock::Dur::from_us(3));
    let analysis = TraceAnalysis::capture(&t).expect("well-formed trace");
    let graph = DepGraph::from_trace(&t, &analysis.matching, &analysis.instances, &lmin);
    let want = reference_edges(&analysis, &lmin);
    let (via_in, via_out) = graph_edges(&t, &graph);
    assert_eq!(via_in, want);
    assert_eq!(via_out, want);
    // Flavour arithmetic over 4 members: Bcast 3 + Reduce 3 + Allreduce
    // 4·3 + Scan (0+1+2+3) edges.
    assert_eq!(graph.n_edges(), 3 + 3 + 12 + 6);
}

/// The CLC is bit-identical through the map-based reference path (AoS,
/// sequential) and every CSR-backed path — columnar serial, columnar
/// replay, and AoS replay — over the full drift-model × PreSync × workers
/// matrix.
#[test]
fn clc_is_bit_identical_through_maps_and_csr() {
    let models = ["constant", "sinusoid", "randomwalk"];
    let presyncs = [PreSync::None, PreSync::AlignOnly, PreSync::Linear];
    for (mi, model) in models.iter().enumerate() {
        let (base, init, fin, lmin) = drifted_trace(6, 700, model, 7000 + mi as u64);
        for presync in presyncs {
            let cfg_ref = PipelineConfig {
                presync,
                clc: Some(ClcParams::default()),
                parallel: None,
                storage: TimestampStorage::Aos,
                ..PipelineConfig::default()
            };
            let mut ref_trace = base.clone();
            let rep_ref = synchronize(&mut ref_trace, &init, Some(&fin), &lmin, &cfg_ref)
                .expect("reference pipeline runs");
            for storage in [TimestampStorage::Aos, TimestampStorage::Columnar] {
                for workers in [1usize, 2, 4] {
                    let ctx = format!("{model} {presync:?} {storage:?} workers={workers}");
                    let cfg = PipelineConfig {
                        storage,
                        parallel: Some(ParallelConfig { workers, shard_size: 64 }),
                        ..cfg_ref.clone()
                    };
                    let mut t = base.clone();
                    let rep = synchronize(&mut t, &init, Some(&fin), &lmin, &cfg)
                        .unwrap_or_else(|e| panic!("{ctx}: pipeline failed: {e}"));
                    assert_identical(&ref_trace, &t, &ctx);
                    assert_eq!(
                        rep_ref.clc.as_ref().map(|c| c.n_jumps()),
                        rep.clc.as_ref().map(|c| c.n_jumps()),
                        "{ctx}: CLC jump counts diverge"
                    );
                    assert_eq!(
                        rep_ref.after_clc.as_ref().map(|c| c.total_violations()),
                        rep.after_clc.as_ref().map(|c| c.total_violations()),
                        "{ctx}: post-CLC census diverges"
                    );
                }
            }
        }
    }
}
