//! Differential matrix for the incremental windowed engine: for every
//! window size × drift model × pre-synchronisation mode × worker request,
//! streaming a columnar trace through
//! [`synchronize_stream_incremental`] and re-decoding the emitted frames
//! must be *bit-identical* to decoding the whole stream and running the
//! batch [`synchronize`] — corrected timestamps, the jump set (compared in
//! canonical order; the batch report lists discovery order), `max_jump`,
//! and the moved/total event counts.
//!
//! The windowed engine is sequential by design, so the worker dimension
//! pins that a requested [`ParallelConfig`] is *ignored without changing
//! results*, mirroring the batch engine's any-worker-count guarantee.
//!
//! `DRIFT_STRESS=1` widens the matrix with a 6000-message trace size.

mod common;

use common::drifted_trace;
use drift_lab::clocksync::{
    synchronize, synchronize_stream_incremental, ClcParams, ParallelConfig, PipelineConfig,
    PreSync, TimestampStorage,
};
use drift_lab::prelude::*;
use drift_lab::tracefmt::io::{
    from_binary_columnar, to_binary_columnar_blocked, to_binary_columnar_v3_blocked,
};

/// Run the incremental engine over `bytes` in awkward 4096-byte chunks and
/// re-decode the concatenated output frames.
fn run_windowed(
    bytes: &[u8],
    init: &[Option<OffsetMeasurement>],
    fin: &[Option<OffsetMeasurement>],
    lmin: &UniformLatency,
    cfg: &PipelineConfig,
    window: usize,
    ctx: &str,
) -> (Trace, drift_lab::clocksync::IncrementalReport) {
    let chunks: Vec<&[u8]> = bytes.chunks(4096).collect();
    let (out, rep) =
        synchronize_stream_incremental(&chunks, init, Some(fin), lmin, cfg, window)
            .unwrap_or_else(|e| panic!("{ctx}: incremental run failed: {e}"));
    let back = from_binary_columnar(out.concat().into())
        .unwrap_or_else(|e| panic!("{ctx}: emitted frames do not decode: {e}"));
    (back, rep)
}

/// Frames are emitted in finalization order, so the re-decoded trace's
/// timeline order can differ from the input's — match timelines by
/// location, then require event-for-event identity.
fn assert_times_match(batch: &Trace, back: &Trace, ctx: &str) {
    assert_eq!(batch.n_procs(), back.n_procs(), "{ctx}: proc count");
    for bp in &batch.procs {
        let wp = back
            .procs
            .iter()
            .find(|p| p.location == bp.location)
            .unwrap_or_else(|| panic!("{ctx}: no timeline at {:?}", bp.location));
        assert_eq!(
            bp.events.len(),
            wp.events.len(),
            "{ctx}: event count at {:?}",
            bp.location
        );
        for (i, (a, b)) in bp.events.iter().zip(&wp.events).enumerate() {
            assert_eq!(a.kind, b.kind, "{ctx}: kind {i} at {:?}", bp.location);
            assert_eq!(a.time, b.time, "{ctx}: time {i} at {:?}", bp.location);
        }
    }
}

/// Compare the incremental CLC report against the batch one. Jump order is
/// schedule-dependent (the batch report lists discovery order, the
/// incremental report canonical (timeline, index) order), so both sides
/// are sorted before comparison; values must then be bit-identical.
fn assert_clc_match(
    batch: &drift_lab::clocksync::ClcReport,
    inc: &drift_lab::clocksync::ClcReport,
    ctx: &str,
) {
    let mut want = batch.jumps.clone();
    want.sort_by_key(|j| (j.event.p(), j.event.i()));
    assert_eq!(inc.jumps.len(), want.len(), "{ctx}: jump count");
    for (a, b) in inc.jumps.iter().zip(&want) {
        assert_eq!(a.event, b.event, "{ctx}: jump site");
        assert_eq!(a.size, b.size, "{ctx}: jump size at {:?}", a.event);
    }
    assert_eq!(inc.max_jump, batch.max_jump, "{ctx}: max_jump");
    assert_eq!(inc.events_moved, batch.events_moved, "{ctx}: events_moved");
    assert_eq!(inc.events_total, batch.events_total, "{ctx}: events_total");
}

#[test]
fn windowed_engine_differential_matrix() {
    let stress = std::env::var("DRIFT_STRESS").is_ok_and(|v| v == "1");
    let sizes: &[(usize, usize)] = if stress {
        &[(3, 60), (5, 400), (8, 1500), (10, 6000)]
    } else {
        &[(3, 60), (5, 400), (8, 1500)]
    };
    let models = ["constant", "sinusoid", "randomwalk"];
    let presyncs = [PreSync::None, PreSync::AlignOnly, PreSync::Linear];
    let mut legs = 0usize;
    for (si, &(procs, msgs)) in sizes.iter().enumerate() {
        for (mi, model) in models.iter().enumerate() {
            let seed = 73_000 + (si * 10 + mi) as u64;
            let (base, init, fin, lmin) = drifted_trace(procs, msgs, model, seed);
            let v3 = to_binary_columnar_v3_blocked(&base, 256);
            let n = base.n_events();
            // One sub-block window, two mid windows, one ≥ whole trace.
            let windows = [1usize, 64, 4096, n.max(1)];
            for presync in presyncs {
                for workers in [None, Some(2usize)] {
                    let cfg = PipelineConfig {
                        presync,
                        clc: Some(ClcParams::default()),
                        parallel: workers
                            .map(|w| ParallelConfig { workers: w, shard_size: 57 }),
                        storage: TimestampStorage::Columnar,
                        ..PipelineConfig::default()
                    };
                    let mut batch = base.clone();
                    let report =
                        synchronize(&mut batch, &init, Some(&fin), &lmin, &cfg)
                            .unwrap_or_else(|e| {
                                panic!("{procs}p/{msgs}m {model}: batch failed: {e}")
                            });
                    let bclc = report.clc.as_ref().expect("clc configured");
                    for window in windows {
                        let ctx = format!(
                            "{procs}p/{msgs}m {model} {presync:?} workers={workers:?} \
                             window={window}"
                        );
                        let (back, rep) =
                            run_windowed(&v3, &init, &fin, &lmin, &cfg, window, &ctx);
                        assert_times_match(&batch, &back, &ctx);
                        let iclc = rep.clc.as_ref().expect("clc ran");
                        assert_clc_match(bclc, iclc, &ctx);
                        legs += 1;
                    }
                }
            }
        }
    }
    // The matrix must not silently collapse after a refactor.
    let floor = sizes.len() * models.len() * presyncs.len() * 2 * 4;
    assert!(legs >= floor, "windowed matrix ran only {legs} legs (expected {floor})");
}

#[test]
fn windowed_engine_handles_v2_streams_in_the_matrix() {
    for (mi, model) in ["constant", "sinusoid", "randomwalk"].iter().enumerate() {
        let (base, init, fin, lmin) = drifted_trace(4, 200, model, 74_000 + mi as u64);
        let v2 = to_binary_columnar_blocked(&base, 64);
        let cfg = PipelineConfig {
            presync: PreSync::Linear,
            clc: Some(ClcParams::default()),
            parallel: None,
            storage: TimestampStorage::Columnar,
            ..PipelineConfig::default()
        };
        let mut batch = base.clone();
        let report = synchronize(&mut batch, &init, Some(&fin), &lmin, &cfg).unwrap();
        let bclc = report.clc.as_ref().expect("clc configured");
        for window in [3usize, 128] {
            let ctx = format!("v2 {model} window={window}");
            let (back, rep) = run_windowed(&v2, &init, &fin, &lmin, &cfg, window, &ctx);
            assert_times_match(&batch, &back, &ctx);
            assert_clc_match(bclc, rep.clc.as_ref().expect("clc ran"), &ctx);
            // The emitted stream must re-announce itself as v2.
            // (run_windowed already proved it decodes.)
            assert!(rep.frames > 0, "{ctx}: no frames emitted");
        }
    }
}

#[test]
fn windowed_residency_stays_bounded_while_batch_grows() {
    // Same drift model and window, 8× the messages: the windowed engine's
    // column high-water mark must stay (near) flat while the batch
    // engine's O(trace) residency scales with the input.
    let cfg = PipelineConfig {
        presync: PreSync::Linear,
        clc: Some(ClcParams::default()),
        parallel: None,
        storage: TimestampStorage::Columnar,
        ..PipelineConfig::default()
    };
    let mut peaks = Vec::new();
    for msgs in [400usize, 3200] {
        let (base, init, fin, lmin) = drifted_trace(4, msgs, "sinusoid", 75_001);
        let v3 = to_binary_columnar_v3_blocked(&base, 64);
        let ctx = format!("residency msgs={msgs}");
        let (_, rep) = run_windowed(&v3, &init, &fin, &lmin, &cfg, 64, &ctx);
        let mut batch = base.clone();
        let brep = synchronize(&mut batch, &init, Some(&fin), &lmin, &cfg).unwrap();
        assert_eq!(
            brep.stats.peak_resident_column_bytes,
            8 * base.n_events() as u64,
            "{ctx}: batch residency is O(trace) by construction"
        );
        peaks.push((rep.stats.peak_resident_column_bytes, base.n_events() as u64));
    }
    let (small_peak, small_n) = peaks[0];
    let (large_peak, large_n) = peaks[1];
    assert!(large_n >= 7 * small_n, "trace did not actually grow");
    // 8× the events must cost well under 2× the resident columns.
    assert!(
        large_peak < small_peak * 2,
        "windowed residency grew with the trace: {small_peak} B @ {small_n} events -> \
         {large_peak} B @ {large_n} events"
    );
}
