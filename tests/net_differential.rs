//! Differential guarantees for the network layer: a job submitted through
//! `syncd-client` over a real loopback socket produces **bit-identical**
//! output — corrected timestamps, jump set, max jump, typed errors — to
//! the same job run in process, across the storage × workers × presync ×
//! {batch, incremental} grid, under contention, and around mid-job client
//! disconnects. The router test pins that placement (including work
//! stealing) never changes results.

mod common;

use common::{assert_identical, drifted_trace};
use drift_lab::clocksync::{
    synchronize, synchronize_stream_incremental, OffsetMeasurement, ParallelConfig,
    PipelineConfig, PreSync, TimestampStorage,
};
use drift_lab::syncd::{
    chunked, Counter, Fault, FaultInjector, JobInput, JobRouter, JobSpec, NetServer,
    NetServerConfig, RouterConfig, ServiceConfig, TenantConfig,
};
use drift_lab::syncd_client::{ClientError, JobRequest, SyncClient};
use drift_lab::syncd_wire::{ErrorCode, WireJobConfig, WireLatency, WireMode};
use drift_lab::tracefmt::io::{
    from_binary_columnar, to_binary_columnar_blocked, to_binary_columnar_v3_blocked,
};
use drift_lab::tracefmt::{MinLatency, UniformLatency};
use std::sync::Arc;
use std::time::Duration;

fn configs() -> Vec<(String, PipelineConfig)> {
    let mut out = Vec::new();
    for storage in [TimestampStorage::Aos, TimestampStorage::Columnar] {
        for workers in [1usize, 2] {
            for presync in [PreSync::AlignOnly, PreSync::Linear] {
                let cfg = PipelineConfig {
                    presync,
                    parallel: (workers > 1)
                        .then_some(ParallelConfig { workers, shard_size: 64 }),
                    storage,
                    ..PipelineConfig::default()
                };
                out.push((format!("{storage:?}/w{workers}/{presync:?}"), cfg));
            }
        }
    }
    out
}

fn request(
    cfg: &PipelineConfig,
    lmin: UniformLatency,
    init: &[Option<OffsetMeasurement>],
    fin: &[Option<OffsetMeasurement>],
    mode: WireMode,
    chunks: Vec<Vec<u8>>,
) -> JobRequest {
    let config = WireJobConfig {
        mode,
        ..WireJobConfig::new(cfg, WireLatency::Uniform(lmin.0.as_ps()))
            .with_measurements(init, Some(fin))
    };
    JobRequest { config, chunks }
}

fn test_server() -> NetServer {
    NetServer::start_loopback(NetServerConfig {
        tenants: vec![TenantConfig::new("tok")],
        ingest_window: 1 << 20,
        service: ServiceConfig {
            executors: 2,
            pool_workers: 4,
            ..ServiceConfig::default()
        },
    })
    .expect("bind loopback")
}

/// Batch jobs over the socket across the whole grid: the returned stream
/// decodes to exactly the direct pipeline's corrected trace, and the
/// summary's census and jump statistics equal the direct report's.
#[test]
fn loopback_batch_matches_direct_across_the_grid() {
    let (trace, init, fin, lmin) = drifted_trace(4, 300, "sinusoid", 42);
    let v2 = to_binary_columnar_blocked(&trace, 32).to_vec();
    let server = test_server();
    let mut client = SyncClient::connect(server.local_addr(), "tok").expect("connect");

    for (label, cfg) in configs() {
        let mut direct = trace.clone();
        let report = synchronize(&mut direct, &init, Some(&fin), &lmin, &cfg)
            .unwrap_or_else(|e| panic!("{label}: direct run failed: {e}"));

        let req = request(&cfg, lmin, &init, &fin, WireMode::Batch, vec![v2.clone()]);
        let out = client
            .submit(&req)
            .unwrap_or_else(|e| panic!("{label}: socket job failed: {e}"));

        let returned = from_binary_columnar(out.stream.concat().into())
            .unwrap_or_else(|e| panic!("{label}: returned stream does not decode: {e}"));
        assert_identical(&direct, &returned, &format!("{label} (over socket)"));

        assert!(out.summary.census_present, "{label}: batch runs censuses");
        assert_eq!(
            out.summary.raw_violations as usize,
            report.raw.total_violations(),
            "{label}: raw census"
        );
        let clc = report.clc.as_ref().expect("default config runs the CLC");
        assert_eq!(out.summary.n_jumps as usize, clc.jumps.len(), "{label}: jump count");
        assert_eq!(out.summary.max_jump_ps, clc.max_jump.as_ps(), "{label}: max jump");
        assert_eq!(out.jumps.len(), clc.jumps.len(), "{label}: jump frames");
        for (w, j) in out.jumps.iter().zip(&clc.jumps) {
            assert_eq!((w.proc, w.idx), (j.event.proc, j.event.idx), "{label}: jump id");
            assert_eq!(w.size_ps, j.size.as_ps(), "{label}: jump size");
        }
    }
    server.shutdown();
}

/// Incremental jobs stream corrected frames back while running; their
/// concatenation must be byte-identical to the in-process incremental
/// engine's output, for both DTC2 and DTC3 inputs.
#[test]
fn loopback_incremental_streams_identical_bytes() {
    let (trace, init, fin, lmin) = drifted_trace(3, 400, "randomwalk", 9);
    let inputs = [
        ("v2", to_binary_columnar_blocked(&trace, 64).to_vec()),
        ("v3", to_binary_columnar_v3_blocked(&trace, 64).to_vec()),
    ];
    let server = test_server();
    let mut client = SyncClient::connect(server.local_addr(), "tok").expect("connect");

    for window in [128usize, 1024] {
        for (which, bytes) in &inputs {
            let label = format!("{which}/win{window}");
            let cfg = PipelineConfig::default();
            let refs = [bytes.as_slice()];
            let (direct_frames, direct_rep) = synchronize_stream_incremental(
                &refs,
                &init,
                Some(&fin),
                &lmin,
                &cfg,
                window,
            )
            .unwrap_or_else(|e| panic!("{label}: direct incremental failed: {e}"));

            let req = request(
                &cfg,
                lmin,
                &init,
                &fin,
                WireMode::Incremental { window_events: window as u64 },
                vec![bytes.clone()],
            );
            let out = client
                .submit(&req)
                .unwrap_or_else(|e| panic!("{label}: socket job failed: {e}"));

            assert_eq!(
                out.stream.concat(),
                direct_frames.concat(),
                "{label}: streamed bytes diverge from the in-process engine"
            );
            assert_eq!(
                out.summary.frames as usize,
                direct_frames.len(),
                "{label}: frame count"
            );
            assert!(!out.summary.census_present, "{label}: incremental skips censuses");
            if let Some(clc) = &direct_rep.clc {
                assert_eq!(out.summary.n_jumps as usize, clc.jumps.len(), "{label}: jumps");
                assert_eq!(out.summary.max_jump_ps, clc.max_jump.as_ps(), "{label}: max");
            }
        }
    }
    server.shutdown();
}

/// Concurrent clients contending for the same small executor pool all get
/// bit-identical results, and sequential jobs reuse one connection.
#[test]
fn loopback_contention_and_connection_reuse() {
    let (trace, init, fin, lmin) = drifted_trace(3, 200, "constant", 77);
    let bytes = to_binary_columnar_blocked(&trace, 32).to_vec();
    let cfg = PipelineConfig::default();
    let mut direct = trace.clone();
    synchronize(&mut direct, &init, Some(&fin), &lmin, &cfg).expect("direct");

    let server = test_server();
    let addr = server.local_addr();
    let threads: Vec<_> = (0..3)
        .map(|_| {
            let (bytes, init, fin, cfg) = (bytes.clone(), init.clone(), fin.clone(), cfg.clone());
            std::thread::spawn(move || {
                let mut client = SyncClient::connect(addr, "tok").expect("connect");
                let mut streams = Vec::new();
                // Two sequential jobs per connection: credit must carry over.
                for _ in 0..2 {
                    let req =
                        request(&cfg, lmin, &init, &fin, WireMode::Batch, vec![bytes.clone()]);
                    streams.push(client.submit(&req).expect("job").stream.concat());
                }
                streams
            })
        })
        .collect();
    for t in threads {
        for stream in t.join().expect("client thread") {
            let returned = from_binary_columnar(stream.into()).expect("decode");
            assert_identical(&direct, &returned, "contended socket job");
        }
    }
    let m = server.metrics();
    assert_eq!(m.counter(Counter::NetJobs), 6);
    assert_eq!(m.counter(Counter::NetAuthFailures), 0);
    server.shutdown();
}

/// Typed failures cross the wire as typed error frames: auth, malformed
/// input (a poisoned stream fails its retry budget), and tenant quotas.
#[test]
fn loopback_errors_are_typed() {
    let (trace, init, fin, lmin) = drifted_trace(2, 120, "constant", 5);
    let bytes = to_binary_columnar_blocked(&trace, 16).to_vec();
    let server = NetServer::start_loopback(NetServerConfig {
        tenants: vec![
            TenantConfig::new("tok"),
            TenantConfig {
                token: "small".into(),
                max_job_bytes: 256,
                max_connections: 64,
            },
        ],
        ingest_window: 1 << 20,
        service: ServiceConfig {
            executors: 1,
            max_retries: 1,
            retry_backoff: Duration::from_millis(1),
            ..ServiceConfig::default()
        },
    })
    .expect("bind");
    let addr = server.local_addr();

    // Unknown token.
    match SyncClient::connect(addr, "wrong") {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, ErrorCode::AuthFailed),
        Err(other) => panic!("expected AuthFailed, got {other:?}"),
        Ok(_) => panic!("expected AuthFailed, got a connection"),
    }

    // Poisoned stream: admission lets a subtly corrupt stream through and
    // the pipeline fails typed after its retries.
    let poisoned = FaultInjector::new()
        .with(Fault::FlipByte { at: bytes.len() / 2, xor: 0x40 })
        .apply(&chunked(&bytes, 64));
    let mut client = SyncClient::connect(addr, "tok").expect("connect");
    let cfg = PipelineConfig::default();
    let req = request(&cfg, lmin, &init, &fin, WireMode::Batch, poisoned);
    match client.submit(&req) {
        Err(ClientError::Remote { code, .. }) => {
            assert!(
                matches!(code, ErrorCode::Pipeline | ErrorCode::Panicked | ErrorCode::Malformed),
                "poisoned job must fail typed, got {code:?}"
            );
        }
        other => panic!("expected typed remote error, got {other:?}"),
    }

    // Tenant upload quota.
    let mut client = SyncClient::connect(addr, "small").expect("connect");
    let req = request(&cfg, lmin, &init, &fin, WireMode::Batch, vec![bytes.clone()]);
    match client.submit(&req) {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, ErrorCode::QuotaExceeded),
        // The server closes after the error frame; a racing writer can see
        // the close first.
        Err(ClientError::Io(_)) => {}
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }

    let m = server.metrics();
    assert!(m.counter(Counter::NetAuthFailures) >= 1);
    server.shutdown();
}

/// A client that vanishes mid-upload or mid-download never leaks an
/// admission charge and never wedges an executor; the server keeps
/// serving new clients with bit-identical results.
#[test]
fn loopback_mid_job_disconnects_release_everything() {
    let (trace, init, fin, lmin) = drifted_trace(3, 300, "sinusoid", 11);
    let bytes = to_binary_columnar_blocked(&trace, 32).to_vec();
    let cfg = PipelineConfig::default();
    let mut direct = trace.clone();
    synchronize(&mut direct, &init, Some(&fin), &lmin, &cfg).expect("direct");

    let server = test_server();
    let addr = server.local_addr();

    // Vanish mid-upload (no ChunkEnd ever sent).
    let client = SyncClient::connect(addr, "tok").expect("connect");
    let req = request(&cfg, lmin, &init, &fin, WireMode::Batch, vec![bytes.clone()]);
    client
        .submit_truncated(&req, bytes.len() / 2)
        .expect("truncated upload");

    // Vanish mid-download of an incremental job's corrected stream.
    let client = SyncClient::connect(addr, "tok").expect("connect");
    let req = request(
        &cfg,
        lmin,
        &init,
        &fin,
        WireMode::Incremental { window_events: 64 },
        vec![bytes.clone()],
    );
    client.submit_abandon_result(&req, 1).expect("abandoned download");

    // Both disconnects must be noticed and fully released.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let m = server.metrics();
        if m.counter(Counter::NetDisconnects) >= 2 && m.admitted_bytes == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "disconnects not fully released: disconnects={} admitted={}",
            m.counter(Counter::NetDisconnects),
            m.admitted_bytes
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The service is healthy: a fresh client gets a bit-identical result.
    let mut client = SyncClient::connect(addr, "tok").expect("connect");
    let req = request(&cfg, lmin, &init, &fin, WireMode::Batch, vec![bytes]);
    let out = client.submit(&req).expect("job after disconnects");
    let returned = from_binary_columnar(out.stream.concat().into()).expect("decode");
    assert_identical(&direct, &returned, "job after disconnects");
    server.shutdown();
}

/// Pile every job onto one hash-ring node with a single hot key: the
/// balancer must move work to the idle node, and every result must be
/// bit-identical to the direct run regardless of where it executed.
#[test]
fn router_steals_work_and_placement_never_changes_bits() {
    let (trace, init, fin, lmin) = drifted_trace(3, 400, "randomwalk", 21);
    let cfg = PipelineConfig::default();
    let mut direct = trace.clone();
    synchronize(&mut direct, &init, Some(&fin), &lmin, &cfg).expect("direct");

    let router = JobRouter::start(RouterConfig {
        nodes: 2,
        replicas: 64,
        steal_interval: Duration::from_millis(1),
        steal_threshold: 2,
        node: ServiceConfig {
            executors: 1,
            pool_workers: 1,
            queue_capacity: 64,
            ..ServiceConfig::default()
        },
    });
    // A key pinned to node 0 — all jobs hash there; only stealing can
    // move any of them to node 1.
    let hot = (0..)
        .map(|i| format!("hot-{i}"))
        .find(|k| router.node_for(k) == 0)
        .expect("some key lands on node 0");

    let lmin_arc: Arc<dyn MinLatency + Send + Sync> = Arc::new(lmin);
    let handles: Vec<_> = (0..24)
        .map(|_| {
            router
                .submit_keyed(
                    &hot,
                    JobSpec::new(
                        JobInput::Trace(trace.clone()),
                        init.clone(),
                        Some(fin.clone()),
                        Arc::clone(&lmin_arc),
                        cfg.clone(),
                    ),
                )
                .expect("router admits the job")
        })
        .collect();

    for (i, h) in handles.into_iter().enumerate() {
        let ok = h
            .wait()
            .unwrap_or_else(|f| panic!("routed job {i} failed: {}", f.error));
        assert_identical(&direct, &ok.trace, &format!("routed job {i}"));
    }
    assert!(
        router.rebalances() > 0,
        "a 24-deep queue next to an idle node must trigger stealing"
    );
    let stolen = router.metrics(1).counter(Counter::RouterSteals);
    assert!(stolen > 0, "node 1 should have received stolen tickets");
    router.shutdown();
}

/// An online-method job over the socket: the method byte, Kalman tuning
/// and per-process probe schedules survive the wire round trip, and the
/// returned stream is bit-identical to the direct `SyncMethod::Online`
/// run. The online path runs no CLC, so the summary must report zero
/// jumps.
#[test]
fn loopback_online_method_matches_direct() {
    use drift_lab::clocksync::{OnlineSpec, SyncMethod};

    let (trace, init, fin, lmin) = drifted_trace(4, 300, "sinusoid", 42);
    // Minimal but real probe schedules: the endpoint fixes per process.
    let probes: Vec<Vec<OffsetMeasurement>> = init
        .iter()
        .zip(&fin)
        .map(|(i, f)| i.iter().chain(f.iter()).copied().collect())
        .collect();
    let cfg = PipelineConfig {
        method: SyncMethod::Online(OnlineSpec::new(probes)),
        ..PipelineConfig::default()
    };

    let mut direct = trace.clone();
    let report =
        synchronize(&mut direct, &init, Some(&fin), &lmin, &cfg).expect("direct online run");

    let v2 = to_binary_columnar_blocked(&trace, 32).to_vec();
    let server = test_server();
    let mut client = SyncClient::connect(server.local_addr(), "tok").expect("connect");
    let req = request(&cfg, lmin, &init, &fin, WireMode::Batch, vec![v2]);
    let out = client.submit(&req).expect("socket online job");

    let returned =
        from_binary_columnar(out.stream.concat().into()).expect("returned stream decodes");
    assert_identical(&direct, &returned, "online method (over socket)");
    assert_eq!(
        out.summary.raw_violations as usize,
        report.raw.total_violations(),
        "online: raw census over the wire"
    );
    assert_eq!(out.summary.n_jumps, 0, "online runs no CLC, so no jumps");
    assert!(out.jumps.is_empty(), "online: no jump frames");
    server.shutdown();
}
