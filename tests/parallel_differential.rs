//! Differential guarantee of the sharded pipeline: for every trace size,
//! drift model, pre-synchronisation variant and worker count, the parallel
//! execution path of [`synchronize`] must produce **bit-identical**
//! corrected timestamps and identical violation reports to the sequential
//! path. (The fixture generator lives in `tests/common/mod.rs`.)

mod common;

use common::{assert_identical, drifted_trace};
use drift_lab::clocksync::{
    synchronize, ClcParams, ParallelConfig, PipelineConfig, PreSync,
};

// ----------------------------------------------------------------- tests --

/// The full matrix: sizes × drift models × PreSync variants × worker
/// counts. Sequential is the reference; every parallel configuration must
/// reproduce it bit for bit, violations and CLC jumps included.
#[test]
fn parallel_is_bit_identical_across_the_config_matrix() {
    let sizes: &[(usize, usize)] = &[(3, 60), (5, 400), (8, 1500)];
    let models = ["constant", "sinusoid", "randomwalk"];
    let presyncs = [PreSync::None, PreSync::AlignOnly, PreSync::Linear];
    for (si, &(procs, msgs)) in sizes.iter().enumerate() {
        for (mi, model) in models.iter().enumerate() {
            let seed = 1000 + (si * 10 + mi) as u64;
            let (base, init, fin, lmin) = drifted_trace(procs, msgs, model, seed);
            for presync in presyncs {
                let cfg_seq = PipelineConfig {
                    presync,
                    clc: Some(ClcParams::default()),
                    parallel: None,
                    ..Default::default()
                };
                let mut seq_trace = base.clone();
                let seq = synchronize(&mut seq_trace, &init, Some(&fin), &lmin, &cfg_seq)
                    .expect("sequential pipeline runs");
                for workers in [1usize, 2, 8] {
                    let ctx = format!(
                        "{procs}p/{msgs}m {model} {presync:?} workers={workers}"
                    );
                    let cfg_par = PipelineConfig {
                        parallel: Some(ParallelConfig { workers, shard_size: 37 }),
                        ..cfg_seq.clone()
                    };
                    let mut par_trace = base.clone();
                    let par =
                        synchronize(&mut par_trace, &init, Some(&fin), &lmin, &cfg_par)
                            .unwrap_or_else(|e| panic!("{ctx}: pipeline failed: {e}"));
                    assert_identical(&seq_trace, &par_trace, &ctx);
                    assert_eq!(
                        seq.raw.p2p.violations, par.raw.p2p.violations,
                        "{ctx}: raw p2p violation lists diverge"
                    );
                    assert_eq!(
                        seq.after_presync.total_violations(),
                        par.after_presync.total_violations(),
                        "{ctx}: presync census diverges"
                    );
                    assert_eq!(
                        seq.after_clc.as_ref().map(StageReportTotals::totals),
                        par.after_clc.as_ref().map(StageReportTotals::totals),
                        "{ctx}: post-CLC census diverges"
                    );
                    assert_eq!(
                        seq.clc.as_ref().map(|c| c.n_jumps()),
                        par.clc.as_ref().map(|c| c.n_jumps()),
                        "{ctx}: CLC jump counts diverge"
                    );
                }
            }
        }
    }
}

/// Same guarantee with the CLC stage disabled (presync-only pipelines) and
/// with a shard size larger than any timeline (single-shard degenerate
/// case).
#[test]
fn parallel_is_bit_identical_without_clc_and_with_oversized_shards() {
    let (base, init, fin, lmin) = drifted_trace(6, 700, "sinusoid", 77);
    for presync in [PreSync::AlignOnly, PreSync::Linear] {
        let cfg_seq = PipelineConfig { presync, clc: None, parallel: None, ..Default::default() };
        let mut seq_trace = base.clone();
        let seq = synchronize(&mut seq_trace, &init, Some(&fin), &lmin, &cfg_seq)
            .expect("sequential pipeline runs");
        for shard_size in [9usize, 1_000_000] {
            let cfg_par = PipelineConfig {
                parallel: Some(ParallelConfig { workers: 4, shard_size }),
                ..cfg_seq.clone()
            };
            let mut par_trace = base.clone();
            let par = synchronize(&mut par_trace, &init, Some(&fin), &lmin, &cfg_par)
                .expect("parallel pipeline runs");
            let ctx = format!("{presync:?} shard_size={shard_size}");
            assert_identical(&seq_trace, &par_trace, &ctx);
            assert!(par.after_clc.is_none(), "{ctx}: CLC was disabled");
            assert_eq!(
                seq.after_presync.total_violations(),
                par.after_presync.total_violations(),
                "{ctx}: presync census diverges"
            );
        }
    }
}

/// ~1M-event stress run through the parallel path. `#[ignore]`d: run with
/// `cargo test -- --ignored` (scripts/ci.sh does). Checks the
/// [`PipelineStats`] shard accounting — per-shard item counts must sum to
/// the trace's event total — and that the CLC still ends violation-free.
#[test]
#[ignore = "~1M-event stress run; exercised by scripts/ci.sh"]
fn stress_million_event_parallel_pipeline() {
    let procs = 16;
    let msgs = 500_000; // 1M message events + barrier events on top
    let (mut trace, init, fin, lmin) = drifted_trace(procs, msgs, "sinusoid", 4242);
    let n_events = trace.n_events();
    assert!(n_events >= 1_000_000, "stress trace too small: {n_events}");
    let cfg = PipelineConfig {
        presync: PreSync::Linear,
        clc: Some(ClcParams::default()),
        parallel: Some(ParallelConfig { workers: 8, shard_size: 8192 }),
        ..Default::default()
    };
    let rep = synchronize(&mut trace, &init, Some(&fin), &lmin, &cfg)
        .expect("stress pipeline runs");
    // Shard accounting: the presync stage walks every event exactly once,
    // and its per-shard counts are summed into `items`.
    let presync = rep.stats.stage("presync").expect("presync stage ran");
    assert_eq!(presync.items, n_events, "presync shard accounting != event total");
    let expected_shards: usize = trace
        .procs
        .iter()
        .map(|p| p.events.len().div_ceil(8192))
        .sum();
    assert_eq!(presync.shards, expected_shards, "presync shard count");
    assert_eq!(rep.stats.workers, 8);
    // The CLC stage sees every event too.
    assert_eq!(rep.stats.stage("clc").expect("clc ran").items, n_events);
    assert_eq!(
        rep.after_clc.expect("clc ran").total_violations(),
        0,
        "CLC must restore the clock condition on the stress trace"
    );
    assert!(trace.is_locally_monotone(), "stress output lost local order");
}

// Helper: comparable census totals without requiring PartialEq on reports.
trait StageReportTotals {
    fn totals(&self) -> (usize, usize, usize);
}

impl StageReportTotals for drift_lab::clocksync::StageReport {
    fn totals(&self) -> (usize, usize, usize) {
        (
            self.p2p.violations.len(),
            self.p2p.reversed,
            self.coll.logical_violated,
        )
    }
}
