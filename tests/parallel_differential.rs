//! Differential guarantee of the sharded pipeline: for every trace size,
//! drift model, pre-synchronisation variant and worker count, the parallel
//! execution path of [`synchronize`] must produce **bit-identical**
//! corrected timestamps and identical violation reports to the sequential
//! path.
//!
//! The traces here are generated the way real violations arise: messages
//! and barriers are laid out on a *true* timeline, then each process's
//! recorded timestamps are corrupted by a simclock drift model (constant
//! rate error, thermal sinusoid, or random-walk wander). Offset
//! measurements handed to the pipeline carry a small asymmetric probe
//! error, so interpolation stays imperfect and the CLC has real work to do.

use drift_lab::clocksync::{
    synchronize, ClcParams, OffsetMeasurement, ParallelConfig, PipelineConfig, PreSync,
};
use drift_lab::simclock::{
    ConstantDrift, DriftModel, RandomWalkDrift, SinusoidalDrift,
};
use drift_lab::prelude::*;
use drift_lab::tracefmt::{CollOp, CommId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ------------------------------------------------------------- generator --

/// Per-process clock: a static offset plus an integrated drift error.
struct ProcClock {
    offset_us: i64,
    drift: Option<Box<dyn DriftModel>>,
}

impl ProcClock {
    /// Local clock reading at true time `true_us` (microseconds).
    fn local_at(&self, true_us: i64) -> i64 {
        let wander_us = match &self.drift {
            None => 0,
            Some(d) => (d.integrated(Time::from_us(true_us)) * 1e6).round() as i64,
        };
        true_us + self.offset_us + wander_us
    }
}

/// Build one clock per process. Process 0 is the (perfect) master; workers
/// get a static offset plus the requested drift model.
fn clocks(procs: usize, model: &str, rng: &mut StdRng) -> Vec<ProcClock> {
    (0..procs)
        .map(|p| {
            if p == 0 {
                return ProcClock { offset_us: 0, drift: None };
            }
            let drift: Box<dyn DriftModel> = match model {
                "constant" => Box::new(ConstantDrift::new(rng.gen_range(-40e-6..40e-6))),
                "sinusoid" => Box::new(SinusoidalDrift::new(
                    rng.gen_range(1e-6..20e-6),
                    rng.gen_range(0.5..3.0),
                    rng.gen_range(0.0..1.0),
                )),
                "randomwalk" => Box::new(RandomWalkDrift::generate(
                    rng,
                    15e-6,
                    0.25,
                    // Generous horizon: the true timelines here stay well
                    // under two minutes.
                    240.0,
                )),
                other => panic!("unknown drift model {other}"),
            };
            ProcClock {
                offset_us: rng.gen_range(-800i64..800),
                drift: Some(drift),
            }
        })
        .collect()
}

/// A causally valid trace on a true timeline, recorded through drifting
/// clocks, plus init/finalize offset measurements with probe error.
fn drifted_trace(
    procs: usize,
    msgs: usize,
    model: &str,
    seed: u64,
) -> (
    Trace,
    Vec<Option<OffsetMeasurement>>,
    Vec<Option<OffsetMeasurement>>,
    UniformLatency,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cl = clocks(procs, model, &mut rng);
    let lmin_us = rng.gen_range(2i64..15);
    let mut trace = Trace::for_ranks(procs);
    let mut now = vec![0i64; procs]; // true time per process
    for m in 0..msgs {
        let from = rng.gen_range(0usize..procs);
        let to = (from + rng.gen_range(1usize..procs)) % procs;
        let send_true = now[from] + rng.gen_range(5i64..80);
        now[from] = send_true;
        let recv_true = send_true.max(now[to]) + lmin_us + rng.gen_range(0i64..40);
        now[to] = recv_true;
        trace.procs[from].push(
            Time::from_us(cl[from].local_at(send_true)),
            EventKind::Send { to: Rank(to as u32), tag: Tag(m as u32), bytes: 64 },
        );
        trace.procs[to].push(
            Time::from_us(cl[to].local_at(recv_true)),
            EventKind::Recv { from: Rank(from as u32), tag: Tag(m as u32), bytes: 64 },
        );
        // A barrier every 64 messages exercises the collective census
        // (and its logical-message constraints) in both execution paths.
        if m % 64 == 63 {
            let enter = *now.iter().max().expect("non-empty");
            for (p, t) in now.iter_mut().enumerate() {
                let my_enter = enter + rng.gen_range(0i64..10);
                let exit = my_enter + 5 + rng.gen_range(0i64..5);
                trace.procs[p].push(
                    Time::from_us(cl[p].local_at(my_enter)),
                    EventKind::CollBegin {
                        op: CollOp::Barrier,
                        comm: CommId(0),
                        root: None,
                        bytes: 0,
                    },
                );
                trace.procs[p].push(
                    Time::from_us(cl[p].local_at(exit)),
                    EventKind::CollEnd {
                        op: CollOp::Barrier,
                        comm: CommId(0),
                        root: None,
                        bytes: 0,
                    },
                );
                *t = exit;
            }
        }
    }
    let end = *now.iter().max().expect("non-empty") + 100;
    // Offset probes at init and finalize: `offset` is master − worker at
    // the probe instant, deliberately off by a few µs of asymmetry error.
    let measure = |p: usize, true_us: i64, err_us: i64| -> Option<OffsetMeasurement> {
        if p == 0 {
            return None;
        }
        let local = cl[p].local_at(true_us);
        Some(OffsetMeasurement {
            worker_time: Time::from_us(local),
            offset: Dur::from_us(true_us - local + err_us),
            rtt: Dur::from_us(12),
        })
    };
    let errs: Vec<i64> = (0..procs).map(|_| rng.gen_range(-6i64..6)).collect();
    let init: Vec<_> = (0..procs).map(|p| measure(p, 0, errs[p])).collect();
    let fin: Vec<_> = (0..procs).map(|p| measure(p, end, -errs[p])).collect();
    (trace, init, fin, UniformLatency(Dur::from_us(lmin_us)))
}

// ------------------------------------------------------------ assertions --

fn assert_identical(seq: &Trace, par: &Trace, ctx: &str) {
    assert_eq!(seq.n_procs(), par.n_procs(), "{ctx}: proc count");
    for (p, (a, b)) in seq.procs.iter().zip(&par.procs).enumerate() {
        assert_eq!(a.events.len(), b.events.len(), "{ctx}: proc {p} length");
        for (i, (ea, eb)) in a.events.iter().zip(&b.events).enumerate() {
            assert_eq!(
                ea.time, eb.time,
                "{ctx}: proc {p} event {i} timestamps diverge"
            );
            assert_eq!(ea.kind, eb.kind, "{ctx}: proc {p} event {i} kinds diverge");
        }
    }
}

// ----------------------------------------------------------------- tests --

/// The full matrix: sizes × drift models × PreSync variants × worker
/// counts. Sequential is the reference; every parallel configuration must
/// reproduce it bit for bit, violations and CLC jumps included.
#[test]
fn parallel_is_bit_identical_across_the_config_matrix() {
    let sizes: &[(usize, usize)] = &[(3, 60), (5, 400), (8, 1500)];
    let models = ["constant", "sinusoid", "randomwalk"];
    let presyncs = [PreSync::None, PreSync::AlignOnly, PreSync::Linear];
    for (si, &(procs, msgs)) in sizes.iter().enumerate() {
        for (mi, model) in models.iter().enumerate() {
            let seed = 1000 + (si * 10 + mi) as u64;
            let (base, init, fin, lmin) = drifted_trace(procs, msgs, model, seed);
            for presync in presyncs {
                let cfg_seq = PipelineConfig {
                    presync,
                    clc: Some(ClcParams::default()),
                    parallel: None,
                };
                let mut seq_trace = base.clone();
                let seq = synchronize(&mut seq_trace, &init, Some(&fin), &lmin, &cfg_seq)
                    .expect("sequential pipeline runs");
                for workers in [1usize, 2, 8] {
                    let ctx = format!(
                        "{procs}p/{msgs}m {model} {presync:?} workers={workers}"
                    );
                    let cfg_par = PipelineConfig {
                        parallel: Some(ParallelConfig { workers, shard_size: 37 }),
                        ..cfg_seq.clone()
                    };
                    let mut par_trace = base.clone();
                    let par =
                        synchronize(&mut par_trace, &init, Some(&fin), &lmin, &cfg_par)
                            .unwrap_or_else(|e| panic!("{ctx}: pipeline failed: {e}"));
                    assert_identical(&seq_trace, &par_trace, &ctx);
                    assert_eq!(
                        seq.raw.p2p.violations, par.raw.p2p.violations,
                        "{ctx}: raw p2p violation lists diverge"
                    );
                    assert_eq!(
                        seq.after_presync.total_violations(),
                        par.after_presync.total_violations(),
                        "{ctx}: presync census diverges"
                    );
                    assert_eq!(
                        seq.after_clc.as_ref().map(StageReportTotals::totals),
                        par.after_clc.as_ref().map(StageReportTotals::totals),
                        "{ctx}: post-CLC census diverges"
                    );
                    assert_eq!(
                        seq.clc.as_ref().map(|c| c.n_jumps()),
                        par.clc.as_ref().map(|c| c.n_jumps()),
                        "{ctx}: CLC jump counts diverge"
                    );
                }
            }
        }
    }
}

/// Same guarantee with the CLC stage disabled (presync-only pipelines) and
/// with a shard size larger than any timeline (single-shard degenerate
/// case).
#[test]
fn parallel_is_bit_identical_without_clc_and_with_oversized_shards() {
    let (base, init, fin, lmin) = drifted_trace(6, 700, "sinusoid", 77);
    for presync in [PreSync::AlignOnly, PreSync::Linear] {
        let cfg_seq = PipelineConfig { presync, clc: None, parallel: None };
        let mut seq_trace = base.clone();
        let seq = synchronize(&mut seq_trace, &init, Some(&fin), &lmin, &cfg_seq)
            .expect("sequential pipeline runs");
        for shard_size in [9usize, 1_000_000] {
            let cfg_par = PipelineConfig {
                parallel: Some(ParallelConfig { workers: 4, shard_size }),
                ..cfg_seq.clone()
            };
            let mut par_trace = base.clone();
            let par = synchronize(&mut par_trace, &init, Some(&fin), &lmin, &cfg_par)
                .expect("parallel pipeline runs");
            let ctx = format!("{presync:?} shard_size={shard_size}");
            assert_identical(&seq_trace, &par_trace, &ctx);
            assert!(par.after_clc.is_none(), "{ctx}: CLC was disabled");
            assert_eq!(
                seq.after_presync.total_violations(),
                par.after_presync.total_violations(),
                "{ctx}: presync census diverges"
            );
        }
    }
}

/// ~1M-event stress run through the parallel path. `#[ignore]`d: run with
/// `cargo test -- --ignored` (scripts/ci.sh does). Checks the
/// [`PipelineStats`] shard accounting — per-shard item counts must sum to
/// the trace's event total — and that the CLC still ends violation-free.
#[test]
#[ignore = "~1M-event stress run; exercised by scripts/ci.sh"]
fn stress_million_event_parallel_pipeline() {
    let procs = 16;
    let msgs = 500_000; // 1M message events + barrier events on top
    let (mut trace, init, fin, lmin) = drifted_trace(procs, msgs, "sinusoid", 4242);
    let n_events = trace.n_events();
    assert!(n_events >= 1_000_000, "stress trace too small: {n_events}");
    let cfg = PipelineConfig {
        presync: PreSync::Linear,
        clc: Some(ClcParams::default()),
        parallel: Some(ParallelConfig { workers: 8, shard_size: 8192 }),
    };
    let rep = synchronize(&mut trace, &init, Some(&fin), &lmin, &cfg)
        .expect("stress pipeline runs");
    // Shard accounting: the presync stage walks every event exactly once,
    // and its per-shard counts are summed into `items`.
    let presync = rep.stats.stage("presync").expect("presync stage ran");
    assert_eq!(presync.items, n_events, "presync shard accounting != event total");
    let expected_shards: usize = trace
        .procs
        .iter()
        .map(|p| p.events.len().div_ceil(8192))
        .sum();
    assert_eq!(presync.shards, expected_shards, "presync shard count");
    assert_eq!(rep.stats.workers, 8);
    // The CLC stage sees every event too.
    assert_eq!(rep.stats.stage("clc").expect("clc ran").items, n_events);
    assert_eq!(
        rep.after_clc.expect("clc ran").total_violations(),
        0,
        "CLC must restore the clock condition on the stress trace"
    );
    assert!(trace.is_locally_monotone(), "stress output lost local order");
}

// Helper: comparable census totals without requiring PartialEq on reports.
trait StageReportTotals {
    fn totals(&self) -> (usize, usize, usize);
}

impl StageReportTotals for drift_lab::clocksync::StageReport {
    fn totals(&self) -> (usize, usize, usize) {
        (
            self.p2p.violations.len(),
            self.p2p.reversed,
            self.coll.logical_violated,
        )
    }
}
