//! Property-based invariants on the online synchronization subsystem,
//! plus the differential check against postmortem interpolation.
//!
//! The filter invariants are the load-bearing ones: `syncd` feeds the
//! [`DriftKalman`] whatever probe streams a client ships over the wire,
//! so the state must stay finite under arbitrary (hostile) input, and
//! the corrector's monotonicity guarantee is what keeps corrected traces
//! locally ordered without a postmortem pass.

use drift_lab::experiments::online_exp::static_rows;
use drift_lab::onlinesync::{DriftKalman, KalmanParams, OnlineLane, ProbeFix};
use proptest::prelude::*;

// ------------------------------------------------------------ strategies --

/// Completely arbitrary probe streams: unsorted times, extreme offsets,
/// zero/negative RTTs. The filter must shrug all of it off.
fn arb_hostile_probes() -> impl Strategy<Value = Vec<ProbeFix>> {
    prop::collection::vec(
        (
            -1_000_000_000_000_000i64..1_000_000_000_000_000,
            -1_000_000_000_000_000i64..1_000_000_000_000_000,
            -1_000_000_000_000i64..1_000_000_000_000,
        )
            .prop_map(|(t, off, rtt)| ProbeFix {
                worker_time_ps: t,
                offset_ps: off,
                rtt_ps: rtt,
            }),
        0..40,
    )
}

/// A well-formed probe lane: sorted sane times, bounded offsets and RTTs.
fn arb_sane_lane() -> impl Strategy<Value = Vec<ProbeFix>> {
    prop::collection::vec(
        (
            0i64..2_000_000_000_000,       // within 2 s
            -500_000_000i64..500_000_000,  // |offset| < 500 µs
            1_000_000i64..50_000_000,      // rtt 1..50 µs
        )
            .prop_map(|(t, off, rtt)| ProbeFix {
                worker_time_ps: t,
                offset_ps: off,
                rtt_ps: rtt,
            }),
        0..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- filter numerical defense ----------------------------------------

    #[test]
    fn filter_state_is_finite_under_arbitrary_probes(probes in arb_hostile_probes()) {
        let mut k = DriftKalman::new(KalmanParams::default());
        for p in probes {
            k.observe(p);
            prop_assert!(k.is_finite(), "non-finite state after probe {p:?}");
        }
        // Extrapolation far outside the observed window must stay finite
        // too — the corrector queries between and beyond probes.
        for t in [i64::MIN / 2, -1, 0, 1, i64::MAX / 2] {
            prop_assert!(k.offset_at_ps(t).is_finite(), "non-finite extrapolation at {t}");
        }
    }

    // --- corrector ordering guarantee -------------------------------------

    #[test]
    fn corrected_output_is_monotone_when_raw_input_is(
        mut probes in arb_sane_lane(),
        raws in prop::collection::vec(0i64..2_000_000_000_000, 1..120),
    ) {
        probes.sort_by_key(|p| p.worker_time_ps);
        let mut lane = OnlineLane::new(probes, KalmanParams::default());
        let mut raw_sorted = raws;
        raw_sorted.sort_unstable();
        let mut last = i64::MIN;
        for raw in raw_sorted {
            let out = lane.map_next(raw);
            prop_assert!(out >= last, "corrected output went backward: {last} -> {out}");
            last = out;
        }
    }

    // --- convergence on the model the filter assumes -----------------------

    #[test]
    fn filter_locks_onto_constant_drift(
        drift_ppm in -80.0f64..80.0,
        offset0_us in -300i64..300,
    ) {
        // Noiseless Cristian probes from an exactly linear offset model,
        // every 10 ms for 2 s.
        let mut k = DriftKalman::new(KalmanParams::default());
        let mut last_t = 0i64;
        for i in 1..=200i64 {
            let t_ps = i * 10_000_000_000;
            let offset = offset0_us * 1_000_000 + (t_ps as f64 * drift_ppm * 1e-6) as i64;
            k.observe(ProbeFix { worker_time_ps: t_ps, offset_ps: offset, rtt_ps: 10_000_000 });
            last_t = t_ps;
        }
        let est = k.drift_ppm();
        prop_assert!(
            (est - drift_ppm).abs() < 2.0,
            "drift estimate {est:.2} ppm vs true {drift_ppm:.2} ppm"
        );
        // Half a probe interval ahead the prediction must be within a
        // microsecond of the true offset.
        let ahead = last_t + 5_000_000_000;
        let truth = offset0_us as f64 * 1e6 + ahead as f64 * drift_ppm * 1e-6;
        let err_ps = (k.offset_at_ps(ahead) - truth).abs();
        prop_assert!(err_ps < 1_000_000.0, "extrapolation error {err_ps:.0} ps");
    }
}

// ------------------------------------------------- differential vs. interp --

/// On *constant* drift the paper's endpoint interpolation is the right
/// model, and online must essentially match it; on every non-constant
/// model the online filter must strictly beat it. Two seeds so a lucky
/// trace cannot carry the claim.
#[test]
fn online_differential_against_interpolation() {
    for seed in [2008u64, 77] {
        for row in static_rows(800, seed) {
            assert!(row.raw > 0, "{} (seed {seed}): raw trace has no violations", row.scenario);
            assert!(
                row.online <= row.raw,
                "{} (seed {seed}): online {} worse than raw {}",
                row.scenario,
                row.online,
                row.raw
            );
            if row.scenario == "constant" {
                // Interp nails constant drift (typically 0 residual); the
                // online filter may leave a handful from its convergence
                // window but must land in the same regime.
                assert!(
                    row.online <= row.interp + 8,
                    "constant (seed {seed}): online {} not within 8 of interp {}",
                    row.online,
                    row.interp
                );
            } else {
                assert!(
                    row.online < row.interp,
                    "{} (seed {seed}): online {} not strictly below interp {}",
                    row.scenario,
                    row.online,
                    row.interp
                );
            }
        }
    }
}
