//! The same v2↔v3 differential matrix as `columnar_differential.rs`, but
//! with the AVX2 census kernels disabled via `TRACEFMT_NO_AVX2`, so the
//! scalar fallbacks are what must stay bit-identical. This is its own
//! test binary because the CPU-feature probe is cached process-wide on
//! first use — the override must be set before any census kernel runs.

mod common;

#[test]
fn v3_streamed_ingest_is_bit_identical_on_scalar_kernels() {
    // Set before any census/CLC kernel has run in this process, on the
    // only thread alive this early in the test binary.
    std::env::set_var("TRACEFMT_NO_AVX2", "1");
    common::v3_ingest_differential_matrix();
}
