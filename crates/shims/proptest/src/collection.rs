//! Collection strategies (`prop::collection::vec`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Length specification for collection strategies — a fixed size or a
/// half-open range of sizes (mirrors `proptest::collection::SizeRange`).
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range for collection strategy");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::Strategy;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = crate::test_rng("collection");
        let fixed = super::vec(0i64..10, 6);
        let ranged = super::vec(0i64..10, 2..5);
        for _ in 0..200 {
            assert_eq!(fixed.generate(&mut rng).len(), 6);
            let v = ranged.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
    }

    #[test]
    fn nested_vec_of_vec() {
        let mut rng = crate::test_rng("nested");
        let s = super::vec(super::vec(-1i64..2, 3), 2..4);
        let v = s.generate(&mut rng);
        assert!((2..4).contains(&v.len()));
        assert!(v.iter().all(|inner| inner.len() == 3));
    }
}
