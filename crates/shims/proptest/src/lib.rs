//! Offline shim for the `proptest` API surface used by drift-lab.
//!
//! Implements deterministic randomized property testing: range and tuple
//! strategies, [`Strategy::prop_map`], [`collection::vec`], the
//! [`proptest!`] macro and `prop_assert*` assertions. Unlike the real
//! proptest there is **no shrinking** — on failure the panic message carries
//! the case number, and every run is fully deterministic (the RNG is seeded
//! from the test's name), so a failing case replays by itself.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values (mirrors `proptest::strategy::Strategy`,
/// without shrinking).
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Deterministic per-test RNG: FNV-1a over the test name, so every property
/// gets an independent, stable stream.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// The property-test macro. Matches the real `proptest!` syntax for
/// `fn name(pat in strategy, ...) { body }` items, with an optional leading
/// `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategies = ($(($strat),)*);
            let mut __rng = $crate::test_rng(stringify!($name));
            for __case in 0..__config.cases {
                let __run = || {
                    let ($($pat,)*) = $crate::Strategy::generate(&__strategies, &mut __rng);
                    $body
                };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (deterministic seed: test name)",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Property assertion (plain `assert!` here — no shrinking to drive).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    /// The crate root under its conventional `prop::` alias
    /// (`prop::collection::vec(...)`).
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_rng("ranges_and_tuples");
        let s = (0i64..10, 0.5f64..1.0);
        for _ in 0..1000 {
            let (a, b) = s.generate(&mut rng);
            assert!((0..10).contains(&a));
            assert!((0.5..1.0).contains(&b));
        }
    }

    #[test]
    fn prop_map_transforms() {
        let mut rng = crate::test_rng("prop_map");
        let s = (1i64..5).prop_map(|v| v * 10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_single_binding(x in 0i64..100) {
            prop_assert!((0..100).contains(&x));
        }

        #[test]
        fn macro_multi_binding_and_vec(
            (a, b) in (0u32..5, 10u32..20),
            v in collection::vec(-3i64..3, 4),
        ) {
            prop_assert!(a < 5 && (10..20).contains(&b));
            prop_assert_eq!(v.len(), 4);
            prop_assert!(v.iter().all(|x| (-3..3).contains(x)));
        }

        #[test]
        fn macro_ranged_vec(v in prop::collection::vec(0f64..1.0, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }
    }
}
