//! Offline shim for the `bytes` crate API surface used by the trace codecs:
//! [`BytesMut`] as an append-only build buffer, [`Bytes`] as a cheaply
//! cloneable read cursor, and the [`Buf`]/[`BufMut`] accessor traits with
//! both the big-endian (network order) and `_le` little-endian accessor
//! families of the real crate.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Read-side accessors (mirrors `bytes::Buf`).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consume `n` raw bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Consume a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }
    /// Consume a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
    /// Consume a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }
    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    /// Consume a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }
}

/// Write-side accessors (mirrors `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Growable byte buffer (mirrors `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable, cheaply cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
            start: 0,
            pos: 0,
            end_off: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Immutable shared byte view with a read cursor (mirrors `bytes::Bytes`).
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    /// Window start in `data`.
    start: usize,
    /// Read cursor, relative to `start`.
    pos: usize,
    /// Bytes cut off the end of `data` (window end = len - end_off).
    end_off: usize,
}

impl Bytes {
    /// Length of the (unconsumed part of the) view.
    pub fn len(&self) -> usize {
        self.window_len() - self.pos
    }

    /// True when fully consumed or empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn window_len(&self) -> usize {
        self.data.len() - self.start - self.end_off
    }

    fn as_slice(&self) -> &[u8] {
        let lo = self.start + self.pos;
        let hi = self.data.len() - self.end_off;
        &self.data[lo..hi]
    }

    /// Sub-view of the unconsumed bytes (zero-copy, like `Bytes::slice`).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice {lo}..{hi} out of range {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + self.pos + lo,
            pos: 0,
            end_off: self.data.len() - (self.start + self.pos + hi),
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "buffer underflow: need {}, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.as_slice()[..dst.len()]);
        self.pos += dst.len();
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::new(data),
            start: 0,
            pos: 0,
            end_off: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_accessors() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u32(0xDEAD_BEEF);
        b.put_u8(7);
        b.put_i64(-12345);
        b.put_u64(u64::MAX);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 4 + 1 + 8 + 8);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_i64(), -12345);
        assert_eq!(r.get_u64(), u64::MAX);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn little_endian_accessors_round_trip() {
        let mut b = BytesMut::new();
        b.put_u32_le(0xDEAD_BEEF);
        b.put_i64_le(-12345);
        b.put_u64_le(u64::MAX - 1);
        // LE writes are byte-reversed relative to BE ones.
        assert_eq!(&b.data[..4], &0xDEAD_BEEFu32.to_le_bytes());
        let mut r = b.freeze();
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i64_le(), -12345);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
    }

    #[test]
    fn slice_is_a_window() {
        let mut b = BytesMut::new();
        for i in 0..10u8 {
            b.put_u8(i);
        }
        let r = b.freeze();
        let mut s = r.slice(2..6);
        assert_eq!(s.remaining(), 4);
        assert_eq!(s.get_u8(), 2);
        assert_eq!(s.get_u8(), 3);
        let mut nested = s.slice(1..2);
        assert_eq!(nested.get_u8(), 5);
        // Full and empty edges.
        assert_eq!(r.slice(..).remaining(), 10);
        assert_eq!(r.slice(..0).remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r = BytesMut::new().freeze();
        let _ = r.get_u8();
    }
}
