//! Offline drop-in shim for the `rand` 0.8 API surface used by drift-lab.
//!
//! The container this workspace builds in has no registry access, so the
//! real `rand` crate cannot be fetched. This shim reimplements exactly the
//! subset the workspace uses — [`RngCore`], [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`] — backed by xoshiro256++ with SplitMix64 seeding.
//!
//! Determinism is the contract that matters here: every experiment seeds its
//! generators explicitly, so any good 64-bit PRNG gives reproducible,
//! well-distributed streams. Bit-compatibility with upstream `rand` is NOT
//! provided (and nothing in the workspace depends on it).

pub mod rngs;
pub mod seq;

/// Low-level generator interface (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let n = rem.len();
            rem.copy_from_slice(&self.next_u64().to_le_bytes()[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Values samplable uniformly from all bits (mirrors the `Standard`
/// distribution of `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = widening_mod(rng.next_u64(), span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = widening_mod(rng.next_u64(), span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range_impl!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Reduce a 64-bit draw onto `[0, span)`. Lemire-style multiply-shift keeps
/// the bias below 2^-64 for the span sizes the simulator uses.
fn widening_mod(x: u64, span: u128) -> u128 {
    (x as u128).wrapping_mul(span) >> 64
}

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
float_range_impl!(f32, f64);

/// High-level sampling methods (mirrors `rand::Rng`); blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from all random bits.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_range(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = rngs::SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let n = chunk.len();
            chunk.copy_from_slice(&sm.next().to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }
}
