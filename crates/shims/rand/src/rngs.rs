//! Concrete generators: [`StdRng`] (xoshiro256++) and the SplitMix64 seeder.

use crate::{RngCore, SeedableRng};

/// SplitMix64: seeds the main generator and expands 64-bit seeds.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// New stream from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace's standard generator: xoshiro256++ — fast, 256-bit state,
/// passes BigCrush. Replaces `rand::rngs::StdRng` (which is ChaCha-based;
/// nothing here needs cryptographic strength, only determinism and quality).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is the one degenerate cycle of xoshiro.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen_lo = false;
        for _ in 0..10_000 {
            let v = r.gen_range(-3i64..7);
            assert!((-3..7).contains(&v));
            seen_lo |= v == -3;
        }
        assert!(seen_lo, "lower bound never sampled");
        for _ in 0..1000 {
            let v = r.gen_range(0usize..=4);
            assert!(v <= 4);
            let f = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(99);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket skew: {buckets:?}");
        }
    }
}
