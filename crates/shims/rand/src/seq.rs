//! Slice sampling helpers (mirrors `rand::seq::SliceRandom`).

use crate::{Rng, RngCore};

/// Shuffling and random selection on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element (`None` on an empty slice).
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0usize..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
