//! Offline shim for `serde`: marker traits and no-op derives.
//!
//! Data types across the workspace carry `#[derive(Serialize, Deserialize)]`
//! for a future wire format; nothing serializes yet, so in this offline
//! build the traits are empty markers and the derives expand to nothing
//! (see the `serde_derive` shim).

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
