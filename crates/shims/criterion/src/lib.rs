//! Offline shim for the `criterion` API surface used by drift-lab's benches.
//!
//! Provides [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`] and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a plain
//! wall-clock loop (short warm-up, then `sample_size` timed samples) that
//! prints median time per iteration and derived throughput. Under
//! `--test` (as in `cargo bench -- --test`) each benchmark body runs exactly
//! once so CI can smoke-test benches without paying for measurement.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported so benches can defeat constant folding.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units processed per benchmark iteration, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (events, messages, ...) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter, shown as
/// `name/param` (mirrors `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { full: format!("{}/{}", name.into(), parameter) }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Anything usable as a benchmark name: `&str`, `String`, or a
/// [`BenchmarkId`].
pub trait IntoBenchmarkName {
    fn into_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.full
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    /// Median nanoseconds per iteration of the last `iter` call.
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Run `routine` repeatedly and record its median wall-clock time.
    ///
    /// In `--test` mode the routine runs exactly once and no timing is
    /// recorded.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.last_ns_per_iter = 0.0;
            return;
        }

        // Warm-up: run until ~50ms elapsed to settle caches/branch
        // predictors, and learn how many iterations fit a sample.
        let warmup_budget = Duration::from_millis(50);
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < warmup_budget {
            black_box(routine());
            warmup_iters += 1;
        }
        let ns_est = warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64;

        // Aim each sample at ~20ms of work, at least one iteration.
        let iters_per_sample = ((20_000_000.0 / ns_est).ceil() as u64).max(1);
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.last_ns_per_iter = samples[samples.len() / 2];
    }
}

/// Formats a nanosecond quantity with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks (mirrors
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set per-iteration throughput units for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Number of timed samples per benchmark (the real criterion enforces
    /// a minimum of 10; this shim just takes the value).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<N: IntoBenchmarkName, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        self.run(id.into_name(), |b| f(b));
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<N: IntoBenchmarkName, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.into_name(), |b| f(b, input));
        self
    }

    fn run(&self, name: String, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            last_ns_per_iter: 0.0,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, name);
        if self.criterion.test_mode {
            println!("test {full} ... ok (ran once, --test mode)");
            return;
        }
        let mut line = format!("{full:<55} {:>12}/iter", fmt_ns(b.last_ns_per_iter));
        if b.last_ns_per_iter > 0.0 {
            match self.throughput {
                Some(Throughput::Elements(n)) => {
                    let eps = n as f64 * 1_000_000_000.0 / b.last_ns_per_iter;
                    line.push_str(&format!("  {:>12.0} elem/s", eps));
                }
                Some(Throughput::Bytes(n)) => {
                    let bps = n as f64 * 1_000_000_000.0 / b.last_ns_per_iter;
                    line.push_str(&format!("  {:>12.0} B/s", bps));
                }
                None => {}
            }
        }
        println!("{line}");
    }

    /// End the group (output is flushed eagerly; this is API compatibility).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point (mirrors `criterion::Criterion`).
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        // libtest-style args arrive after `--bench`; honor `--test` and a
        // positional substring filter, ignore everything else.
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_owned()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 30,
        }
    }

    /// Run one stand-alone benchmark (group of its own name).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.matches(name) {
            let g = BenchmarkGroup {
                criterion: self,
                name: name.to_owned(),
                throughput: None,
                sample_size: 30,
            };
            g.run("single".to_owned(), |b| f(b));
        }
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}
}

/// Declare a set of benchmark functions runnable by `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given `criterion_group!` sets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_smoke() {
        let mut c = Criterion { test_mode: true, filter: None };
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(100)).sample_size(10);
        let mut runs = 0;
        g.bench_function("once", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
        assert_eq!(runs, 1, "--test mode must run the body exactly once");
    }

    #[test]
    fn measured_iter_records_time() {
        let mut b = Bencher { test_mode: false, sample_size: 3, last_ns_per_iter: 0.0 };
        b.iter(|| black_box((0..100u64).sum::<u64>()));
        assert!(b.last_ns_per_iter > 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("sweep", 8).to_string(), "sweep/8");
    }
}
