//! Offline shim for `serde_derive`: the derives compile to nothing.
//!
//! The workspace tags its data types `#[derive(Serialize, Deserialize)]` so
//! a future wire format can serialize them, but no code path serializes
//! anything yet. In this offline build the derives are accepted (including
//! `#[serde(...)]` helper attributes) and expand to an empty token stream.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
