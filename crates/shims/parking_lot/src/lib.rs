//! Offline shim for the `parking_lot` API surface used by drift-lab:
//! [`Mutex`] whose `lock()` returns the guard directly (no `Result`) and
//! [`Condvar::wait`] taking `&mut MutexGuard`. Backed by `std::sync`;
//! poisoning is swallowed, matching parking_lot semantics.

use std::sync;

/// Mutual exclusion with parking_lot's panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take the std guard by value.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire, ignoring poisoning (a panicked holder does not wedge the
    /// whole replay).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self.0.lock().unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(inner) }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Condition variable with parking_lot's `wait(&mut guard)` signature.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically release the guard's lock and sleep until notified; the
    /// lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        let inner = self
            .0
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn condvar_wakes_waiters() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let woke = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut g = m.lock();
                    while !*g {
                        cv.wait(&mut g);
                    }
                    woke.fetch_add(1, Ordering::SeqCst);
                });
            }
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                *m.lock() = true;
                cv.notify_all();
            });
        });
        assert_eq!(woke.load(Ordering::SeqCst), 4);
    }
}
