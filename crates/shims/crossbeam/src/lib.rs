//! Offline shim for the `crossbeam` API surface used by drift-lab.
//!
//! Only [`channel`] is provided; since Rust 1.72 `std::sync::mpsc` *is* the
//! crossbeam channel implementation (with `Sender: Sync`), so this shim is a
//! thin renaming layer with crossbeam's `Result`-based signatures.

pub mod channel {
    //! MPMC-ish channels (mirrors `crossbeam::channel`).

    use std::sync::mpsc;

    /// Sending half. `Sync`, so a slice of senders can be shared across
    /// scoped worker threads (the replay pipeline relies on this).
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    // Manual impl: the derive would needlessly require `T: Clone`.
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving side has hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when every sender has hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `msg`; fails only when the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; fails when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (s, r) = mpsc::channel();
        (Sender(s), Receiver(r))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn senders_shared_across_scoped_threads() {
            let (s, r) = unbounded::<usize>();
            let senders = [s];
            std::thread::scope(|scope| {
                for k in 0..4 {
                    let sref = &senders;
                    scope.spawn(move || sref[0].send(k).unwrap());
                }
            });
            let mut got: Vec<usize> = (0..4).map(|_| r.recv().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (s, r) = unbounded::<u8>();
            drop(s);
            assert_eq!(r.recv(), Err(RecvError));
        }
    }
}
