//! Interconnect topologies and rank placement.
//!
//! The paper's three clusters use different networks — InfiniBand fat-tree
//! (Xeon), Myrinet Clos (PowerPC), SeaStar 3-D torus (Opteron). For latency
//! purposes what matters is the *hop count* between nodes, which each
//! [`Topology`] provides, and where ranks are pinned relative to the
//! node/chip/core hierarchy ([`Placement`], paper Table I).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use simclock::{CoreId, MachineShape};

/// A network topology connecting the nodes of a machine.
#[derive(Debug, Clone)]
pub enum Topology {
    /// Every node pair one hop apart (idealised crossbar; good default for
    /// small ensembles).
    Crossbar,
    /// Two-level fat-tree: nodes under the same leaf switch are one hop
    /// apart, otherwise three (leaf–spine–leaf).
    FatTree {
        /// Nodes per leaf switch.
        leaf_radix: usize,
    },
    /// 3-D torus with wraparound (SeaStar-style); hop count is the Manhattan
    /// distance with wrap.
    Torus3D {
        /// Torus dimensions; `x·y·z` must cover the node count.
        dims: [usize; 3],
    },
    /// Dragonfly: nodes grouped under routers, routers grouped into
    /// all-to-all-connected groups. Same router: 1 hop; same group: 2 hops
    /// (router–router); different groups: 3 hops (router–gateway–router),
    /// the classic minimal-route dragonfly diameter.
    Dragonfly {
        /// Nodes per router.
        nodes_per_router: usize,
        /// Routers per group.
        routers_per_group: usize,
    },
}

impl Topology {
    /// Network hops between two nodes (0 for the same node).
    pub fn hops(&self, a: usize, b: usize) -> u32 {
        if a == b {
            return 0;
        }
        match self {
            Topology::Crossbar => 1,
            Topology::FatTree { leaf_radix } => {
                if a / leaf_radix == b / leaf_radix {
                    1
                } else {
                    3
                }
            }
            Topology::Torus3D { dims } => {
                let ca = Self::torus_coords(a, dims);
                let cb = Self::torus_coords(b, dims);
                (0..3)
                    .map(|i| {
                        let d = ca[i].abs_diff(cb[i]);
                        d.min(dims[i] - d) as u32
                    })
                    .sum::<u32>()
                    .max(1)
            }
            Topology::Dragonfly { nodes_per_router, routers_per_group } => {
                let ra = a / nodes_per_router;
                let rb = b / nodes_per_router;
                if ra == rb {
                    1
                } else if ra / routers_per_group == rb / routers_per_group {
                    2
                } else {
                    3
                }
            }
        }
    }

    fn torus_coords(node: usize, dims: &[usize; 3]) -> [usize; 3] {
        [
            node % dims[0],
            (node / dims[0]) % dims[1],
            node / (dims[0] * dims[1]),
        ]
    }

    /// Largest hop count over all node pairs in `0..nodes` (network
    /// diameter as seen by this machine).
    pub fn diameter(&self, nodes: usize) -> u32 {
        let mut max = 0;
        for a in 0..nodes {
            for b in (a + 1)..nodes {
                max = max.max(self.hops(a, b));
            }
        }
        max
    }
}

/// Where each MPI rank runs: the pinning configurations of the paper's
/// Table I plus the "let the scheduler decide" default used for Fig. 7.
#[derive(Debug, Clone)]
pub struct Placement {
    shape: MachineShape,
    core_of_rank: Vec<CoreId>,
}

impl Placement {
    /// Explicit placement.
    pub fn custom(shape: MachineShape, core_of_rank: Vec<CoreId>) -> Self {
        for c in &core_of_rank {
            assert!(c.0 < shape.n_cores(), "core id out of range");
        }
        Placement {
            shape,
            core_of_rank,
        }
    }

    /// Table I "inter node": `n` ranks, one per node (core 0 of chip 0).
    pub fn one_per_node(shape: MachineShape, n: usize) -> Self {
        assert!(n <= shape.nodes, "not enough nodes");
        let cores = (0..n).map(|node| shape.core(node, 0, 0)).collect();
        Placement::custom(shape, cores)
    }

    /// Table I "inter chip": `n` ranks on node 0, one per chip.
    pub fn one_per_chip(shape: MachineShape, n: usize) -> Self {
        assert!(n <= shape.chips_per_node, "not enough chips in one node");
        let cores = (0..n).map(|chip| shape.core(0, chip, 0)).collect();
        Placement::custom(shape, cores)
    }

    /// Table I "inter core": `n` ranks on chip 0 of node 0, one per core.
    pub fn one_per_core(shape: MachineShape, n: usize) -> Self {
        assert!(n <= shape.cores_per_chip, "not enough cores in one chip");
        let cores = (0..n).map(|core| shape.core(0, 0, core)).collect();
        Placement::custom(shape, cores)
    }

    /// Dense block placement: fill node 0 completely, then node 1, …
    /// (typical batch-system default).
    pub fn packed(shape: MachineShape, n: usize) -> Self {
        assert!(n <= shape.n_cores(), "machine too small");
        Placement::custom(shape, (0..n).map(CoreId).collect())
    }

    /// Round-robin over nodes: rank r on node `r % nodes`, filling cores
    /// within each node in order.
    pub fn round_robin(shape: MachineShape, n: usize) -> Self {
        assert!(n <= shape.n_cores(), "machine too small");
        let per_node = shape.chips_per_node * shape.cores_per_chip;
        let mut next_core = vec![0usize; shape.nodes];
        let cores = (0..n)
            .map(|r| {
                let node = r % shape.nodes;
                let slot = next_core[node];
                assert!(slot < per_node, "node {node} over-subscribed");
                next_core[node] += 1;
                let chip = slot / shape.cores_per_chip;
                let core = slot % shape.cores_per_chip;
                shape.core(node, chip, core)
            })
            .collect();
        Placement::custom(shape, cores)
    }

    /// The paper's Fig. 7 setup: "we refrained from using a specific process
    /// pinning … and let the scheduler choose". Modelled as a packed
    /// placement with the rank → core assignment shuffled by the scheduler.
    pub fn scheduler_default(shape: MachineShape, n: usize, seed: u64) -> Self {
        assert!(n <= shape.n_cores(), "machine too small");
        let mut cores: Vec<CoreId> = (0..n).map(CoreId).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        cores.shuffle(&mut rng);
        Placement::custom(shape, cores)
    }

    /// Parse a placement specification string:
    /// `"<nodes>x<chips>x<cores>:<policy>[:<n>]"` with policy one of
    /// `node` (one per node), `chip`, `core`, `packed`, `rr` (round robin);
    /// `n` defaults to the policy's natural maximum. Examples:
    /// `"4x2x4:node"`, `"8x2x4:rr:16"`, `"1x4x4:core:4"`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (geom, rest) = spec
            .split_once(':')
            .ok_or_else(|| format!("missing ':' in placement spec {spec:?}"))?;
        let dims: Vec<usize> = geom
            .split('x')
            .map(|d| d.parse().map_err(|_| format!("bad geometry {geom:?}")))
            .collect::<Result<_, _>>()?;
        let [nodes, chips, cores] = dims[..] else {
            return Err(format!("geometry must be NxCxK, got {geom:?}"));
        };
        if nodes == 0 || chips == 0 || cores == 0 {
            return Err(format!("geometry components must be positive: {geom:?}"));
        }
        let shape = MachineShape::new(nodes, chips, cores);
        let (policy, n) = match rest.split_once(':') {
            Some((p, n)) => (
                p,
                Some(n.parse::<usize>().map_err(|_| format!("bad rank count {n:?}"))?),
            ),
            None => (rest, None),
        };
        match policy {
            "node" => Ok(Placement::one_per_node(shape, n.unwrap_or(nodes))),
            "chip" => Ok(Placement::one_per_chip(shape, n.unwrap_or(chips))),
            "core" => Ok(Placement::one_per_core(shape, n.unwrap_or(cores))),
            "packed" => Ok(Placement::packed(shape, n.unwrap_or(shape.n_cores()))),
            "rr" => Ok(Placement::round_robin(shape, n.unwrap_or(shape.n_cores()))),
            other => Err(format!("unknown placement policy {other:?}")),
        }
    }

    /// The machine's geometry.
    pub fn shape(&self) -> MachineShape {
        self.shape
    }

    /// Number of placed ranks.
    pub fn n_ranks(&self) -> usize {
        self.core_of_rank.len()
    }

    /// Core a rank runs on.
    pub fn core_of(&self, rank: usize) -> CoreId {
        self.core_of_rank[rank]
    }

    /// Relative hierarchy location of two ranks.
    pub fn locality(&self, a: usize, b: usize) -> simclock::Locality {
        self.shape.locality(self.core_of(a), self.core_of(b))
    }

    /// Node index a rank runs on.
    pub fn node_of(&self, rank: usize) -> usize {
        self.shape.node_of(self.core_of(rank))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::Locality;

    fn shape() -> MachineShape {
        MachineShape::new(4, 2, 4)
    }

    #[test]
    fn crossbar_hops() {
        let t = Topology::Crossbar;
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.hops(0, 3), 1);
        assert_eq!(t.diameter(8), 1);
    }

    #[test]
    fn fat_tree_hops() {
        let t = Topology::FatTree { leaf_radix: 4 };
        assert_eq!(t.hops(0, 3), 1); // same leaf
        assert_eq!(t.hops(0, 4), 3); // via spine
        assert_eq!(t.diameter(8), 3);
    }

    #[test]
    fn torus_hops_wrap() {
        let t = Topology::Torus3D { dims: [4, 4, 4] };
        // Node 0 = (0,0,0), node 3 = (3,0,0): wrap distance 1.
        assert_eq!(t.hops(0, 3), 1);
        // Node 2 = (2,0,0): distance 2.
        assert_eq!(t.hops(0, 2), 2);
        // (0,0,0) -> (2,2,2) = 6 hops.
        let far = 2 + 2 * 4 + 2 * 16;
        assert_eq!(t.hops(0, far), 6);
        assert_eq!(t.hops(5, 5), 0);
    }

    #[test]
    fn dragonfly_hops() {
        let t = Topology::Dragonfly { nodes_per_router: 2, routers_per_group: 4 };
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.hops(0, 1), 1); // same router
        assert_eq!(t.hops(0, 2), 2); // same group, different router
        assert_eq!(t.hops(0, 7), 2); // last router of group 0
        assert_eq!(t.hops(0, 8), 3); // group 1
        assert_eq!(t.diameter(16), 3);
    }

    #[test]
    fn table1_pinnings() {
        let s = shape();
        let inter_node = Placement::one_per_node(s, 4);
        assert_eq!(inter_node.n_ranks(), 4);
        assert_eq!(inter_node.locality(0, 1), Locality::InterNode);

        let inter_chip = Placement::one_per_chip(s, 2);
        assert_eq!(inter_chip.locality(0, 1), Locality::SameNode);
        assert_eq!(inter_chip.node_of(1), 0);

        let inter_core = Placement::one_per_core(s, 4);
        assert_eq!(inter_core.locality(0, 3), Locality::SameChip);
    }

    #[test]
    fn packed_fills_in_order() {
        let s = shape();
        let p = Placement::packed(s, 9);
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(7), 0);
        assert_eq!(p.node_of(8), 1);
    }

    #[test]
    fn round_robin_spreads_nodes() {
        let s = shape();
        let p = Placement::round_robin(s, 8);
        for r in 0..8 {
            assert_eq!(p.node_of(r), r % 4);
        }
    }

    #[test]
    fn scheduler_default_is_deterministic_and_complete() {
        let s = shape();
        let a = Placement::scheduler_default(s, 32, 99);
        let b = Placement::scheduler_default(s, 32, 99);
        let mut seen = std::collections::HashSet::new();
        for r in 0..32 {
            assert_eq!(a.core_of(r), b.core_of(r));
            assert!(seen.insert(a.core_of(r)), "core used twice");
        }
    }

    #[test]
    fn placement_spec_parsing() {
        let p = Placement::parse("4x2x4:node").unwrap();
        assert_eq!(p.n_ranks(), 4);
        assert_eq!(p.locality(0, 1), Locality::InterNode);

        let p = Placement::parse("8x2x4:rr:16").unwrap();
        assert_eq!(p.n_ranks(), 16);
        assert_eq!(p.node_of(9), 1);

        let p = Placement::parse("1x4x4:core:4").unwrap();
        assert_eq!(p.locality(0, 3), Locality::SameChip);

        let p = Placement::parse("2x2x2:packed").unwrap();
        assert_eq!(p.n_ranks(), 8);

        for bad in [
            "nope",
            "4x2:node",
            "4x2x4:warp",
            "0x2x4:node",
            "4x2x4:rr:zz",
        ] {
            assert!(Placement::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    #[should_panic(expected = "not enough nodes")]
    fn over_subscription_panics() {
        let _ = Placement::one_per_node(shape(), 5);
    }
}
