//! Discrete-event core: a deterministic time-ordered event queue.
//!
//! Ties are broken by insertion order (a monotone sequence number), so two
//! events scheduled for the same instant pop in FIFO order — this keeps the
//! whole simulation reproducible bit-for-bit across runs and platforms,
//! which the experiment harness relies on.

use simclock::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    time: Time,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-priority queue of timed events with FIFO tie-breaking.
///
/// ```
/// use netsim::EventQueue;
/// use simclock::Time;
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_us(3), "late");
/// q.push(Time::from_us(1), "early");
/// q.push(Time::from_us(1), "early-second"); // same instant: FIFO
/// assert_eq!(q.pop(), Some((Time::from_us(1), "early")));
/// assert_eq!(q.pop(), Some((Time::from_us(1), "early-second")));
/// assert_eq!(q.pop(), Some((Time::from_us(3), "late")));
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Queue with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    /// Schedule `item` at `time`.
    pub fn push(&mut self, time: Time, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, item });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        self.heap.pop().map(|e| (e.time, e.item))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_us(3), "c");
        q.push(Time::from_us(1), "a");
        q.push(Time::from_us(2), "b");
        assert_eq!(q.pop(), Some((Time::from_us(1), "a")));
        assert_eq!(q.pop(), Some((Time::from_us(2), "b")));
        assert_eq!(q.pop(), Some((Time::from_us(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_us(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Time::from_us(7), ());
        assert_eq!(q.peek_time(), Some(Time::from_us(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(Time::from_us(10), 10);
        q.push(Time::from_us(5), 5);
        assert_eq!(q.pop(), Some((Time::from_us(5), 5)));
        q.push(Time::from_us(1), 1);
        q.push(Time::from_us(20), 20);
        assert_eq!(q.pop(), Some((Time::from_us(1), 1)));
        assert_eq!(q.pop(), Some((Time::from_us(10), 10)));
        assert_eq!(q.pop(), Some((Time::from_us(20), 20)));
    }
}
