//! Hierarchical message-latency models.
//!
//! Table II of the paper shows why a single latency number is wrong on a
//! multicore cluster: on the Xeon system an inter-node message costs
//! 4.29 µs, an inter-chip message 0.86 µs and an inter-core message 0.47 µs.
//! [`HierarchicalLatency`] carries one [`LatencySpec`] per hierarchy level
//! plus a per-hop network term, and samples actual delays with jitter.
//! The deterministic *minimum* of each level doubles as the `l_min` of the
//! clock condition (paper Eq. 1).

use rand::Rng;
use simclock::{gaussian, Dur, Locality, Time};

/// Latency distribution of one hierarchy level.
///
/// A sampled delay is `base + |N(0,σ)| + Exp(tail)` (the last term with
/// probability `tail_prob`), plus a bandwidth term `bytes / bandwidth`.
/// Delays therefore never undercut `base` — `base` is the true minimum
/// latency `l_min`.
#[derive(Debug, Clone, Copy)]
pub struct LatencySpec {
    /// Minimum (zero-byte, uncontended) latency.
    pub base: Dur,
    /// Scale of the half-normal jitter component.
    pub jitter_sigma: Dur,
    /// Probability of a heavy-tail delay (congestion, retransmit).
    pub tail_prob: f64,
    /// Mean of the exponential heavy-tail component.
    pub tail_mean: Dur,
    /// Transfer cost in picoseconds per payload byte (inverse bandwidth).
    pub ps_per_byte: f64,
}

impl LatencySpec {
    /// A fixed latency without jitter or bandwidth term.
    pub fn fixed(base: Dur) -> Self {
        LatencySpec {
            base,
            jitter_sigma: Dur::ZERO,
            tail_prob: 0.0,
            tail_mean: Dur::ZERO,
            ps_per_byte: 0.0,
        }
    }

    /// Sample a delay for a message of `bytes` payload bytes.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, bytes: u64) -> Dur {
        let mut d = self.base;
        if self.jitter_sigma > Dur::ZERO {
            d += self.jitter_sigma.scale(gaussian(rng).abs());
        }
        if self.tail_prob > 0.0 && rng.gen::<f64>() < self.tail_prob {
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            d += self.tail_mean.scale(-u.ln());
        }
        if self.ps_per_byte > 0.0 && bytes > 0 {
            d += Dur::from_ps((self.ps_per_byte * bytes as f64).round() as i64);
        }
        d
    }

    /// The guaranteed minimum for a message of `bytes` bytes.
    pub fn minimum(&self, bytes: u64) -> Dur {
        let mut d = self.base;
        if self.ps_per_byte > 0.0 && bytes > 0 {
            d += Dur::from_ps((self.ps_per_byte * bytes as f64).round() as i64);
        }
        d
    }
}

/// Slow sinusoidal modulation of network traffic (paper §III.c: "network
/// topology and load may adversely affect the predictability of message
/// latencies"). Two effects:
///
/// * the *jitter and tail* components of inter-node latency scale by
///   `1 + amplitude·sin(2πt/P)` (clamped at zero) — the distribution's
///   spread breathes with the load;
/// * a deterministic **congestion** queueing delay rides the same wave,
///   applied in full to each pair's forward direction but only
///   `asymmetry ×` to the reverse — congested paths are rarely congested
///   equally both ways, which is exactly what biases Cristian's symmetric-
///   delay assumption even under min-RTT filtering.
#[derive(Debug, Clone, Copy)]
pub struct LoadWave {
    /// Peak relative increase of jitter/tail magnitudes.
    pub amplitude: f64,
    /// Oscillation period in seconds.
    pub period_s: f64,
    /// Peak queueing delay added at full load.
    pub congestion: Dur,
    /// Fraction of the congestion applied to the reverse direction
    /// (0 = fully one-sided, 1 = symmetric).
    pub asymmetry: f64,
}

impl LoadWave {
    /// Pure jitter-stretch wave without congestion.
    pub fn jitter_only(amplitude: f64, period_s: f64) -> Self {
        LoadWave {
            amplitude,
            period_s,
            congestion: Dur::ZERO,
            asymmetry: 1.0,
        }
    }

    /// Load multiplier for jitter/tail at true time `t` (≥ 0).
    pub fn factor(&self, t: Time) -> f64 {
        let w = core::f64::consts::TAU / self.period_s;
        (1.0 + self.amplitude * (w * t.as_secs_f64()).sin()).max(0.0)
    }

    /// Deterministic congestion delay at `t` for the given direction.
    pub fn congestion_at(&self, t: Time, forward: bool) -> Dur {
        let w = core::f64::consts::TAU / self.period_s;
        let excess = (w * t.as_secs_f64()).sin().max(0.0);
        let d = self.congestion.scale(excess);
        if forward {
            d
        } else {
            d.scale(self.asymmetry)
        }
    }
}

/// Latency model over the whole node/chip/core hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct HierarchicalLatency {
    /// Same chip, different cores (shared L2/L3 path).
    pub same_chip: LatencySpec,
    /// Same node, different chips (inter-socket path).
    pub same_node: LatencySpec,
    /// Different nodes (network), first hop.
    pub inter_node: LatencySpec,
    /// Extra cost per additional network hop beyond the first.
    pub per_hop: Dur,
    /// Per-message software overhead on the send side (stack traversal,
    /// also applied to self-messages).
    pub send_overhead: Dur,
    /// Optional time-varying background load on the inter-node network.
    pub load: Option<LoadWave>,
}

impl HierarchicalLatency {
    /// The Xeon/InfiniBand cluster of Table II: means ≈ 4.29 / 0.86 /
    /// 0.47 µs for inter-node / inter-chip / inter-core.
    pub fn xeon_infiniband() -> Self {
        HierarchicalLatency {
            same_chip: LatencySpec {
                base: Dur::from_ps(260_000), // 0.26 µs
                jitter_sigma: Dur::from_ps(18_000),
                tail_prob: 2e-4,
                tail_mean: Dur::from_us(1),
                ps_per_byte: 120.0, // ~8 GB/s shared cache path
            },
            same_node: LatencySpec {
                base: Dur::from_ps(640_000), // 0.64 µs
                jitter_sigma: Dur::from_ps(35_000),
                tail_prob: 3e-4,
                tail_mean: Dur::from_us(2),
                ps_per_byte: 250.0, // ~4 GB/s inter-socket
            },
            inter_node: LatencySpec {
                base: Dur::from_ps(4_070_000), // 4.07 µs
                jitter_sigma: Dur::from_ps(25_000),
                tail_prob: 5e-4,
                tail_mean: Dur::from_us(5),
                ps_per_byte: 700.0, // ~1.4 GB/s SDR InfiniBand
            },
            per_hop: Dur::from_ns(100),
            send_overhead: Dur::from_ns(100),
            load: None,
        }
    }

    /// The PowerPC/Myrinet cluster (MareNostrum).
    pub fn powerpc_myrinet() -> Self {
        HierarchicalLatency {
            same_chip: LatencySpec {
                base: Dur::from_ps(500_000),
                jitter_sigma: Dur::from_ps(25_000),
                tail_prob: 2e-4,
                tail_mean: Dur::from_us(1),
                ps_per_byte: 140.0,
            },
            same_node: LatencySpec {
                base: Dur::from_ps(950_000),
                jitter_sigma: Dur::from_ps(40_000),
                tail_prob: 3e-4,
                tail_mean: Dur::from_us(2),
                ps_per_byte: 300.0,
            },
            inter_node: LatencySpec {
                base: Dur::from_us(6),
                jitter_sigma: Dur::from_ps(60_000),
                tail_prob: 8e-4,
                tail_mean: Dur::from_us(8),
                ps_per_byte: 4000.0, // ~250 MB/s Myrinet
            },
            per_hop: Dur::from_ns(150),
            send_overhead: Dur::from_ns(200),
            load: None,
        }
    }

    /// The Opteron/SeaStar Cray XT3 (Jaguar); torus routing makes the
    /// per-hop term matter.
    pub fn opteron_seastar() -> Self {
        HierarchicalLatency {
            same_chip: LatencySpec {
                base: Dur::from_ps(400_000),
                jitter_sigma: Dur::from_ps(20_000),
                tail_prob: 2e-4,
                tail_mean: Dur::from_us(1),
                ps_per_byte: 110.0,
            },
            same_node: LatencySpec {
                // Single-socket nodes: same-node equals same-chip here.
                base: Dur::from_ps(400_000),
                jitter_sigma: Dur::from_ps(20_000),
                tail_prob: 2e-4,
                tail_mean: Dur::from_us(1),
                ps_per_byte: 110.0,
            },
            inter_node: LatencySpec {
                base: Dur::from_us(5),
                jitter_sigma: Dur::from_ps(50_000),
                tail_prob: 5e-4,
                tail_mean: Dur::from_us(6),
                ps_per_byte: 500.0, // ~2 GB/s SeaStar
            },
            per_hop: Dur::from_ns(250),
            send_overhead: Dur::from_ns(180),
            load: None,
        }
    }

    /// Level spec for a locality class. `SameCore` self-messages use the
    /// same-chip spec (buffer copy).
    pub fn spec(&self, loc: Locality) -> &LatencySpec {
        match loc {
            Locality::SameCore | Locality::SameChip => &self.same_chip,
            Locality::SameNode => &self.same_node,
            Locality::InterNode => &self.inter_node,
        }
    }

    /// Sample a transfer delay (excluding send overhead) for a message
    /// between two locations `hops` network hops apart, departing at true
    /// time `at` (which selects the instantaneous background load).
    pub fn sample<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        loc: Locality,
        hops: u32,
        bytes: u64,
        at: Time,
    ) -> Dur {
        let spec = self.spec(loc);
        let mut d = spec.minimum(bytes);
        // Jitter and tail scale with load; the physical base does not.
        let load = match (self.load, loc) {
            (Some(w), Locality::InterNode) => w.factor(at),
            _ => 1.0,
        };
        let jittered = spec.sample(rng, 0);
        d += (jittered - spec.base).scale(load);
        if loc == Locality::InterNode && hops > 1 {
            d += self.per_hop * (hops as i64 - 1);
        }
        d
    }

    /// The minimum latency `l_min` between two locations for a message of
    /// `bytes` bytes — the bound the clock condition uses. Conservative:
    /// ignores extra hops (postmortem tools rarely know the route).
    pub fn l_min(&self, loc: Locality, bytes: u64) -> Dur {
        self.spec(loc).minimum(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_never_undercut_base() {
        let spec = LatencySpec {
            base: Dur::from_us(4),
            jitter_sigma: Dur::from_ns(50),
            tail_prob: 0.01,
            tail_mean: Dur::from_us(5),
            ps_per_byte: 100.0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..5000 {
            assert!(spec.sample(&mut rng, 0) >= spec.base);
        }
    }

    #[test]
    fn bandwidth_term_scales_with_bytes() {
        let spec = LatencySpec {
            ps_per_byte: 1000.0,
            ..LatencySpec::fixed(Dur::from_us(1))
        };
        assert_eq!(spec.minimum(0), Dur::from_us(1));
        assert_eq!(spec.minimum(1000), Dur::from_us(2));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(spec.sample(&mut rng, 1000), Dur::from_us(2));
    }

    #[test]
    fn xeon_hierarchy_matches_table2_ordering() {
        let h = HierarchicalLatency::xeon_infiniband();
        let core = h.l_min(Locality::SameChip, 0);
        let chip = h.l_min(Locality::SameNode, 0);
        let node = h.l_min(Locality::InterNode, 0);
        assert!(core < chip && chip < node);
        // Magnitudes in the Table II ballpark.
        // Bases exclude the per-message software overheads, which the
        // user-visible Table II numbers include.
        assert!((core.as_us_f64() - 0.26).abs() < 0.05);
        assert!((chip.as_us_f64() - 0.64).abs() < 0.05);
        assert!((node.as_us_f64() - 4.07).abs() < 0.05);
    }

    #[test]
    fn per_hop_cost_applies_only_across_nodes() {
        let h = HierarchicalLatency::opteron_seastar();
        let mut rng = StdRng::seed_from_u64(1);
        let mut far_total = Dur::ZERO;
        let mut near_total = Dur::ZERO;
        for _ in 0..500 {
            near_total += h.sample(&mut rng, Locality::InterNode, 1, 0, Time::ZERO);
            far_total += h.sample(&mut rng, Locality::InterNode, 6, 0, Time::ZERO);
        }
        let extra_us = (far_total - near_total).as_us_f64() / 500.0;
        // 5 extra hops at 250 ns each = 1.25 µs.
        assert!((extra_us - 1.25).abs() < 0.3, "per-hop cost off: {extra_us}");
        // Same-chip messages unaffected by hops.
        let a = h.sample(&mut StdRng::seed_from_u64(7), Locality::SameChip, 6, 0, Time::ZERO);
        let b = h.sample(&mut StdRng::seed_from_u64(7), Locality::SameChip, 1, 0, Time::ZERO);
        assert_eq!(a, b);
    }

    #[test]
    fn load_wave_stretches_tails_not_base() {
        let mut h = HierarchicalLatency::xeon_infiniband();
        h.load = Some(LoadWave::jitter_only(3.0, 100.0));
        // Peak load at t = 25 s, trough at t = 75 s.
        let peak = Time::from_secs(25);
        let trough = Time::from_secs(75);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 5000;
        let (mut sum_peak, mut sum_trough) = (Dur::ZERO, Dur::ZERO);
        let mut min_peak = Dur::MAX;
        for _ in 0..n {
            let p = h.sample(&mut rng, Locality::InterNode, 1, 0, peak);
            let t = h.sample(&mut rng, Locality::InterNode, 1, 0, trough);
            sum_peak += p;
            sum_trough += t;
            min_peak = min_peak.min(p);
        }
        // Mean under load exceeds mean in the trough.
        assert!(
            sum_peak.as_us_f64() / n as f64 > sum_trough.as_us_f64() / n as f64 + 0.02,
            "load had no effect"
        );
        // The physical minimum survives: no sample under the base latency.
        assert!(min_peak >= h.inter_node.base);
        // Factor math.
        let w = LoadWave::jitter_only(0.5, 100.0);
        assert!((w.factor(Time::from_secs(25)) - 1.5).abs() < 1e-9);
        assert!((w.factor(Time::from_secs(75)) - 0.5).abs() < 1e-9);
        assert!((w.factor(Time::ZERO) - 1.0).abs() < 1e-9);
        // Congestion: full forward, scaled reverse, zero in the trough.
        let c = LoadWave {
            amplitude: 0.0,
            period_s: 100.0,
            congestion: Dur::from_us(10),
            asymmetry: 0.25,
        };
        assert_eq!(c.congestion_at(Time::from_secs(25), true), Dur::from_us(10));
        assert_eq!(c.congestion_at(Time::from_secs(25), false), Dur::from_ps(2_500_000));
        assert_eq!(c.congestion_at(Time::from_secs(75), true), Dur::ZERO);
    }

    #[test]
    fn jitter_mean_is_modest() {
        let h = HierarchicalLatency::xeon_infiniband();
        let mut rng = StdRng::seed_from_u64(3);
        let mut total = Dur::ZERO;
        let n = 20_000;
        for _ in 0..n {
            total += h.sample(&mut rng, Locality::InterNode, 1, 0, Time::ZERO);
        }
        let mean = total.as_us_f64() / n as f64;
        // Mean should sit just above the 4.07 µs base; the Table II 4.29 µs
        // emerges once the send/receive software overheads are added.
        assert!(mean > 4.07 && mean < 4.20, "inter-node mean {mean}");
    }
}
