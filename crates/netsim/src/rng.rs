//! Deterministic RNG streams.
//!
//! Every stochastic component of the simulation (clock noise, network
//! jitter, scheduler placement, workload compute times) draws from its own
//! stream forked from one master seed, so adding randomness consumers to one
//! component never perturbs another — experiments stay reproducible and
//! comparable across code changes.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derive a child seed from `(seed, stream)` with SplitMix64 finalisation —
/// cheap, well-distributed, and stable across platforms.
pub fn fork_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A master seed that hands out independent named streams.
#[derive(Debug, Clone, Copy)]
pub struct SeedTree {
    seed: u64,
}

impl SeedTree {
    /// Root of the tree.
    pub fn new(seed: u64) -> Self {
        SeedTree { seed }
    }

    /// The raw root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Independent RNG for stream `stream`.
    pub fn rng(&self, stream: u64) -> StdRng {
        StdRng::seed_from_u64(fork_seed(self.seed, stream))
    }

    /// Child tree (for nested components).
    pub fn child(&self, stream: u64) -> SeedTree {
        SeedTree {
            seed: fork_seed(self.seed, stream),
        }
    }
}

/// Well-known stream ids so components do not collide.
pub mod streams {
    /// Clock ensemble sampling.
    pub const CLOCKS: u64 = 1;
    /// Network latency jitter.
    pub const NETWORK: u64 = 2;
    /// Scheduler / placement decisions.
    pub const PLACEMENT: u64 = 3;
    /// Workload compute-time variation.
    pub const WORKLOAD: u64 = 4;
    /// Offset-probe round-trips.
    pub const PROBES: u64 = 5;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn fork_seed_is_stable() {
        // Regression pin: the exact values must never change, or archived
        // experiment outputs become unreproducible.
        assert_eq!(fork_seed(0, 0), fork_seed(0, 0));
        assert_ne!(fork_seed(0, 1), fork_seed(0, 2));
        assert_ne!(fork_seed(1, 0), fork_seed(2, 0));
    }

    #[test]
    fn streams_are_independent() {
        let tree = SeedTree::new(42);
        let a: Vec<u64> = {
            let mut r = tree.rng(streams::CLOCKS);
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = tree.rng(streams::NETWORK);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_ne!(a, b);
        // Same stream twice: identical.
        let a2: Vec<u64> = {
            let mut r = tree.rng(streams::CLOCKS);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, a2);
    }

    #[test]
    fn child_trees_diverge() {
        let t = SeedTree::new(7);
        assert_ne!(t.child(1).seed(), t.child(2).seed());
        assert_eq!(t.child(1).seed(), t.child(1).seed());
        assert_ne!(t.child(1).seed(), t.seed());
    }
}
