//! # netsim — deterministic discrete-event cluster simulation
//!
//! The network substrate under the drift-lab MPI simulator:
//!
//! * [`engine`] — a time-ordered event queue with FIFO tie-breaking,
//! * [`topology`] — interconnect topologies (crossbar, fat-tree, 3-D torus)
//!   and rank [`Placement`] over the node/chip/core hierarchy (paper
//!   Table I),
//! * [`latency`] — hierarchical latency models with jitter, tuned to the
//!   paper's Table II (inter-node 4.29 µs, inter-chip 0.86 µs, inter-core
//!   0.47 µs on the Xeon cluster),
//! * [`rng`] — deterministic per-component RNG streams.

#![warn(missing_docs)]

pub mod engine;
pub mod latency;
pub mod rng;
pub mod topology;

pub use engine::EventQueue;
pub use latency::{HierarchicalLatency, LatencySpec, LoadWave};
pub use rng::{fork_seed, SeedTree};
pub use topology::{Placement, Topology};
