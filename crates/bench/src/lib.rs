//! Shared fixtures for the drift-lab benchmark harness.
//!
//! Each bench target regenerates one of the paper's tables/figures (at a
//! reduced size, so `cargo bench` stays snappy) or measures the performance
//! of a core algorithm. The full-size regeneration lives in the
//! `experiments` binary; these benches prove the code paths and give
//! stable performance baselines.

use mpisim::{run, Cluster, Program, RankProgram, RunOptions};
use netsim::{HierarchicalLatency, Placement, Topology};
use simclock::{ClockDomain, ClockEnsemble, Dur, Platform, TimerKind};
use tracefmt::{CommId, Rank, Tag, Trace};

/// A Xeon-like cluster of `nodes` nodes with `ranks` round-robin ranks and
/// drifting per-chip TSCs.
pub fn xeon_cluster(nodes: usize, ranks: usize, horizon_s: f64, seed: u64) -> Cluster {
    let shape = Platform::XeonCluster.shape(nodes);
    let profile = Platform::XeonCluster.clock_profile(TimerKind::IntelTsc, horizon_s);
    let clocks = ClockEnsemble::build(shape, ClockDomain::PerChip, &profile, seed);
    Cluster::new(
        Placement::round_robin(shape, ranks),
        Topology::FatTree { leaf_radix: 16 },
        HierarchicalLatency::xeon_infiniband(),
        clocks,
        seed,
    )
}

/// A bidirectional ring-exchange program with periodic allreduces, sized by
/// iterations. Both directions carry traffic, so pairwise corridor methods
/// (Duda/Jézéquel) have two-sided constraints on every edge.
pub fn ring_program(ranks: usize, iters: u32) -> Program {
    Program::build(ranks, |r| {
        let next = Rank((r.0 + 1) % ranks as u32);
        let prev = Rank((r.0 + ranks as u32 - 1) % ranks as u32);
        let mut p = RankProgram::new();
        for i in 0..iters {
            p = p
                .compute_jitter(Dur::from_us(100), 0.1)
                .send(next, Tag(2 * i), 256)
                .recv(prev, Tag(2 * i))
                .send(prev, Tag(2 * i + 1), 256)
                .recv(next, Tag(2 * i + 1));
            if i % 4 == 0 {
                p = p.allreduce(CommId::WORLD, 8);
            }
        }
        p
    })
}

/// Produce a traced run of the ring program on a drifting cluster — the
/// standard corpus for the correction benches.
pub fn skewed_trace(ranks: usize, iters: u32, seed: u64) -> (Cluster, Trace) {
    let mut cluster = xeon_cluster(ranks.div_ceil(8).max(2), ranks, 30.0, seed);
    let out = run(&mut cluster, &ring_program(ranks, iters), &RunOptions::default())
        .expect("benchmark program runs");
    (cluster, out.trace)
}

/// Freeze a cluster's `l_min` into an owned table-backed closure.
pub fn lmin_table(cluster: &Cluster, ranks: usize) -> impl Fn(Rank, Rank) -> Dur + Send + Sync {
    let table: Vec<Vec<Dur>> = (0..ranks)
        .map(|a| {
            (0..ranks)
                .map(|b| cluster.l_min(Rank(a as u32), Rank(b as u32), 0))
                .collect()
        })
        .collect();
    move |a: Rank, b: Rank| table[a.idx()][b.idx()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_produce_violating_traces() {
        let (cluster, trace) = skewed_trace(8, 50, 1);
        let lmin = lmin_table(&cluster, 8);
        let m = tracefmt::match_messages(&trace);
        assert!(m.is_complete());
        let rep = tracefmt::check_p2p(&trace, &m, &lmin);
        assert!(rep.total > 0);
    }
}
