//! Clock-physics micro benches (the substrate behind Figs. 1–6): drift
//! model evaluation, noisy clock reads, ensemble construction.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simclock::{
    ClockDomain, ClockEnsemble, DriftModel, NtpDiscipline, Platform, RandomWalkDrift, Time,
    TimerKind,
};

fn bench_drift_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("drift_models");
    let mut rng = StdRng::seed_from_u64(1);
    let walk = RandomWalkDrift::generate(&mut rng, 1e-9, 10.0, 3600.0);
    let ntp = NtpDiscipline::typical(2e-6).generate(&mut rng, 0.0, 3600.0);
    g.throughput(Throughput::Elements(1000));
    g.bench_function("random_walk_integrated_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1000 {
                acc += walk.integrated(Time::from_secs_f64(i as f64 * 3.6));
            }
            acc
        })
    });
    g.bench_function("ntp_path_integrated_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1000 {
                acc += ntp.integrated(Time::from_secs_f64(i as f64 * 3.6));
            }
            acc
        })
    });
    g.finish();
}

fn bench_clock_reads(c: &mut Criterion) {
    let mut g = c.benchmark_group("clock_reads");
    let shape = Platform::XeonCluster.shape(4);
    let profile = Platform::XeonCluster.clock_profile(TimerKind::IntelTsc, 120.0);
    let mut ens = ClockEnsemble::build(shape, ClockDomain::PerChip, &profile, 2);
    let cores: Vec<_> = shape.cores().collect();
    g.throughput(Throughput::Elements(1000));
    g.bench_function("noisy_sample_1k", |b| {
        let mut k = 0u64;
        b.iter(|| {
            let mut acc = Time::ZERO;
            for i in 0..1000u64 {
                k += 1;
                let core = cores[(i % cores.len() as u64) as usize];
                acc = acc.max(ens.sample(core, Time::from_us((k * 7) as i64)));
            }
            acc
        })
    });
    g.finish();
}

fn bench_ensemble_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("ensemble_build");
    g.sample_size(10);
    g.bench_function("xeon_32nodes_per_chip_3600s", |b| {
        b.iter(|| {
            let shape = Platform::XeonCluster.shape(32);
            let profile = Platform::XeonCluster.clock_profile(TimerKind::IntelTsc, 3600.0);
            ClockEnsemble::build(shape, ClockDomain::PerChip, &profile, 3).n_clocks()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_drift_models, bench_clock_reads, bench_ensemble_build);
criterion_main!(benches);
