//! Performance and ablation benches for the timestamp-correction
//! algorithms: CLC serial vs. parallel replay across trace sizes, forward
//! amortization factor, backward amortization on/off, and the classic
//! baselines on the same corpus.

use bench::{lmin_table, skewed_trace};
use clocksync::baselines::babaoglu::{full_exchange_maps, FullExchangeFit};
use clocksync::baselines::jezequel::spanning_tree_maps;
use clocksync::{
    controlled_logical_clock, controlled_logical_clock_parallel,
    controlled_logical_clock_with_domains, ClcParams,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_clc_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("clc_scaling");
    g.sample_size(10);
    for &(ranks, iters) in &[(8usize, 100u32), (16, 200), (32, 300)] {
        let (cluster, trace) = skewed_trace(ranks, iters, 11);
        let lmin = lmin_table(&cluster, ranks);
        let events = trace.n_events() as u64;
        g.throughput(Throughput::Elements(events));
        g.bench_with_input(
            BenchmarkId::new("serial", format!("{ranks}r_{events}ev")),
            &trace,
            |b, t| {
                b.iter(|| {
                    let mut t = t.clone();
                    controlled_logical_clock(&mut t, &lmin, &ClcParams::default()).unwrap()
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("parallel_replay", format!("{ranks}r_{events}ev")),
            &trace,
            |b, t| {
                b.iter(|| {
                    let mut t = t.clone();
                    controlled_logical_clock_parallel(&mut t, &lmin, &ClcParams::default())
                        .unwrap()
                })
            },
        );
    }
    g.finish();
}

fn bench_clc_ablations(c: &mut Criterion) {
    let (cluster, trace) = skewed_trace(16, 150, 13);
    let lmin = lmin_table(&cluster, 16);
    let mut g = c.benchmark_group("clc_ablations");
    g.sample_size(10);
    for (name, params) in [
        ("mu_1.00_no_backward", ClcParams { mu: 1.0, backward: false, ..Default::default() }),
        ("mu_0.99_no_backward", ClcParams { mu: 0.99, backward: false, ..Default::default() }),
        ("mu_0.90_no_backward", ClcParams { mu: 0.90, backward: false, ..Default::default() }),
        ("mu_0.99_backward", ClcParams::default()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut t = trace.clone();
                controlled_logical_clock(&mut t, &lmin, &params).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let (cluster, trace) = skewed_trace(16, 150, 17);
    let lmin = lmin_table(&cluster, 16);
    let mut g = c.benchmark_group("baselines");
    g.sample_size(10);
    g.bench_function("jezequel_spanning_tree", |b| {
        b.iter(|| {
            let m = tracefmt::match_messages(&trace);
            spanning_tree_maps(&trace, &m, &lmin, 0).unwrap()
        })
    });
    g.bench_function("babaoglu_full_exchange", |b| {
        b.iter(|| {
            let insts = tracefmt::match_collectives(&trace).unwrap();
            full_exchange_maps(&trace, &insts, &lmin, 0, FullExchangeFit::Piecewise(8)).unwrap()
        })
    });
    g.bench_function("lamport_stamps", |b| {
        b.iter(|| clocksync::lamport_timestamps(&trace))
    });
    g.bench_function("vector_stamps", |b| {
        b.iter(|| clocksync::vector_timestamps(&trace))
    });
    g.finish();
}

fn bench_clc_variants(c: &mut Criterion) {
    let (cluster, trace) = skewed_trace(16, 150, 19);
    let lmin = lmin_table(&cluster, 16);
    let domains: Vec<usize> = (0..16).map(|p| p / 4).collect();
    let mut g = c.benchmark_group("clc_variants");
    g.sample_size(10);
    g.bench_function("domain_aware", |b| {
        b.iter(|| {
            let mut t = trace.clone();
            controlled_logical_clock_with_domains(
                &mut t,
                &lmin,
                &ClcParams::default(),
                &domains,
            )
            .unwrap()
        })
    });
    g.bench_function("pomp_openmp_trace", |b| {
        let pomp_trace = workloads::run_benchmark(8, 100, 23);
        b.iter(|| {
            let mut t = pomp_trace.clone();
            clocksync::controlled_logical_clock_pomp(
                &mut t,
                simclock::Dur::from_ns(100),
                &ClcParams::default(),
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_clc_scaling,
    bench_clc_ablations,
    bench_baselines,
    bench_clc_variants
);
criterion_main!(benches);
