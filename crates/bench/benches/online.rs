//! Online synchronization: filter and corrector throughput, plus the
//! method head-to-head the paper's claim rests on.
//!
//! Three measurements:
//!
//! * raw [`DriftKalman`] update throughput (predict + observe per probe);
//! * end-to-end [`OnlineCorrector`] throughput: events/sec through
//!   `map_next` with a realistic probe-to-event ratio;
//! * the violation-census comparison from the `online` experiment —
//!   interp vs. CLC vs. online over every static drift model and the
//!   churn scenarios, at a fixed seed.
//!
//! Run with `cargo bench -p bench --bench online` (add `-- --test` for
//! the CI smoke run: fewer repetitions, same report). Either way the
//! summary is written to `BENCH_online.json` at the repository root.
//! `scripts/ci.sh` re-checks the censuses with the same rule as the
//! bench's own assert — the online method must strictly undercut
//! endpoint interpolation on every non-constant drift model — so a
//! regression cannot hide behind a stale JSON. The census counts are
//! machine-independent (the pipeline is deterministic), so the gate
//! holds at every CPU count.

use experiments::online_exp::{churn_rows, static_rows, OnlineRow};
use onlinesync::{DriftKalman, KalmanParams, OnlineCorrector, ProbeFix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Best-of-N wall time (minimum is the least noisy estimator for a
/// deterministic workload).
fn best_of(iters: usize, mut f: impl FnMut() -> u64) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

/// Synthetic probe stream: drifting offset plus bounded noise, 10 ms
/// cadence in worker time.
fn probe_stream(n: usize, seed: u64) -> Vec<ProbeFix> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let t_ps = (i as i64 + 1) * 10_000_000_000; // 10 ms
            let drift_off = (t_ps as f64 * 30e-6) as i64; // 30 ppm
            ProbeFix {
                worker_time_ps: t_ps,
                offset_ps: 400_000_000 + drift_off + rng.gen_range(-2_000_000i64..2_000_000),
                rtt_ps: 10_000_000 + rng.gen_range(0i64..5_000_000),
            }
        })
        .collect()
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let iters = if test_mode { 3 } else { 10 };
    let probes_n = if test_mode { 100_000 } else { 1_000_000 };
    let events_n = if test_mode { 500_000 } else { 4_000_000 };

    // 1. Filter update throughput.
    let probes = probe_stream(probes_n, 7);
    let t_filter = best_of(iters, || {
        let mut k = DriftKalman::new(KalmanParams::default());
        for p in &probes {
            k.observe(*p);
        }
        k.updates()
    });
    let filter_ups = probes_n as f64 / t_filter.as_secs_f64();
    println!("filter: {probes_n} probes, {filter_ups:>12.0} updates/s ({t_filter:?})");

    // 2. Corrector throughput: 8 lanes, ~200 events between probes.
    let lanes = 8usize;
    let lane_probes = probe_stream(probes_n / 50 / lanes, 11);
    let step_ps = 50_000_000i64; // one event every 50 µs of worker time
    let t_corr = best_of(iters, || {
        let mut corr = OnlineCorrector::new(vec![lane_probes.clone(); lanes], KalmanParams::default());
        let mut acc = 0u64;
        let per_lane = events_n / lanes;
        for p in 0..lanes {
            let lane = corr.lane_mut(p);
            for i in 0..per_lane {
                acc = acc.wrapping_add(lane.map_next(i as i64 * step_ps) as u64);
            }
        }
        acc
    });
    let corr_eps = events_n as f64 / t_corr.as_secs_f64();
    println!("corrector: {events_n} events, {corr_eps:>12.0} events/s ({t_corr:?})");

    // 3. Method head-to-head at a fixed seed (deterministic counts).
    let msgs = if test_mode { 800 } else { 2500 };
    let mut rows = static_rows(msgs, 2008);
    rows.extend(churn_rows(msgs, 2009));
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8}",
        "scenario", "raw", "interp", "clc", "online"
    );
    for r in &rows {
        println!(
            "{:<22} {:>8} {:>8} {:>8} {:>8}",
            r.scenario, r.raw, r.interp, r.clc, r.online
        );
    }

    // The bench's own gate, mirrored by scripts/ci.sh on the written
    // report: strictly fewer violations than interpolation on every
    // non-constant drift model, and never worse than raw anywhere.
    for r in &rows {
        assert!(
            r.online <= r.raw,
            "{}: online {} worse than raw {}",
            r.scenario,
            r.online,
            r.raw
        );
        if r.scenario != "constant" && !r.scenario.starts_with("churn") {
            assert!(
                r.online < r.interp,
                "{}: online {} not strictly below interp {}",
                r.scenario,
                r.online,
                r.interp
            );
        }
    }

    let census_json = |r: &OnlineRow| {
        format!(
            "    {{ \"scenario\": \"{}\", \"messages\": {}, \"raw\": {}, \"interp\": {}, \
             \"clc\": {}, \"online\": {} }}",
            r.scenario, r.messages, r.raw, r.interp, r.clc, r.online
        )
    };
    let flat = |r: &OnlineRow| {
        let key = r.scenario.replace(['/', '-'], "_");
        format!(
            "  \"census_{key}_interp\": {},\n  \"census_{key}_online\": {}",
            r.interp, r.online
        )
    };
    let json = format!
    (
        "{{\n  \"filter_updates_per_sec\": {filter_ups:.0},\n  \
         \"corrector_events_per_sec\": {corr_eps:.0},\n  \"messages_per_scenario\": {msgs},\n\
         {},\n  \"censuses\": [\n{}\n  ]\n}}\n",
        rows.iter().map(flat).collect::<Vec<_>>().join(",\n"),
        rows.iter().map(census_json).collect::<Vec<_>>().join(",\n"),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_online.json");
    std::fs::write(out, json).expect("write BENCH_online.json");
    println!("wrote {out}");
}
