//! Ingest throughput: how fast trace bytes become a pipeline-ready trace.
//!
//! Three decoders are measured over the same ≥100k-event trace, each ending
//! in the state the columnar pipeline starts from (a [`Trace`] plus its
//! gathered timestamp [`TraceColumns`]):
//!
//! * `v1_full` — the v1 record-stream binary: materialize the whole
//!   `Vec<EventRecord>` trace from one contiguous buffer, then gather the
//!   timestamp columns;
//! * `v2_full` — the blocked columnar binary decoded in one call;
//! * `v2_streamed` — the same bytes fed to the incremental
//!   [`StreamDecoder`] in bounded chunks, the way `synchronize_stream`
//!   ingests: timestamp columns fall out of the block frames directly;
//! * `v3_full` / `v3_streamed` — the `DTC3` variant through the same two
//!   paths: 8-aligned little-endian timestamp segments reinterpreted in
//!   bulk and a fixed-stride payload decoded without per-field bounds
//!   checks;
//! * `v2_times` / `v3_times` — the re-ingest lane ([`TimesBuilder`]):
//!   only the timestamp columns are decoded, the path a consumer takes
//!   over stored bytes whose order-based analysis is already cached. On
//!   v3 this is zero-copy end to end (aligned segments bulk-cast into
//!   columns, payloads skipped) and gates the format: it must ingest at
//!   least 2x as fast as the full `v2_streamed` decode.
//!
//! Run with `cargo bench -p bench --bench ingest` (add `-- --test` for the
//! CI smoke run: fewer repetitions, same report). Either way the events/sec
//! summary is written to `BENCH_ingest.json` at the repository root.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simclock::Time;
use std::time::{Duration, Instant};
use tracefmt::io::{
    from_binary, from_binary_columnar, to_binary, to_binary_columnar, to_binary_columnar_v3,
    StreamDecoder, TimesBuilder, TraceBuilder,
};
use tracefmt::{EventKind, Rank, Tag, Trace, TraceColumns};

const PROCS: usize = 16;
const MSGS: usize = 60_000; // ≥120k events
const STREAM_CHUNK: usize = 256 * 1024;

/// A causally valid message trace with skewed clocks (same shape as the
/// pipeline benchmarks; drift detail is irrelevant to decode speed).
fn big_trace(seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let offsets: Vec<i64> = (0..PROCS)
        .map(|p| if p == 0 { 0 } else { rng.gen_range(-500i64..500) })
        .collect();
    let mut trace = Trace::for_ranks(PROCS);
    let mut now = [0i64; PROCS];
    for m in 0..MSGS {
        let from = rng.gen_range(0usize..PROCS);
        let to = (from + rng.gen_range(1usize..PROCS)) % PROCS;
        let send_true = now[from] + rng.gen_range(5i64..40);
        now[from] = send_true;
        let recv_true = send_true.max(now[to]) + 4 + rng.gen_range(0i64..20);
        now[to] = recv_true;
        trace.procs[from].push(
            Time::from_us(send_true + offsets[from]),
            EventKind::Send { to: Rank(to as u32), tag: Tag(m as u32), bytes: 64 },
        );
        trace.procs[to].push(
            Time::from_us(recv_true + offsets[to]),
            EventKind::Recv { from: Rank(from as u32), tag: Tag(m as u32), bytes: 64 },
        );
    }
    trace
}

/// Best-of-N wall time of `f` (minimum is the least noisy estimator for a
/// deterministic workload).
fn best_of<R>(iters: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = f();
        let dt = t0.elapsed();
        std::hint::black_box(out);
        if dt < best {
            best = dt;
        }
    }
    best
}

fn events_per_sec(n_events: usize, took: Duration) -> f64 {
    n_events as f64 / took.as_secs_f64()
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let iters = if test_mode { 3 } else { 15 };

    let trace = big_trace(7);
    let n_events = trace.n_events();
    assert!(n_events >= 100_000, "bench trace too small: {n_events}");
    let v1_bytes = to_binary(&trace);
    let v2_bytes = to_binary_columnar(&trace);
    let v3_bytes = to_binary_columnar_v3(&trace);

    // v1: full materialization from one contiguous buffer, then gather.
    let t_v1 = best_of(iters, || {
        let t = from_binary(v1_bytes.clone()).expect("v1 decodes");
        let cols = TraceColumns::gather(&t);
        (t, cols)
    });

    // v2: one-shot decode of the blocked columnar format.
    let t_v2_full = best_of(iters, || {
        from_binary_columnar(v2_bytes.clone()).expect("columnar decodes")
    });

    // v2 streamed: bounded chunks through the incremental decoder; the
    // timestamp columns come straight out of the block frames.
    let t_v2_stream = best_of(iters, || {
        let mut dec = StreamDecoder::new();
        let mut builder = TraceBuilder::new();
        for chunk in v2_bytes.chunks(STREAM_CHUNK) {
            dec.feed_into(chunk, &mut builder).expect("stream decodes");
        }
        dec.finish().expect("stream complete");
        builder.finish_parts()
    });

    // v3: the same two decode paths over the aligned little-endian frames.
    let t_v3_full = best_of(iters, || {
        from_binary_columnar(v3_bytes.clone()).expect("v3 decodes")
    });
    let t_v3_stream = best_of(iters, || {
        let mut dec = StreamDecoder::new();
        let mut builder = TraceBuilder::new();
        for chunk in v3_bytes.chunks(STREAM_CHUNK) {
            dec.feed_into(chunk, &mut builder).expect("v3 stream decodes");
        }
        dec.finish().expect("v3 stream complete");
        builder.finish_parts()
    });

    // Times-only re-ingest: the decoder skips every payload segment and
    // builds just the columns. v2 still byteswaps each big-endian
    // timestamp; v3 bulk-reinterprets its aligned little-endian runs.
    let t_v2_times = best_of(iters, || {
        let mut dec = StreamDecoder::new();
        let mut builder = TimesBuilder::new();
        for chunk in v2_bytes.chunks(STREAM_CHUNK) {
            dec.feed_times_into(chunk, &mut builder).expect("v2 times decode");
        }
        dec.finish().expect("v2 times complete");
        builder.finish()
    });
    let t_v3_times = best_of(iters, || {
        let mut dec = StreamDecoder::new();
        let mut builder = TimesBuilder::new();
        for chunk in v3_bytes.chunks(STREAM_CHUNK) {
            dec.feed_times_into(chunk, &mut builder).expect("v3 times decode");
        }
        dec.finish().expect("v3 times complete");
        builder.finish()
    });

    let eps_v1 = events_per_sec(n_events, t_v1);
    let eps_v2_full = events_per_sec(n_events, t_v2_full);
    let eps_v2_stream = events_per_sec(n_events, t_v2_stream);
    let eps_v3_full = events_per_sec(n_events, t_v3_full);
    let eps_v3_stream = events_per_sec(n_events, t_v3_stream);
    let eps_v2_times = events_per_sec(n_events, t_v2_times);
    let eps_v3_times = events_per_sec(n_events, t_v3_times);
    let speedup = eps_v2_stream / eps_v1;
    let v3_speedup = eps_v3_times / eps_v2_stream;

    println!("ingest: {n_events} events, v1 {} bytes, v2 {} bytes", v1_bytes.len(), v2_bytes.len());
    println!("  v1_full      {:>12.0} events/s  ({t_v1:?})", eps_v1);
    println!("  v2_full      {:>12.0} events/s  ({t_v2_full:?})", eps_v2_full);
    println!("  v2_streamed  {:>12.0} events/s  ({t_v2_stream:?})", eps_v2_stream);
    println!("  v3_full      {:>12.0} events/s  ({t_v3_full:?})", eps_v3_full);
    println!("  v3_streamed  {:>12.0} events/s  ({t_v3_stream:?})", eps_v3_stream);
    println!("  v2_times     {:>12.0} events/s  ({t_v2_times:?})", eps_v2_times);
    println!("  v3_times     {:>12.0} events/s  ({t_v3_times:?})", eps_v3_times);
    println!("  streamed/v1 speedup: {speedup:.2}x");
    println!("  v3 zero-copy ingest / v2 streamed decode speedup: {v3_speedup:.2}x");

    let json = format!(
        "{{\n  \"n_events\": {n_events},\n  \"v1_bytes\": {},\n  \"v2_bytes\": {},\n  \
         \"v3_bytes\": {},\n  \
         \"v1_full_events_per_sec\": {eps_v1:.0},\n  \
         \"v2_full_events_per_sec\": {eps_v2_full:.0},\n  \
         \"v2_streamed_events_per_sec\": {eps_v2_stream:.0},\n  \
         \"v3_full_events_per_sec\": {eps_v3_full:.0},\n  \
         \"v3_streamed_events_per_sec\": {eps_v3_stream:.0},\n  \
         \"v2_times_events_per_sec\": {eps_v2_times:.0},\n  \
         \"v3_times_events_per_sec\": {eps_v3_times:.0},\n  \
         \"streamed_over_v1_speedup\": {speedup:.3},\n  \
         \"v3_ingest_over_v2_streamed_speedup\": {v3_speedup:.3}\n}}\n",
        v1_bytes.len(),
        v2_bytes.len(),
        v3_bytes.len(),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    std::fs::write(out, json).expect("write BENCH_ingest.json");
    println!("wrote {out}");

    assert!(
        speedup >= 1.5,
        "chunked columnar ingest must be >= 1.5x v1 full decode, got {speedup:.2}x"
    );
    assert!(
        v3_speedup >= 2.0,
        "zero-copy v3 ingest must be >= 2x the full v2 streamed decode, got {v3_speedup:.2}x"
    );
    assert!(
        eps_v3_times > eps_v2_times,
        "v3's aligned bulk cast must beat v2's per-element byteswap on the times-only lane"
    );
}
