//! Throughput and latency of the `syncd` service under a multi-tenant job
//! mix: a batch of medium synchronization jobs (trace and stream inputs
//! mixed) pushed through the service, measured as jobs/sec end-to-end,
//! with per-job latency quantiles from the service's own histogram, and a
//! service-vs-direct overhead comparison on the same job set.
//!
//! Run with `cargo bench -p bench --bench syncd_throughput` (add
//! `-- --test` for the CI smoke run: fewer jobs, same report). Either way
//! the summary is written to `BENCH_syncd.json` at the repository root.
//! Timings are the median of three strictly alternating direct/service
//! rounds (arXiv:1505.07734's methodology), so one noisy round cannot
//! fail the gate.
//!
//! The overhead gate is CPU-aware like the other pipeline benches: with
//! multiple cores the service's concurrent executors should come out
//! *ahead* of running the same jobs back-to-back; on a single-core host
//! the executors only time-slice one core, so the gate only bounds the
//! scheduling overhead to a small constant factor.

use clocksync::{OffsetMeasurement, PipelineConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simclock::{Dur, Time};
use std::sync::Arc;
use std::time::Instant;
use syncd::{chunked, Counter, JobInput, JobSpec, Priority, ServiceConfig, SyncService};
use tracefmt::io::to_binary_columnar_blocked;
use tracefmt::{EventKind, MinLatency, Rank, Tag, Trace, UniformLatency};

const PROCS: usize = 8;

type Measurements = Vec<Option<OffsetMeasurement>>;

/// A causally valid trace with skewed linear clocks plus measurements.
fn job_trace(seed: u64, msgs: usize) -> (Trace, Measurements, Measurements) {
    let mut rng = StdRng::seed_from_u64(seed);
    let offsets: Vec<i64> = (0..PROCS)
        .map(|p| if p == 0 { 0 } else { rng.gen_range(-400i64..400) })
        .collect();
    let local = |p: usize, t: i64| t + offsets[p];
    let mut trace = Trace::for_ranks(PROCS);
    let mut now = [0i64; PROCS];
    for m in 0..msgs {
        let from = rng.gen_range(0usize..PROCS);
        let to = (from + rng.gen_range(1usize..PROCS)) % PROCS;
        let send_true = now[from] + rng.gen_range(5i64..40);
        now[from] = send_true;
        let recv_true = send_true.max(now[to]) + 4 + rng.gen_range(0i64..20);
        now[to] = recv_true;
        trace.procs[from].push(
            Time::from_us(local(from, send_true)),
            EventKind::Send { to: Rank(to as u32), tag: Tag(m as u32), bytes: 64 },
        );
        trace.procs[to].push(
            Time::from_us(local(to, recv_true)),
            EventKind::Recv { from: Rank(from as u32), tag: Tag(m as u32), bytes: 64 },
        );
    }
    let end = *now.iter().max().expect("non-empty") + 100;
    let measure = |p: usize, t: i64| -> Option<OffsetMeasurement> {
        (p != 0).then(|| OffsetMeasurement {
            worker_time: Time::from_us(local(p, t)),
            offset: Dur::from_us(-offsets[p] + 2),
            rtt: Dur::from_us(10),
        })
    };
    let init: Vec<_> = (0..PROCS).map(|p| measure(p, 0)).collect();
    let fin: Vec<_> = (0..PROCS).map(|p| measure(p, end)).collect();
    (trace, init, fin)
}

struct JobSet {
    specs: Vec<(Trace, Measurements, Measurements, bool)>,
    events: usize,
}

fn job_set(jobs: usize, msgs: usize) -> JobSet {
    let mut specs = Vec::with_capacity(jobs);
    let mut events = 0;
    for j in 0..jobs {
        let (trace, init, fin) = job_trace(1000 + j as u64, msgs);
        events += trace.n_events();
        // Every third job arrives as a DTC2 stream.
        specs.push((trace, init, fin, j % 3 == 2));
    }
    JobSet { specs, events }
}

fn make_spec(
    (trace, init, fin, as_stream): &(Trace, Measurements, Measurements, bool),
    lmin: &Arc<dyn MinLatency + Send + Sync>,
) -> JobSpec {
    let input = if *as_stream {
        JobInput::Stream(chunked(&to_binary_columnar_blocked(trace, 1024), 8192))
    } else {
        JobInput::Trace(trace.clone())
    };
    JobSpec::new(
        input,
        init.clone(),
        Some(fin.clone()),
        Arc::clone(lmin),
        PipelineConfig::default(),
    )
    .with_priority(Priority::Normal)
}

/// One direct-baseline pass: the same jobs back-to-back through the
/// pipeline, no service in between.
fn run_direct(set: &JobSet, lmin: &Arc<dyn MinLatency + Send + Sync>) -> f64 {
    let t0 = Instant::now();
    for spec in &set.specs {
        let s = make_spec(spec, lmin);
        let mut work = match s.input {
            JobInput::Trace(t) => t,
            JobInput::StreamIncremental { .. } => {
                unreachable!("this bench workload submits only trace and stream jobs")
            }
            JobInput::Stream(chunks) => {
                let (t, _) = clocksync::synchronize_stream(
                    chunks.iter().map(|c| c.as_slice()),
                    &s.init,
                    s.fin.as_deref(),
                    &*s.lmin,
                    &s.pipeline,
                )
                .expect("direct stream run");
                std::hint::black_box(&t);
                continue;
            }
        };
        clocksync::synchronize(&mut work, &s.init, s.fin.as_deref(), &*s.lmin, &s.pipeline)
            .expect("direct run");
        std::hint::black_box(&work);
    }
    t0.elapsed().as_secs_f64()
}

/// One service pass: submit everything to a fresh service, wait for all
/// outcomes. Returns the wall time and latency quantiles from the
/// service's own histogram.
fn run_service(
    set: &JobSet,
    lmin: &Arc<dyn MinLatency + Send + Sync>,
    jobs: usize,
) -> (f64, f64, f64) {
    let service = SyncService::start(ServiceConfig {
        queue_capacity: jobs.max(64),
        ..ServiceConfig::default()
    });
    let t0 = Instant::now();
    let handles: Vec<_> = set
        .specs
        .iter()
        .map(|spec| service.submit(make_spec(spec, lmin)).expect("admitted"))
        .collect();
    for h in handles {
        h.wait().expect("bench job succeeds");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let m = service.metrics();
    service.shutdown();
    assert_eq!(m.counter(Counter::Completed), jobs as u64);
    assert_eq!(m.counter(Counter::Failed), 0);
    assert_eq!(m.counter(Counter::ServiceCrashes), 0);
    (elapsed, m.job_latency.quantile(0.5), m.job_latency.quantile(0.99))
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    xs[xs.len() / 2]
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (jobs, msgs) = if test_mode { (24, 800) } else { (96, 2500) };
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let lmin: Arc<dyn MinLatency + Send + Sync> = Arc::new(UniformLatency(Dur::from_us(4)));

    let set = job_set(jobs, msgs);
    println!("syncd: {jobs} jobs, {} events total, {cpus} cpu(s)", set.events);

    // Median of 3 rounds, sides strictly alternating (direct, service,
    // direct, service, ...): alternation puts both sides under the same
    // slowly-varying host conditions (thermal state, cache pollution from
    // neighbours) instead of giving one side a quiet machine and the
    // other a busy one, and the median discards a single noisy round
    // rather than averaging it in — the measurement methodology argued
    // for in "Reliable benchmarking: requirements and solutions"
    // (arXiv:1505.07734).
    const ROUNDS: usize = 3;
    let mut direct_times = Vec::with_capacity(ROUNDS);
    let mut service_times = Vec::with_capacity(ROUNDS);
    let mut ratios = Vec::with_capacity(ROUNDS);
    let (mut p50, mut p99) = (0.0, 0.0);
    for round in 0..ROUNDS {
        let d = run_direct(&set, &lmin);
        let (s, r50, r99) = run_service(&set, &lmin, jobs);
        println!(
            "  round {}: direct {:.3}s, service {:.3}s, ratio {:.3}x",
            round + 1,
            d,
            s,
            d / s
        );
        direct_times.push(d);
        service_times.push(s);
        ratios.push(d / s);
        // Quantiles from the last round (any round is representative; the
        // histogram resets with its service).
        p50 = r50;
        p99 = r99;
    }
    let t_direct = median(&mut direct_times);
    let t_service = median(&mut service_times);
    // The gated ratio is the median of the *per-round* ratios, not the
    // ratio of medians: each round's sides ran adjacently, so their
    // quotient cancels that round's host conditions.
    let speedup = median(&mut ratios);

    let jobs_per_sec = jobs as f64 / t_service;
    let direct_jobs_per_sec = jobs as f64 / t_direct;
    let events_per_sec = set.events as f64 / t_service;

    println!("  direct baseline  {direct_jobs_per_sec:>9.1} jobs/s  (median {t_direct:.3}s)");
    println!("  service          {jobs_per_sec:>9.1} jobs/s  (median {t_service:.3}s)");
    println!("  service          {events_per_sec:>9.0} events/s");
    println!("  service/direct throughput ratio: {speedup:.2}x (median of {ROUNDS} rounds)");
    println!("  job latency p50 {p50:.4}s  p99 {p99:.4}s");

    let json = format!(
        "{{\n  \"jobs\": {jobs},\n  \"events\": {},\n  \"cpus\": {cpus},\n  \
         \"rounds\": {ROUNDS},\n  \
         \"direct_jobs_per_sec\": {direct_jobs_per_sec:.2},\n  \
         \"service_jobs_per_sec\": {jobs_per_sec:.2},\n  \
         \"service_events_per_sec\": {events_per_sec:.0},\n  \
         \"service_over_direct_ratio\": {speedup:.3},\n  \
         \"job_latency_p50_seconds\": {p50:.6},\n  \
         \"job_latency_p99_seconds\": {p99:.6}\n}}\n",
        set.events,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_syncd.json");
    std::fs::write(out, json).expect("write BENCH_syncd.json");
    println!("wrote {out}");

    // Quantile sanity from the service's own histogram.
    assert!(p50 <= p99, "p50 {p50} above p99 {p99}");
    assert!(p99 > 0.0, "histogram recorded nothing");

    // CPU-aware overhead gate (mirrors the pipeline_parallel convention).
    if cpus >= 4 {
        assert!(
            speedup >= 1.2,
            "service with concurrent executors must beat back-to-back direct runs \
             on {cpus} cpus, got {speedup:.2}x"
        );
    } else if cpus >= 2 {
        assert!(
            speedup >= 0.9,
            "service fell behind direct runs on {cpus} cpus: {speedup:.2}x"
        );
    } else {
        println!(
            "  (single-cpu host: concurrency gain impossible; overhead floor only)"
        );
        assert!(
            speedup >= 0.7,
            "service scheduling overhead above 30% on one cpu: {speedup:.2}x"
        );
    }
}
