//! Table II regeneration under Criterion: message/collective latency
//! measurement per placement level.

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::{HierarchicalLatency, Placement, Topology};
use simclock::{ClockDomain, ClockEnsemble, ClockProfile, Platform, TimerKind};
use workloads::{measure_allreduce_latency, measure_p2p_latency};

fn fresh(placement: Placement, seed: u64) -> mpisim::Cluster {
    let shape = placement.shape();
    let clocks = ClockEnsemble::build(
        shape,
        ClockDomain::Global,
        &ClockProfile::bare(TimerKind::IntelTsc),
        seed,
    );
    mpisim::Cluster::new(
        placement,
        Topology::FatTree { leaf_radix: 16 },
        HierarchicalLatency::xeon_infiniband(),
        clocks,
        seed,
    )
}

fn bench(c: &mut Criterion) {
    let shape = Platform::XeonCluster.shape(4);
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);

    g.bench_function("inter_node_pingpong", |b| {
        b.iter(|| {
            let mut cl = fresh(Placement::one_per_node(shape, 4), 1);
            let m = measure_p2p_latency(&mut cl, 200, 0).unwrap();
            assert!((m.mean_us() - 4.29).abs() < 0.5);
            m.mean_us()
        })
    });
    g.bench_function("inter_chip_pingpong", |b| {
        b.iter(|| {
            let mut cl = fresh(Placement::one_per_chip(shape, 2), 2);
            measure_p2p_latency(&mut cl, 200, 0).unwrap().mean_us()
        })
    });
    g.bench_function("inter_core_pingpong", |b| {
        b.iter(|| {
            let mut cl = fresh(Placement::one_per_core(shape, 4), 3);
            measure_p2p_latency(&mut cl, 200, 0).unwrap().mean_us()
        })
    });
    g.bench_function("inter_node_allreduce", |b| {
        b.iter(|| {
            let mut cl = fresh(Placement::one_per_node(shape, 4), 4);
            let m = measure_allreduce_latency(&mut cl, 4, 200, 8).unwrap();
            assert!((m.mean_us() - 12.86).abs() < 2.5);
            m.mean_us()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
