//! Fig. 8 regeneration under Criterion: the OpenMP POMP-violation sweep per
//! team size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workloads::violation_sweep;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    for threads in [4usize, 8, 12, 16] {
        g.bench_with_input(BenchmarkId::new("sweep", threads), &threads, |b, &t| {
            b.iter(|| {
                let rows = violation_sweep(&[t], 60, 1, 7);
                rows[0].any_pct
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
