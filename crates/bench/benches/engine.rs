//! Simulator-core performance: event-queue operations and end-to-end MPI
//! simulation throughput (events per second).

use bench::{ring_program, xeon_cluster};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mpisim::{run, RunOptions};
use netsim::EventQueue;
use simclock::Time;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                // Pseudo-random interleaving without an RNG in the loop.
                let t = Time::from_ns(((i * 2_654_435_761) % 1_000_000) as i64);
                q.push(t, i);
            }
            let mut last = Time::MIN;
            while let Some((t, _)) = q.pop() {
                debug_assert!(t >= last);
                last = t;
            }
            last
        })
    });
    g.finish();
}

fn bench_simulation_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    let prog = ring_program(16, 200);
    let ops = prog.n_ops() as u64;
    g.throughput(Throughput::Elements(ops));
    g.bench_function("ring_16r_200it", |b| {
        b.iter(|| {
            let mut cluster = xeon_cluster(2, 16, 30.0, 3);
            run(&mut cluster, &prog, &RunOptions::default()).unwrap().stats.events
        })
    });
    g.finish();
}

fn bench_probing(c: &mut Criterion) {
    let mut g = c.benchmark_group("probing");
    g.bench_function("probe_31_workers_20rounds", |b| {
        b.iter(|| {
            let mut cluster = xeon_cluster(4, 32, 30.0, 5);
            mpisim::probe_all_workers(
                &mut cluster,
                tracefmt::Rank(0),
                20,
                Time::ZERO,
                simclock::Dur::from_us(100),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_simulation_throughput, bench_probing);
criterion_main!(benches);
