//! Wire-protocol overhead: the same job set pushed through `syncd`
//! in-process versus over a real loopback socket through `syncd-client`.
//!
//! The socket path pays for everything the in-process path skips — frame
//! encode/decode, two kernel copies per direction, credit round-trips,
//! and re-encoding the corrected trace for the reply — so it cannot win;
//! the gate bounds how much it may lose. Timings are the median of three
//! strictly alternating rounds (in-process, socket, in-process, …; the
//! arXiv:1505.07734 methodology, same as the `syncd_throughput` bench),
//! and the report also carries the *minimum* ratio across rounds so a
//! regression cannot hide behind one lucky round.
//!
//! Run with `cargo bench -p bench --bench syncd_net` (add `-- --test`
//! for the CI smoke run). Writes `BENCH_syncd_net.json` at the repo
//! root; `scripts/ci.sh` gates on `socket_over_inproc_ratio >= 0.7`.

use clocksync::{OffsetMeasurement, PipelineConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simclock::{Dur, Time};
use std::sync::Arc;
use std::time::Instant;
use syncd::{
    chunked, JobInput, JobSpec, NetServer, NetServerConfig, ServiceConfig, SyncService,
    TenantConfig,
};
use syncd_client::{JobRequest, SyncClient};
use syncd_wire::{WireJobConfig, WireLatency};
use tracefmt::io::to_binary_columnar_blocked;
use tracefmt::{EventKind, MinLatency, Rank, Tag, Trace, UniformLatency};

const PROCS: usize = 8;

type Measurements = Vec<Option<OffsetMeasurement>>;

/// Same causally-valid skewed-clock generator as the throughput bench.
fn job_trace(seed: u64, msgs: usize) -> (Trace, Measurements, Measurements) {
    let mut rng = StdRng::seed_from_u64(seed);
    let offsets: Vec<i64> = (0..PROCS)
        .map(|p| if p == 0 { 0 } else { rng.gen_range(-400i64..400) })
        .collect();
    let local = |p: usize, t: i64| t + offsets[p];
    let mut trace = Trace::for_ranks(PROCS);
    let mut now = [0i64; PROCS];
    for m in 0..msgs {
        let from = rng.gen_range(0usize..PROCS);
        let to = (from + rng.gen_range(1usize..PROCS)) % PROCS;
        let send_true = now[from] + rng.gen_range(5i64..40);
        now[from] = send_true;
        let recv_true = send_true.max(now[to]) + 4 + rng.gen_range(0i64..20);
        now[to] = recv_true;
        trace.procs[from].push(
            Time::from_us(local(from, send_true)),
            EventKind::Send { to: Rank(to as u32), tag: Tag(m as u32), bytes: 64 },
        );
        trace.procs[to].push(
            Time::from_us(local(to, recv_true)),
            EventKind::Recv { from: Rank(from as u32), tag: Tag(m as u32), bytes: 64 },
        );
    }
    let end = *now.iter().max().expect("non-empty") + 100;
    let measure = |p: usize, t: i64| -> Option<OffsetMeasurement> {
        (p != 0).then(|| OffsetMeasurement {
            worker_time: Time::from_us(local(p, t)),
            offset: Dur::from_us(-offsets[p] + 2),
            rtt: Dur::from_us(10),
        })
    };
    let init: Vec<_> = (0..PROCS).map(|p| measure(p, 0)).collect();
    let fin: Vec<_> = (0..PROCS).map(|p| measure(p, end)).collect();
    (trace, init, fin)
}

/// One job, pre-encoded both ways: as a service `JobSpec` (stream input,
/// so both sides run the identical decode) and as a wire request.
struct BenchJob {
    init: Measurements,
    fin: Measurements,
    bytes: Vec<u8>,
}

fn job_set(jobs: usize, msgs: usize) -> (Vec<BenchJob>, usize) {
    let mut events = 0;
    let set = (0..jobs)
        .map(|j| {
            let (trace, init, fin) = job_trace(2000 + j as u64, msgs);
            events += trace.n_events();
            let bytes = to_binary_columnar_blocked(&trace, 1024).to_vec();
            BenchJob { init, fin, bytes }
        })
        .collect();
    (set, events)
}

/// In-process side: submit every job to a fresh service as a stream
/// input, wait for all outcomes. Seconds of wall time.
fn run_inproc(set: &[BenchJob], lmin: &Arc<dyn MinLatency + Send + Sync>) -> f64 {
    let service = SyncService::start(ServiceConfig {
        queue_capacity: set.len().max(64),
        ..ServiceConfig::default()
    });
    let t0 = Instant::now();
    let handles: Vec<_> = set
        .iter()
        .map(|j| {
            let spec = JobSpec::new(
                JobInput::Stream(chunked(&j.bytes, 256 * 1024)),
                j.init.clone(),
                Some(j.fin.clone()),
                Arc::clone(lmin),
                PipelineConfig::default(),
            );
            service.submit(spec).expect("admitted")
        })
        .collect();
    for h in handles {
        h.wait().expect("in-process job succeeds");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    service.shutdown();
    elapsed
}

/// Socket side: `clients` connections submit the job set round-robin
/// through the framed protocol against a fresh loopback server.
fn run_socket(set: &[BenchJob], lmin: UniformLatency, clients: usize) -> f64 {
    let server = NetServer::start_loopback(NetServerConfig {
        tenants: vec![TenantConfig::new("bench")],
        ingest_window: 4 << 20,
        service: ServiceConfig {
            queue_capacity: set.len().max(64),
            ..ServiceConfig::default()
        },
    })
    .expect("bind loopback");
    let addr = server.local_addr();

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let set = &set;
            scope.spawn(move || {
                let mut client = SyncClient::connect(addr, "bench").expect("connect");
                for j in set.iter().skip(c).step_by(clients) {
                    let config = WireJobConfig::new(
                        &PipelineConfig::default(),
                        WireLatency::Uniform(lmin.0.as_ps()),
                    )
                    .with_measurements(&j.init, Some(&j.fin));
                    let req = JobRequest { config, chunks: vec![j.bytes.clone()] };
                    let out = client.submit(&req).expect("socket job succeeds");
                    assert!(!out.stream.is_empty(), "corrected stream came back");
                    std::hint::black_box(&out);
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    server.shutdown();
    elapsed
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    xs[xs.len() / 2]
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (jobs, msgs) = if test_mode { (24, 800) } else { (96, 2500) };
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let clients = cpus.clamp(1, 4);
    let lmin = UniformLatency(Dur::from_us(4));
    let lmin_arc: Arc<dyn MinLatency + Send + Sync> = Arc::new(lmin);

    let (set, events) = job_set(jobs, msgs);
    println!(
        "syncd_net: {jobs} jobs, {events} events total, {clients} client(s), {cpus} cpu(s)"
    );

    const ROUNDS: usize = 3;
    let mut inproc_times = Vec::with_capacity(ROUNDS);
    let mut socket_times = Vec::with_capacity(ROUNDS);
    let mut ratios = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        let i = run_inproc(&set, &lmin_arc);
        let s = run_socket(&set, lmin, clients);
        println!(
            "  round {}: in-process {i:.3}s, socket {s:.3}s, ratio {:.3}x",
            round + 1,
            i / s
        );
        inproc_times.push(i);
        socket_times.push(s);
        ratios.push(i / s);
    }
    let t_inproc = median(&mut inproc_times);
    let t_socket = median(&mut socket_times);
    let ratio = median(&mut ratios);
    let ratio_min = ratios.first().copied().expect("rounds ran"); // sorted by median()

    let inproc_jps = jobs as f64 / t_inproc;
    let socket_jps = jobs as f64 / t_socket;
    println!("  in-process  {inproc_jps:>9.1} jobs/s  (median {t_inproc:.3}s)");
    println!("  socket      {socket_jps:>9.1} jobs/s  (median {t_socket:.3}s)");
    println!("  socket/in-process ratio: median {ratio:.3}x, min {ratio_min:.3}x");

    let json = format!(
        "{{\n  \"jobs\": {jobs},\n  \"events\": {events},\n  \"cpus\": {cpus},\n  \
         \"clients\": {clients},\n  \"rounds\": {ROUNDS},\n  \
         \"inproc_jobs_per_sec\": {inproc_jps:.2},\n  \
         \"socket_jobs_per_sec\": {socket_jps:.2},\n  \
         \"socket_over_inproc_ratio\": {ratio:.3},\n  \
         \"socket_over_inproc_ratio_min\": {ratio_min:.3}\n}}\n"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_syncd_net.json");
    std::fs::write(out, json).expect("write BENCH_syncd_net.json");
    println!("wrote {out}");

    // CPU-aware floor. On one CPU the socket path time-slices with the
    // executors and pays serialization on the critical path: allow 30%.
    // With real cores the framing work overlaps job execution, so the
    // wire should cost little — but keep the same floor and let the JSON
    // trend line catch soft regressions; hard-failing CI on loopback
    // scheduler noise costs more than it protects.
    assert!(
        ratio >= 0.7,
        "socket path below 0.7x of in-process throughput on {cpus} cpu(s): {ratio:.3}x"
    );
}
