//! Figs. 5/6 regeneration under Criterion: residual deviations after linear
//! offset interpolation on the three platforms (shortened runs).

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::common::{
    cluster_one_rank_per_node, measure_deviations, Correction, RunLength,
};
use simclock::{Platform, TimerKind};

fn residual(platform: Platform, timer: TimerKind, dur: f64, seed: u64) -> f64 {
    let mut cluster = cluster_one_rank_per_node(platform, timer, 4, dur * 1.2 + 30.0, seed);
    let len = RunLength { duration_s: dur, sample_every_s: (dur / 40.0).max(1.0) };
    let s = measure_deviations(&mut cluster, len, Correction::Linear, 6);
    s.iter().map(|x| x.max_abs_us()).fold(0.0, f64::max)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_fig6");
    g.sample_size(10);
    g.bench_function("fig5a_xeon_tsc", |b| {
        b.iter(|| residual(Platform::XeonCluster, TimerKind::IntelTsc, 120.0, 1))
    });
    g.bench_function("fig5b_powerpc_tb", |b| {
        b.iter(|| residual(Platform::PowerPcCluster, TimerKind::IbmTimeBase, 120.0, 2))
    });
    g.bench_function("fig5c_opteron_gtod", |b| {
        b.iter(|| residual(Platform::OpteronCluster, TimerKind::Gettimeofday, 120.0, 3))
    });
    g.bench_function("fig6_xeon_tsc_short", |b| {
        b.iter(|| residual(Platform::XeonCluster, TimerKind::IntelTsc, 60.0, 4))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
