//! Fig. 4 regeneration under Criterion: deviation measurement after offset
//! alignment for the three timer technologies (shortened runs).

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::common::{
    cluster_one_rank_per_node, measure_deviations, Correction, RunLength,
};
use simclock::{Platform, TimerKind};

fn series(timer: TimerKind, seed: u64) -> f64 {
    let mut cluster =
        cluster_one_rank_per_node(Platform::XeonCluster, timer, 4, 80.0, seed);
    let len = RunLength { duration_s: 60.0, sample_every_s: 2.0 };
    let s = measure_deviations(&mut cluster, len, Correction::AlignOnly, 6);
    s.iter().map(|x| x.max_abs_us()).fold(0.0, f64::max)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("a_mpi_wtime", |b| b.iter(|| series(TimerKind::MpiWtime, 1)));
    g.bench_function("b_gettimeofday", |b| {
        b.iter(|| series(TimerKind::Gettimeofday, 2))
    });
    g.bench_function("c_intel_tsc", |b| b.iter(|| series(TimerKind::IntelTsc, 3)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
