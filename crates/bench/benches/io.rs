//! Trace I/O throughput: text/binary codecs and on-disk archives.

use bench::skewed_trace;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tracefmt::io::{from_binary, from_text, to_binary, to_text};

fn bench_codecs(c: &mut Criterion) {
    let (_, trace) = skewed_trace(8, 200, 29);
    let events = trace.n_events() as u64;
    let mut g = c.benchmark_group("codecs");
    g.throughput(Throughput::Elements(events));
    g.bench_function("text_encode", |b| b.iter(|| to_text(&trace).len()));
    let text = to_text(&trace);
    g.bench_function("text_decode", |b| b.iter(|| from_text(&text).unwrap().n_events()));
    g.bench_function("binary_encode", |b| b.iter(|| to_binary(&trace).len()));
    let bin = to_binary(&trace);
    g.bench_function("binary_decode", |b| {
        b.iter(|| from_binary(bin.clone()).unwrap().n_events())
    });
    g.finish();
}

fn bench_archive(c: &mut Criterion) {
    let (_, trace) = skewed_trace(8, 200, 31);
    let dir = std::env::temp_dir().join(format!("drift-lab-bench-{}", std::process::id()));
    let mut g = c.benchmark_group("archive");
    g.sample_size(10);
    g.bench_function("write_read_round_trip", |b| {
        b.iter(|| {
            tracefmt::archive::write_archive(&dir, &trace).unwrap();
            tracefmt::archive::read_archive(&dir).unwrap().n_events()
        })
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_analysis(c: &mut Criterion) {
    let (_, trace) = skewed_trace(16, 300, 37);
    let events = trace.n_events() as u64;
    let mut g = c.benchmark_group("analysis");
    g.throughput(Throughput::Elements(events));
    g.bench_function("match_messages", |b| {
        b.iter(|| tracefmt::match_messages(&trace).messages.len())
    });
    g.bench_function("match_collectives", |b| {
        b.iter(|| tracefmt::match_collectives(&trace).unwrap().len())
    });
    g.bench_function("profile", |b| b.iter(|| tracefmt::profile(&trace).messages));
    g.finish();
}

criterion_group!(benches, bench_codecs, bench_archive, bench_analysis);
criterion_main!(benches);
