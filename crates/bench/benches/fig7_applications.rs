//! Fig. 7 regeneration under Criterion: POP-like and SMG2000-like traced
//! runs with Scalasca-style interpolation and violation census (small
//! scale; the full-size numbers come from the `experiments` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::fig7::{census_after_interpolation, pop_program, smg_program, traced_run};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("pop_traced_census", |b| {
        b.iter(|| {
            let (prog, dur, k) = pop_program(120);
            let mut tr = traced_run(&prog, dur, k, 5);
            census_after_interpolation(&mut tr).violated_pct
        })
    });
    g.bench_function("smg_traced_census", |b| {
        b.iter(|| {
            let (prog, dur, k) = smg_program(300);
            let mut tr = traced_run(&prog, dur, k, 6);
            census_after_interpolation(&mut tr).violated_pct
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
