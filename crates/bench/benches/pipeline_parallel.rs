//! Throughput of the synchronisation pipeline on a large trace (≥100k
//! events): the per-stage-reanalysis baseline (what the pipeline did before
//! analysis caching — matching recomputed for every census), the cached
//! sequential path, and the sharded parallel path.
//!
//! ```sh
//! cargo bench -p bench --bench pipeline_parallel
//! ```

use clocksync::{
    apply_maps, controlled_logical_clock, synchronize, ClcParams, LinearInterpolation,
    OffsetMeasurement, ParallelConfig, PipelineConfig, PreSync, TimestampMap,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simclock::{Dur, Time};
use tracefmt::{
    check_collectives, check_p2p, match_collectives, match_messages, EventKind, Rank, Tag,
    Trace, UniformLatency,
};

const PROCS: usize = 16;
const MSGS: usize = 60_000; // ≥120k events

/// A causally valid trace recorded through skewed, linearly drifting
/// clocks, plus init/finalize offset measurements.
fn big_trace(
    seed: u64,
) -> (
    Trace,
    Vec<Option<OffsetMeasurement>>,
    Vec<Option<OffsetMeasurement>>,
    UniformLatency,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let offsets: Vec<i64> = (0..PROCS)
        .map(|p| if p == 0 { 0 } else { rng.gen_range(-500i64..500) })
        .collect();
    let rates: Vec<f64> = (0..PROCS)
        .map(|p| if p == 0 { 0.0 } else { rng.gen_range(-30e-6..30e-6) })
        .collect();
    let local = |p: usize, true_us: i64| -> i64 {
        true_us + offsets[p] + (rates[p] * true_us as f64).round() as i64
    };
    let lmin_us = 4i64;
    let mut trace = Trace::for_ranks(PROCS);
    let mut now = [0i64; PROCS];
    for m in 0..MSGS {
        let from = rng.gen_range(0usize..PROCS);
        let to = (from + rng.gen_range(1usize..PROCS)) % PROCS;
        let send_true = now[from] + rng.gen_range(5i64..40);
        now[from] = send_true;
        let recv_true = send_true.max(now[to]) + lmin_us + rng.gen_range(0i64..20);
        now[to] = recv_true;
        trace.procs[from].push(
            Time::from_us(local(from, send_true)),
            EventKind::Send { to: Rank(to as u32), tag: Tag(m as u32), bytes: 64 },
        );
        trace.procs[to].push(
            Time::from_us(local(to, recv_true)),
            EventKind::Recv { from: Rank(from as u32), tag: Tag(m as u32), bytes: 64 },
        );
    }
    let end = *now.iter().max().expect("non-empty") + 100;
    let measure = |p: usize, true_us: i64| -> Option<OffsetMeasurement> {
        (p != 0).then(|| OffsetMeasurement {
            worker_time: Time::from_us(local(p, true_us)),
            offset: Dur::from_us(true_us - local(p, true_us) + 3),
            rtt: Dur::from_us(10),
        })
    };
    let init: Vec<_> = (0..PROCS).map(|p| measure(p, 0)).collect();
    let fin: Vec<_> = (0..PROCS).map(|p| measure(p, end)).collect();
    (trace, init, fin, UniformLatency(Dur::from_us(lmin_us)))
}

/// The pre-caching sequential pipeline: interpolation + CLC with matching
/// and collective reconstruction recomputed for every violation census and
/// again inside the CLC — exactly what `synchronize` did before the
/// shared-analysis refactor.
fn seed_style_pipeline(
    trace: &mut Trace,
    init: &[Option<OffsetMeasurement>],
    fin: &[Option<OffsetMeasurement>],
    lmin: &UniformLatency,
) -> usize {
    let census = |t: &Trace| {
        let m = match_messages(t);
        let insts = match_collectives(t).expect("well-formed");
        check_p2p(t, &m, lmin).violations.len()
            + check_collectives(t, &insts, lmin).logical_violated
    };
    let mut total = census(trace);
    let maps: Vec<Box<dyn TimestampMap>> = init
        .iter()
        .zip(fin)
        .map(|(a, b)| -> Box<dyn TimestampMap> {
            match (a, b) {
                (Some(a), Some(b)) => Box::new(LinearInterpolation::new(a, b)),
                _ => Box::new(clocksync::IdentityMap),
            }
        })
        .collect();
    apply_maps(trace, &maps);
    total += census(trace);
    controlled_logical_clock(trace, lmin, &ClcParams::default()).expect("CLC runs");
    total += census(trace);
    total
}

fn bench_pipeline(c: &mut Criterion) {
    let (trace, init, fin, lmin) = big_trace(7);
    let n_events = trace.n_events() as u64;
    assert!(n_events >= 100_000, "bench trace too small: {n_events}");

    {
        let mut t = trace.clone();
        let cfg = PipelineConfig {
            presync: PreSync::Linear,
            clc: Some(ClcParams::default()),
            parallel: None,
            ..Default::default()
        };
        let rep = synchronize(&mut t, &init, Some(&fin), &lmin, &cfg).unwrap();
        eprintln!("{}", rep.stats.render());
    }

    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n_events));

    g.bench_function("sequential_reanalysis", |b| {
        b.iter(|| {
            let mut t = trace.clone();
            seed_style_pipeline(&mut t, &init, &fin, &lmin)
        })
    });

    let seq_cfg = PipelineConfig {
        presync: PreSync::Linear,
        clc: Some(ClcParams::default()),
        parallel: None,
        ..Default::default()
    };
    g.bench_function("sequential_cached", |b| {
        b.iter(|| {
            let mut t = trace.clone();
            synchronize(&mut t, &init, Some(&fin), &lmin, &seq_cfg)
                .expect("pipeline runs")
                .after_clc
                .expect("CLC ran")
                .total_violations()
        })
    });

    let par_cfg = PipelineConfig {
        parallel: Some(ParallelConfig::default()),
        ..seq_cfg.clone()
    };
    g.bench_function("parallel_sharded", |b| {
        b.iter(|| {
            let mut t = trace.clone();
            synchronize(&mut t, &init, Some(&fin), &lmin, &par_cfg)
                .expect("pipeline runs")
                .after_clc
                .expect("CLC ran")
                .total_violations()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
