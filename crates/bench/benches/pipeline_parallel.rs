//! Throughput of the synchronisation pipeline on a large trace (≥100k
//! events): the per-stage-reanalysis baseline (what the pipeline did before
//! analysis caching — matching recomputed for every census), the cached
//! sequential path, and the sharded parallel path (CSR-lowered analysis +
//! batched ring replay), plus an engine-level serial-vs-replay CLC
//! comparison on the same trace.
//!
//! Run with `cargo bench -p bench --bench pipeline_parallel` (add
//! `-- --test` for the CI smoke run: fewer repetitions, same report).
//! Either way the events/sec summary is written to `BENCH_pipeline.json`
//! at the repository root.
//!
//! The CLC speedup gate is CPU-aware: the replay engine runs one worker
//! per process timeline, so on a single-core host the workers only
//! time-slice one core and wall-clock parallel speedup is physically
//! impossible — the bench then only sanity-checks that the batched replay
//! stays within a small constant factor of serial (and records the honest
//! numbers plus the `cpus` count in the JSON for the CI gate to interpret).

use clocksync::{
    apply_maps, controlled_logical_clock, controlled_logical_clock_parallel, synchronize,
    ClcParams, LinearInterpolation, OffsetMeasurement, ParallelConfig, PipelineConfig, PreSync,
    TimestampMap,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simclock::{Dur, Time};
use std::time::{Duration, Instant};
use tracefmt::{
    check_collectives, check_p2p, match_collectives, match_messages, CensusPlan, EventKind,
    Rank, Tag, Trace, TraceColumns, UniformLatency,
};

const PROCS: usize = 16;
const MSGS: usize = 60_000; // ≥120k events

/// A causally valid trace recorded through skewed, linearly drifting
/// clocks, plus init/finalize offset measurements.
fn big_trace(
    seed: u64,
) -> (
    Trace,
    Vec<Option<OffsetMeasurement>>,
    Vec<Option<OffsetMeasurement>>,
    UniformLatency,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let offsets: Vec<i64> = (0..PROCS)
        .map(|p| if p == 0 { 0 } else { rng.gen_range(-500i64..500) })
        .collect();
    let rates: Vec<f64> = (0..PROCS)
        .map(|p| if p == 0 { 0.0 } else { rng.gen_range(-30e-6..30e-6) })
        .collect();
    let local = |p: usize, true_us: i64| -> i64 {
        true_us + offsets[p] + (rates[p] * true_us as f64).round() as i64
    };
    let lmin_us = 4i64;
    let mut trace = Trace::for_ranks(PROCS);
    let mut now = [0i64; PROCS];
    for m in 0..MSGS {
        let from = rng.gen_range(0usize..PROCS);
        let to = (from + rng.gen_range(1usize..PROCS)) % PROCS;
        let send_true = now[from] + rng.gen_range(5i64..40);
        now[from] = send_true;
        let recv_true = send_true.max(now[to]) + lmin_us + rng.gen_range(0i64..20);
        now[to] = recv_true;
        trace.procs[from].push(
            Time::from_us(local(from, send_true)),
            EventKind::Send { to: Rank(to as u32), tag: Tag(m as u32), bytes: 64 },
        );
        trace.procs[to].push(
            Time::from_us(local(to, recv_true)),
            EventKind::Recv { from: Rank(from as u32), tag: Tag(m as u32), bytes: 64 },
        );
    }
    let end = *now.iter().max().expect("non-empty") + 100;
    let measure = |p: usize, true_us: i64| -> Option<OffsetMeasurement> {
        (p != 0).then(|| OffsetMeasurement {
            worker_time: Time::from_us(local(p, true_us)),
            offset: Dur::from_us(true_us - local(p, true_us) + 3),
            rtt: Dur::from_us(10),
        })
    };
    let init: Vec<_> = (0..PROCS).map(|p| measure(p, 0)).collect();
    let fin: Vec<_> = (0..PROCS).map(|p| measure(p, end)).collect();
    (trace, init, fin, UniformLatency(Dur::from_us(lmin_us)))
}

/// The pre-caching sequential pipeline: interpolation + CLC with matching
/// and collective reconstruction recomputed for every violation census and
/// again inside the CLC — exactly what `synchronize` did before the
/// shared-analysis refactor.
fn seed_style_pipeline(
    trace: &mut Trace,
    init: &[Option<OffsetMeasurement>],
    fin: &[Option<OffsetMeasurement>],
    lmin: &UniformLatency,
) -> usize {
    let census = |t: &Trace| {
        let m = match_messages(t);
        let insts = match_collectives(t).expect("well-formed");
        check_p2p(t, &m, lmin).violations.len()
            + check_collectives(t, &insts, lmin).logical_violated
    };
    let mut total = census(trace);
    let maps: Vec<Box<dyn TimestampMap>> = init
        .iter()
        .zip(fin)
        .map(|(a, b)| -> Box<dyn TimestampMap> {
            match (a, b) {
                (Some(a), Some(b)) => Box::new(LinearInterpolation::new(a, b)),
                _ => Box::new(clocksync::IdentityMap),
            }
        })
        .collect();
    apply_maps(trace, &maps);
    total += census(trace);
    controlled_logical_clock(trace, lmin, &ClcParams::default()).expect("CLC runs");
    total += census(trace);
    total
}

/// Best-of-N wall time of `f` run on a fresh clone of `trace` each
/// iteration (the clone is excluded from the timing; the minimum is the
/// least noisy estimator for a deterministic workload).
fn best_of_cloned<R>(iters: usize, trace: &Trace, mut f: impl FnMut(&mut Trace) -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let mut t = trace.clone();
        let t0 = Instant::now();
        let out = f(&mut t);
        let dt = t0.elapsed();
        std::hint::black_box(out);
        if dt < best {
            best = dt;
        }
    }
    best
}

/// Best-of-N wall time of `f` with no per-iteration setup (for read-only
/// kernels that take their input by reference).
fn best_of<R>(iters: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = f();
        let dt = t0.elapsed();
        std::hint::black_box(out);
        if dt < best {
            best = dt;
        }
    }
    best
}

fn events_per_sec(n_events: usize, took: Duration) -> f64 {
    n_events as f64 / took.as_secs_f64()
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let iters = if test_mode { 3 } else { 10 };

    let (trace, init, fin, lmin) = big_trace(7);
    let n_events = trace.n_events();
    assert!(n_events >= 100_000, "bench trace too small: {n_events}");
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let seq_cfg = PipelineConfig {
        presync: PreSync::Linear,
        clc: Some(ClcParams::default()),
        parallel: None,
        ..Default::default()
    };
    let par_cfg = PipelineConfig {
        parallel: Some(ParallelConfig::default()),
        ..seq_cfg.clone()
    };

    // Bit-identity first: the parallel path must reproduce the sequential
    // one exactly before its throughput means anything.
    {
        let mut seq = trace.clone();
        let mut par = trace.clone();
        let rs = synchronize(&mut seq, &init, Some(&fin), &lmin, &seq_cfg).unwrap();
        let rp = synchronize(&mut par, &init, Some(&fin), &lmin, &par_cfg).unwrap();
        for p in 0..seq.n_procs() {
            assert_eq!(
                seq.procs[p].events, par.procs[p].events,
                "parallel pipeline diverged from sequential on proc {p}"
            );
        }
        assert_eq!(
            rs.after_clc.map(|c| c.total_violations()),
            rp.after_clc.map(|c| c.total_violations()),
        );
        eprintln!("{}", rp.stats.render());
    }

    // Full-pipeline engines.
    let t_reanalysis =
        best_of_cloned(iters, &trace, |t| seed_style_pipeline(t, &init, &fin, &lmin));
    let t_seq = best_of_cloned(iters, &trace, |t| {
        synchronize(t, &init, Some(&fin), &lmin, &seq_cfg).expect("pipeline runs")
    });
    let t_par = best_of_cloned(iters, &trace, |t| {
        synchronize(t, &init, Some(&fin), &lmin, &par_cfg).expect("pipeline runs")
    });

    // Engine-level CLC comparison: serial map-based reference vs CSR
    // batched-ring replay, on identical presynced input.
    let presynced = {
        let mut t = trace.clone();
        let presync_only = PipelineConfig { clc: None, ..seq_cfg.clone() };
        synchronize(&mut t, &init, Some(&fin), &lmin, &presync_only).expect("presync runs");
        t
    };
    let params = ClcParams::default();
    let t_clc_serial = best_of_cloned(iters, &presynced, |t| {
        controlled_logical_clock(t, &lmin, &params).expect("serial CLC runs")
    });
    let t_clc_par = best_of_cloned(iters, &presynced, |t| {
        controlled_logical_clock_parallel(t, &lmin, &params).expect("parallel CLC runs")
    });

    // Kernel-level census comparison, both single-threaded on identical
    // input: the AoS reference walk (`check_p2p` + `check_collectives`,
    // HashMap-matched events re-located per check) against the planned
    // columnar kernels (event offsets and l_min bounds frozen once into
    // flat check lanes, then chunked branchless/AVX2 passes gathering
    // straight from the columns' timestamp slab — zero copies per round).
    let matching = match_messages(&presynced);
    let insts = match_collectives(&presynced).expect("well-formed");
    let cols = TraceColumns::gather(&presynced);
    let plan = CensusPlan::for_columns(&cols, &matching.messages, &insts, &lmin)
        .expect("plan builds");
    {
        // The kernels must reproduce the reference census bit for bit
        // before their throughput means anything.
        let flat = plan.flat_of(&cols);
        let pk = plan.p2p_census(flat);
        let pr = check_p2p(&presynced, &matching, &lmin);
        assert_eq!(pk.total, pr.total);
        assert_eq!(pk.violations, pr.violations);
        assert_eq!(pk.reversed, pr.reversed);
        let ck = plan.collective_census(flat);
        let cr = check_collectives(&presynced, &insts, &lmin);
        assert_eq!(ck.instances, cr.instances);
        assert_eq!(ck.logical_total, cr.logical_total);
        assert_eq!(ck.logical_violated, cr.logical_violated);
        assert_eq!(ck.logical_reversed, cr.logical_reversed);
        assert_eq!(ck.instances_affected, cr.instances_affected);
    }
    // Both census lanes finish in well under a millisecond, so a much
    // deeper best-of drives each minimum to its true floor — the ratio
    // gate below should compare kernels, not scheduler noise.
    let census_iters = iters.max(100);
    let t_census_ref = best_of(census_iters, || {
        let p = check_p2p(&presynced, &matching, &lmin);
        let c = check_collectives(&presynced, &insts, &lmin);
        (p.violations.len(), c.logical_violated)
    });
    // The kernel lane borrows the live slab per pass — exactly what the
    // pipeline does per census stage, so the comparison stays honest.
    let t_census_kernel = best_of(census_iters, || {
        let flat = plan.flat_of(&cols);
        let p = plan.p2p_census(flat);
        let c = plan.collective_census(flat);
        (p.violations.len(), c.logical_violated)
    });

    let eps_reanalysis = events_per_sec(n_events, t_reanalysis);
    let eps_seq = events_per_sec(n_events, t_seq);
    let eps_par = events_per_sec(n_events, t_par);
    let eps_clc_serial = events_per_sec(n_events, t_clc_serial);
    let eps_clc_par = events_per_sec(n_events, t_clc_par);
    let eps_census_ref = events_per_sec(n_events, t_census_ref);
    let eps_census = events_per_sec(n_events, t_census_kernel);
    let pipeline_speedup = eps_par / eps_seq;
    let clc_speedup = eps_clc_par / eps_clc_serial;
    let census_speedup = eps_census / eps_census_ref;

    println!("pipeline: {n_events} events, {PROCS} procs, {cpus} cpu(s)");
    println!("  seed_reanalysis  {eps_reanalysis:>12.0} events/s  ({t_reanalysis:?})");
    println!("  sequential       {eps_seq:>12.0} events/s  ({t_seq:?})");
    println!("  parallel         {eps_par:>12.0} events/s  ({t_par:?})");
    println!("  clc_serial       {eps_clc_serial:>12.0} events/s  ({t_clc_serial:?})");
    println!("  clc_parallel     {eps_clc_par:>12.0} events/s  ({t_clc_par:?})");
    println!("  census_reference {eps_census_ref:>12.0} events/s  ({t_census_ref:?})");
    println!("  census_kernel    {eps_census:>12.0} events/s  ({t_census_kernel:?})");
    println!("  parallel/sequential pipeline speedup: {pipeline_speedup:.2}x");
    println!("  parallel/serial CLC speedup: {clc_speedup:.2}x");
    println!("  kernel/reference census speedup: {census_speedup:.2}x");

    let json = format!(
        "{{\n  \"n_events\": {n_events},\n  \"procs\": {PROCS},\n  \"cpus\": {cpus},\n  \
         \"seed_reanalysis_events_per_sec\": {eps_reanalysis:.0},\n  \
         \"sequential_events_per_sec\": {eps_seq:.0},\n  \
         \"parallel_events_per_sec\": {eps_par:.0},\n  \
         \"parallel_over_sequential_speedup\": {pipeline_speedup:.3},\n  \
         \"clc_serial_events_per_sec\": {eps_clc_serial:.0},\n  \
         \"clc_parallel_events_per_sec\": {eps_clc_par:.0},\n  \
         \"clc_parallel_over_serial_speedup\": {clc_speedup:.3},\n  \
         \"census_reference_events_per_sec\": {eps_census_ref:.0},\n  \
         \"census_events_per_sec\": {eps_census:.0},\n  \
         \"census_kernel_over_reference_speedup\": {census_speedup:.3}\n}}\n",
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(out, json).expect("write BENCH_pipeline.json");
    println!("wrote {out}");

    // The cached pipeline must beat the reanalysis baseline outright —
    // that regression gate is CPU-independent.
    assert!(
        eps_seq / eps_reanalysis >= 1.2,
        "cached pipeline must be >= 1.2x the reanalysis baseline, got {:.2}x",
        eps_seq / eps_reanalysis
    );
    // The CLC speedup gate depends on real parallelism being available.
    if cpus >= 4 {
        assert!(
            clc_speedup >= 1.3,
            "parallel CLC must be >= 1.3x serial on {cpus} cpus, got {clc_speedup:.2}x"
        );
    } else if cpus >= 2 {
        assert!(
            clc_speedup >= 0.95,
            "parallel CLC must be >= 0.95x serial on {cpus} cpus, got {clc_speedup:.2}x"
        );
    } else {
        // Single-cpu host: wall-clock parallel speedup is impossible, but
        // the parallel entry point now falls back to the serial CSR kernel
        // outright, so it must stay within measurement noise of serial.
        println!("  (single-cpu host: serial-fallback parity floor)");
        assert!(
            clc_speedup >= 0.95,
            "1-cpu serial fallback must stay >= 0.95x serial, got {clc_speedup:.2}x"
        );
    }
    // Both census lanes are single-threaded, so this gate is CPU-count
    // independent: the planned columnar kernels must beat the AoS
    // reference walk by the tentpole's 3x floor.
    assert!(
        census_speedup >= 3.0,
        "census kernels must be >= 3x the AoS reference, got {census_speedup:.2}x"
    );
}
