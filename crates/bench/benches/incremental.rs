//! Incremental windowed engine: throughput and the O(window) residency
//! claim, measured.
//!
//! The same skewed message workload is run at 1x and 10x the event count
//! through [`synchronize_stream_incremental`] with a fixed 1024-event
//! window. Two things are recorded per scale:
//!
//! * corrected-stream throughput (events/sec end to end: index, CLC with
//!   backward amortization, frame re-encode);
//! * the engine's true resident-column high-water mark
//!   ([`peak_resident_column_bytes`]), against the batch engine's
//!   analytic `8 x n_events`.
//!
//! The bench fails if the windowed high-water mark is not (near) flat
//! under the 10x growth — that is the whole contract of the engine — and
//! `scripts/ci.sh` re-checks the written report with the same rule so a
//! regression cannot hide behind a stale JSON.
//!
//! Run with `cargo bench -p bench --bench incremental` (add `-- --test`
//! for the CI smoke run: fewer repetitions, same report). Either way the
//! summary is written to `BENCH_incremental.json` at the repository root.
//!
//! [`peak_resident_column_bytes`]: clocksync::PipelineStats::peak_resident_column_bytes

use clocksync::{
    synchronize_stream_incremental, ClcParams, IncrementalReport, PipelineConfig, PreSync,
    TimestampStorage,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simclock::{Dur, Time};
use std::time::{Duration, Instant};
use tracefmt::io::to_binary_columnar_v3_blocked;
use tracefmt::{EventKind, Rank, Tag, Trace, UniformLatency};

const PROCS: usize = 8;
const WINDOW: usize = 1024;
const STREAM_CHUNK: usize = 256 * 1024;

/// A causally valid message trace with skewed clocks (same shape as the
/// ingest bench) — the skews produce real clock-condition violations, so
/// the CLC does real forward *and* backward work.
fn skewed_trace(msgs: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let offsets: Vec<i64> = (0..PROCS)
        .map(|p| if p == 0 { 0 } else { rng.gen_range(-500i64..500) })
        .collect();
    let mut trace = Trace::for_ranks(PROCS);
    let mut now = [0i64; PROCS];
    for m in 0..msgs {
        let from = rng.gen_range(0usize..PROCS);
        let to = (from + rng.gen_range(1usize..PROCS)) % PROCS;
        let send_true = now[from] + rng.gen_range(5i64..40);
        now[from] = send_true;
        let recv_true = send_true.max(now[to]) + 4 + rng.gen_range(0i64..20);
        now[to] = recv_true;
        trace.procs[from].push(
            Time::from_us(send_true + offsets[from]),
            EventKind::Send { to: Rank(to as u32), tag: Tag(m as u32), bytes: 64 },
        );
        trace.procs[to].push(
            Time::from_us(recv_true + offsets[to]),
            EventKind::Recv { from: Rank(from as u32), tag: Tag(m as u32), bytes: 64 },
        );
    }
    trace
}

/// Best-of-N wall time (minimum is the least noisy estimator for a
/// deterministic workload); also returns the last run's report.
fn best_of(
    iters: usize,
    mut f: impl FnMut() -> (Vec<Vec<u8>>, IncrementalReport),
) -> (Duration, IncrementalReport) {
    let mut best = Duration::MAX;
    let mut report = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let (frames, rep) = f();
        let dt = t0.elapsed();
        std::hint::black_box(frames);
        if dt < best {
            best = dt;
        }
        report = Some(rep);
    }
    (best, report.expect("at least one iteration"))
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let iters = if test_mode { 3 } else { 10 };

    let cfg = PipelineConfig {
        presync: PreSync::None,
        clc: Some(ClcParams::default()),
        parallel: None,
        storage: TimestampStorage::Columnar,
        ..PipelineConfig::default()
    };
    let init = vec![None; PROCS];
    let lmin = UniformLatency(Dur::from_us(1));

    let mut scales = Vec::new();
    for (label, msgs) in [("small", 20_000usize), ("large", 200_000)] {
        let trace = skewed_trace(msgs, 11);
        let n_events = trace.n_events();
        let bytes = to_binary_columnar_v3_blocked(&trace, 1024);
        let (took, rep) = best_of(iters, || {
            let chunks: Vec<&[u8]> = bytes.chunks(STREAM_CHUNK).collect();
            synchronize_stream_incremental(&chunks, &init, None, &lmin, &cfg, WINDOW)
                .expect("incremental run succeeds")
        });
        let eps = n_events as f64 / took.as_secs_f64();
        let peak = rep.stats.peak_resident_column_bytes;
        let batch_peak = 8 * n_events as u64;
        println!(
            "incremental {label}: {n_events} events, {eps:>12.0} events/s ({took:?}), \
             peak columns {peak} B (batch would pin {batch_peak} B)"
        );
        assert!(
            rep.clc.as_ref().is_some_and(|c| !c.jumps.is_empty()),
            "{label}: the workload produced no jumps — the CLC leg is not being exercised"
        );
        scales.push((n_events, eps, peak, batch_peak));
    }

    let (small_n, small_eps, small_peak, _) = scales[0];
    let (large_n, large_eps, large_peak, large_batch_peak) = scales[1];
    let growth = large_peak as f64 / small_peak as f64;
    let batch_over_windowed = large_batch_peak as f64 / large_peak as f64;
    println!("  residency growth under 10x events: {growth:.3}x (flat = 1.0x)");
    println!("  batch/windowed resident columns at 10x: {batch_over_windowed:.1}x");

    let json = format!(
        "{{\n  \"window_events\": {WINDOW},\n  \
         \"small_n_events\": {small_n},\n  \
         \"large_n_events\": {large_n},\n  \
         \"small_events_per_sec\": {small_eps:.0},\n  \
         \"large_events_per_sec\": {large_eps:.0},\n  \
         \"small_peak_resident_bytes\": {small_peak},\n  \
         \"large_peak_resident_bytes\": {large_peak},\n  \
         \"residency_growth_under_10x\": {growth:.3},\n  \
         \"batch_over_windowed_resident\": {batch_over_windowed:.1}\n}}\n"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json");
    std::fs::write(out, json).expect("write BENCH_incremental.json");
    println!("wrote {out}");

    assert!(
        large_n >= 9 * small_n,
        "the large scale did not actually grow: {small_n} -> {large_n} events"
    );
    assert!(
        growth < 2.0,
        "windowed residency must stay (near) flat under 10x events, grew {growth:.2}x"
    );
    assert!(
        batch_over_windowed >= 4.0,
        "windowed residency must undercut the batch gather by >=4x at 10x scale, \
         got {batch_over_windowed:.1}x"
    );
}
