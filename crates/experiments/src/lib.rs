//! # experiments — regenerate every table and figure of the paper
//!
//! Each module regenerates one piece of the paper's evaluation from the
//! simulated substrate and prints the same rows/series the paper reports:
//!
//! | module | paper artefact |
//! |---|---|
//! | [`fig1_2_3`] | Figs. 1–3 (clock sketch, order semantics, Itanium violation) |
//! | [`tables`] | Tables I and II (pinnings, latencies) |
//! | [`deviations`] | Figs. 4–6 (deviations per timer/platform/correction) |
//! | [`fig7`] | Fig. 7 (reversed messages in POP/SMG traces) |
//! | [`fig8`] | Fig. 8 (OpenMP POMP violations vs. team size) |
//! | [`intranode`] | §IV intra-node noise finding |
//! | [`clc_exp`] | §V constructive survey (CLC + baselines + extensions) |
//! | [`online_exp`] | online filter vs. interp/CLC on static + churn scenarios |
//! | [`ablations`] | probe-count / anchor / μ / network-load ablations |
//! | [`predict_exp`] | analytical residual model vs. simulation |
//! | [`csvout`] | CSV export (`--csv <dir>`) |

#![warn(missing_docs)]

pub mod ablations;
pub mod clc_exp;
pub mod common;
pub mod csvout;
pub mod deviations;
pub mod fig1_2_3;
pub mod fig7;
pub mod fig8;
pub mod intranode;
pub mod online_exp;
pub mod predict_exp;
pub mod tables;
