//! Head-to-head: interpolation vs. CLC vs. online filtering.
//!
//! The paper corrects timestamps *postmortem*: interpolate between the
//! init/finalize probes (Eq. 3), then repair residual violations with the
//! CLC. The online method instead runs a recursive drift/offset Kalman
//! filter over the full probe schedule and corrects each timestamp with
//! the state available *at that moment* — no lookahead, no second pass.
//!
//! This experiment races the three methods over static drift models
//! (constant, sawtooth, sinusoid, random walk — the same taxonomy as
//! Figs. 4–6) and over dynamic-membership churn scenarios (NTP islands,
//! WAN links, nodes joining/leaving, probe noise composed along an
//! evolving sync spanning tree), and reports the clock-condition census
//! after each. The paper's key claim survives online: with non-constant
//! drift, endpoint interpolation leaves violations that a drift-tracking
//! method removes.

use clocksync::{synchronize, OffsetMeasurement, OnlineSpec, PipelineConfig, SyncMethod};
use onlinesync::NetworkConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simclock::{
    ConstantDrift, Dur, DriftModel, PiecewiseLinearDrift, RandomWalkDrift, SinusoidalDrift, Time,
};
use tracefmt::{check_p2p, match_messages, EventKind, Rank, Tag, Trace, UniformLatency};
use workloads::churn_scenario;

/// Violation census of one scenario under each method.
#[derive(Debug, Clone)]
pub struct OnlineRow {
    /// Scenario label (drift model or churn seed).
    pub scenario: String,
    /// Message count actually placed.
    pub messages: usize,
    /// Violations in the raw trace.
    pub raw: usize,
    /// After linear interpolation only.
    pub interp: usize,
    /// After interpolation + CLC.
    pub clc: usize,
    /// After the online filter.
    pub online: usize,
}

/// One synthetic static scenario: drifting clocks, a probe schedule, and
/// a causally valid message trace on the true timeline.
struct StaticScenario {
    trace: Trace,
    init: Vec<Option<OffsetMeasurement>>,
    fin: Vec<Option<OffsetMeasurement>>,
    probes: Vec<Vec<OffsetMeasurement>>,
    lmin: UniformLatency,
}

fn drift_model(kind: &str, p: usize, rng: &mut StdRng, horizon_s: f64) -> Box<dyn DriftModel> {
    let sign = if p.is_multiple_of(2) { 1.0 } else { -1.0 };
    match kind {
        "constant" => Box::new(ConstantDrift::new(sign * rng.gen_range(10e-6..40e-6))),
        "sawtooth" => {
            // NTP-slew-like step drift: the rate flips sign every slice.
            let rate: f64 = sign * rng.gen_range(20e-6..45e-6);
            let slices = 4;
            let knots = (0..slices)
                .map(|i| {
                    let at = Time::from_secs_f64(horizon_s * i as f64 / slices as f64);
                    let r = if i % 2 == 0 { rate } else { -rate };
                    (at, r)
                })
                .collect();
            Box::new(PiecewiseLinearDrift::piecewise_constant(knots))
        }
        "sinusoid" => Box::new(SinusoidalDrift::new(
            rng.gen_range(35e-6..60e-6),
            rng.gen_range(0.9..1.5),
            rng.gen_range(0.0..std::f64::consts::TAU),
        )),
        "randomwalk" => Box::new(RandomWalkDrift::generate(rng, 4e-6, 0.05, horizon_s + 1.0)),
        other => unreachable!("unknown drift model {other}"),
    }
}

/// Build a static scenario over `kind` drift clocks.
fn static_scenario(kind: &str, procs: usize, msgs: usize, seed: u64) -> StaticScenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let horizon_s = 2.0;
    let models: Vec<Option<Box<dyn DriftModel>>> = (0..procs)
        .map(|p| (p != 0).then(|| drift_model(kind, p, &mut rng, horizon_s)))
        .collect();
    let offsets_us: Vec<f64> = (0..procs)
        .map(|p| if p == 0 { 0.0 } else { rng.gen_range(-400.0..400.0) })
        .collect();
    let local_at = |p: usize, t: Time| -> Time {
        let wander_s = models[p].as_ref().map_or(0.0, |d| d.integrated(t));
        t.saturating_add(Dur::from_us_f64(offsets_us[p]))
            .saturating_add(Dur::from_secs_f64(wander_s))
    };

    // Messages on the true timeline, paced to fill the horizon.
    let lmin = UniformLatency(Dur::from_us(10));
    let mut trace = Trace::for_ranks(procs);
    let mut now = vec![0.0f64; procs];
    let horizon_us = horizon_s * 1e6;
    let gap = horizon_us / msgs as f64;
    for m in 0..msgs {
        let from = rng.gen_range(0usize..procs);
        let to = (from + rng.gen_range(1usize..procs)) % procs;
        let send = now[from] + rng.gen_range(0.3 * gap..1.7 * gap);
        if send > horizon_us {
            continue;
        }
        let recv = (send + 13.0 + rng.gen_range(0.0f64..25.0)).max(now[to] + 0.001);
        now[from] = send;
        now[to] = recv;
        let t_us = |us: f64| Time::ZERO.saturating_add(Dur::from_us_f64(us));
        trace.procs[from].push(
            local_at(from, t_us(send)),
            EventKind::Send { to: Rank(to as u32), tag: Tag(m as u32), bytes: 64 },
        );
        trace.procs[to].push(
            local_at(to, t_us(recv)),
            EventKind::Recv { from: Rank(from as u32), tag: Tag(m as u32), bytes: 64 },
        );
    }

    // Cristian probes every 25 ms of true time, small symmetric noise.
    let mut probes: Vec<Vec<OffsetMeasurement>> = vec![Vec::new(); procs];
    let step_us = 25_000.0;
    for (p, lane) in probes.iter_mut().enumerate().skip(1) {
        let mut at = step_us / 2.0;
        while at < horizon_us + step_us {
            let t = Time::ZERO.saturating_add(Dur::from_us_f64(at));
            let local = local_at(p, t);
            let err = Dur::from_us_f64(rng.gen_range(-1.5..1.5));
            lane.push(OffsetMeasurement {
                worker_time: local,
                offset: t.saturating_since(local) + err,
                rtt: Dur::from_us(10),
            });
            at += step_us;
        }
    }
    let init = probes.iter().map(|ps| ps.first().copied()).collect();
    let fin = probes.iter().map(|ps| ps.last().copied()).collect();
    StaticScenario { trace, init, fin, probes, lmin }
}

fn census(trace: &Trace, lmin: &UniformLatency) -> usize {
    let m = match_messages(trace);
    check_p2p(trace, &m, lmin).violations.len()
}

/// Race the three methods over one scenario.
fn race(
    scenario: &str,
    trace: &Trace,
    init: &[Option<OffsetMeasurement>],
    fin: &[Option<OffsetMeasurement>],
    probes: &[Vec<OffsetMeasurement>],
    lmin: &UniformLatency,
) -> OnlineRow {
    let run = |cfg: PipelineConfig| -> usize {
        let mut t = trace.clone();
        synchronize(&mut t, init, Some(fin), lmin, &cfg).expect("pipeline runs");
        census(&t, lmin)
    };
    OnlineRow {
        scenario: scenario.to_string(),
        messages: trace.n_message_events() / 2,
        raw: census(trace, lmin),
        interp: run(PipelineConfig { method: SyncMethod::Interp, ..Default::default() }),
        clc: run(PipelineConfig::default()),
        online: run(PipelineConfig {
            method: SyncMethod::Online(OnlineSpec::new(probes.to_vec())),
            ..Default::default()
        }),
    }
}

/// All static-model rows.
pub fn static_rows(msgs: usize, seed: u64) -> Vec<OnlineRow> {
    ["constant", "sawtooth", "sinusoid", "randomwalk"]
        .iter()
        .map(|kind| {
            let s = static_scenario(kind, 8, msgs, seed ^ (kind.len() as u64));
            race(kind, &s.trace, &s.init, &s.fin, &s.probes, &s.lmin)
        })
        .collect()
}

/// All churn rows: dynamic membership over NTP islands.
pub fn churn_rows(msgs: usize, seed: u64) -> Vec<OnlineRow> {
    let configs = [
        ("churn/2-islands", NetworkConfig::default()),
        (
            "churn/3-islands-heavy",
            NetworkConfig {
                nodes: 12,
                clusters: 3,
                joins: 2,
                leaves: 2,
                ..NetworkConfig::default()
            },
        ),
    ];
    configs
        .iter()
        .map(|(label, cfg)| {
            let s = churn_scenario(cfg.clone(), msgs, seed);
            let conv = |m: &workloads::ProbeMeasurement| OffsetMeasurement {
                worker_time: m.worker_time,
                offset: m.offset,
                rtt: m.rtt,
            };
            let init: Vec<_> = s.init.iter().map(|m| m.as_ref().map(conv)).collect();
            let fin: Vec<_> = s.fin.iter().map(|m| m.as_ref().map(conv)).collect();
            let probes: Vec<Vec<_>> =
                s.probes.iter().map(|ps| ps.iter().map(conv).collect()).collect();
            race(label, &s.trace, &init, &fin, &probes, &s.lmin)
        })
        .collect()
}

/// Print the head-to-head table.
pub fn print_online(msgs: usize, seed: u64) -> Vec<OnlineRow> {
    println!("\n## online vs. postmortem synchronization (violation censuses)\n");
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "scenario", "messages", "raw", "interp", "clc", "online"
    );
    let mut rows = static_rows(msgs, seed);
    rows.extend(churn_rows(msgs, seed + 1));
    for r in &rows {
        println!(
            "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8}",
            r.scenario, r.messages, r.raw, r.interp, r.clc, r.online
        );
    }
    println!(
        "\nOnline uses only probes at or before each event (no lookahead); \
         interp/CLC see the whole trace postmortem."
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_beats_interp_on_every_nonconstant_model() {
        for row in static_rows(1500, 2008) {
            assert!(row.raw > 0, "{}: raw trace has no violations to fix", row.scenario);
            if row.scenario == "constant" {
                continue;
            }
            assert!(
                row.online < row.interp,
                "{}: online {} not strictly below interp {}",
                row.scenario,
                row.online,
                row.interp
            );
        }
    }

    #[test]
    fn churn_scenarios_run_all_three_methods() {
        for row in churn_rows(800, 11) {
            assert!(row.messages > 0);
            assert!(row.online <= row.raw, "{}: online made things worse", row.scenario);
        }
    }
}
