//! Tables I and II — pinning configurations and measured latencies on the
//! Xeon cluster.

use mpisim::Cluster;
use netsim::{HierarchicalLatency, Placement, Topology};
use simclock::{
    allan_deviation, sample_phase, ClockDomain, ClockEnsemble, ClockProfile, Dur, Platform,
    TimerKind,
};
use workloads::{measure_allreduce_latency, measure_p2p_latency, LatencyMeasurement};

/// Table I rows: the three pinning setups.
pub fn table1() -> Vec<(&'static str, String)> {
    vec![
        ("Inter node", "4 nodes, 1 process per node".into()),
        ("Inter chip", "1 node, 2 chips per node, 1 process per chip".into()),
        ("Inter core", "1 node, 1 chip per node, 4 processes per chip".into()),
    ]
}

/// Print Table I.
pub fn print_table1() {
    println!("\n## Table I — Xeon cluster: process pinning for the measurements");
    for (name, desc) in table1() {
        println!("{name:<12} {desc}");
    }
}

/// One Table II row: setup name, paper value, measured mean/std.
pub struct Table2Row {
    /// Setup label.
    pub setup: &'static str,
    /// The paper's measured mean in µs.
    pub paper_mean_us: f64,
    /// Our measured latency.
    pub measured: LatencyMeasurement,
}

fn xeon_cluster_with(placement: Placement, seed: u64) -> Cluster {
    let shape = placement.shape();
    let clocks = ClockEnsemble::build(
        shape,
        ClockDomain::Global,
        &ClockProfile::bare(TimerKind::IntelTsc),
        seed,
    );
    Cluster::new(
        placement,
        Topology::FatTree { leaf_radix: 16 },
        HierarchicalLatency::xeon_infiniband(),
        clocks,
        seed,
    )
}

/// Run the Table II measurements (`reps` repetitions per row).
pub fn table2(reps: usize, seed: u64) -> Vec<Table2Row> {
    let shape = Platform::XeonCluster.shape(4);
    let mut rows = Vec::new();

    let mut c = xeon_cluster_with(Placement::one_per_node(shape, 4), seed);
    rows.push(Table2Row {
        setup: "Inter node message latency",
        paper_mean_us: 4.29,
        measured: measure_p2p_latency(&mut c, reps, 0).expect("ping-pong runs"),
    });

    let mut c = xeon_cluster_with(Placement::one_per_chip(shape, 2), seed + 1);
    rows.push(Table2Row {
        setup: "Inter chip message latency",
        paper_mean_us: 0.86,
        measured: measure_p2p_latency(&mut c, reps, 0).expect("ping-pong runs"),
    });

    let mut c = xeon_cluster_with(Placement::one_per_core(shape, 4), seed + 2);
    rows.push(Table2Row {
        setup: "Inter core message latency",
        paper_mean_us: 0.47,
        measured: measure_p2p_latency(&mut c, reps, 0).expect("ping-pong runs"),
    });

    let mut c = xeon_cluster_with(Placement::one_per_node(shape, 4), seed + 3);
    rows.push(Table2Row {
        setup: "Inter node collective latency",
        paper_mean_us: 12.86,
        measured: measure_allreduce_latency(&mut c, 4, reps, 8).expect("allreduce runs"),
    });

    rows
}

/// Print Table II next to the paper's values.
pub fn print_table2(reps: usize, seed: u64) {
    println!("\n## Table II — Xeon cluster: measured message and collective latencies");
    println!(
        "{:<32} {:>12} {:>12} {:>12}",
        "setup", "paper[us]", "mean[us]", "stddev[us]"
    );
    for r in table2(reps, seed) {
        println!(
            "{:<32} {:>12.2} {:>12.2} {:>12.2e}",
            r.setup,
            r.paper_mean_us,
            r.measured.mean_us(),
            r.measured.std_us()
        );
    }
}

/// The §II timer taxonomy as a measured table: for each timer technology on
/// the Xeon platform, its resolution, read overhead, NTP steering, and the
/// Allan deviation at τ = 64 s of a representative clock (the stability
/// number that decides interpolation-friendliness).
pub fn print_timer_taxonomy(seed: u64) {
    use rand::SeedableRng as _;
    println!("\n## §II — timer taxonomy (Xeon platform, ADEV at tau = 64 s)");
    println!(
        "{:<18} {:>9} {:>12} {:>14} {:>6} {:>12}",
        "timer", "hardware", "resolution", "overhead[ns]", "NTP", "ADEV@64s"
    );
    for timer in [
        TimerKind::IntelTsc,
        TimerKind::Gettimeofday,
        TimerKind::MpiWtime,
    ] {
        let profile = Platform::XeonCluster.clock_profile(timer, 1200.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let clock = profile.build_clock(&mut rng, 0.0, 1.5e-6);
        let phase = sample_phase(&clock, Dur::from_secs(1), 1024);
        let adev = allan_deviation(&phase, 1.0, 64).unwrap_or(f64::NAN);
        println!(
            "{:<18} {:>9} {:>12} {:>14} {:>6} {:>12.2e}",
            timer.label(),
            timer.is_hardware(),
            format!("{}", profile.noise.resolution),
            profile.noise.read_overhead.as_ns_f64(),
            profile.ntp.is_some(),
            adev
        );
    }
    println!("hardware clocks: stable (interpolation-friendly); NTP-steered software clocks: orders of magnitude noisier at long tau.");
}

/// Cross-platform extension of Table II: inter-node message latency on all
/// three of the paper's clusters (the paper prints only the Xeon numbers).
pub fn print_table2_platforms(reps: usize, seed: u64) {
    println!("\n## Table II extension — inter-node message latency per platform");
    println!("{:<22} {:>12} {:>12}", "platform", "mean[us]", "stddev[us]");
    for (platform, latency) in [
        (Platform::XeonCluster, HierarchicalLatency::xeon_infiniband()),
        (Platform::PowerPcCluster, HierarchicalLatency::powerpc_myrinet()),
        (Platform::OpteronCluster, HierarchicalLatency::opteron_seastar()),
    ] {
        let shape = platform.shape(4);
        let clocks = ClockEnsemble::build(
            shape,
            ClockDomain::Global,
            &ClockProfile::bare(TimerKind::IntelTsc),
            seed,
        );
        let mut cluster = Cluster::new(
            Placement::one_per_node(shape, 4),
            crate::common::topology_of(platform, 4),
            latency,
            clocks,
            seed,
        );
        let m = measure_p2p_latency(&mut cluster, reps, 0).expect("ping-pong runs");
        println!(
            "{:<22} {:>12.2} {:>12.2e}",
            platform.label(),
            m.mean_us(),
            m.std_us()
        );
    }
    println!("(Myrinet slowest, SeaStar torus pays per-hop costs; the paper only tabulates the Xeon values.)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reproduces_the_hierarchy() {
        let rows = table2(400, 3);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            let rel = (r.measured.mean_us() - r.paper_mean_us).abs() / r.paper_mean_us;
            assert!(
                rel < 0.25,
                "{}: measured {:.2} vs paper {:.2} (rel {rel:.2})",
                r.setup,
                r.measured.mean_us(),
                r.paper_mean_us
            );
        }
        // Ordering: core < chip < node < collective.
        assert!(rows[2].measured.mean_us() < rows[1].measured.mean_us());
        assert!(rows[1].measured.mean_us() < rows[0].measured.mean_us());
        assert!(rows[0].measured.mean_us() < rows[3].measured.mean_us());
    }

    #[test]
    fn table1_has_three_setups() {
        assert_eq!(table1().len(), 3);
    }

    #[test]
    fn cross_platform_latency_ordering() {
        // Myrinet inter-node > SeaStar > InfiniBand per our models.
        let get = |platform: Platform, latency: HierarchicalLatency| {
            let shape = platform.shape(4);
            let clocks = ClockEnsemble::build(
                shape,
                ClockDomain::Global,
                &ClockProfile::bare(TimerKind::IntelTsc),
                1,
            );
            let mut c = Cluster::new(
                Placement::one_per_node(shape, 4),
                crate::common::topology_of(platform, 4),
                latency,
                clocks,
                1,
            );
            measure_p2p_latency(&mut c, 300, 0).unwrap().mean_us()
        };
        let xeon = get(Platform::XeonCluster, HierarchicalLatency::xeon_infiniband());
        let ppc = get(Platform::PowerPcCluster, HierarchicalLatency::powerpc_myrinet());
        let opt = get(Platform::OpteronCluster, HierarchicalLatency::opteron_seastar());
        assert!(xeon < opt && opt < ppc, "unexpected ordering: {xeon} {opt} {ppc}");
    }
}
