//! Fig. 8 — percentages of OpenMP parallel regions with POMP
//! clock-condition violations across team sizes on the Itanium SMP node.
//!
//! The paper's numbers: with 4 threads 83 % of regions are affected (exit
//! violations most frequent); the fraction drops sharply as threads are
//! added — very few at 12, none at all at 16 — because OpenMP
//! synchronisation latencies grow with the team while the inter-chip clock
//! offsets stay put.

use workloads::{violation_sweep, OmpViolationRow};

/// Run the Fig. 8 sweep (4, 8, 12, 16 threads; `runs` repetitions).
pub fn fig8(regions: usize, runs: usize, seed: u64) -> Vec<OmpViolationRow> {
    violation_sweep(&[4, 8, 12, 16], regions, runs, seed)
}

/// Print precomputed Fig. 8 rows.
pub fn print_rows(rows: &[OmpViolationRow], runs: usize, regions: usize) {
    println!("\n## Fig. 8 — Itanium SMP: parallel regions with POMP violations (avg of {runs} runs, {regions} regions each)");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>14}",
        "threads", "any [%]", "entry [%]", "exit [%]", "barrier [%]"
    );
    for row in rows {
        println!(
            "{:>8} {:>10.1} {:>12.1} {:>12.1} {:>14.1}",
            row.threads, row.any_pct, row.entry_pct, row.exit_pct, row.barrier_pct
        );
    }
    println!("paper shape: 83% affected at 4 threads, dropping sharply; ~0% at 16; exit violations most frequent.");
}

/// Print Fig. 8 beside the paper's anchor values (compute + print).
pub fn print_fig8(regions: usize, runs: usize, seed: u64) {
    print_rows(&fig8(regions, runs, seed), runs, regions);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_shape_matches_the_paper() {
        let rows = fig8(120, 3, 2);
        assert_eq!(rows.len(), 4);
        let any: Vec<f64> = rows.iter().map(|r| r.any_pct).collect();
        // High at 4 threads.
        assert!(any[0] > 50.0, "4 threads: {:.1}% (expected high)", any[0]);
        // Near zero at 16 threads.
        assert!(any[3] < 12.0, "16 threads: {:.1}% (expected ~0)", any[3]);
        // Overall declining trend.
        assert!(
            any[0] > any[2] && any[1] > any[3],
            "violations should decline with team size: {any:?}"
        );
    }
}
