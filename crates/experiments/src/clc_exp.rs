//! The constructive §V experiment: remove the violations Fig. 7 exposed.
//!
//! Takes a POP-like traced run and pushes it through every synchronisation
//! method the paper surveys — offset alignment, linear interpolation (Eq. 3),
//! the CLC (serial and replay-parallel) on top of interpolation, and the
//! classic baselines (Duda via Jézéquel spanning trees, Babaoğlu
//! full-exchange bounds) — then reports residual violations and wall time.

use crate::fig7::{pop_program, traced_run, TracedRun};
use clocksync::baselines::babaoglu::{full_exchange_maps, FullExchangeFit};
use clocksync::baselines::jezequel::spanning_tree_maps;
use clocksync::{
    apply_maps, controlled_logical_clock_with_domains, synchronize, ClcParams,
    IdentityMap, PiecewiseInterpolation, PipelineConfig, PreSync, TimestampMap,
};
use std::time::Instant;
use tracefmt::{
    check_collectives, check_p2p, match_collectives, match_messages, MinLatency, Trace,
};

/// Result of one method.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method label.
    pub method: &'static str,
    /// Violated constraints (messages + logical messages).
    pub violations: usize,
    /// Violation percentage.
    pub violated_pct: f64,
    /// Wall-clock milliseconds the method took (correction only).
    pub millis: f64,
    /// Mean relative distortion of local interval lengths vs. the raw
    /// trace, percent (interval preservation quality).
    pub interval_distortion_pct: f64,
}

fn distortion(raw: &Trace, corrected: &Trace) -> f64 {
    tracefmt::diff_traces(raw, corrected)
        .map(|d| d.mean_interval_distortion_pct())
        .unwrap_or(f64::NAN)
}

fn census(trace: &Trace, lmin: &dyn MinLatency) -> (usize, f64) {
    let m = match_messages(trace);
    let p2p = check_p2p(trace, &m, lmin);
    let insts = match_collectives(trace).expect("well-formed");
    let coll = check_collectives(trace, &insts, lmin);
    let total = p2p.total + coll.logical_total;
    let bad = p2p.violations.len() + coll.logical_violated;
    (
        bad,
        if total == 0 { 0.0 } else { 100.0 * bad as f64 / total as f64 },
    )
}

/// Run the survey on a fresh POP-like run.
pub fn clc_survey(scale: usize, seed: u64) -> Vec<MethodResult> {
    let (prog, dur, k) = pop_program(scale);
    let base: TracedRun = traced_run(&prog, dur, k, seed);
    let mut out = Vec::new();

    let lmin_owned = {
        // Capture l_min into an owned closure usable across trace clones.
        let c = &base.cluster;
        let n = base.trace.n_procs();
        let mut table = vec![vec![simclock::Dur::ZERO; n]; n];
        for (a, row) in table.iter_mut().enumerate() {
            for (b, cell) in row.iter_mut().enumerate() {
                *cell = c.l_min(tracefmt::Rank(a as u32), tracefmt::Rank(b as u32), 0);
            }
        }
        move |a: tracefmt::Rank, b: tracefmt::Rank| table[a.idx()][b.idx()]
    };

    // Raw.
    let (v, p) = census(&base.trace, &lmin_owned);
    out.push(MethodResult {
        method: "uncorrected",
        violations: v,
        violated_pct: p,
        millis: 0.0,
        interval_distortion_pct: 0.0,
    });

    // Alignment / interpolation / CLC via the pipeline.
    let pipeline_method = |name: &'static str, cfg: PipelineConfig| -> MethodResult {
        let mut t = base.trace.clone();
        let start = Instant::now();
        synchronize(&mut t, &base.init, Some(&base.fin), &lmin_owned, &cfg)
            .expect("pipeline runs");
        let millis = start.elapsed().as_secs_f64() * 1e3;
        let (v, p) = census(&t, &lmin_owned);
        MethodResult {
            method: name,
            violations: v,
            violated_pct: p,
            millis,
            interval_distortion_pct: distortion(&base.trace, &t),
        }
    };
    out.push(pipeline_method(
        "offset alignment",
        PipelineConfig { presync: PreSync::AlignOnly, clc: None, parallel: None, ..Default::default() },
    ));
    out.push(pipeline_method(
        "linear interpolation (Eq. 3)",
        PipelineConfig { presync: PreSync::Linear, clc: None, parallel: None, ..Default::default() },
    ));
    out.push(pipeline_method(
        "interpolation + CLC",
        PipelineConfig { presync: PreSync::Linear, clc: Some(ClcParams::default()), parallel: None, ..Default::default() },
    ));
    // The same chain through the sharded worker pool: results are
    // bit-identical, only wall-clock differs.
    out.push(pipeline_method(
        "interpolation + CLC (parallel pipeline)",
        PipelineConfig {
            presync: PreSync::Linear,
            clc: Some(ClcParams::default()),
            parallel: Some(clocksync::ParallelConfig::default()),
            ..Default::default()
},
    ));

    // Parallel CLC.
    {
        let mut t = base.trace.clone();
        synchronize(
            &mut t,
            &base.init,
            Some(&base.fin),
            &lmin_owned,
            &PipelineConfig { presync: PreSync::Linear, clc: None, parallel: None, ..Default::default() },
        )
        .expect("pipeline runs");
        let start = Instant::now();
        clocksync::controlled_logical_clock_parallel(&mut t, &lmin_owned, &ClcParams::default())
            .expect("parallel CLC runs");
        let millis = start.elapsed().as_secs_f64() * 1e3;
        let (v, p) = census(&t, &lmin_owned);
        out.push(MethodResult {
            method: "interpolation + CLC (parallel replay)",
            violations: v,
            violated_pct: p,
            millis,
            interval_distortion_pct: distortion(&base.trace, &t),
        });
    }

    // Doleschal-style periodic internal synchronisation (paper [17]):
    // piecewise-linear interpolation through init + eight mid-run + finalize
    // probe anchors.
    {
        let mut t = base.trace.clone();
        let start = Instant::now();
        let n = t.n_procs();
        let maps: Vec<Box<dyn TimestampMap>> = (0..n)
            .map(|p| -> Box<dyn TimestampMap> {
                let mut anchors = Vec::new();
                if let Some(m) = base.init[p] {
                    anchors.push(m);
                }
                for epoch in &base.mid {
                    if let Some(m) = epoch[p] {
                        anchors.push(m);
                    }
                }
                if let Some(m) = base.fin[p] {
                    anchors.push(m);
                }
                if anchors.len() >= 2 {
                    Box::new(PiecewiseInterpolation::new(anchors))
                } else {
                    Box::new(IdentityMap)
                }
            })
            .collect();
        apply_maps(&mut t, &maps);
        let millis = start.elapsed().as_secs_f64() * 1e3;
        let (v, p) = census(&t, &lmin_owned);
        out.push(MethodResult {
            method: "periodic probes, piecewise (Doleschal)",
            violations: v,
            violated_pct: p,
            millis,
            interval_distortion_pct: distortion(&base.trace, &t),
        });
    }

    // Clock-domain-aware CLC (the paper's §VI future work): ranks on one
    // chip share a clock and move together.
    {
        let mut t = base.trace.clone();
        synchronize(
            &mut t,
            &base.init,
            Some(&base.fin),
            &lmin_owned,
            &PipelineConfig { presync: PreSync::Linear, clc: None, parallel: None, ..Default::default() },
        )
        .expect("pipeline runs");
        let start = Instant::now();
        controlled_logical_clock_with_domains(
            &mut t,
            &lmin_owned,
            &ClcParams::default(),
            &base.clock_domains,
        )
        .expect("domain CLC runs");
        let millis = start.elapsed().as_secs_f64() * 1e3;
        let (v, p) = census(&t, &lmin_owned);
        out.push(MethodResult {
            method: "interpolation + domain-aware CLC",
            violations: v,
            violated_pct: p,
            millis,
            interval_distortion_pct: distortion(&base.trace, &t),
        });
    }

    // Jézéquel spanning tree of Duda pairwise fits.
    {
        let mut t = base.trace.clone();
        let start = Instant::now();
        let m = match_messages(&t);
        match spanning_tree_maps(&t, &m, &lmin_owned, 0) {
            Ok(maps) => {
                let boxed: Vec<Box<dyn TimestampMap>> = maps
                    .into_iter()
                    .map(|m| Box::new(m) as Box<dyn TimestampMap>)
                    .collect();
                apply_maps(&mut t, &boxed);
                let millis = start.elapsed().as_secs_f64() * 1e3;
                let (v, p) = census(&t, &lmin_owned);
                out.push(MethodResult {
                    method: "Jezequel tree of Duda fits",
                    violations: v,
                    violated_pct: p,
                    millis,
                    interval_distortion_pct: distortion(&base.trace, &t),
                });
            }
            Err(e) => {
                out.push(MethodResult {
                    method: "Jezequel tree of Duda fits",
                    violations: usize::MAX,
                    violated_pct: 100.0,
                    millis: 0.0,
                    interval_distortion_pct: f64::NAN,
                });
                eprintln!("jezequel failed: {e}");
            }
        }
    }

    // Babaoğlu full-exchange bounds (piecewise fit).
    {
        let mut t = base.trace.clone();
        let start = Instant::now();
        let insts = match_collectives(&t).expect("well-formed");
        match full_exchange_maps(&t, &insts, &lmin_owned, 0, FullExchangeFit::Piecewise(16)) {
            Ok(maps) => {
                apply_maps(&mut t, &maps);
                let millis = start.elapsed().as_secs_f64() * 1e3;
                let (v, p) = census(&t, &lmin_owned);
                out.push(MethodResult {
                    method: "Babaoglu full-exchange (piecewise)",
                    violations: v,
                    violated_pct: p,
                    millis,
                    interval_distortion_pct: distortion(&base.trace, &t),
                });
            }
            Err(e) => eprintln!("babaoglu failed: {e}"),
        }
    }

    out
}

/// Print the survey.
pub fn print_clc(scale: usize, seed: u64) {
    println!("\n## §V — removing the violations: synchronisation method survey (POP-like run)");
    println!(
        "{:<40} {:>12} {:>14} {:>12} {:>14}",
        "method", "violations", "violated [%]", "time [ms]", "interval-d [%]"
    );
    for r in clc_survey(scale, seed) {
        println!(
            "{:<40} {:>12} {:>14.3} {:>12.1} {:>14.3}",
            r.method, r.violations, r.violated_pct, r.millis, r.interval_distortion_pct
        );
    }
    println!("paper conclusion: interpolation alone leaves violations; the CLC restores the clock condition completely.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clc_removes_all_violations_and_interpolation_does_not() {
        let results = clc_survey(40, 6);
        let get = |name: &str| {
            results
                .iter()
                .find(|r| r.method == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .clone()
        };
        let raw = get("uncorrected");
        let interp = get("linear interpolation (Eq. 3)");
        let clc = get("interpolation + CLC");
        let clc_par = get("interpolation + CLC (parallel replay)");
        assert!(raw.violations > 0, "raw trace should violate");
        assert!(
            interp.violations < raw.violations,
            "interpolation should help"
        );
        assert!(interp.violations > 0, "but not fully (the paper's point)");
        assert_eq!(clc.violations, 0, "CLC must restore the clock condition");
        assert_eq!(clc_par.violations, 0, "parallel CLC too");
    }
}
