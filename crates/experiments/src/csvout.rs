//! CSV export of experiment results (plot-ready series and tables).
//!
//! Activated by `experiments … --csv <dir>`: each experiment that produces
//! series or rows additionally writes a CSV file named after the paper
//! artefact (`fig4a.csv`, `fig7.csv`, …) with a header row. Files are
//! overwritten on re-runs so the directory always reflects the last
//! campaign.

use crate::common::DeviationSeries;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Write one deviation-series family (one column per worker).
pub fn save_series(
    dir: &Path,
    name: &str,
    series: &[DeviationSeries],
) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut f = fs::File::create(dir.join(format!("{name}.csv")))?;
    write!(f, "t_s")?;
    for s in series {
        write!(f, ",worker{}_us", s.worker)?;
    }
    writeln!(f)?;
    let rows = series.first().map_or(0, |s| s.points.len());
    for k in 0..rows {
        write!(f, "{}", series[0].points[k].0)?;
        for s in series {
            write!(f, ",{}", s.points[k].1)?;
        }
        writeln!(f)?;
    }
    Ok(())
}

/// Write a generic rows table: `header` is the comma-joined column names,
/// each row a vector of cells already formatted.
pub fn save_rows(
    dir: &Path,
    name: &str,
    header: &str,
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut f = fs::File::create(dir.join(format!("{name}.csv")))?;
    writeln!(f, "{header}")?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("drift-lab-csv-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn series_csv_shape() {
        let dir = scratch("series");
        let series = vec![
            DeviationSeries { worker: 1, points: vec![(0.0, 1.5), (10.0, 2.5)] },
            DeviationSeries { worker: 2, points: vec![(0.0, -0.5), (10.0, 0.5)] },
        ];
        save_series(&dir, "figX", &series).unwrap();
        let text = fs::read_to_string(dir.join("figX.csv")).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "t_s,worker1_us,worker2_us");
        assert_eq!(lines[1], "0,1.5,-0.5");
        assert_eq!(lines[2], "10,2.5,0.5");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rows_csv_shape() {
        let dir = scratch("rows");
        save_rows(
            &dir,
            "tab",
            "a,b",
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let text = fs::read_to_string(dir.join("tab.csv")).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        fs::remove_dir_all(&dir).unwrap();
    }
}
