//! Fig. 7 — clock-condition violations in realistic application traces.
//!
//! POP-like and SMG2000-like runs with 32 processes on the simulated Xeon
//! cluster, default (scheduler-chosen) pinning, Scalasca-style linear
//! offset interpolation anchored at `MPI_Init`/`MPI_Finalize` probes. The
//! front row of the paper's chart is the percentage of messages whose send
//! and receive order is *reversed* after interpolation (logical messages
//! from collectives included); the back row is the fraction of message
//! transfer events among all trace events. Numbers are averaged over three
//! runs, as in the paper.

use clocksync::{
    estimate_offset, synchronize, OffsetMeasurement, PipelineConfig, PreSync, ProbeSample,
};
use mpisim::{probe_all_workers, run, Cluster, RunOptions};
use netsim::{Placement, Topology};
use simclock::{ClockDomain, ClockEnsemble, Dur, Platform, Time, TimerKind};
use tracefmt::{Rank, Trace};
use workloads::{PopConfig, SmgConfig};

/// One application's Fig. 7 measurement.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Application label.
    pub app: &'static str,
    /// % of (physical + logical) messages reversed, averaged over runs.
    pub reversed_pct: f64,
    /// % of (physical + logical) messages violating the clock condition.
    pub violated_pct: f64,
    /// % of message transfer events among all events.
    pub message_event_pct: f64,
    /// Runs averaged.
    pub runs: usize,
}

/// A traced run with its interpolation anchors, ready for synchronisation
/// experiments.
pub struct TracedRun {
    /// The cluster (for `l_min` models).
    pub cluster: Cluster,
    /// The recorded trace (raw local timestamps).
    pub trace: Trace,
    /// Init offset measurements per proc (None for the master).
    pub init: Vec<Option<OffsetMeasurement>>,
    /// Finalize offset measurements per proc.
    pub fin: Vec<Option<OffsetMeasurement>>,
    /// Periodic mid-run measurements (Doleschal-style internal timer
    /// synchronisation, paper reference [17]): one vector per probe epoch.
    pub mid: Vec<Vec<Option<OffsetMeasurement>>>,
    /// Clock-domain id per rank (ranks sharing a chip share a clock).
    pub clock_domains: Vec<usize>,
}

fn probe_measurements(
    cluster: &mut Cluster,
    n: usize,
    at: Time,
) -> (Vec<Option<OffsetMeasurement>>, Time) {
    let (sessions, end) =
        probe_all_workers(cluster, Rank(0), 20, at, Dur::from_us(100));
    let mut out = vec![None; n];
    for s in sessions {
        let rounds: Vec<ProbeSample> = s
            .rounds
            .iter()
            .map(|r| ProbeSample { t1: r.t1, t0: r.t0, t2: r.t2 })
            .collect();
        out[s.worker.idx()] = estimate_offset(&rounds);
    }
    (out, end)
}

/// Execute a 32-rank application on the Xeon cluster with Scalasca-style
/// offset probes around it.
///
/// `time_compression` compensates for running a shortened workload: when a
/// 25-minute application is scaled down by a factor k, boosting the
/// random-walk wander by k^1.5 and compressing the thermal period by k (at
/// k-fold amplitude) preserves the *deviation magnitudes* the full-length
/// run would have accumulated, so violation statistics stay representative.
/// Pass 1.0 for unscaled workloads.
pub fn traced_run(
    program: &mpisim::Program,
    expected_duration_s: f64,
    time_compression: f64,
    seed: u64,
) -> TracedRun {
    let ranks = program.n_ranks();
    let nodes = ranks.div_ceil(8); // 8 cores per Xeon node
    let shape = Platform::XeonCluster.shape(nodes);
    let horizon = expected_duration_s * 1.6 + 60.0;
    let mut profile = Platform::XeonCluster.clock_profile(TimerKind::IntelTsc, horizon);
    if time_compression > 1.0 {
        let k = time_compression;
        profile.walk_step_sigma *= k.powf(1.5);
        profile.walk_step_s = (profile.walk_step_s / k).max(1.0);
        profile.thermal_amp *= k;
        profile.thermal_period_s = (
            (profile.thermal_period_s.0 / k).max(20.0),
            (profile.thermal_period_s.1 / k).max(40.0),
        );
    }
    let clocks = ClockEnsemble::build(shape, ClockDomain::PerChip, &profile, seed);
    // "We refrained from using a specific process pinning … and let the
    // scheduler choose".
    let placement = Placement::scheduler_default(shape, ranks, seed ^ 0xABCD);
    let mut cluster = Cluster::new(
        placement,
        Topology::FatTree { leaf_radix: 16 },
        crate::common::latency_of(Platform::XeonCluster),
        clocks,
        seed,
    );

    let (init, after_init) = probe_measurements(&mut cluster, ranks, Time::ZERO);
    let opts = RunOptions {
        start_time: after_init + Dur::from_ms(1),
        ..RunOptions::default()
    };
    let out = run(&mut cluster, program, &opts).expect("application runs");
    let end = out.stats.end_time;
    let (fin, _) = probe_measurements(&mut cluster, ranks, end + Dur::from_ms(1));
    // Periodic interior probes for the Doleschal-style method (paper [17]):
    // eight epochs spread across the run. On a real system these piggyback
    // on global synchronisation operations; the simulated probes read the
    // same clocks the tracer used.
    let mut mid = Vec::new();
    for k in 1..=8 {
        let frac = k as f64 / 9.0;
        let at = opts.start_time
            + Dur::from_secs_f64((end - opts.start_time).as_secs_f64() * frac);
        let (m, _) = probe_measurements(&mut cluster, ranks, at);
        mid.push(m);
    }
    let clock_domains: Vec<usize> = (0..ranks)
        .map(|r| {
            let core = cluster.placement.core_of(r);
            cluster.placement.shape().chip_of(core)
        })
        .collect();
    TracedRun {
        cluster,
        trace: out.trace,
        init,
        fin,
        mid,
        clock_domains,
    }
}

/// Census of one interpolated trace.
pub struct ViolationCensus {
    /// % messages (physical + logical) reversed.
    pub reversed_pct: f64,
    /// % messages (physical + logical) violating Eq. 1.
    pub violated_pct: f64,
    /// % of message transfer events among all events.
    pub message_event_pct: f64,
}

/// Event-count threshold above which the fig. 7 censuses switch to the
/// sharded parallel pipeline. Safe at any size (the parallel path is
/// bit-identical); below this the pool's spawn cost isn't worth it.
const PARALLEL_EVENT_THRESHOLD: usize = 100_000;

/// Apply linear interpolation to a traced run and count violations.
///
/// Large runs (≥ [`PARALLEL_EVENT_THRESHOLD`] events) go through the
/// sharded parallel pipeline automatically.
pub fn census_after_interpolation(run: &mut TracedRun) -> ViolationCensus {
    let cfg = PipelineConfig {
        presync: PreSync::Linear,
        clc: None,
        parallel: if run.trace.n_events() >= PARALLEL_EVENT_THRESHOLD {
            Some(clocksync::ParallelConfig::default())
        } else {
            None
        },
        ..Default::default()
    };
    let lmin = run.cluster.l_min_model();
    let report = synchronize(
        &mut run.trace,
        &run.init,
        Some(&run.fin),
        &lmin,
        &cfg,
    )
    .expect("pipeline runs");
    let stage = &report.after_presync;
    let total = stage.p2p.total + stage.coll.logical_total;
    let reversed = stage.p2p.reversed + stage.coll.logical_reversed;
    let violated = stage.p2p.violations.len() + stage.coll.logical_violated;
    ViolationCensus {
        reversed_pct: pct(reversed, total),
        violated_pct: pct(violated, total),
        message_event_pct: pct(run.trace.n_message_events(), run.trace.n_events()),
    }
}

fn pct(n: usize, d: usize) -> f64 {
    if d == 0 {
        0.0
    } else {
        100.0 * n as f64 / d as f64
    }
}

/// The POP-like program at a given scale divisor; returns the program, its
/// expected duration, and the matching time-compression factor.
pub fn pop_program(scale: usize) -> (mpisim::Program, f64, f64) {
    let cfg = PopConfig::mref_like(8, 4, scale);
    let per_iter_s = cfg.compute.as_secs_f64() * (1.0 + 6.0 / 20.0) + 0.001;
    let dur = cfg.iterations as f64 * per_iter_s;
    (cfg.build(), dur, scale as f64)
}

/// The SMG2000-like program at a given padding divisor; returns program,
/// expected duration, and time-compression factor.
pub fn smg_program(pad_scale: usize) -> (mpisim::Program, f64, f64) {
    let cfg = SmgConfig::paper_like(32, pad_scale);
    let dur = 2.0 * cfg.padding.as_secs_f64()
        + cfg.iterations as f64 * 2.0 * cfg.levels as f64 * 0.05;
    (cfg.build(), dur, pad_scale as f64)
}

/// Run Fig. 7: both applications, `runs` repetitions each.
pub fn fig7(scale: usize, runs: usize, seed: u64) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    for (app, make) in [
        ("SMG2000", Box::new(move || smg_program(scale * 3)) as Box<dyn Fn() -> (mpisim::Program, f64, f64)>),
        ("POP", Box::new(move || pop_program(scale))),
    ] {
        let mut rev = 0.0;
        let mut vio = 0.0;
        let mut msg = 0.0;
        for r in 0..runs {
            let (prog, dur, k) = make();
            let mut tr = traced_run(&prog, dur, k, seed + 31 * r as u64);
            let c = census_after_interpolation(&mut tr);
            rev += c.reversed_pct;
            vio += c.violated_pct;
            msg += c.message_event_pct;
        }
        let n = runs.max(1) as f64;
        rows.push(Fig7Row {
            app,
            reversed_pct: rev / n,
            violated_pct: vio / n,
            message_event_pct: msg / n,
            runs,
        });
    }
    rows
}

/// Print precomputed Fig. 7 rows.
pub fn print_rows(rows: &[Fig7Row]) {
    let runs = rows.first().map_or(0, |r| r.runs);
    println!("\n## Fig. 7 — Xeon cluster: reversed messages after Scalasca-style interpolation (32 procs, avg of {runs} runs)");
    println!(
        "{:<10} {:>16} {:>16} {:>22}",
        "app", "reversed [%]", "violated [%]", "msg events/total [%]"
    );
    for r in rows {
        println!(
            "{:<10} {:>16.2} {:>16.2} {:>22.2}",
            r.app, r.reversed_pct, r.violated_pct, r.message_event_pct
        );
    }
    println!("paper shape: a significant non-zero percentage of messages is reversed for both applications.");
}

/// Print Fig. 7 (compute + print).
pub fn print_fig7(scale: usize, runs: usize, seed: u64) {
    print_rows(&fig7(scale, runs, seed));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_violations_are_significant_and_messages_are_a_large_fraction() {
        // Heavily scaled down for the test suite; the effect survives
        // because the interpolation window geometry is preserved.
        let rows = fig7(30, 1, 9);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.violated_pct > 0.5,
                "{}: expected violations after interpolation, got {:.2}%",
                r.app,
                r.violated_pct
            );
            assert!(
                r.message_event_pct > 5.0,
                "{}: message events should be a sizable fraction, got {:.2}%",
                r.app,
                r.message_event_pct
            );
        }
    }

    #[test]
    fn interpolation_reduces_raw_reversals() {
        // Without any correction the raw trace has gross violations
        // (offsets are milliseconds); interpolation removes most.
        let (prog, dur, k) = pop_program(60);
        let mut tr = traced_run(&prog, dur, k, 4);
        let raw = {
            let lmin = tr.cluster.l_min_model();
            let m = tracefmt::match_messages(&tr.trace);
            tracefmt::check_p2p(&tr.trace, &m, &lmin)
        };
        let census = census_after_interpolation(&mut tr);
        let raw_pct = pct(raw.violations.len(), raw.total.max(1));
        assert!(
            census.violated_pct < raw_pct,
            "interpolation should reduce violations: raw {raw_pct:.1}% vs {:.1}%",
            census.violated_pct
        );
    }
}
