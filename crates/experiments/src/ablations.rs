//! Ablation studies on the design choices DESIGN.md calls out.
//!
//! 1. **Probe count** — Cristian's min-round-trip filter: how the offset
//!    estimation error shrinks as more request/reply rounds are exchanged
//!    (paper §III.b: "the process must be repeated several times").
//! 2. **Anchor count** — piecewise interpolation with mid-run measurements
//!    (the paper's "piecewise" alternative and reference [17]): residual
//!    deviation vs. number of anchors on a long Xeon TSC run.
//! 3. **Amortization factor μ** — the CLC's interval-preservation knob:
//!    violations are always zero, but how much do local interval lengths
//!    distort as μ decreases?
//! 4. **Network load** — the paper's §III.c warning that "network topology
//!    and load may adversely affect the predictability of message
//!    latencies, an important prerequisite for network-based
//!    synchronization": offset-probe accuracy under increasing background
//!    load waves.

use crate::common::cluster_one_rank_per_node;
use clocksync::{
    controlled_logical_clock, estimate_offset, ClcParams, OffsetMeasurement,
    PiecewiseInterpolation, ProbeSample, TimestampMap,
};
use mpisim::probe_worker;
use simclock::{Dur, Platform, Time, TimerKind};
use tracefmt::{EventKind, Rank, Summary, Tag, Trace, UniformLatency};

/// One probe-count ablation row.
#[derive(Debug, Clone)]
pub struct ProbeRow {
    /// Rounds per measurement.
    pub probes: usize,
    /// Mean absolute estimation error (µs) over many measurements.
    pub mean_abs_err_us: f64,
    /// Worst error (µs).
    pub max_abs_err_us: f64,
}

/// Sweep the number of Cristian rounds per offset measurement.
pub fn probe_count_ablation(reps: usize, seed: u64) -> Vec<ProbeRow> {
    [1usize, 2, 5, 10, 20, 50]
        .iter()
        .map(|&probes| {
            let mut errs = Summary::new();
            let mut worst = 0.0f64;
            for r in 0..reps {
                let mut cluster = cluster_one_rank_per_node(
                    Platform::XeonCluster,
                    TimerKind::IntelTsc,
                    2,
                    10.0,
                    seed + r as u64,
                );
                let true_off = {
                    let m = cluster.clocks.ideal_at(cluster.placement.core_of(0), Time::ZERO);
                    let w = cluster.clocks.ideal_at(cluster.placement.core_of(1), Time::ZERO);
                    m - w
                };
                let session = probe_worker(
                    &mut cluster,
                    Rank(0),
                    Rank(1),
                    probes,
                    Time::ZERO,
                    Dur::from_us(50),
                );
                let rounds: Vec<ProbeSample> = session
                    .rounds
                    .iter()
                    .map(|r| ProbeSample { t1: r.t1, t0: r.t0, t2: r.t2 })
                    .collect();
                let est = estimate_offset(&rounds).expect("non-empty");
                let err = (est.offset - true_off).abs().as_us_f64();
                errs.add(err);
                worst = worst.max(err);
            }
            ProbeRow {
                probes,
                mean_abs_err_us: errs.mean(),
                max_abs_err_us: worst,
            }
        })
        .collect()
}

/// One anchor-count ablation row.
#[derive(Debug, Clone)]
pub struct AnchorRow {
    /// Number of interpolation anchors (2 = the paper's Eq. 3).
    pub anchors: usize,
    /// Max residual deviation across the run, µs.
    pub max_residual_us: f64,
}

/// Sweep the number of piecewise-interpolation anchors over a long Xeon
/// TSC run.
pub fn anchor_count_ablation(duration_s: f64, seed: u64) -> Vec<AnchorRow> {
    // One cluster, probed densely once; anchor subsets are then evaluated
    // against the dense reference measurements.
    let mut cluster = cluster_one_rank_per_node(
        Platform::XeonCluster,
        TimerKind::IntelTsc,
        2,
        duration_s * 1.2 + 30.0,
        seed,
    );
    let samples = 64usize;
    let mut dense: Vec<OffsetMeasurement> = Vec::with_capacity(samples + 1);
    for k in 0..=samples {
        let at = Time::from_secs_f64(duration_s * k as f64 / samples as f64);
        let session = probe_worker(&mut cluster, Rank(0), Rank(1), 10, at, Dur::from_us(50));
        let rounds: Vec<ProbeSample> = session
            .rounds
            .iter()
            .map(|r| ProbeSample { t1: r.t1, t0: r.t0, t2: r.t2 })
            .collect();
        dense.push(estimate_offset(&rounds).expect("non-empty"));
    }

    [2usize, 3, 5, 9, 17, 33]
        .iter()
        .map(|&anchors| {
            // Evenly spaced anchor subset.
            let picked: Vec<OffsetMeasurement> = (0..anchors)
                .map(|i| dense[i * samples / (anchors - 1)])
                .collect();
            let pw = PiecewiseInterpolation::new(picked);
            let mut worst = 0.0f64;
            for m in &dense {
                let corrected = pw.map(m.worker_time);
                let reference = m.worker_time + m.offset;
                worst = worst.max((corrected - reference).abs().as_us_f64());
            }
            AnchorRow {
                anchors,
                max_residual_us: worst,
            }
        })
        .collect()
}

/// One μ-ablation row.
#[derive(Debug, Clone)]
pub struct MuRow {
    /// Amortization factor.
    pub mu: f64,
    /// Violations after the CLC (must be 0 for every μ).
    pub violations: usize,
    /// Mean relative distortion of local intervals (percent).
    pub mean_interval_distortion_pct: f64,
}

/// Sweep the CLC amortization factor on a skewed ring trace and measure
/// how much local interval lengths distort.
pub fn mu_ablation(seed: u64) -> Vec<MuRow> {
    // A deterministic skewed trace: two procs exchange messages; proc 1's
    // clock is 200 µs behind, so every second message is violated.
    let build = || {
        let mut t = Trace::for_ranks(2);
        let skew = -200i64;
        let mut now = 0i64;
        for i in 0..60u32 {
            now += 40 + (i as i64 * 7) % 23;
            t.procs[0].push(
                Time::from_us(now),
                EventKind::Send { to: Rank(1), tag: Tag(i), bytes: 0 },
            );
            now += 15;
            t.procs[1].push(
                Time::from_us(now + skew),
                EventKind::Recv { from: Rank(0), tag: Tag(i), bytes: 0 },
            );
            now += 25;
            t.procs[1].push(
                Time::from_us(now + skew),
                EventKind::Enter { region: tracefmt::RegionId(0) },
            );
        }
        t
    };
    let _ = seed;
    let lmin = UniformLatency(Dur::from_us(4));

    [1.0f64, 0.999, 0.99, 0.9, 0.5]
        .iter()
        .map(|&mu| {
            let before = build();
            let mut after = before.clone();
            controlled_logical_clock(
                &mut after,
                &lmin,
                &ClcParams { mu, backward: false, ..ClcParams::default() },
            )
            .expect("CLC runs");
            let m = tracefmt::match_messages(&after);
            let violations = tracefmt::check_p2p(&after, &m, &lmin).violations.len();
            // Interval distortion on proc 1 (the corrected side).
            let mut distortion = Summary::new();
            for w in 0..before.procs[1].events.len() - 1 {
                let orig =
                    (before.procs[1].events[w + 1].time - before.procs[1].events[w].time)
                        .as_us_f64();
                let corr =
                    (after.procs[1].events[w + 1].time - after.procs[1].events[w].time)
                        .as_us_f64();
                if orig > 0.0 {
                    distortion.add(100.0 * (corr - orig).abs() / orig);
                }
            }
            MuRow {
                mu,
                violations,
                mean_interval_distortion_pct: distortion.mean(),
            }
        })
        .collect()
}

/// One network-load ablation row.
#[derive(Debug, Clone)]
pub struct LoadRow {
    /// Peak congestion queueing delay, µs.
    pub amplitude: f64,
    /// Mean absolute offset-estimation error, µs.
    pub mean_abs_err_us: f64,
    /// Worst error, µs.
    pub max_abs_err_us: f64,
}

/// Sweep background network load (asymmetric congestion, µs of peak
/// queueing delay) and measure Cristian-probe accuracy (10 rounds per
/// measurement, min-RTT filtered). Each measurement starts at a random
/// phase of the load wave.
pub fn network_load_ablation(reps: usize, seed: u64) -> Vec<LoadRow> {
    use rand::Rng as _;
    use rand::SeedableRng as _;
    [0.0f64, 2.0, 5.0, 10.0, 20.0]
        .iter()
        .map(|&congestion_us| {
            let mut errs = Summary::new();
            let mut worst = 0.0f64;
            let mut phase_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x4c4f_4144);
            for r in 0..reps {
                let mut cluster = cluster_one_rank_per_node(
                    Platform::XeonCluster,
                    TimerKind::IntelTsc,
                    2,
                    10.0,
                    seed + r as u64,
                );
                let period_s = 0.37;
                cluster.latency.load = Some(netsim::LoadWave {
                    amplitude: 1.0,
                    period_s,
                    congestion: Dur::from_us_f64(congestion_us),
                    asymmetry: 0.2,
                });
                // The probe train is sub-millisecond — much shorter than the
                // load period — so each measurement sees one phase; sample
                // the phase uniformly. The reference offset is evaluated at
                // the same instant (drift between t=0 and the probe train
                // must not pollute the measurement-error metric).
                let start = Time::from_secs_f64(phase_rng.gen::<f64>() * period_s);
                let true_off = {
                    let m = cluster.clocks.ideal_at(cluster.placement.core_of(0), start);
                    let w = cluster.clocks.ideal_at(cluster.placement.core_of(1), start);
                    m - w
                };
                let session = probe_worker(
                    &mut cluster,
                    Rank(0),
                    Rank(1),
                    10,
                    start,
                    Dur::from_us(50),
                );
                let rounds: Vec<ProbeSample> = session
                    .rounds
                    .iter()
                    .map(|r| ProbeSample { t1: r.t1, t0: r.t0, t2: r.t2 })
                    .collect();
                let est = estimate_offset(&rounds).expect("non-empty");
                let err = (est.offset - true_off).abs().as_us_f64();
                errs.add(err);
                worst = worst.max(err);
            }
            LoadRow {
                amplitude: congestion_us,
                mean_abs_err_us: errs.mean(),
                max_abs_err_us: worst,
            }
        })
        .collect()
}

/// Print all four ablations.
pub fn print_ablations(seed: u64) {
    println!("\n## Ablation 1 — Cristian probe count vs. offset estimation error");
    println!("{:>8} {:>18} {:>16}", "probes", "mean |err| [us]", "max |err| [us]");
    for r in probe_count_ablation(40, seed) {
        println!("{:>8} {:>18.3} {:>16.3}", r.probes, r.mean_abs_err_us, r.max_abs_err_us);
    }

    println!("\n## Ablation 2 — interpolation anchors vs. residual (Xeon TSC, 600 s)");
    println!("{:>8} {:>20}", "anchors", "max residual [us]");
    for r in anchor_count_ablation(600.0, seed + 1) {
        println!("{:>8} {:>20.3}", r.anchors, r.max_residual_us);
    }
    println!("2 anchors = the paper's Eq. 3; more anchors = the piecewise option / Doleschal [17].");

    println!("\n## Ablation 3 — CLC amortization factor μ");
    println!("{:>8} {:>12} {:>28}", "mu", "violations", "interval distortion [%]");
    for r in mu_ablation(seed + 2) {
        println!(
            "{:>8.3} {:>12} {:>28.3}",
            r.mu, r.violations, r.mean_interval_distortion_pct
        );
    }
    println!("every μ restores the clock condition; larger μ preserves intervals at the cost of longer-lasting shifts.");

    println!("\n## Ablation 4 — background network load vs. probe accuracy");
    println!("{:>12} {:>18} {:>16}", "congest[us]", "mean |err| [us]", "max |err| [us]");
    for r in network_load_ablation(40, seed + 3) {
        println!(
            "{:>12.1} {:>18.3} {:>16.3}",
            r.amplitude, r.mean_abs_err_us, r.max_abs_err_us
        );
    }
    println!("load stretches latency tails asymmetrically; even min-RTT filtering degrades — the paper's \"predictability of message latencies\" caveat.");

    println!("\n## Ablation 5 — OpenMP thread placement at 4 threads (the pinning the paper's Itanium lacked)");
    println!("{:<28} {:>18}", "placement", "regions w/ any [%]");
    for (name, pct) in workloads::placement_ablation(4, 200, 3, seed + 4) {
        println!("{name:<28} {pct:>18.1}");
    }
    println!("packing the team onto one chip (one clock) would have eliminated the Fig. 8 violations entirely.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_probes_reduce_error() {
        let rows = probe_count_ablation(25, 3);
        let one = rows.iter().find(|r| r.probes == 1).unwrap();
        let many = rows.iter().find(|r| r.probes == 20).unwrap();
        assert!(
            many.mean_abs_err_us <= one.mean_abs_err_us,
            "20 probes ({}) should beat 1 probe ({})",
            many.mean_abs_err_us,
            one.mean_abs_err_us
        );
    }

    #[test]
    fn more_anchors_reduce_residual() {
        let rows = anchor_count_ablation(300.0, 4);
        let two = rows.iter().find(|r| r.anchors == 2).unwrap();
        let many = rows.iter().find(|r| r.anchors == 33).unwrap();
        assert!(
            many.max_residual_us < two.max_residual_us,
            "33 anchors ({}) should beat 2 anchors ({})",
            many.max_residual_us,
            two.max_residual_us
        );
    }

    #[test]
    fn all_mu_values_restore_condition_and_distortion_grows_as_mu_falls() {
        let rows = mu_ablation(5);
        for r in &rows {
            assert_eq!(r.violations, 0, "mu={} left violations", r.mu);
        }
        let at = |mu: f64| {
            rows.iter()
                .find(|r| (r.mu - mu).abs() < 1e-9)
                .unwrap()
                .mean_interval_distortion_pct
        };
        // μ=1 preserves intervals perfectly (no decay => pure shift).
        assert!(at(1.0) < 1e-6, "mu=1 distortion {}", at(1.0));
        // Lower μ compresses intervals more.
        assert!(at(0.5) > at(0.99), "distortion should grow as mu falls");
    }
}
