//! Model validation: the analytical violation predictor vs. the simulator.
//!
//! `clocksync::predict` models the residual after two-point interpolation
//! as a Brownian-bridge of the integrated rate random walk. This experiment
//! compares, per run position, the predicted residual standard deviation
//! with the deviation actually measured in the simulator (across several
//! seeds), and prints the `safe_run_length` answer to the practical
//! question the paper leaves implicit: *how long may a run be before
//! Eq. 3 stops protecting the clock condition?*

use crate::common::{cluster_one_rank_per_node, measure_deviations, Correction, RunLength};
use clocksync::predict::WanderModel;
use simclock::{Dur, Platform, TimerKind};
use tracefmt::Summary;

/// One comparison row.
#[derive(Debug, Clone)]
pub struct PredictRow {
    /// Run position in seconds.
    pub t_s: f64,
    /// Predicted residual std (µs) from the bridge model.
    pub predicted_us: f64,
    /// Measured residual RMS (µs) across seeds/workers.
    pub measured_us: f64,
}

/// The wander parameters the Xeon TSC profile actually uses.
pub fn xeon_tsc_wander() -> WanderModel {
    let p = Platform::XeonCluster.clock_profile(TimerKind::IntelTsc, 60.0);
    WanderModel {
        step_sigma: p.walk_step_sigma,
        step_s: p.walk_step_s,
    }
}

/// Compare prediction with simulation over a run of `duration_s`, averaging
/// the measured residuals over `seeds` independent clusters.
pub fn compare(duration_s: f64, seeds: u64, base_seed: u64) -> Vec<PredictRow> {
    let model = xeon_tsc_wander();
    let positions = 8usize;
    // measured[k]: squared residuals at position k across seeds × workers.
    let mut measured: Vec<Summary> = (0..=positions).map(|_| Summary::new()).collect();
    for s in 0..seeds {
        let mut cluster = cluster_one_rank_per_node(
            Platform::XeonCluster,
            TimerKind::IntelTsc,
            3,
            duration_s * 1.2 + 30.0,
            base_seed + s,
        );
        let len = RunLength {
            duration_s,
            sample_every_s: duration_s / positions as f64,
        };
        let series = measure_deviations(&mut cluster, len, Correction::Linear, 8);
        for w in &series {
            for (k, &(_, dev_us)) in w.points.iter().enumerate() {
                if k <= positions {
                    measured[k].add(dev_us * dev_us);
                }
            }
        }
    }
    (0..=positions)
        .map(|k| {
            let t_s = duration_s * k as f64 / positions as f64;
            PredictRow {
                t_s,
                predicted_us: model.bridge_std(t_s, duration_s) * 1e6,
                measured_us: measured[k].mean().sqrt(),
            }
        })
        .collect()
}

/// Print the comparison plus the safe-run-length answers.
pub fn print_predict(duration_s: f64, seeds: u64, seed: u64) {
    println!("\n## Prediction vs. simulation — interpolation residuals (Xeon TSC, {duration_s} s, {seeds} seeds)");
    println!("{:>10} {:>16} {:>16}", "t [s]", "predicted [us]", "measured [us]");
    for r in compare(duration_s, seeds, seed) {
        println!(
            "{:>10.0} {:>16.3} {:>16.3}",
            r.t_s, r.predicted_us, r.measured_us
        );
    }
    let model = xeon_tsc_wander();
    for (label, l) in [
        ("inter-node (4.29 us)", Dur::from_us_f64(4.29)),
        ("inter-chip (0.86 us)", Dur::from_us_f64(0.86)),
        ("inter-core (0.47 us)", Dur::from_us_f64(0.47)),
    ] {
        let t = clocksync::predict::safe_run_length(&model, l);
        println!(
            "safe run length for {label}: ~{:.0} s before mid-run residual std exceeds half the latency",
            t
        );
    }
    println!("(the paper's empirical finding — interpolation is only safe for runs of minutes — drops out of the model.)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_tracks_simulation_within_a_factor_of_two() {
        let rows = compare(240.0, 6, 77);
        // Compare at mid-run, where the signal is largest. The measured
        // residual includes thermal wander + probe noise on top of the
        // random walk, so allow a generous band.
        let mid = &rows[rows.len() / 2];
        assert!(mid.predicted_us > 0.0);
        let ratio = mid.measured_us / mid.predicted_us;
        assert!(
            (0.4..3.5).contains(&ratio),
            "prediction off at mid-run: measured {} vs predicted {} (ratio {ratio})",
            mid.measured_us,
            mid.predicted_us
        );
        // Anchored ends: measured residual is small there too.
        assert!(rows[0].measured_us < mid.measured_us.max(1.0));
    }

    #[test]
    fn safe_run_length_orders_by_latency() {
        let m = xeon_tsc_wander();
        let t_node = clocksync::predict::safe_run_length(&m, Dur::from_us_f64(4.29));
        let t_core = clocksync::predict::safe_run_length(&m, Dur::from_us_f64(0.47));
        assert!(t_node > t_core, "larger latency budget → longer safe runs");
        // Minutes, not hours — the paper's message.
        assert!(t_node > 30.0 && t_node < 3600.0, "t_node = {t_node}");
    }
}
