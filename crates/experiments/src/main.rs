//! Command-line driver: `experiments <name>... [--fast] [--seed N] [--csv DIR]`.
//!
//! Names: `fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 table1 table2 intranode
//! clc online ablations predict timers all`. `--fast` shortens the long deviation runs and shrinks the
//! application workloads so the whole campaign completes in well under a
//! minute; without it the runs use the paper's full durations.

use experiments::*;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2008u64);
    let csv_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let mut names: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--") && args.iter().position(|x| x == *a).map(|i| i == 0 || args[i-1] != "--seed").unwrap_or(true))
        .map(|s| s.as_str())
        .collect();
    if names.is_empty() {
        names.push("all");
    }
    let all = names.contains(&"all");
    // Scale divisors under --fast.
    let dev_scale = if fast { 10.0 } else { 1.0 };
    let app_scale = if fast { 30 } else { 4 };
    let fig8_regions = if fast { 120 } else { 400 };
    let has = |n: &str| all || names.contains(&n);

    println!("# drift-lab experiment campaign (seed {seed}, fast={fast})");
    if has("fig1") {
        fig1_2_3::print_fig1();
    }
    if has("fig2") {
        fig1_2_3::print_fig2();
    }
    if has("fig3") {
        fig1_2_3::print_fig3(seed);
    }
    if has("table1") {
        tables::print_table1();
    }
    if all {
        tables::print_timer_taxonomy(seed);
    }
    if has("table2") {
        tables::print_table2(if fast { 500 } else { 5000 }, seed);
        tables::print_table2_platforms(if fast { 300 } else { 2000 }, seed);
    }
    if has("timers") {
        tables::print_timer_taxonomy(seed);
    }
    if has("fig4") {
        let outcomes = deviations::print_fig4(dev_scale, seed);
        if let Some(dir) = &csv_dir {
            for (name, o) in &outcomes {
                csvout::save_series(dir, name, &o.series).expect("csv written");
            }
        }
    }
    if has("fig5") {
        let outcomes = deviations::print_fig5(dev_scale, seed + 10);
        if let Some(dir) = &csv_dir {
            for (name, o) in &outcomes {
                csvout::save_series(dir, name, &o.series).expect("csv written");
            }
        }
    }
    if has("fig6") {
        let o = deviations::print_fig6(if fast { 2.0 } else { 1.0 }, seed + 22);
        if let Some(dir) = &csv_dir {
            csvout::save_series(dir, "fig6", &o.series).expect("csv written");
        }
    }
    if has("fig7") {
        let rows = fig7::fig7(app_scale, 3, seed + 30);
        fig7::print_rows(&rows);
        if let Some(dir) = &csv_dir {
            let table: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    vec![
                        r.app.to_string(),
                        format!("{:.3}", r.reversed_pct),
                        format!("{:.3}", r.violated_pct),
                        format!("{:.3}", r.message_event_pct),
                    ]
                })
                .collect();
            csvout::save_rows(dir, "fig7", "app,reversed_pct,violated_pct,message_event_pct", &table)
                .expect("csv written");
        }
    }
    if has("fig8") {
        let rows = fig8::fig8(fig8_regions, 3, seed + 40);
        fig8::print_rows(&rows, 3, fig8_regions);
        if let Some(dir) = &csv_dir {
            let table: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    vec![
                        r.threads.to_string(),
                        format!("{:.2}", r.any_pct),
                        format!("{:.2}", r.entry_pct),
                        format!("{:.2}", r.exit_pct),
                        format!("{:.2}", r.barrier_pct),
                    ]
                })
                .collect();
            csvout::save_rows(dir, "fig8", "threads,any_pct,entry_pct,exit_pct,barrier_pct", &table)
                .expect("csv written");
        }
    }
    if has("intranode") {
        intranode::print_intranode(if fast { 60.0 } else { 300.0 }, seed + 50);
    }
    if has("clc") {
        clc_exp::print_clc(app_scale, seed + 60);
    }
    if has("online") {
        let rows = online_exp::print_online(if fast { 600 } else { 2500 }, seed + 90);
        if let Some(dir) = &csv_dir {
            let table: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    vec![
                        r.scenario.clone(),
                        r.messages.to_string(),
                        r.raw.to_string(),
                        r.interp.to_string(),
                        r.clc.to_string(),
                        r.online.to_string(),
                    ]
                })
                .collect();
            csvout::save_rows(dir, "online", "scenario,messages,raw,interp,clc,online", &table)
                .expect("csv written");
        }
    }
    if has("ablations") {
        ablations::print_ablations(seed + 70);
    }
    if has("predict") {
        predict_exp::print_predict(if fast { 120.0 } else { 600.0 }, if fast { 4 } else { 10 }, seed + 80);
    }
}
