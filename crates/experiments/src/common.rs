//! Shared experiment infrastructure: cluster construction, deviation
//! measurement via probing, and table/series printing.

use clocksync::{estimate_offset, OffsetMeasurement, ProbeSample};
use mpisim::{probe_worker, Cluster};
use netsim::{HierarchicalLatency, Placement, Topology};
use simclock::{ClockDomain, ClockEnsemble, Dur, Platform, Time, TimerKind};
use tracefmt::fit_line;

/// How long to run and how densely to sample.
#[derive(Debug, Clone, Copy)]
pub struct RunLength {
    /// Run duration in seconds (paper: 300 / 1800 / 3600).
    pub duration_s: f64,
    /// Offset-sampling interval in seconds.
    pub sample_every_s: f64,
}

impl RunLength {
    /// The paper's "short run".
    pub fn short() -> Self {
        RunLength { duration_s: 300.0, sample_every_s: 2.0 }
    }

    /// The paper's "medium run".
    pub fn medium() -> Self {
        RunLength { duration_s: 1800.0, sample_every_s: 10.0 }
    }

    /// The paper's "long run".
    pub fn long() -> Self {
        RunLength { duration_s: 3600.0, sample_every_s: 20.0 }
    }

    /// Scale the duration down (for `--fast` smoke runs), keeping the
    /// sampling density proportional.
    pub fn scaled(self, factor: f64) -> Self {
        RunLength {
            duration_s: self.duration_s / factor,
            sample_every_s: (self.sample_every_s / factor).max(0.5),
        }
    }
}

/// Latency model for a paper platform.
pub fn latency_of(platform: Platform) -> HierarchicalLatency {
    match platform {
        Platform::XeonCluster | Platform::ItaniumSmp => HierarchicalLatency::xeon_infiniband(),
        Platform::PowerPcCluster => HierarchicalLatency::powerpc_myrinet(),
        Platform::OpteronCluster => HierarchicalLatency::opteron_seastar(),
    }
}

/// Interconnect topology for a paper platform.
pub fn topology_of(platform: Platform, nodes: usize) -> Topology {
    match platform {
        Platform::OpteronCluster => {
            // SeaStar 3-D torus sized to cover the node count.
            let d = (nodes as f64).cbrt().ceil() as usize;
            Topology::Torus3D { dims: [d.max(1), d.max(1), d.max(1)] }
        }
        Platform::PowerPcCluster => Topology::FatTree { leaf_radix: 8 },
        _ => Topology::FatTree { leaf_radix: 16 },
    }
}

/// Build a cluster of `nodes` nodes with one rank per node — the deviation
/// experiments' setup ("all processes were located on different SMP
/// nodes").
pub fn cluster_one_rank_per_node(
    platform: Platform,
    timer: TimerKind,
    nodes: usize,
    horizon_s: f64,
    seed: u64,
) -> Cluster {
    let shape = platform.shape(nodes);
    let profile = platform.clock_profile(timer, horizon_s);
    let clocks = ClockEnsemble::build(shape, ClockDomain::PerChip, &profile, seed);
    Cluster::new(
        Placement::one_per_node(shape, nodes),
        topology_of(platform, nodes),
        latency_of(platform),
        clocks,
        seed ^ 0x1234,
    )
}

/// One worker's deviation time series (seconds, microseconds).
#[derive(Debug, Clone)]
pub struct DeviationSeries {
    /// Worker rank (1-based in the paper's plots; rank 0 is the master).
    pub worker: usize,
    /// `(run time s, deviation µs)` samples.
    pub points: Vec<(f64, f64)>,
}

impl DeviationSeries {
    /// Largest absolute deviation in µs.
    pub fn max_abs_us(&self) -> f64 {
        self.points.iter().map(|p| p.1.abs()).fold(0.0, f64::max)
    }

    /// R² of a straight-line fit through the series — near 1.0 means the
    /// deviation grows linearly (constant drift), lower means kinks or
    /// curvature.
    pub fn linearity_r2(&self) -> f64 {
        fit_line(&self.points).map(|f| f.r2).unwrap_or(1.0)
    }

    /// Crude kink detector: number of sign-stable slope changes larger than
    /// `threshold_us_per_s` between consecutive window fits.
    pub fn count_kinks(&self, threshold_us_per_s: f64) -> usize {
        let w = 8usize;
        if self.points.len() < 3 * w {
            return 0;
        }
        let mut slopes = Vec::new();
        let mut i = 0;
        while i + w <= self.points.len() {
            if let Some(f) = fit_line(&self.points[i..i + w]) {
                slopes.push(f.slope);
            }
            i += w;
        }
        slopes
            .windows(2)
            .filter(|s| (s[1] - s[0]).abs() > threshold_us_per_s)
            .count()
    }
}

/// Correction applied before reporting deviations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Correction {
    /// None at all — raw offsets.
    None,
    /// Offset alignment at start (Fig. 4).
    AlignOnly,
    /// Eq. 3 between the first and last samples (Figs. 5/6).
    Linear,
}

/// Measure residual clock deviations of every worker against rank 0 over a
/// run, using Cristian probing at each sample point (the measurement itself
/// goes through the jittered network, as on a real cluster).
pub fn measure_deviations(
    cluster: &mut Cluster,
    length: RunLength,
    correction: Correction,
    probes_per_sample: usize,
) -> Vec<DeviationSeries> {
    let master = tracefmt::Rank(0);
    let n = cluster.n_ranks();
    let samples = (length.duration_s / length.sample_every_s).floor() as usize + 1;
    // measurements[w][k]: offset measurement of worker w at sample k.
    let mut measurements: Vec<Vec<OffsetMeasurement>> = vec![Vec::with_capacity(samples); n];
    for k in 0..samples {
        let t = Time::from_secs_f64(k as f64 * length.sample_every_s);
        #[allow(clippy::needless_range_loop)]
        for w in 1..n {
            let session = probe_worker(
                cluster,
                master,
                tracefmt::Rank(w as u32),
                probes_per_sample,
                t,
                Dur::from_us(200),
            );
            let rounds: Vec<ProbeSample> = session
                .rounds
                .iter()
                .map(|r| ProbeSample { t1: r.t1, t0: r.t0, t2: r.t2 })
                .collect();
            measurements[w].push(estimate_offset(&rounds).expect("non-empty probe set"));
        }
    }

    (1..n)
        .map(|w| {
            let ms = &measurements[w];
            let first = ms.first().expect("at least one sample");
            let last = ms.last().expect("at least one sample");
            let slope = if matches!(correction, Correction::Linear)
                && last.worker_time > first.worker_time
            {
                (last.offset - first.offset).as_secs_f64()
                    / (last.worker_time - first.worker_time).as_secs_f64()
            } else {
                0.0
            };
            let points = ms
                .iter()
                .enumerate()
                .map(|(k, m)| {
                    let predicted = match correction {
                        Correction::None => Dur::ZERO,
                        Correction::AlignOnly => first.offset,
                        Correction::Linear => {
                            first.offset
                                + Dur::from_secs_f64(
                                    slope * (m.worker_time - first.worker_time).as_secs_f64(),
                                )
                        }
                    };
                    (
                        k as f64 * length.sample_every_s,
                        (predicted - m.offset).as_us_f64(),
                    )
                })
                .collect();
            DeviationSeries { worker: w, points }
        })
        .collect()
}

/// Print a set of deviation series as an aligned table, downsampled to at
/// most `max_rows` rows.
pub fn print_series(title: &str, series: &[DeviationSeries], max_rows: usize) {
    println!("\n## {title}");
    print!("{:>10}", "t [s]");
    for s in series {
        print!("{:>14}", format!("worker {} [us]", s.worker));
    }
    println!();
    let n = series.first().map_or(0, |s| s.points.len());
    let step = (n / max_rows.max(1)).max(1);
    let mut k = 0;
    while k < n {
        print!("{:>10.1}", series[0].points[k].0);
        for s in series {
            print!("{:>14.3}", s.points[k].1);
        }
        println!();
        k += step;
    }
    for s in series {
        println!(
            "worker {}: max |dev| = {:.3} us, linearity R^2 = {:.4}, kinks = {}",
            s.worker,
            s.max_abs_us(),
            s.linearity_r2(),
            s.count_kinks(0.05)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_lengths_match_paper() {
        assert_eq!(RunLength::short().duration_s, 300.0);
        assert_eq!(RunLength::medium().duration_s, 1800.0);
        assert_eq!(RunLength::long().duration_s, 3600.0);
        let fast = RunLength::long().scaled(10.0);
        assert_eq!(fast.duration_s, 360.0);
    }

    #[test]
    fn deviation_series_metrics() {
        // Perfectly linear series: R² = 1, no kinks.
        let s = DeviationSeries {
            worker: 1,
            points: (0..100).map(|i| (i as f64, 2.0 * i as f64)).collect(),
        };
        assert!((s.linearity_r2() - 1.0).abs() < 1e-9);
        assert_eq!(s.count_kinks(0.5), 0);
        assert_eq!(s.max_abs_us(), 198.0);
        // A sharp kink halfway.
        let k = DeviationSeries {
            worker: 1,
            points: (0..100)
                .map(|i| {
                    let t = i as f64;
                    (t, if t < 50.0 { 0.1 * t } else { 5.0 + 3.0 * (t - 50.0) })
                })
                .collect(),
        };
        assert!(k.linearity_r2() < 0.95);
        assert!(k.count_kinks(0.5) >= 1);
    }

    #[test]
    fn align_only_deviation_starts_near_zero_and_grows() {
        let mut cluster = cluster_one_rank_per_node(
            Platform::XeonCluster,
            TimerKind::IntelTsc,
            3,
            40.0,
            42,
        );
        let len = RunLength { duration_s: 30.0, sample_every_s: 2.0 };
        let series = measure_deviations(&mut cluster, len, Correction::AlignOnly, 8);
        assert_eq!(series.len(), 2);
        for s in &series {
            // First point is by construction ~0 (modulo probe noise).
            assert!(s.points[0].1.abs() < 1.0, "initial dev {}", s.points[0].1);
            // ppm-scale drift accumulates tens of µs over 30 s.
            assert!(
                s.max_abs_us() > 5.0,
                "worker {} drifted only {} µs",
                s.worker,
                s.max_abs_us()
            );
        }
    }

    #[test]
    fn linear_correction_beats_alignment() {
        let mk = || {
            cluster_one_rank_per_node(Platform::XeonCluster, TimerKind::IntelTsc, 3, 40.0, 7)
        };
        let len = RunLength { duration_s: 30.0, sample_every_s: 2.0 };
        let align = measure_deviations(&mut mk(), len, Correction::AlignOnly, 8);
        let linear = measure_deviations(&mut mk(), len, Correction::Linear, 8);
        let max_align: f64 = align.iter().map(|s| s.max_abs_us()).fold(0.0, f64::max);
        let max_linear: f64 = linear.iter().map(|s| s.max_abs_us()).fold(0.0, f64::max);
        assert!(
            max_linear < max_align / 3.0,
            "interpolation ({max_linear}) should beat alignment ({max_align})"
        );
    }
}
