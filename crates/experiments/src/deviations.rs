//! Figures 4–6 — measured clock deviations under different timers,
//! platforms and corrections.
//!
//! * **Fig. 4** — Xeon cluster, offset alignment only: (a) `MPI_Wtime()`
//!   diverges >200 µs within a short run with abrupt NTP turning points,
//!   (b) `gettimeofday()` behaves alike, (c) the Intel TSC keeps an
//!   approximately constant drift over a full hour.
//! * **Fig. 5** — residual deviations after linear offset interpolation
//!   over 3600 s: Xeon TSC, PowerPC time base, Opteron `gettimeofday()`
//!   (the worst).
//! * **Fig. 6** — even a short 300 s Xeon TSC run slightly exceeds the
//!   4.29 µs inter-node latency after interpolation.

use crate::common::{
    cluster_one_rank_per_node, measure_deviations, print_series, Correction, DeviationSeries,
    RunLength,
};
use simclock::{Platform, TimerKind};

/// A deviation experiment's output plus shape metrics.
pub struct DeviationOutcome {
    /// Per-worker deviation series.
    pub series: Vec<DeviationSeries>,
    /// Max |deviation| across workers, µs.
    pub max_abs_us: f64,
    /// Minimum linearity R² across workers.
    pub min_r2: f64,
    /// Total detected kinks across workers.
    pub kinks: usize,
}

fn run(
    platform: Platform,
    timer: TimerKind,
    nodes: usize,
    length: RunLength,
    correction: Correction,
    seed: u64,
) -> DeviationOutcome {
    let mut cluster =
        cluster_one_rank_per_node(platform, timer, nodes, length.duration_s * 1.1 + 30.0, seed);
    let series = measure_deviations(&mut cluster, length, correction, 8);
    let max_abs_us = series.iter().map(|s| s.max_abs_us()).fold(0.0, f64::max);
    let min_r2 = series.iter().map(|s| s.linearity_r2()).fold(1.0, f64::min);
    let kinks = series.iter().map(|s| s.count_kinks(0.05)).sum();
    DeviationOutcome {
        series,
        max_abs_us,
        min_r2,
        kinks,
    }
}

/// Fig. 4(a): `MPI_Wtime()` on the Xeon cluster, short run, align only.
pub fn fig4a(length: RunLength, seed: u64) -> DeviationOutcome {
    run(Platform::XeonCluster, TimerKind::MpiWtime, 4, length, Correction::AlignOnly, seed)
}

/// Fig. 4(b): `gettimeofday()` on the Xeon cluster, medium run, align only.
pub fn fig4b(length: RunLength, seed: u64) -> DeviationOutcome {
    run(Platform::XeonCluster, TimerKind::Gettimeofday, 4, length, Correction::AlignOnly, seed)
}

/// Fig. 4(c): Intel TSC on the Xeon cluster, long run, align only.
pub fn fig4c(length: RunLength, seed: u64) -> DeviationOutcome {
    run(Platform::XeonCluster, TimerKind::IntelTsc, 4, length, Correction::AlignOnly, seed)
}

/// Fig. 5(a): Xeon TSC after linear interpolation, long run.
pub fn fig5a(length: RunLength, seed: u64) -> DeviationOutcome {
    run(Platform::XeonCluster, TimerKind::IntelTsc, 4, length, Correction::Linear, seed)
}

/// Fig. 5(b): PowerPC time base after linear interpolation, long run.
pub fn fig5b(length: RunLength, seed: u64) -> DeviationOutcome {
    run(Platform::PowerPcCluster, TimerKind::IbmTimeBase, 4, length, Correction::Linear, seed)
}

/// Fig. 5(c): Opteron `gettimeofday()` after linear interpolation, long run.
pub fn fig5c(length: RunLength, seed: u64) -> DeviationOutcome {
    run(Platform::OpteronCluster, TimerKind::Gettimeofday, 4, length, Correction::Linear, seed)
}

/// Fig. 6: Xeon TSC after linear interpolation, short run.
pub fn fig6(length: RunLength, seed: u64) -> DeviationOutcome {
    run(Platform::XeonCluster, TimerKind::IntelTsc, 4, length, Correction::Linear, seed)
}

/// Print the whole Fig. 4 family; returns the outcomes keyed by sub-figure
/// for CSV export.
pub fn print_fig4(fast: f64, seed: u64) -> Vec<(&'static str, DeviationOutcome)> {
    let a = fig4a(RunLength::short().scaled(fast), seed);
    print_series(
        "Fig. 4(a) — MPI_Wtime(), short run, after initial offset alignment",
        &a.series,
        12,
    );
    println!(
        "shape: max |dev| {:.1} us (paper: >200 us), kinks {} (paper: abrupt slope changes), R^2 {:.3}",
        a.max_abs_us, a.kinks, a.min_r2
    );
    let b = fig4b(RunLength::medium().scaled(fast), seed + 1);
    print_series(
        "Fig. 4(b) — gettimeofday(), medium run, after initial offset alignment",
        &b.series,
        12,
    );
    println!("shape: max |dev| {:.1} us, kinks {} (paper: similar drift pattern)", b.max_abs_us, b.kinks);
    let c = fig4c(RunLength::long().scaled(fast), seed + 2);
    print_series(
        "Fig. 4(c) — Intel TSC, long run, after initial offset alignment",
        &c.series,
        12,
    );
    println!(
        "shape: max |dev| {:.1} us, linearity R^2 {:.4} (paper: approximately constant drift)",
        c.max_abs_us, c.min_r2
    );
    vec![("fig4a", a), ("fig4b", b), ("fig4c", c)]
}

/// Print the Fig. 5 family; returns the outcomes for CSV export.
pub fn print_fig5(fast: f64, seed: u64) -> Vec<(&'static str, DeviationOutcome)> {
    let lat_xeon = 4.29;
    let a = fig5a(RunLength::long().scaled(fast), seed);
    print_series("Fig. 5(a) — Xeon TSC after linear interpolation (3600 s)", &a.series, 12);
    println!("max |dev| {:.1} us vs inter-node latency {lat_xeon} us -> exceeded: {}", a.max_abs_us, a.max_abs_us > lat_xeon);
    let b = fig5b(RunLength::long().scaled(fast), seed + 1);
    print_series("Fig. 5(b) — PowerPC time base after linear interpolation (3600 s)", &b.series, 12);
    println!("max |dev| {:.1} us", b.max_abs_us);
    let c = fig5c(RunLength::long().scaled(fast), seed + 2);
    print_series("Fig. 5(c) — Opteron gettimeofday() after linear interpolation (3600 s)", &c.series, 12);
    println!("max |dev| {:.1} us (paper: the worst of the three)", c.max_abs_us);
    vec![("fig5a", a), ("fig5b", b), ("fig5c", c)]
}

/// Print Fig. 6; returns the outcome for CSV export.
pub fn print_fig6(fast: f64, seed: u64) -> DeviationOutcome {
    let f = fig6(RunLength::short().scaled(fast), seed);
    print_series("Fig. 6 — Xeon TSC after linear interpolation, short run (300 s)", &f.series, 12);
    println!(
        "max |dev| {:.2} us vs latency 4.29 us -> slightly exceeds: {}",
        f.max_abs_us,
        f.max_abs_us > 4.29
    );
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    // These use shortened runs to keep the suite fast; the full-length
    // shapes are exercised by the `experiments` binary and benches.

    #[test]
    fn fig4a_shows_kinks_and_large_deviations() {
        let o = fig4a(RunLength { duration_s: 300.0, sample_every_s: 2.0 }, 5);
        assert!(
            o.max_abs_us > 100.0,
            "NTP-steered clocks should diverge fast, got {} us",
            o.max_abs_us
        );
        assert!(o.kinks >= 1, "expected NTP turning points, got none");
    }

    #[test]
    fn fig4c_tsc_is_nearly_linear() {
        let o = fig4c(RunLength { duration_s: 400.0, sample_every_s: 4.0 }, 6);
        assert!(
            o.min_r2 > 0.96,
            "TSC deviation should be almost a straight line, R^2 {}",
            o.min_r2
        );
        // ppm-scale drift: hundreds of µs over 400 s.
        assert!(o.max_abs_us > 50.0);
    }

    #[test]
    fn fig5_residuals_exceed_latency_and_opteron_is_worst() {
        let xeon = fig5a(RunLength { duration_s: 900.0, sample_every_s: 10.0 }, 7);
        let opteron = fig5c(RunLength { duration_s: 900.0, sample_every_s: 10.0 }, 7);
        assert!(
            xeon.max_abs_us > 4.29,
            "Xeon TSC residual should exceed the message latency, got {}",
            xeon.max_abs_us
        );
        assert!(
            opteron.max_abs_us > xeon.max_abs_us,
            "Opteron gettimeofday ({}) should be worse than Xeon TSC ({})",
            opteron.max_abs_us,
            xeon.max_abs_us
        );
    }

    #[test]
    fn fig6_short_run_is_marginal() {
        let o = fig6(RunLength::short(), 8);
        // "The deviations slightly exceed the latency." The residual is a
        // Brownian-bridge excursion whose magnitude varies run to run by a
        // factor of ~3 (as it would on hardware); assert the right order of
        // magnitude around the 4.29 µs latency rather than a fixed side.
        assert!(
            o.max_abs_us > 2.0 && o.max_abs_us < 60.0,
            "short-run residual {} us should be of the latency's order",
            o.max_abs_us
        );
    }
}
