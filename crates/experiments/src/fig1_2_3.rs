//! The paper's illustrative figures.
//!
//! * **Fig. 1** — two clocks with an initial offset and different but
//!   constant drifts: the straight-line picture behind Eq. 3.
//! * **Fig. 2** — consistent vs. inconsistent message-passing and
//!   shared-memory event traces.
//! * **Fig. 3** — a real OpenMP barrier-semantics violation observed on the
//!   Itanium SMP node (we regenerate one from the simulated benchmark and
//!   print the offending timeline).

use simclock::{ConstantDrift, Dur, NoiseSpec, SimClock, Time, TimerKind};
use std::sync::Arc;
use tracefmt::{
    check_p2p, check_pomp, match_messages, match_parallel_regions, EventKind, Rank, RegionId,
    Tag, Trace, UniformLatency,
};
use workloads::openmp;

/// Fig. 1 data: local-time curves of two clocks against true time.
pub struct Fig1 {
    /// `(true s, clock1 s, clock2 s)` samples.
    pub rows: Vec<(f64, f64, f64)>,
}

/// Generate Fig. 1: clock 1 starts 0.5 s ahead and runs 2 % fast; clock 2
/// starts at zero and runs 1 % slow (exaggerated for visibility, like the
/// paper's sketch).
pub fn fig1() -> Fig1 {
    let c1 = SimClock::new(
        TimerKind::IntelTsc,
        Dur::from_ms(500),
        Arc::new(ConstantDrift::new(0.02)),
        NoiseSpec::noiseless(),
        0,
    );
    let c2 = SimClock::new(
        TimerKind::IntelTsc,
        Dur::ZERO,
        Arc::new(ConstantDrift::new(-0.01)),
        NoiseSpec::noiseless(),
        0,
    );
    let rows = (0..=20)
        .map(|i| {
            let t = Time::from_secs_f64(i as f64);
            (
                t.as_secs_f64(),
                c1.ideal_at(t).as_secs_f64(),
                c2.ideal_at(t).as_secs_f64(),
            )
        })
        .collect();
    Fig1 { rows }
}

/// Print Fig. 1.
pub fn print_fig1() {
    let f = fig1();
    println!("\n## Fig. 1 — two clocks with initial offset and constant drifts");
    println!("{:>8} {:>12} {:>12} {:>12}", "true[s]", "clock1[s]", "clock2[s]", "offset[s]");
    for (t, a, b) in &f.rows {
        println!("{t:>8.1} {a:>12.3} {b:>12.3} {:>12.3}", a - b);
    }
    let first = f.rows.first().expect("rows");
    let last = f.rows.last().expect("rows");
    println!(
        "offset grows linearly: {:.3} s at t=0 -> {:.3} s at t={:.0} (drift difference 3%)",
        first.1 - first.2,
        last.1 - last.2,
        last.0
    );
}

/// Fig. 2 verdicts for the four sketched scenarios.
pub struct Fig2 {
    /// p2p violations in the consistent message trace.
    pub msg_consistent_violations: usize,
    /// p2p violations in the inconsistent message trace.
    pub msg_inconsistent_violations: usize,
    /// barrier violations in the consistent shared-memory trace.
    pub barrier_consistent_violations: usize,
    /// barrier violations in the inconsistent shared-memory trace.
    pub barrier_inconsistent_violations: usize,
}

/// Build and check the four Fig. 2 micro traces.
pub fn fig2() -> Fig2 {
    let lmin = UniformLatency(Dur::from_us(1));

    let msg_trace = |send_us: i64, recv_us: i64| {
        let mut t = Trace::for_ranks(2);
        t.procs[0].push(
            Time::from_us(send_us),
            EventKind::Send { to: Rank(1), tag: Tag(0), bytes: 0 },
        );
        t.procs[1].push(
            Time::from_us(recv_us),
            EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 },
        );
        let m = match_messages(&t);
        check_p2p(&t, &m, &lmin).violations.len()
    };

    let barrier_trace = |t0: (i64, i64), t1: (i64, i64)| {
        let r = RegionId(0);
        let mut t = Trace::for_threads(2);
        t.procs[0].push(Time::from_us(0), EventKind::Fork { region: r });
        t.procs[0].push(Time::from_us(t0.0), EventKind::BarrierEnter { region: r });
        t.procs[0].push(Time::from_us(t0.1), EventKind::BarrierExit { region: r });
        t.procs[0].push(Time::from_us(100), EventKind::Join { region: r });
        t.procs[1].push(Time::from_us(t1.0), EventKind::BarrierEnter { region: r });
        t.procs[1].push(Time::from_us(t1.1), EventKind::BarrierExit { region: r });
        let regions = match_parallel_regions(&t).expect("well-formed");
        check_pomp(&t, &regions).barrier_violations
    };

    Fig2 {
        // (a) received after sent.
        msg_consistent_violations: msg_trace(10, 20),
        // (b) received before sent — impossible, must be flagged.
        msg_inconsistent_violations: msg_trace(20, 10),
        // (c) barrier executions overlap.
        barrier_consistent_violations: barrier_trace((10, 30), (20, 40)),
        // (d) thread 0 left before thread 1 entered.
        barrier_inconsistent_violations: barrier_trace((10, 15), (20, 40)),
    }
}

/// Print Fig. 2.
pub fn print_fig2() {
    let f = fig2();
    println!("\n## Fig. 2 — event-order semantics checks");
    println!("(a) consistent message trace:      {} violations (paper: consistent)", f.msg_consistent_violations);
    println!("(b) inconsistent message trace:    {} violation  (paper: recv before send)", f.msg_inconsistent_violations);
    println!("(c) consistent barrier trace:      {} violations (paper: overlap ok)", f.barrier_consistent_violations);
    println!("(d) inconsistent barrier trace:    {} violation  (paper: no overlap)", f.barrier_inconsistent_violations);
}

/// Fig. 3: find a barrier violation in a simulated 4-thread Itanium run and
/// return the offending region's timeline (thread, event, µs timestamps).
pub fn fig3(seed: u64) -> Option<Vec<(usize, String, f64)>> {
    // A handful of attempts with different seeds — violations are frequent
    // at 4 threads but not guaranteed in any single region.
    for s in 0..20u64 {
        let trace = openmp::run_benchmark(4, 50, seed + s);
        let regions = match_parallel_regions(&trace).expect("well-formed");
        for reg in &regions {
            // Check this region alone.
            let one = vec![reg.clone()];
            let rep = check_pomp(&trace, &one);
            if rep.barrier_violations > 0 {
                let mut rows = Vec::new();
                for th in &reg.threads {
                    for i in th.first..=th.last {
                        let e = &trace.procs[th.proc].events[i as usize];
                        rows.push((
                            th.proc,
                            format!("{:?}", e.kind),
                            e.time.as_us_f64(),
                        ));
                    }
                }
                rows.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"));
                return Some(rows);
            }
        }
    }
    None
}

/// Print Fig. 3.
pub fn print_fig3(seed: u64) {
    println!("\n## Fig. 3 — OpenMP barrier-semantics violation on the Itanium SMP node");
    match fig3(seed) {
        Some(rows) => {
            println!("{:>8} {:>14} {:>30}", "thread", "time [us]", "event");
            for (proc, kind, us) in rows {
                println!("{proc:>8} {us:>14.3} {kind:>30}");
            }
            println!("-> a thread's BarrierExit precedes another thread's BarrierEnter, as in the paper's encircled area.");
        }
        None => println!("no violating region found (unexpected at 4 threads)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_offset_grows_linearly() {
        let f = fig1();
        let diffs: Vec<f64> = f.rows.iter().map(|r| r.1 - r.2).collect();
        // Initial offset 0.5 s, growing by 0.03 s/s.
        assert!((diffs[0] - 0.5).abs() < 1e-9);
        let step = diffs[1] - diffs[0];
        assert!((step - 0.03).abs() < 1e-9);
        for w in diffs.windows(2) {
            assert!(((w[1] - w[0]) - step).abs() < 1e-9, "not linear");
        }
    }

    #[test]
    fn fig2_verdicts_match_the_paper() {
        let f = fig2();
        assert_eq!(f.msg_consistent_violations, 0);
        assert_eq!(f.msg_inconsistent_violations, 1);
        assert_eq!(f.barrier_consistent_violations, 0);
        assert_eq!(f.barrier_inconsistent_violations, 1);
    }

    #[test]
    fn fig3_finds_a_violation() {
        let rows = fig3(1);
        assert!(rows.is_some(), "no barrier violation found at 4 threads");
        let rows = rows.unwrap();
        // The timeline involves more than one thread.
        let threads: std::collections::HashSet<usize> =
            rows.iter().map(|r| r.0).collect();
        assert!(threads.len() >= 2);
    }
}
