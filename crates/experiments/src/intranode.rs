//! The §IV intra-node finding: on the Xeon cluster, clocks co-located on
//! one SMP node deviate only by noise of roughly ±0.1 µs — whether between
//! chips or between cores of one chip, and with or without correction —
//! so MPI message semantics inside a node survive without postprocessing.

use simclock::{ClockDomain, ClockEnsemble, Locality, Platform, Time, TimerKind};

/// Outcome per correction mode.
#[derive(Debug, Clone)]
pub struct IntranodeOutcome {
    /// Max |deviation| between cores on *different chips* of one node, µs.
    pub inter_chip_max_us: f64,
    /// Max |deviation| between cores on the *same chip*, µs.
    pub intra_chip_max_us: f64,
}

/// Measure co-located clock deviations over `duration_s`, sampling both
/// chips of one Xeon node. Three correction modes are reported: raw
/// (uncorrected), aligned at start, linear interpolation start→end.
pub fn intranode(duration_s: f64, seed: u64) -> [(&'static str, IntranodeOutcome); 3] {
    let shape = Platform::XeonCluster.shape(1);
    let profile = Platform::XeonCluster.clock_profile(TimerKind::IntelTsc, duration_s * 1.3 + 30.0);
    let mut clocks = ClockEnsemble::build(shape, ClockDomain::PerChip, &profile, seed);

    let cores: Vec<_> = shape.cores().collect();
    let samples = 120usize;
    // raw[c][k]: noisy reading of core c at sample k.
    let mut raw = vec![Vec::with_capacity(samples); cores.len()];
    let mut times = Vec::with_capacity(samples);
    for k in 0..=samples {
        let t = Time::from_secs_f64(duration_s * k as f64 / samples as f64);
        times.push(t);
        for (ci, &c) in cores.iter().enumerate() {
            raw[ci].push(clocks.sample(c, t));
        }
    }

    let deviation = |correct: &dyn Fn(usize, Time) -> Time| -> IntranodeOutcome {
        let mut inter: f64 = 0.0;
        let mut intra: f64 = 0.0;
        for a in 0..cores.len() {
            for b in (a + 1)..cores.len() {
                #[allow(clippy::needless_range_loop)]
                for k in 0..=samples {
                    let d = (correct(a, raw[a][k]) - correct(b, raw[b][k]))
                        .as_us_f64()
                        .abs();
                    match shape.locality(cores[a], cores[b]) {
                        Locality::SameChip => intra = intra.max(d),
                        Locality::SameNode => inter = inter.max(d),
                        _ => {}
                    }
                }
            }
        }
        IntranodeOutcome {
            inter_chip_max_us: inter,
            intra_chip_max_us: intra,
        }
    };

    // Correction anchors from the first and last samples: offsets of each
    // core's clock relative to core 0 at those instants.
    let off_first: Vec<_> = (0..cores.len()).map(|c| raw[c][0] - raw[0][0]).collect();
    let off_last: Vec<_> = (0..cores.len())
        .map(|c| raw[c][samples] - raw[0][samples])
        .collect();
    let w_first: Vec<_> = (0..cores.len()).map(|c| raw[c][0]).collect();
    let w_last: Vec<_> = (0..cores.len()).map(|c| raw[c][samples]).collect();

    let none = deviation(&|_c, t| t);
    let aligned = deviation(&|c, t| t - off_first[c]);
    let linear = deviation(&|c, t| {
        let span = (w_last[c] - w_first[c]).as_secs_f64();
        let slope = (off_last[c] - off_first[c]).as_secs_f64() / span;
        let predicted = off_first[c]
            + simclock::Dur::from_secs_f64(slope * (t - w_first[c]).as_secs_f64());
        t - predicted
    });

    [
        ("uncorrected", none),
        ("offset aligned", aligned),
        ("linear interpolation", linear),
    ]
}

/// Print the intra-node experiment.
pub fn print_intranode(duration_s: f64, seed: u64) {
    println!("\n## Intra-node deviations — Xeon SMP node (duration {duration_s} s)");
    println!(
        "{:<24} {:>18} {:>18}",
        "correction", "inter-chip max[us]", "intra-chip max[us]"
    );
    for (name, o) in intranode(duration_s, seed) {
        println!(
            "{name:<24} {:>18.3} {:>18.3}",
            o.inter_chip_max_us, o.intra_chip_max_us
        );
    }
    println!("paper: essentially noise around zero, max ~0.1 us between any two clocks -> intra-node MPI semantics survive uncorrected.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intranode_deviations_are_noise_scale() {
        let rows = intranode(300.0, 3);
        for (name, o) in &rows {
            assert!(
                o.inter_chip_max_us < 0.5,
                "{name}: inter-chip {} us exceeds the paper's noise scale",
                o.inter_chip_max_us
            );
            // Cores of one chip share the clock: only read noise remains.
            assert!(
                o.intra_chip_max_us <= o.inter_chip_max_us + 0.05,
                "{name}: intra-chip should not exceed inter-chip"
            );
        }
        // Uncorrected case already fine — the paper's headline claim.
        assert!(rows[0].1.inter_chip_max_us < 0.5);
    }
}
