//! A Sweep3D-like wavefront workload (ASCI discrete-ordinates transport).
//!
//! Sweep3D pipelines wavefronts diagonally across a 2-D process grid: for
//! each octant, every rank waits for its upstream neighbours (west and
//! north for the (+x,+y) octant), computes a block of angles, and forwards
//! to its downstream neighbours. The result is a long chain of *tightly
//! dependent* small messages — the communication pattern most sensitive to
//! clock-condition violations, because each hop's recv sits only one
//! compute block after its send.
//!
//! This makes it the ideal stress workload for the CLC: a single violated
//! hop cascades corrections through the entire downstream wavefront.

use mpisim::program::{regions, Program, RankProgram};
use simclock::Dur;
use tracefmt::{Rank, Tag};

/// Sweep3D-like configuration.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Process grid width.
    pub px: usize,
    /// Process grid height.
    pub py: usize,
    /// Outer iterations (full 4-octant sweeps).
    pub iterations: usize,
    /// Pipeline blocks per octant (k-plane blocks).
    pub blocks: usize,
    /// Compute time per block.
    pub compute: Dur,
    /// Compute jitter.
    pub compute_cv: f64,
    /// Boundary-exchange payload per hop.
    pub bytes: u64,
}

impl SweepConfig {
    /// A small default: 4×4 grid, 2 iterations, 4 blocks.
    pub fn small() -> Self {
        SweepConfig {
            px: 4,
            py: 4,
            iterations: 2,
            blocks: 4,
            compute: Dur::from_us(200),
            compute_cv: 0.08,
            bytes: 2048,
        }
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.px * self.py
    }

    fn coords(&self, r: usize) -> (usize, usize) {
        (r % self.px, r / self.px)
    }

    fn rank_at(&self, x: usize, y: usize) -> Rank {
        Rank((y * self.px + x) as u32)
    }

    /// Upstream/downstream neighbours of `rank` for one of the four sweep
    /// directions `(dx, dy) ∈ {±1}²`: `(from_x, from_y, to_x, to_y)`,
    /// each `None` at the boundary.
    #[allow(clippy::type_complexity)]
    pub fn neighbors(
        &self,
        rank: usize,
        dx: isize,
        dy: isize,
    ) -> (Option<Rank>, Option<Rank>, Option<Rank>, Option<Rank>) {
        let (x, y) = self.coords(rank);
        let (x, y) = (x as isize, y as isize);
        let inside = |x: isize, y: isize| {
            (0..self.px as isize).contains(&x) && (0..self.py as isize).contains(&y)
        };
        let mk = |x: isize, y: isize| {
            inside(x, y).then(|| self.rank_at(x as usize, y as usize))
        };
        (mk(x - dx, y), mk(x, y - dy), mk(x + dx, y), mk(x, y + dy))
    }

    /// Generate the program.
    pub fn build(&self) -> Program {
        let octant_region = |o: usize| regions::user(50 + o as u32);
        // The four sweep directions (quadrants of the 2-D decomposition).
        let dirs: [(isize, isize); 4] = [(1, 1), (-1, 1), (1, -1), (-1, -1)];
        Program::build(self.n_ranks(), |r| {
            let mut p = RankProgram::new();
            for it in 0..self.iterations {
                for (o, &(dx, dy)) in dirs.iter().enumerate() {
                    let (from_x, from_y, to_x, to_y) = self.neighbors(r.idx(), dx, dy);
                    p = p.enter(octant_region(o));
                    for b in 0..self.blocks {
                        // Tag encodes iteration/octant/block/axis so the
                        // many small pipeline messages never cross-match.
                        let tag_of = |axis: u32| {
                            Tag(((it * 4 + o) * self.blocks + b) as u32 * 2 + axis)
                        };
                        if let Some(w) = from_x {
                            p = p.recv(w, tag_of(0));
                        }
                        if let Some(n) = from_y {
                            p = p.recv(n, tag_of(1));
                        }
                        p = p.compute_jitter(self.compute, self.compute_cv);
                        if let Some(e) = to_x {
                            p = p.send(e, tag_of(0), self.bytes);
                        }
                        if let Some(s) = to_y {
                            p = p.send(s, tag_of(1), self.bytes);
                        }
                    }
                    p = p.exit(octant_region(o));
                }
            }
            p
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{run, Cluster, RunOptions};
    use netsim::{HierarchicalLatency, Placement, Topology};
    use simclock::{ClockDomain, ClockEnsemble, ClockProfile, MachineShape, Time, TimerKind};

    #[test]
    fn neighbor_geometry() {
        let c = SweepConfig::small();
        // Rank 5 = (1,1); sweep (+1,+1): upstream west (0,1)=4 and north
        // (1,0)=1; downstream east (2,1)=6 and south (1,2)=9.
        let (w, n, e, s) = c.neighbors(5, 1, 1);
        assert_eq!(w, Some(Rank(4)));
        assert_eq!(n, Some(Rank(1)));
        assert_eq!(e, Some(Rank(6)));
        assert_eq!(s, Some(Rank(9)));
        // Corner (0,0) has no upstream for (+1,+1).
        let (w, n, _, _) = c.neighbors(0, 1, 1);
        assert_eq!(w, None);
        assert_eq!(n, None);
        // For the (-1,-1) octant the corner (0,0) is the *sink*.
        let (w, n, e, s) = c.neighbors(0, -1, -1);
        assert_eq!(w, Some(Rank(1)));
        assert_eq!(n, Some(Rank(4)));
        assert_eq!(e, None);
        assert_eq!(s, None);
    }

    #[test]
    fn wavefront_runs_and_pipelines() {
        let c = SweepConfig::small();
        let shape = MachineShape::new(4, 2, 2);
        let clocks = ClockEnsemble::build(
            shape,
            ClockDomain::Global,
            &ClockProfile::bare(TimerKind::IntelTsc),
            0,
        );
        let mut cluster = Cluster::new(
            Placement::round_robin(shape, 16),
            Topology::Crossbar,
            HierarchicalLatency::xeon_infiniband(),
            clocks,
            3,
        );
        let out = run(&mut cluster, &c.build(), &RunOptions::default()).unwrap();
        let m = tracefmt::match_messages(&out.trace);
        assert!(m.is_complete());
        // Messages per octant: east hops 3×4 grid-edges... simply assert
        // symmetric totals: every send found its recv and the counts match
        // 2 iters × 4 octants × 4 blocks × (12 x-edges + 12 y-edges).
        assert_eq!(m.messages.len(), 2 * 4 * 4 * 24);
        // The wavefront serialises the corner-to-corner chain: at least
        // (px+py-2+blocks) compute blocks of critical path.
        let min_path = (4 + 4 - 2 + 4) as i64 * 200;
        assert!(
            out.stats.end_time >= Time::from_us(min_path),
            "end {:?} too early for a pipelined wavefront",
            out.stats.end_time
        );
    }

    #[test]
    fn violations_cascade_and_clc_repairs_the_wavefront() {
        use clocksync::{controlled_logical_clock, ClcParams};
        let c = SweepConfig::small();
        let shape = MachineShape::new(8, 2, 1);
        // Hefty per-node offsets so wavefront hops are reversed.
        let profile = ClockProfile::bare(TimerKind::IntelTsc)
            .with_node_spread(200e-6, 1e-6)
            .with_horizon(10.0);
        let clocks = ClockEnsemble::build(shape, ClockDomain::PerNode, &profile, 5);
        let mut cluster = Cluster::new(
            Placement::round_robin(shape, 16),
            Topology::Crossbar,
            HierarchicalLatency::xeon_infiniband(),
            clocks,
            7,
        );
        let out = run(&mut cluster, &c.build(), &RunOptions::default()).unwrap();
        let lmin = tracefmt::UniformLatency(Dur::from_us(4));
        let mut trace = out.trace;
        let m = tracefmt::match_messages(&trace);
        let before = tracefmt::check_p2p(&trace, &m, &lmin);
        assert!(before.violations.len() > 10, "offsets should reverse hops");
        let rep =
            controlled_logical_clock(&mut trace, &lmin, &ClcParams::default()).unwrap();
        // Cascades: far more events moved than jumps applied.
        assert!(rep.events_moved > rep.n_jumps());
        let m = tracefmt::match_messages(&trace);
        assert!(tracefmt::check_p2p(&trace, &m, &lmin).violations.is_empty());
    }
}
