//! Latency measurement workloads (paper Table II).
//!
//! The paper measured the message latency between cores, between chips,
//! between nodes, and the inter-node collective (allreduce) latency,
//! because the clock-condition bound `l_min` differs per placement. The
//! measurements here mirror the standard methodology: ping-pong round trips
//! halved (all timing on one process, so clock drift cancels) and
//! per-operation collective durations.

use mpisim::program::{Program, RankProgram};
use mpisim::{run, Cluster, RunOptions, SimError};
use simclock::Dur;
use tracefmt::{match_collectives, match_messages, CommId, EventKind, Rank, Summary, Tag};

/// Result of a latency measurement.
#[derive(Debug, Clone)]
pub struct LatencyMeasurement {
    /// Per-repetition one-way latencies in microseconds.
    pub summary: Summary,
}

impl LatencyMeasurement {
    /// Mean one-way latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.summary.mean()
    }

    /// Sample standard deviation in microseconds.
    pub fn std_us(&self) -> f64 {
        self.summary.std_dev()
    }
}

/// Ping-pong between ranks 0 and 1 of the cluster; returns one-way latency
/// statistics over `reps` round trips of `bytes`-byte messages.
///
/// Timestamps come from rank 0's *own* clock only (`t_recv − t_send` of the
/// round trip, halved), so the measurement is immune to inter-clock offset —
/// exactly how real latency benchmarks avoid the problem this whole library
/// is about.
pub fn measure_p2p_latency(
    cluster: &mut Cluster,
    reps: usize,
    bytes: u64,
) -> Result<LatencyMeasurement, SimError> {
    assert!(cluster.n_ranks() >= 2, "need two ranks");
    let prog = Program::build(2, |r| {
        let mut p = RankProgram::new();
        for i in 0..reps {
            if r.0 == 0 {
                p = p.send(Rank(1), Tag(i as u32), bytes).recv(Rank(1), Tag(i as u32));
            } else {
                p = p.recv(Rank(0), Tag(i as u32)).send(Rank(0), Tag(i as u32), bytes);
            }
        }
        p
    });
    let opts = RunOptions {
        wrap_mpi_calls: false,
        ..RunOptions::default()
    };
    let out = run(cluster, &prog, &opts)?;
    let matching = match_messages(&out.trace);
    debug_assert!(matching.is_complete());
    // Round trip on rank 0's timeline: Send(i) .. Recv(i).
    let mut summary = Summary::new();
    let events = &out.trace.procs[0].events;
    let mut i = 0;
    while i + 1 < events.len() {
        if let (EventKind::Send { .. }, EventKind::Recv { .. }) =
            (events[i].kind, events[i + 1].kind)
        {
            let rtt = events[i + 1].time - events[i].time;
            summary.add(rtt.as_us_f64() / 2.0);
        }
        i += 2;
    }
    Ok(LatencyMeasurement { summary })
}

/// Allreduce duration statistics across `reps` operations on `n` ranks,
/// measured as `CollEnd − CollBegin` on rank 0 (again single-clock).
pub fn measure_allreduce_latency(
    cluster: &mut Cluster,
    n: usize,
    reps: usize,
    bytes: u64,
) -> Result<LatencyMeasurement, SimError> {
    measure_collective_latency(cluster, tracefmt::CollOp::Allreduce, n, reps, bytes)
}

/// Duration statistics of an arbitrary collective operation across `reps`
/// instances on `n` ranks, measured as `CollEnd − CollBegin` on rank 0.
/// Rooted flavours use rank 0 as the root.
pub fn measure_collective_latency(
    cluster: &mut Cluster,
    op: tracefmt::CollOp,
    n: usize,
    reps: usize,
    bytes: u64,
) -> Result<LatencyMeasurement, SimError> {
    assert!(cluster.n_ranks() >= n, "cluster too small");
    let root = op.has_root().then_some(Rank(0));
    let prog = Program::build(n, |_| {
        let mut p = RankProgram::new();
        for _ in 0..reps {
            // A small equal compute keeps entries loosely aligned, like a
            // benchmark loop body.
            p = p.compute(Dur::from_us(5)).coll(op, CommId::WORLD, root, bytes);
        }
        p
    });
    let opts = RunOptions {
        wrap_mpi_calls: false,
        ..RunOptions::default()
    };
    let out = run(cluster, &prog, &opts)?;
    let insts = match_collectives(&out.trace).expect("well-formed benchmark trace");
    let mut summary = Summary::new();
    for inst in &insts {
        let m0 = inst
            .members
            .iter()
            .find(|m| m.begin.p() == 0)
            .expect("rank 0 participates");
        let d = out.trace.time(m0.end) - out.trace.time(m0.begin);
        summary.add(d.as_us_f64());
    }
    Ok(LatencyMeasurement { summary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{HierarchicalLatency, Placement, Topology};
    use simclock::{ClockDomain, ClockEnsemble, ClockProfile, MachineShape, TimerKind};

    fn cluster(placement: Placement, shape: MachineShape) -> Cluster {
        let clocks = ClockEnsemble::build(
            shape,
            ClockDomain::Global,
            &ClockProfile::bare(TimerKind::IntelTsc),
            0,
        );
        Cluster::new(
            placement,
            Topology::Crossbar,
            HierarchicalLatency::xeon_infiniband(),
            clocks,
            7,
        )
    }

    #[test]
    fn inter_node_latency_matches_table2() {
        let shape = MachineShape::new(4, 2, 4);
        let mut c = cluster(Placement::one_per_node(shape, 4), shape);
        let m = measure_p2p_latency(&mut c, 2000, 0).unwrap();
        // Table II: 4.29 µs inter-node. Our measurement includes the send
        // overhead (0.15 µs), so expect ≈4.45 µs; assert the ballpark.
        assert!(
            (m.mean_us() - 4.29).abs() < 0.5,
            "inter-node mean {} µs",
            m.mean_us()
        );
        assert!(m.std_us() < 0.5);
    }

    #[test]
    fn latency_hierarchy_ordering() {
        let shape = MachineShape::new(4, 2, 4);
        let mut node = cluster(Placement::one_per_node(shape, 4), shape);
        let mut chip = cluster(Placement::one_per_chip(shape, 2), shape);
        let mut core = cluster(Placement::one_per_core(shape, 4), shape);
        let ln = measure_p2p_latency(&mut node, 500, 0).unwrap().mean_us();
        let lc = measure_p2p_latency(&mut chip, 500, 0).unwrap().mean_us();
        let lo = measure_p2p_latency(&mut core, 500, 0).unwrap().mean_us();
        assert!(lo < lc && lc < ln, "hierarchy broken: {lo} {lc} {ln}");
    }

    #[test]
    fn allreduce_latency_matches_table2() {
        let shape = MachineShape::new(4, 2, 4);
        let mut c = cluster(Placement::one_per_node(shape, 4), shape);
        let m = measure_allreduce_latency(&mut c, 4, 500, 8).unwrap();
        assert!(
            (m.mean_us() - 12.86).abs() < 2.0,
            "allreduce mean {} µs",
            m.mean_us()
        );
    }

    #[test]
    fn collective_flavours_have_sensible_relative_costs() {
        use tracefmt::CollOp;
        let shape = MachineShape::new(8, 2, 4);
        let get = |op: CollOp| {
            let mut c = cluster(Placement::one_per_node(shape, 8), shape);
            measure_collective_latency(&mut c, op, 8, 200, 8)
                .unwrap()
                .mean_us()
        };
        let bcast = get(CollOp::Bcast);
        let allreduce = get(CollOp::Allreduce);
        let barrier = get(CollOp::Barrier);
        let scan = get(CollOp::Scan);
        // Rank 0 is the bcast root: it only issues sends, so its measured
        // duration is far below the dissemination exchange.
        assert!(bcast < allreduce, "bcast {bcast} vs allreduce {allreduce}");
        // Barrier and allreduce share the dissemination shape.
        assert!((barrier - allreduce).abs() < 3.0, "{barrier} vs {allreduce}");
        // The scan chain on rank 0 is nearly free (it sends once).
        assert!(scan < allreduce, "scan {scan} vs allreduce {allreduce}");
    }

    #[test]
    fn bandwidth_term_shows_for_large_messages() {
        let shape = MachineShape::new(4, 2, 4);
        let mut c = cluster(Placement::one_per_node(shape, 4), shape);
        let small = measure_p2p_latency(&mut c, 200, 0).unwrap().mean_us();
        let mut c2 = cluster(Placement::one_per_node(shape, 4), shape);
        let large = measure_p2p_latency(&mut c2, 200, 100_000).unwrap().mean_us();
        // 100 kB at 700 ps/B = 70 µs extra.
        assert!(large > small + 50.0, "no bandwidth term: {small} vs {large}");
    }
}
