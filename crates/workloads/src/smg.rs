//! An SMG2000-like workload (ASC semi-coarsening multigrid solver).
//!
//! SMG2000's signature, per the paper: "a complex communication pattern
//! [with] a large number of non-nearest-neighbor point-to-point
//! communication operations". Semi-coarsening halves the grid in one
//! dimension per level, so on level ℓ a process exchanges data with
//! partners at distance `2^ℓ` in rank space — exactly the non-local pattern
//! modelled here. The paper padded the run with sleeps so the computation
//! sat ten minutes after `MPI_Init` and ten minutes before `MPI_Finalize`,
//! stretching the interpolation interval to ≈20 min; [`SmgConfig::padding`]
//! reproduces that.

use mpisim::program::{regions, Program, RankProgram, ReqId};
use simclock::Dur;
use tracefmt::{CommId, Rank, Tag};

/// SMG2000-like workload configuration.
#[derive(Debug, Clone)]
pub struct SmgConfig {
    /// Number of ranks.
    pub ranks: usize,
    /// Outer solver iterations (paper: 5).
    pub iterations: usize,
    /// Multigrid levels per V-cycle (partners at distance 2^level).
    pub levels: usize,
    /// Untraced idle before and after the computational phase.
    pub padding: Dur,
    /// Base compute per level on the finest grid.
    pub compute: Dur,
    /// Compute jitter.
    pub compute_cv: f64,
    /// Message payload on the finest level (halves per level).
    pub bytes: u64,
    /// Residual-norm allreduce after each V-cycle.
    pub norm_bytes: u64,
}

impl SmgConfig {
    /// The paper's setup: 16×16×8 per process, five iterations, 32 ranks,
    /// ten-minute pads (shrunk by `pad_scale` to keep simulation cheap —
    /// the interpolation geometry is preserved proportionally).
    pub fn paper_like(ranks: usize, pad_scale: usize) -> Self {
        let pad_scale = pad_scale.max(1);
        SmgConfig {
            ranks,
            iterations: 5,
            levels: (ranks as f64).log2().ceil() as usize,
            padding: Dur::from_secs(600) / pad_scale as i64,
            compute: Dur::from_us(8_000),
            compute_cv: 0.1,
            bytes: 16 * 16 * 8 * 8, // one face of the local box, f64
            norm_bytes: 8,
        }
    }

    /// Communication partners of `rank` on `level`: the ranks at distance
    /// `±2^level` (wrapping), the semi-coarsening stencil.
    pub fn partners(&self, rank: usize, level: usize) -> (Rank, Rank) {
        let d = 1usize << level;
        let n = self.ranks;
        (
            Rank(((rank + d) % n) as u32),
            Rank(((rank + n - d % n) % n) as u32),
        )
    }

    /// Generate the program.
    pub fn build(&self) -> Program {
        let cycle_region = regions::user(10);
        let level_region = |l: usize| regions::user(20 + l as u32);
        Program::build(self.ranks, |r| {
            let mut p = RankProgram::new().trace_off().sleep(self.padding).trace_on();
            for _it in 0..self.iterations {
                p = p.enter(cycle_region);
                // Down-sweep: fine → coarse; up-sweep back. Payload and
                // compute shrink with the level.
                let sweep: Vec<usize> = (0..self.levels).chain((0..self.levels).rev()).collect();
                for (leg, &l) in sweep.iter().enumerate() {
                    let (up, down) = self.partners(r.idx(), l);
                    let bytes = (self.bytes >> l).max(64);
                    let compute = (self.compute / (1 << l.min(20)) as i64).max(Dur::from_us(50));
                    p = p.enter(level_region(l));
                    p = p.compute_jitter(compute, self.compute_cv);
                    // SMG2000 posts its halo exchange non-blocking: irecv
                    // both directions, isend both, then complete all four.
                    // Distinct tags per leg keep the two sweeps separate.
                    let tag = Tag((leg * 2) as u32);
                    let tag_back = Tag((leg * 2 + 1) as u32);
                    p = p.irecv(down, tag, ReqId(0));
                    p = p.irecv(up, tag_back, ReqId(1));
                    p = p.isend(up, tag, bytes, ReqId(2));
                    p = p.isend(down, tag_back, bytes, ReqId(3));
                    p = p.waitall();
                    p = p.exit(level_region(l));
                }
                // Convergence check.
                p = p.allreduce(CommId::WORLD, self.norm_bytes);
                p = p.exit(cycle_region);
            }
            p.trace_off().sleep(self.padding)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    

    fn small() -> SmgConfig {
        SmgConfig {
            ranks: 8,
            iterations: 2,
            levels: 3,
            padding: Dur::from_ms(10),
            compute: Dur::from_us(400),
            compute_cv: 0.05,
            bytes: 4096,
            norm_bytes: 8,
        }
    }

    #[test]
    fn partners_are_non_nearest_beyond_level_zero() {
        let c = small();
        assert_eq!(c.partners(0, 0), (Rank(1), Rank(7)));
        assert_eq!(c.partners(0, 1), (Rank(2), Rank(6)));
        assert_eq!(c.partners(0, 2), (Rank(4), Rank(4)));
        assert_eq!(c.partners(5, 1), (Rank(7), Rank(3)));
    }

    #[test]
    fn partner_relation_is_symmetric() {
        let c = small();
        for r in 0..8 {
            for l in 0..3 {
                let (up, down) = c.partners(r, l);
                assert_eq!(c.partners(up.idx(), l).1, Rank(r as u32));
                assert_eq!(c.partners(down.idx(), l).0, Rank(r as u32));
            }
        }
    }

    #[test]
    fn runs_without_deadlock_and_matches() {
        use mpisim::{run, Cluster, RunOptions};
        use netsim::{HierarchicalLatency, Placement, Topology};
        use simclock::{ClockDomain, ClockEnsemble, ClockProfile, MachineShape, TimerKind};

        let c = small();
        let shape = MachineShape::new(8, 1, 1);
        let clocks = ClockEnsemble::build(
            shape,
            ClockDomain::Global,
            &ClockProfile::bare(TimerKind::IntelTsc),
            0,
        );
        let mut cluster = Cluster::new(
            Placement::one_per_node(shape, 8),
            Topology::Crossbar,
            HierarchicalLatency::xeon_infiniband(),
            clocks,
            2,
        );
        let out = run(&mut cluster, &c.build(), &RunOptions::default()).unwrap();
        let m = tracefmt::match_messages(&out.trace);
        assert!(m.is_complete());
        // 2 iterations × 6 sweep legs × 2 sends × 8 ranks.
        assert_eq!(m.messages.len(), 2 * 6 * 2 * 8);
        // Padding pushed the run length past ~20 ms.
        assert!(out.stats.end_time >= simclock::Time::from_ms(20));
    }

    #[test]
    fn paper_like_shape() {
        let c = SmgConfig::paper_like(32, 60);
        assert_eq!(c.ranks, 32);
        assert_eq!(c.iterations, 5);
        assert_eq!(c.levels, 5);
        assert_eq!(c.padding, Dur::from_secs(10));
    }
}
