//! The OpenMP benchmark of the paper's Figs. 3 and 8: a loop whose body is
//! a single `parallel for` (a parallel region with an implicit barrier),
//! run with 4–16 threads on the 4-chip Itanium SMP node, threads unpinned,
//! timestamps from the per-chip cycle counters, **no** offset correction.

use mpisim::shmem::{run_parallel_for, OmpConfig, OmpTimings, ThreadPlacement};
use simclock::{ClockDomain, ClockEnsemble, Platform, TimerKind};
use tracefmt::{check_pomp, match_parallel_regions, PompReport, Trace};

/// One Fig. 8 measurement: thread count plus the violation percentages.
#[derive(Debug, Clone)]
pub struct OmpViolationRow {
    /// Team size.
    pub threads: usize,
    /// % regions with any violation (back row of Fig. 8).
    pub any_pct: f64,
    /// % regions with a fork-not-first violation.
    pub entry_pct: f64,
    /// % regions with a join-not-last violation.
    pub exit_pct: f64,
    /// % regions violating barrier overlap.
    pub barrier_pct: f64,
}

/// Run the benchmark once with an explicit thread placement.
pub fn run_benchmark_placed(
    threads: usize,
    regions: usize,
    placement: ThreadPlacement,
    seed: u64,
) -> Trace {
    let shape = Platform::ItaniumSmp.shape(1);
    let profile = Platform::ItaniumSmp.clock_profile(TimerKind::CycleCounter, 120.0);
    let mut clocks = ClockEnsemble::build(shape, ClockDomain::PerChip, &profile, seed);
    let cfg = OmpConfig {
        threads,
        regions,
        timings: OmpTimings::default(),
        placement,
    };
    run_parallel_for(shape, &mut clocks, &cfg, seed ^ 0x17)
}

/// Run the benchmark once and return the trace (for Fig. 3-style timeline
/// inspection).
pub fn run_benchmark(threads: usize, regions: usize, seed: u64) -> Trace {
    let shape = Platform::ItaniumSmp.shape(1);
    let profile = Platform::ItaniumSmp.clock_profile(TimerKind::CycleCounter, 120.0);
    let mut clocks = ClockEnsemble::build(shape, ClockDomain::PerChip, &profile, seed);
    // The paper could not pin threads; on a loaded-balanced OS the
    // scheduler spreads a small team across the chips, which round-robin
    // placement models (and which maximises exposure to inter-chip clock
    // offsets, matching the high violation rates observed).
    let cfg = OmpConfig {
        threads,
        regions,
        timings: OmpTimings::default(),
        placement: ThreadPlacement::RoundRobinChips,
    };
    run_parallel_for(shape, &mut clocks, &cfg, seed ^ 0x17)
}

/// Check one run for POMP violations.
pub fn check_run(trace: &Trace) -> PompReport {
    let regions = match_parallel_regions(trace).expect("well-formed POMP trace");
    check_pomp(trace, &regions)
}

/// The Fig. 8 sweep: for each thread count, average the violation
/// percentages over `runs` independent runs (the paper averaged three
/// measurements per configuration).
pub fn violation_sweep(
    thread_counts: &[usize],
    regions: usize,
    runs: usize,
    seed: u64,
) -> Vec<OmpViolationRow> {
    thread_counts
        .iter()
        .map(|&threads| {
            let mut any = 0.0;
            let mut entry = 0.0;
            let mut exit = 0.0;
            let mut barrier = 0.0;
            for r in 0..runs {
                let trace = run_benchmark(threads, regions, seed + 1000 * r as u64);
                let rep = check_run(&trace);
                any += rep.any_pct();
                entry += rep.entry_pct();
                exit += rep.exit_pct();
                barrier += rep.barrier_pct();
            }
            let n = runs.max(1) as f64;
            OmpViolationRow {
                threads,
                any_pct: any / n,
                entry_pct: entry / n,
                exit_pct: exit / n,
                barrier_pct: barrier / n,
            }
        })
        .collect()
}

/// Placement ablation: the violation rate per thread placement at a fixed
/// team size — what the paper could not measure because "the test system
/// did not support the pinning of individual OpenMP threads".
pub fn placement_ablation(
    threads: usize,
    regions: usize,
    runs: usize,
    seed: u64,
) -> Vec<(&'static str, f64)> {
    [
        ("spread (one chip each)", ThreadPlacement::RoundRobinChips),
        ("unpinned (random)", ThreadPlacement::Random),
        ("packed (one chip)", ThreadPlacement::Packed),
    ]
    .iter()
    .map(|&(name, placement)| {
        let mut any = 0.0;
        for r in 0..runs {
            let trace =
                run_benchmark_placed(threads, regions, placement, seed + 1000 * r as u64);
            any += check_run(&trace).any_pct();
        }
        (name, any / runs.max(1) as f64)
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_produces_requested_regions() {
        let t = run_benchmark(4, 25, 3);
        let regions = match_parallel_regions(&t).unwrap();
        assert_eq!(regions.len(), 25);
        assert_eq!(t.n_procs(), 4);
    }

    #[test]
    fn fig8_shape_small_teams_worse_than_large() {
        let rows = violation_sweep(&[4, 16], 60, 3, 11);
        assert_eq!(rows.len(), 2);
        let four = &rows[0];
        let sixteen = &rows[1];
        assert!(
            four.any_pct > sixteen.any_pct + 20.0,
            "4 threads ({:.0}%) should violate far more than 16 ({:.0}%)",
            four.any_pct,
            sixteen.any_pct
        );
    }

    #[test]
    fn pinning_would_have_fixed_the_itanium() {
        // The paper's open question, answered in simulation: packing the
        // team onto one chip (shared clock) eliminates violations entirely,
        // while spreading maximises them.
        let rows = placement_ablation(4, 80, 3, 31);
        let get = |name: &str| rows.iter().find(|r| r.0.starts_with(name)).unwrap().1;
        let spread = get("spread");
        let random = get("unpinned");
        let packed = get("packed");
        assert_eq!(packed, 0.0, "shared-clock placement must be violation-free");
        assert!(spread > 40.0, "spread placement should violate heavily: {spread}");
        assert!(
            random <= spread + 1e-9,
            "random ({random}) should not exceed spread ({spread})"
        );
    }

    #[test]
    fn percentages_are_bounded() {
        for row in violation_sweep(&[8], 30, 2, 5) {
            for v in [row.any_pct, row.entry_pct, row.exit_pct, row.barrier_pct] {
                assert!((0.0..=100.0).contains(&v));
            }
            // "any" dominates each individual category.
            assert!(row.any_pct + 1e-9 >= row.entry_pct.max(row.exit_pct).max(row.barrier_pct));
        }
    }
}
