//! # workloads — synthetic application twins for the drift-lab experiments
//!
//! Generators reproducing the communication signatures of the paper's
//! evaluation applications:
//!
//! * [`pop`] — POP-like 2-D ocean stencil (halo exchanges + barotropic
//!   allreduce series, partial tracing of a mid-run window);
//! * [`smg`] — SMG2000-like semi-coarsening multigrid (non-nearest-neighbor
//!   exchanges at distance `2^level`, sleep padding around the solve);
//! * [`pingpong`] — the latency measurements behind Table II;
//! * [`sweep`] — Sweep3D-like wavefront pipelines (the CLC stress case);
//! * [`openmp`] — the parallel-for benchmark behind Figs. 3 and 8;
//! * [`churn`] — dynamic-membership scenarios over an `onlinesync`
//!   [`ClockNetwork`](onlinesync::ClockNetwork): NTP islands, WAN links,
//!   join/leave churn, and per-node Cristian probe schedules.

#![warn(missing_docs)]

pub mod churn;
pub mod openmp;
pub mod pingpong;
pub mod pop;
pub mod smg;
pub mod sweep;

pub use churn::{churn_scenario, ChurnScenario, ProbeMeasurement};
pub use openmp::{
    check_run, placement_ablation, run_benchmark, run_benchmark_placed, violation_sweep,
    OmpViolationRow,
};
pub use pingpong::{
    measure_allreduce_latency, measure_collective_latency, measure_p2p_latency,
    LatencyMeasurement,
};
pub use pop::PopConfig;
pub use smg::SmgConfig;
pub use sweep::SweepConfig;
