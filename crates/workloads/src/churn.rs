//! Dynamic-membership workloads over a [`ClockNetwork`] scenario.
//!
//! The paper's traces have a fixed membership; every generator in this
//! crate so far inherits that. [`churn_scenario`] instead drives message
//! traffic over an `onlinesync` [`ClockNetwork`]: nodes join and leave
//! mid-trace, only co-alive pairs exchange messages, cross-island
//! messages pay the WAN latency, and every worker's recorded timestamps
//! come from its island clock (base offset + individual drift). The
//! output is an *ordinary* trace plus the measurement vectors every
//! engine in the workspace consumes — batch, columnar, windowed, service
//! — so the dynamic scenarios exercise existing code paths, not a new
//! engine.
//!
//! Each scenario also carries the per-node Cristian probe schedules the
//! network generated (noise composed along the sync spanning tree, which
//! is recomputed on churn), so the same fixture feeds all three
//! synchronization methods head-to-head: interpolation uses the
//! first/last probe per node, the CLC cleans up after it, and the online
//! filter consumes the full schedule.

use onlinesync::{ClockNetwork, NetworkConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simclock::{Dur, Time};
use tracefmt::{EventKind, Rank, Tag, Trace, UniformLatency};

/// An offset measurement in the pipeline's shape, kept local so this
/// crate does not depend on `clocksync` (which would be a cycle through
/// the dev-dependency graph's spirit, if not its letter). Field-for-field
/// identical to `clocksync::OffsetMeasurement`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeMeasurement {
    /// Worker-local anchor time.
    pub worker_time: Time,
    /// Reference − worker offset at that anchor.
    pub offset: Dur,
    /// Winning probe round-trip.
    pub rtt: Dur,
}

/// A generated dynamic-membership fixture.
#[derive(Debug)]
pub struct ChurnScenario {
    /// The recorded trace (local clocks, drift and islands baked in).
    pub trace: Trace,
    /// Init measurement per node: each worker's *first* probe (taken just
    /// after joining). `None` for the reference node.
    pub init: Vec<Option<ProbeMeasurement>>,
    /// Finalize measurement per node: each worker's *last* probe (taken
    /// just before leaving). `None` for the reference node.
    pub fin: Vec<Option<ProbeMeasurement>>,
    /// Full probe schedule per node (index = node; empty for the
    /// reference) — the online method's input.
    pub probes: Vec<Vec<ProbeMeasurement>>,
    /// The minimum-latency model matching the generated traffic.
    pub lmin: UniformLatency,
    /// Messages actually placed (pairs must be co-alive, so heavy churn
    /// can place fewer than requested).
    pub messages: usize,
    /// The generating network: churn events, tree epochs, clock models.
    pub network: ClockNetwork,
}

/// Generate a dynamic-membership trace of roughly `msgs` point-to-point
/// messages over the network described by `cfg`.
///
/// Deterministic in `(cfg, seed)`. Messages are placed on the *true*
/// timeline between co-alive pairs (cross-island transfers pay the WAN
/// latency on top of the LAN `l_min`), then each endpoint records the
/// event through its own drifting island clock.
pub fn churn_scenario(cfg: NetworkConfig, msgs: usize, seed: u64) -> ChurnScenario {
    let net = ClockNetwork::generate(cfg, seed);
    let cfg = net.config().clone();
    let n = cfg.nodes;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6368_7572_6e21);

    let t_us = |us: f64| Time::ZERO.saturating_add(Dur::from_us_f64(us));
    let lmin_us = cfg.lan_us.max(1.0);
    let lmin = UniformLatency(Dur::from_us_f64(lmin_us));
    let horizon_us = cfg.horizon_s * 1e6;

    let window_us = |node: usize| {
        let (a, b) = net.alive_window(node);
        (a.as_us_f64(), b.as_us_f64())
    };

    let mut trace = Trace::for_ranks(n);
    // True-time cursor per node, starting at its join.
    let mut now: Vec<f64> = (0..n).map(|p| window_us(p).0).collect();
    let mut placed = 0usize;
    // Pace senders so the traffic roughly fills each node's lifetime
    // instead of bunching at the start.
    let mean_gap_us = (horizon_us / (msgs.max(1) as f64)).clamp(5.0, 5_000.0);
    let mut attempts = 0usize;
    while placed < msgs && attempts < msgs * 30 {
        attempts += 1;
        let from = rng.gen_range(0usize..n);
        let to = (from + rng.gen_range(1usize..n)) % n;
        let send = now[from] + rng.gen_range(0.2 * mean_gap_us..1.8 * mean_gap_us);
        let (f0, f1) = window_us(from);
        if send < f0 || send >= f1 {
            continue;
        }
        // Transfer: LAN l_min everywhere, plus the WAN cost across
        // islands, plus jitter.
        let mut transfer = lmin_us + rng.gen_range(0.0..3.0 * lmin_us);
        if net.cluster_of(from) != net.cluster_of(to) {
            transfer += cfg.wan_us * rng.gen_range(1.0..1.3);
        }
        let recv = (send + transfer).max(now[to] + 0.001);
        let (t0, t1) = window_us(to);
        if recv < t0 || recv >= t1 {
            continue;
        }
        now[from] = send;
        now[to] = recv;
        trace.procs[from].push(
            net.local_at(from, t_us(send)),
            EventKind::Send { to: Rank(to as u32), tag: Tag(placed as u32), bytes: 64 },
        );
        trace.procs[to].push(
            net.local_at(to, t_us(recv)),
            EventKind::Recv { from: Rank(from as u32), tag: Tag(placed as u32), bytes: 64 },
        );
        placed += 1;
    }

    // Probe schedules → measurement vectors. Init/fin are the schedule's
    // endpoints: what a joining node measures before doing work, and the
    // last estimate it took before leaving.
    let probes: Vec<Vec<ProbeMeasurement>> = (0..n)
        .map(|p| {
            net.probe_schedule(p)
                .into_iter()
                .map(|pr| ProbeMeasurement {
                    worker_time: pr.worker_time,
                    offset: pr.offset,
                    rtt: pr.rtt,
                })
                .collect()
        })
        .collect();
    let init: Vec<_> = probes.iter().map(|ps| ps.first().copied()).collect();
    let fin: Vec<_> = probes.iter().map(|ps| ps.last().copied()).collect();

    ChurnScenario { trace, init, fin, probes, lmin, messages: placed, network: net }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(seed: u64) -> ChurnScenario {
        churn_scenario(NetworkConfig::default(), 400, seed)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = scenario(3);
        let b = scenario(3);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.probes, b.probes);
        for (pa, pb) in a.trace.procs.iter().zip(&b.trace.procs) {
            assert_eq!(pa.events.len(), pb.events.len());
            for (ea, eb) in pa.events.iter().zip(&pb.events) {
                assert_eq!(ea.time, eb.time);
                assert_eq!(ea.kind, eb.kind);
            }
        }
    }

    #[test]
    fn places_most_of_the_requested_traffic() {
        let s = scenario(7);
        assert!(
            s.messages >= 300,
            "churn starved the generator: only {} of 400 messages",
            s.messages
        );
        assert_eq!(s.trace.n_events(), 2 * s.messages);
    }

    #[test]
    fn timelines_are_locally_monotone() {
        for seed in [1, 2, 3, 4, 5] {
            let s = scenario(seed);
            assert!(s.trace.is_locally_monotone(), "seed {seed}");
        }
    }

    #[test]
    fn matching_is_complete() {
        let s = scenario(11);
        let m = tracefmt::match_messages(&s.trace);
        assert!(m.is_complete(), "dangling sends/recvs in churn trace");
        assert_eq!(m.messages.len(), s.messages);
    }

    #[test]
    fn workers_have_measurements_and_the_reference_does_not() {
        let s = scenario(5);
        assert!(s.init[0].is_none() && s.fin[0].is_none());
        for p in 1..s.network.config().nodes {
            assert!(s.init[p].is_some(), "node {p} missing init probe");
            assert!(s.fin[p].is_some(), "node {p} missing fin probe");
            assert!(
                s.init[p].unwrap().worker_time <= s.fin[p].unwrap().worker_time,
                "node {p} probe endpoints out of order"
            );
        }
    }

    #[test]
    fn events_respect_the_alive_windows() {
        let s = scenario(9);
        for (p, pt) in s.trace.procs.iter().enumerate() {
            let (a, b) = s.network.alive_window(p);
            let (la, lb) = (s.network.local_at(p, a), s.network.local_at(p, b));
            for e in &pt.events {
                assert!(
                    e.time >= la && e.time <= lb,
                    "node {p} event at {:?} outside alive window [{la:?}, {lb:?}]",
                    e.time
                );
            }
        }
    }

    #[test]
    fn churn_actually_happened() {
        let s = scenario(13);
        assert!(!s.network.churn().is_empty());
        assert!(s.network.recomputes() >= 1);
        // The joiner and the leaver still participate in traffic.
        let cfg = s.network.config();
        let joiner = cfg.nodes - 1;
        assert!(
            !s.trace.procs[joiner].events.is_empty(),
            "joiner placed no events"
        );
    }
}
