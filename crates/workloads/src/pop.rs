//! A POP-like workload (Parallel Ocean Program, SPEC MPI2007).
//!
//! POP's communication signature per timestep: halo exchanges with the four
//! neighbours of a 2-D domain decomposition (baroclinic part) plus a series
//! of small global reductions from the barotropic conjugate-gradient solver.
//! The paper ran POP with the `mref` input — ≈9000 iterations in ≈25 min —
//! and traced only iterations 3500–5500 ("partial tracing"), leaving the
//! traced window far from the offset measurements at `MPI_Init` and
//! `MPI_Finalize`. This generator reproduces exactly that structure at a
//! configurable scale.

use mpisim::program::{regions, Program, RankProgram};
use simclock::Dur;
use tracefmt::{CommId, Rank, Tag};

/// POP-like workload configuration.
#[derive(Debug, Clone)]
pub struct PopConfig {
    /// Process grid width (ranks = px × py).
    pub px: usize,
    /// Process grid height.
    pub py: usize,
    /// Total timesteps.
    pub iterations: usize,
    /// First traced iteration (inclusive).
    pub trace_from: usize,
    /// Last traced iteration (exclusive).
    pub trace_to: usize,
    /// Mean baroclinic compute time per step.
    pub compute: Dur,
    /// Compute-time coefficient of variation across steps/ranks.
    pub compute_cv: f64,
    /// Halo message payload per neighbour exchange.
    pub halo_bytes: u64,
    /// Barotropic solver reductions per step (small allreduces).
    pub solver_reductions: usize,
    /// Payload of each solver reduction.
    pub reduction_bytes: u64,
}

impl PopConfig {
    /// A scaled-down `mref`-like setup for `n` ranks: the paper's 32-rank
    /// run shape with the iteration count divided by `scale` to keep
    /// simulation time reasonable (timestamp error behaviour depends on
    /// *when* the traced window sits, which is preserved).
    pub fn mref_like(px: usize, py: usize, scale: usize) -> Self {
        let scale = scale.max(1);
        PopConfig {
            px,
            py,
            iterations: 9000 / scale,
            trace_from: 3500 / scale,
            trace_to: 5500 / scale,
            // mref: ≈25 min for 9000 iterations ≈ 167 ms/step; the halo +
            // solver pattern below adds the communication on top.
            compute: Dur::from_us(150_000),
            compute_cv: 0.08,
            halo_bytes: 16 * 1024,
            solver_reductions: 6,
            reduction_bytes: 16,
        }
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.px * self.py
    }

    /// Grid coordinates of a rank.
    fn coords(&self, r: usize) -> (usize, usize) {
        (r % self.px, r / self.px)
    }

    /// Rank at (periodic) grid coordinates.
    fn rank_at(&self, x: isize, y: isize) -> Rank {
        let px = self.px as isize;
        let py = self.py as isize;
        let x = x.rem_euclid(px) as usize;
        let y = y.rem_euclid(py) as usize;
        Rank((y * self.px + x) as u32)
    }

    /// The four periodic neighbours of a rank (E, W, N, S).
    pub fn neighbors(&self, r: usize) -> [Rank; 4] {
        let (x, y) = self.coords(r);
        let (x, y) = (x as isize, y as isize);
        [
            self.rank_at(x + 1, y),
            self.rank_at(x - 1, y),
            self.rank_at(x, y + 1),
            self.rank_at(x, y - 1),
        ]
    }

    /// Generate the program.
    pub fn build(&self) -> Program {
        let step_region = regions::user(1);
        let solver_region = regions::user(2);
        Program::build(self.n_ranks(), |r| {
            let mut p = RankProgram::new();
            // Tracing is off until the window begins (partial tracing).
            if self.trace_from > 0 {
                p = p.trace_off();
            }
            let neigh = self.neighbors(r.idx());
            for iter in 0..self.iterations {
                if iter == self.trace_from {
                    p = p.trace_on();
                }
                if iter == self.trace_to {
                    p = p.trace_off();
                }
                p = p.enter(step_region);
                // Baroclinic: compute then halo exchange. Tags encode the
                // direction so the four in-flight exchanges stay distinct;
                // pairing is direction-reversed (my East send matches the
                // eastern neighbour's West receive).
                p = p.compute_jitter(self.compute, self.compute_cv);
                for (d, &n) in neigh.iter().enumerate() {
                    p = p.send(n, Tag(d as u32), self.halo_bytes);
                }
                // Receive from the opposite directions: E↔W (0↔1), N↔S (2↔3).
                for (d, &n) in neigh.iter().enumerate() {
                    let opposite = [1u32, 0, 3, 2][d];
                    p = p.recv(n, Tag(opposite));
                }
                // Barotropic solver: small latency-bound allreduces.
                p = p.enter(solver_region);
                for _ in 0..self.solver_reductions {
                    p = p.compute_jitter(self.compute / 20, self.compute_cv);
                    p = p.allreduce(CommId::WORLD, self.reduction_bytes);
                }
                p = p.exit(solver_region);
                p = p.exit(step_region);
            }
            p
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::program::MpiOp;

    fn small() -> PopConfig {
        PopConfig {
            px: 4,
            py: 2,
            iterations: 10,
            trace_from: 3,
            trace_to: 7,
            compute: Dur::from_us(100),
            compute_cv: 0.05,
            halo_bytes: 1024,
            solver_reductions: 2,
            reduction_bytes: 16,
        }
    }

    #[test]
    fn neighbor_topology_is_periodic_and_symmetric() {
        let c = small();
        // Rank 0 at (0,0): E=(1,0)=1, W=(3,0)=3, N=(0,1)=4, S=(0,1)=4.
        assert_eq!(c.neighbors(0), [Rank(1), Rank(3), Rank(4), Rank(4)]);
        // Symmetry: if b is a's eastern neighbour, a is b's western one.
        for r in 0..c.n_ranks() {
            let n = c.neighbors(r);
            assert_eq!(c.neighbors(n[0].idx())[1], Rank(r as u32));
            assert_eq!(c.neighbors(n[2].idx())[3], Rank(r as u32));
        }
    }

    #[test]
    fn program_structure() {
        let c = small();
        let prog = c.build();
        assert_eq!(prog.n_ranks(), 8);
        let ops = &prog.ranks[0].ops;
        // Starts with tracing off, toggles twice.
        assert_eq!(ops[0], MpiOp::TraceOff);
        let on = ops.iter().filter(|o| matches!(o, MpiOp::TraceOn)).count();
        let off = ops.iter().filter(|o| matches!(o, MpiOp::TraceOff)).count();
        assert_eq!(on, 1);
        assert_eq!(off, 2);
        // 4 sends + 4 recvs per iteration.
        let sends = ops.iter().filter(|o| matches!(o, MpiOp::Send { .. })).count();
        assert_eq!(sends, 40);
        let colls = ops.iter().filter(|o| matches!(o, MpiOp::Coll { .. })).count();
        assert_eq!(colls, 20);
    }

    #[test]
    fn runs_and_traces_only_the_window() {
        use mpisim::{run, Cluster, RunOptions};
        use netsim::{HierarchicalLatency, Placement, Topology};
        use simclock::{ClockDomain, ClockEnsemble, ClockProfile, MachineShape, TimerKind};

        let c = small();
        let shape = MachineShape::new(8, 1, 1);
        let clocks = ClockEnsemble::build(
            shape,
            ClockDomain::Global,
            &ClockProfile::bare(TimerKind::IntelTsc),
            0,
        );
        let mut cluster = Cluster::new(
            Placement::one_per_node(shape, 8),
            Topology::Crossbar,
            HierarchicalLatency::xeon_infiniband(),
            clocks,
            1,
        );
        let out = run(&mut cluster, &c.build(), &RunOptions::default()).unwrap();
        // Only iterations 3..7 are traced: 4 iterations × 8 ranks × 4 msgs.
        let m = tracefmt::match_messages(&out.trace);
        assert!(m.is_complete());
        assert_eq!(m.messages.len(), 4 * 8 * 4);
        // All runs' messages (10 iterations) actually happened.
        assert_eq!(out.stats.messages, 10 * 8 * 4);
        // Collectives in trace: 4 iterations × 2 reductions per rank.
        let insts = tracefmt::match_collectives(&out.trace).unwrap();
        assert_eq!(insts.len(), 8);
    }

    #[test]
    fn mref_like_scales() {
        let c = PopConfig::mref_like(8, 4, 10);
        assert_eq!(c.n_ranks(), 32);
        assert_eq!(c.iterations, 900);
        assert_eq!(c.trace_from, 350);
        assert_eq!(c.trace_to, 550);
    }
}
