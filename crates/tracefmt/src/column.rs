//! Columnar (structure-of-arrays) timestamp storage.
//!
//! A [`Trace`] keeps its events as an array of structs: one
//! [`EventRecord`](crate::EventRecord) per event, timestamp interleaved
//! with the kind/args payload. That layout is convenient for construction
//! and analysis, but the synchronisation pipeline's hot passes — timestamp
//! mapping, violation censuses, CLC amortization — only ever touch the
//! *times*. Walking 40-byte records to read 8-byte timestamps wastes most
//! of every cache line.
//!
//! This module splits the timestamp column out. [`TimeColumn`] is a
//! growable `Vec<i64>` (picoseconds) of one timeline — the codec's decode
//! buffer, where columns grow block by block in arrival order.
//! [`TraceColumns`] is the frozen pipeline form: every timeline's
//! timestamps in **one contiguous slab**, timeline-major, with a bounds
//! table marking where each column starts. The slab layout is what makes
//! the census kernels zero-copy: the flat gather array they index is the
//! slab itself ([`TraceColumns::flat`]), not a per-round copy, and the CLC
//! kernels snapshot it with a single `memcpy`. Columns are gathered from a
//! trace in one pass, mutated in place as disjoint `&mut [i64]` slices by
//! the pipeline stages, and scattered back when the pipeline is done.
//!
//! The [`TimeSource`] trait abstracts "timestamp of an event" over both
//! layouts so census code is written once and is bit-identical on either.

use crate::ids::EventId;
use crate::trace::Trace;
use simclock::Time;

/// Timestamp of an event, independent of storage layout.
///
/// Implemented by [`Trace`] (array-of-structs: reads
/// `procs[p].events[i].time`) and [`TraceColumns`] (structure-of-arrays:
/// reads `cols[p][i]`). Census code generic over `TimeSource` runs
/// identically on both — the foundation of the columnar/AoS differential
/// guarantee.
pub trait TimeSource {
    /// Timestamp of the event `id`.
    fn time_of(&self, id: EventId) -> Time;
}

impl TimeSource for Trace {
    #[inline]
    fn time_of(&self, id: EventId) -> Time {
        self.time(id)
    }
}

/// The dense timestamp column of one timeline, in picoseconds — the
/// codec-side decode buffer (a [`TraceColumns`] slab is assembled from
/// these once decoding completes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimeColumn {
    ps: Vec<i64>,
}

impl TimeColumn {
    /// Empty column.
    pub fn new() -> Self {
        TimeColumn::default()
    }

    /// Column with `cap` slots pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        TimeColumn {
            ps: Vec::with_capacity(cap),
        }
    }

    /// Number of timestamps.
    pub fn len(&self) -> usize {
        self.ps.len()
    }

    /// True when the column holds no timestamps.
    pub fn is_empty(&self) -> bool {
        self.ps.is_empty()
    }

    /// Append a timestamp.
    pub fn push(&mut self, t: Time) {
        self.ps.push(t.as_ps());
    }

    /// Append a raw picosecond value (codec path).
    pub fn push_ps(&mut self, ps: i64) {
        self.ps.push(ps);
    }

    /// Reserve room for at least `n` more timestamps.
    pub fn reserve(&mut self, n: usize) {
        self.ps.reserve(n);
    }

    /// Append raw picosecond values in bulk (codec path).
    pub fn extend_from_ps(&mut self, ps: &[i64]) {
        self.ps.extend_from_slice(ps);
    }

    /// Append timestamps decoded from a run of big-endian `i64` bytes —
    /// the wire layout of a columnar block frame's timestamp segment.
    /// `bytes.len()` must be a multiple of 8.
    pub fn extend_from_be_bytes(&mut self, bytes: &[u8]) {
        debug_assert_eq!(bytes.len() % 8, 0);
        self.ps.extend(
            bytes
                .chunks_exact(8)
                .map(|c| i64::from_be_bytes(c.try_into().unwrap())),
        );
    }

    /// Append timestamps from a run of little-endian `i64` bytes — the
    /// wire layout of a DTC3 block frame's timestamp segment. When the run
    /// is 8-aligned on a little-endian target this is a single bulk copy
    /// (see [`crate::cast`]); otherwise it decodes element-wise.
    /// `bytes.len()` must be a multiple of 8.
    pub fn extend_from_le_bytes(&mut self, bytes: &[u8]) {
        crate::cast::extend_i64_from_le_bytes(&mut self.ps, bytes);
    }

    /// Timestamp at `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Time {
        Time::from_ps(self.ps[i])
    }

    /// Overwrite the timestamp at `i`.
    #[inline]
    pub fn set(&mut self, i: usize, t: Time) {
        self.ps[i] = t.as_ps();
    }

    /// The column as a dense picosecond slice.
    #[inline]
    pub fn as_slice(&self) -> &[i64] {
        &self.ps
    }

    /// The column as a mutable picosecond slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [i64] {
        &mut self.ps
    }

    /// Are the timestamps non-decreasing?
    pub fn is_monotone(&self) -> bool {
        self.ps.windows(2).all(|w| w[0] <= w[1])
    }
}

impl From<Vec<i64>> for TimeColumn {
    fn from(ps: Vec<i64>) -> Self {
        TimeColumn { ps }
    }
}

impl FromIterator<Time> for TimeColumn {
    fn from_iter<I: IntoIterator<Item = Time>>(iter: I) -> Self {
        TimeColumn {
            ps: iter.into_iter().map(Time::as_ps).collect(),
        }
    }
}

/// All timestamp columns of a trace in one contiguous slab: `col(p)[i]` is
/// the time of event `(p, i)`, split away from the kind/args payload.
///
/// The slab is timeline-major — column `p` occupies
/// `slab[bounds[p]..bounds[p + 1]]` — which makes the flat event offset of
/// `(p, i)` exactly `bounds[p] + i`. That is the same flat ("gid") indexing
/// the census plans and CSR dependency graphs use, so both gather straight
/// from [`flat`](TraceColumns::flat) with no per-round flatten copy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceColumns {
    /// Every timeline's timestamps, timeline-major.
    slab: Vec<i64>,
    /// `n_procs + 1` offsets into `slab`; column `p` is
    /// `slab[bounds[p]..bounds[p + 1]]`.
    bounds: Vec<usize>,
}

impl TraceColumns {
    /// Gather the timestamp column of every timeline in one pass.
    pub fn gather(trace: &Trace) -> Self {
        let mut slab = Vec::with_capacity(trace.n_events());
        let mut bounds = Vec::with_capacity(trace.procs.len() + 1);
        bounds.push(0);
        for p in &trace.procs {
            slab.extend(p.events.iter().map(|e| e.time.as_ps()));
            bounds.push(slab.len());
        }
        TraceColumns { slab, bounds }
    }

    /// Build from per-timeline decode columns (codec path): one
    /// concatenating copy replaces the gather pass the pipeline would
    /// otherwise run.
    pub fn from_columns(cols: Vec<TimeColumn>) -> Self {
        let mut slab = Vec::with_capacity(cols.iter().map(TimeColumn::len).sum());
        let mut bounds = Vec::with_capacity(cols.len() + 1);
        bounds.push(0);
        for c in &cols {
            slab.extend_from_slice(c.as_slice());
            bounds.push(slab.len());
        }
        TraceColumns { slab, bounds }
    }

    /// Scatter the columns back into the trace's event records.
    ///
    /// # Panics
    /// Panics when the column shape does not match the trace (different
    /// timeline count or lengths) — scattering a mismatched column set
    /// would silently mis-time events.
    pub fn scatter_into(&self, trace: &mut Trace) {
        assert_eq!(
            self.n_procs(),
            trace.procs.len(),
            "column/timeline count mismatch"
        );
        for (p, pt) in trace.procs.iter_mut().enumerate() {
            let col = self.col(p);
            assert_eq!(
                pt.events.len(),
                col.len(),
                "column length mismatch on timeline {}",
                pt.location
            );
            for (e, &ps) in pt.events.iter_mut().zip(col) {
                e.time = Time::from_ps(ps);
            }
        }
    }

    /// Number of timelines.
    pub fn n_procs(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Total timestamps across all timelines.
    pub fn n_events(&self) -> usize {
        self.slab.len()
    }

    /// The column of timeline `p`, as a dense picosecond slice.
    #[inline]
    pub fn col(&self, p: usize) -> &[i64] {
        &self.slab[self.bounds[p]..self.bounds[p + 1]]
    }

    /// Mutable column of timeline `p`.
    #[inline]
    pub fn col_mut(&mut self, p: usize) -> &mut [i64] {
        &mut self.slab[self.bounds[p]..self.bounds[p + 1]]
    }

    /// The whole slab, timeline-major — every timestamp at its flat event
    /// offset. This *is* the census kernels' gather array: no flatten copy
    /// stands between a mutation and the next census.
    #[inline]
    pub fn flat(&self) -> &[i64] {
        &self.slab
    }

    /// Mutable view of the whole slab, for kernels that write every
    /// timestamp back at once (e.g. the CSR forward pass).
    #[inline]
    pub fn flat_mut(&mut self) -> &mut [i64] {
        &mut self.slab
    }

    /// Iterate the columns in timeline order.
    pub fn iter(&self) -> impl Iterator<Item = &[i64]> {
        self.bounds.windows(2).map(|w| &self.slab[w[0]..w[1]])
    }

    /// Iterate the columns mutably, as `(proc index, &mut [i64])` — the
    /// sharding unit of the parallel pipeline. The slices are disjoint
    /// sub-slices of the slab, so scoped threads may own one each.
    pub fn iter_mut_slices(&mut self) -> impl Iterator<Item = (usize, &mut [i64])> {
        let TraceColumns { slab, bounds } = self;
        let mut rest: &mut [i64] = slab;
        bounds.windows(2).enumerate().map(move |(p, w)| {
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(w[1] - w[0]);
            rest = tail;
            (p, head)
        })
    }

    /// Timestamp of event `id` (panics when out of range, like
    /// [`Trace::time`]).
    #[inline]
    pub fn time(&self, id: EventId) -> Time {
        Time::from_ps(self.col(id.p())[id.i()])
    }

    /// Overwrite the timestamp of event `id`.
    #[inline]
    pub fn set_time(&mut self, id: EventId, t: Time) {
        let p = id.p();
        self.col_mut(p)[id.i()] = t.as_ps();
    }

    /// Per-timeline snapshot as `Vec<Vec<Time>>` (the shape the CLC's
    /// amortization kernels take their originals in).
    pub fn to_time_vecs(&self) -> Vec<Vec<Time>> {
        self.iter()
            .map(|c| c.iter().map(|&ps| Time::from_ps(ps)).collect())
            .collect()
    }

    /// All columns locally monotone?
    pub fn is_locally_monotone(&self) -> bool {
        self.iter().all(|c| c.windows(2).all(|w| w[0] <= w[1]))
    }
}

impl TimeSource for TraceColumns {
    #[inline]
    fn time_of(&self, id: EventId) -> Time {
        self.time(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::ids::{Rank, RegionId, Tag};

    fn sample() -> Trace {
        let mut t = Trace::for_ranks(2);
        t.procs[0].push(Time::from_us(1), EventKind::Enter { region: RegionId(1) });
        t.procs[0].push(
            Time::from_us(2),
            EventKind::Send { to: Rank(1), tag: Tag(0), bytes: 8 },
        );
        t.procs[1].push(
            Time::from_us(5),
            EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 8 },
        );
        t
    }

    #[test]
    fn gather_scatter_round_trip() {
        let mut t = sample();
        let mut cols = TraceColumns::gather(&t);
        assert_eq!(cols.n_procs(), 2);
        assert_eq!(cols.n_events(), 3);
        assert_eq!(cols.time(EventId::new(1, 0)), Time::from_us(5));
        // Mutate through the slice API, scatter back.
        for (_, s) in cols.iter_mut_slices() {
            for ps in s.iter_mut() {
                *ps += Time::from_us(100).as_ps();
            }
        }
        cols.scatter_into(&mut t);
        assert_eq!(t.time(EventId::new(0, 0)), Time::from_us(101));
        assert_eq!(t.time(EventId::new(1, 0)), Time::from_us(105));
        // Kinds untouched.
        assert_eq!(t.procs[0].events[0].kind, EventKind::Enter { region: RegionId(1) });
    }

    #[test]
    fn time_source_agrees_across_layouts() {
        let t = sample();
        let cols = TraceColumns::gather(&t);
        for (id, _) in t.iter_events() {
            assert_eq!(TimeSource::time_of(&t, id), cols.time_of(id));
        }
    }

    #[test]
    fn column_accessors() {
        let mut c = TimeColumn::with_capacity(4);
        assert!(c.is_empty());
        c.push(Time::from_us(3));
        c.push_ps(Time::from_us(7).as_ps());
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Time::from_us(7));
        c.set(0, Time::from_us(9));
        assert!(!c.is_monotone());
        assert_eq!(c.as_slice(), &[Time::from_us(9).as_ps(), Time::from_us(7).as_ps()]);
        let from_vec = TimeColumn::from(vec![1i64, 2]);
        assert!(from_vec.is_monotone());
    }

    #[test]
    fn slab_is_timeline_major_and_flat_indexed() {
        let t = sample();
        let cols = TraceColumns::gather(&t);
        // Column 0 has two events, column 1 has one: flat offsets 0, 1, 2.
        assert_eq!(cols.flat().len(), 3);
        assert_eq!(cols.col(0), &cols.flat()[..2]);
        assert_eq!(cols.col(1), &cols.flat()[2..]);
        assert_eq!(cols.flat()[2], Time::from_us(5).as_ps());
        // from_columns concatenates in the same order.
        let rebuilt = TraceColumns::from_columns(vec![
            TimeColumn::from(cols.col(0).to_vec()),
            TimeColumn::from(cols.col(1).to_vec()),
        ]);
        assert_eq!(rebuilt, cols);
    }

    #[test]
    fn iter_mut_slices_are_disjoint_columns() {
        let t = sample();
        let mut cols = TraceColumns::gather(&t);
        let lens: Vec<usize> = cols.iter_mut_slices().map(|(_, s)| s.len()).collect();
        assert_eq!(lens, vec![2, 1]);
        // Mutations through the slices land in the slab.
        for (p, s) in cols.iter_mut_slices() {
            s[0] = p as i64;
        }
        assert_eq!(cols.flat()[0], 0);
        assert_eq!(cols.flat()[2], 1);
    }

    #[test]
    fn set_time_and_snapshots() {
        let t = sample();
        let mut cols = TraceColumns::gather(&t);
        cols.set_time(EventId::new(0, 1), Time::from_us(42));
        assert_eq!(cols.time(EventId::new(0, 1)), Time::from_us(42));
        let vecs = cols.to_time_vecs();
        assert_eq!(vecs[0][1], Time::from_us(42));
        assert!(cols.is_locally_monotone());
        cols.set_time(EventId::new(0, 0), Time::from_us(999));
        assert!(!cols.is_locally_monotone());
    }

    #[test]
    #[should_panic(expected = "column length mismatch")]
    fn scatter_shape_mismatch_panics() {
        let mut t = sample();
        let mut shorter = t.clone();
        shorter.procs[0].events.pop();
        let cols = TraceColumns::gather(&shorter);
        cols.scatter_into(&mut t);
    }
}
