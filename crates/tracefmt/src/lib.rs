//! # tracefmt — event traces for the drift-lab workspace
//!
//! The event model, trace containers, codecs and analyses shared by the
//! `mpisim` simulator and the `clocksync` synchronisation algorithms:
//!
//! * [`ids`] — strongly typed ranks, threads, regions, tags, communicators;
//! * [`event`] — the MPI + POMP event taxonomy the paper traces;
//! * [`trace`] — per-timeline event streams with unreliable timestamps;
//! * [`analysis`] — postmortem reconstruction of messages, collective
//!   instances and parallel regions from event *order* (never timestamps);
//! * [`violation`] — clock-condition checks (paper Eq. 1) for point-to-point
//!   messages, logical messages derived from collectives, and the POMP
//!   shared-memory rules of Fig. 8;
//! * [`stats`] — Welford summaries, line fits and percentiles for the
//!   experiment tables;
//! * [`io`] — text and binary trace codecs.

#![warn(missing_docs)]

pub mod analysis;
pub mod archive;
pub mod cast;
pub mod census;
pub mod column;
pub mod diff;
pub mod event;
pub mod ids;
pub mod io;
pub mod profile;
pub mod regions;
pub mod render;
pub mod stats;
pub mod trace;
pub mod violation;

pub use analysis::{
    assemble_collective_instances, collect_collective_calls, collect_sends, consume_recvs,
    match_collectives, match_messages, match_parallel_regions, CollCall, CollMember,
    CollectiveInstance, CollectiveScanner, Matching, MessageMatch, MessageMatcher, ParallelRegion,
    PendingSends, RegionThread, SendKey,
};
pub use census::{CensusPlan, PlanBuildError};
pub use column::{TimeColumn, TimeSource, TraceColumns};
pub use event::{CollFlavor, CollOp, EventKind, EventRecord};
pub use ids::{CommId, EventId, Location, Rank, RegionId, Tag, ThreadId};
pub use profile::{profile, KindCounts, TraceProfile};
pub use regions::RegionRegistry;
pub use archive::{read_archive, write_archive, ArchiveError};
pub use diff::{diff_traces, DiffError, ProcDiff, TraceDiff};
pub use render::{render_timeline, RenderOptions};
pub use stats::{fit_line, percentile, LineFit, Summary};
pub use trace::{ProcessTrace, Trace};
pub use violation::{
    check_collectives, check_collectives_at, check_p2p, check_p2p_messages,
    check_p2p_messages_at, check_pomp, check_pomp_at, CollReport, LatencyTable, MinLatency,
    P2pReport, PompReport, UniformLatency, ViolatedMessage,
};
