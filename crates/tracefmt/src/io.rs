//! Trace codecs: a human-readable text format and a compact binary format.
//!
//! The text format writes one event per line (`rank:thread time_ps MNEMONIC
//! args…`), convenient for diffing and debugging. The binary format is a
//! simple length-prefixed record stream built on [`bytes`], an order of
//! magnitude denser — what a tracing library would actually flush to disk
//! (paper §III: buffers are flushed at termination or when full).

use crate::event::{CollOp, EventKind, EventRecord};
use crate::ids::{CommId, Location, Rank, RegionId, Tag, ThreadId};
use crate::trace::{ProcessTrace, Trace};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use simclock::Time;
use std::fmt::Write as _;

/// Errors arising while decoding a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended in the middle of a record.
    Truncated,
    /// Unknown event tag or mnemonic.
    UnknownKind(String),
    /// A field failed to parse.
    BadField(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::UnknownKind(s) => write!(f, "unknown event kind {s:?}"),
            CodecError::BadField(s) => write!(f, "bad field: {s}"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------- text ----

/// Encode a trace in the line-oriented text format.
pub fn to_text(trace: &Trace) -> String {
    let mut out = String::new();
    for pt in &trace.procs {
        for e in &pt.events {
            write_text_line(&mut out, pt.location, e);
        }
    }
    out
}

fn write_text_line(out: &mut String, loc: Location, e: &EventRecord) {
    let _ = write!(
        out,
        "{}:{} {} {}",
        loc.rank.0,
        loc.thread.0,
        e.time.as_ps(),
        e.kind.mnemonic()
    );
    match e.kind {
        EventKind::Enter { region } | EventKind::Exit { region } => {
            let _ = write!(out, " {}", region.0);
        }
        EventKind::Send { to, tag, bytes } => {
            let _ = write!(out, " {} {} {}", to.0, tag.0, bytes);
        }
        EventKind::Recv { from, tag, bytes } => {
            let _ = write!(out, " {} {} {}", from.0, tag.0, bytes);
        }
        EventKind::CollBegin { op, comm, root, bytes }
        | EventKind::CollEnd { op, comm, root, bytes } => {
            let _ = write!(
                out,
                " {} {} {} {}",
                coll_code(op),
                comm.0,
                root.map_or(-1, |r| r.0 as i64),
                bytes
            );
        }
        EventKind::Fork { region }
        | EventKind::Join { region }
        | EventKind::BarrierEnter { region }
        | EventKind::BarrierExit { region } => {
            let _ = write!(out, " {}", region.0);
        }
    }
    out.push('\n');
}

/// Decode the text format back into a trace. Timelines appear in first-seen
/// order.
pub fn from_text(s: &str) -> Result<Trace, CodecError> {
    let mut trace = Trace::default();
    let mut index: std::collections::HashMap<Location, usize> = std::collections::HashMap::new();
    for line in s.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let loc_str = parts.next().ok_or(CodecError::Truncated)?;
        let (r, t) = loc_str
            .split_once(':')
            .ok_or_else(|| CodecError::BadField(loc_str.into()))?;
        let loc = Location {
            rank: Rank(parse(r)?),
            thread: ThreadId(parse(t)?),
        };
        let time = Time::from_ps(parse(parts.next().ok_or(CodecError::Truncated)?)?);
        let mn = parts.next().ok_or(CodecError::Truncated)?;
        let mut next_u32 = || -> Result<u32, CodecError> {
            parse(parts.next().ok_or(CodecError::Truncated)?)
        };
        let kind = match mn {
            "ENTR" => EventKind::Enter { region: RegionId(next_u32()?) },
            "EXIT" => EventKind::Exit { region: RegionId(next_u32()?) },
            "SEND" => {
                let to = Rank(next_u32()?);
                let tag = Tag(next_u32()?);
                let bytes: u64 = parse(parts.next().ok_or(CodecError::Truncated)?)?;
                EventKind::Send { to, tag, bytes }
            }
            "RECV" => {
                let from = Rank(next_u32()?);
                let tag = Tag(next_u32()?);
                let bytes: u64 = parse(parts.next().ok_or(CodecError::Truncated)?)?;
                EventKind::Recv { from, tag, bytes }
            }
            "CBEG" | "CEND" => {
                let op = coll_from_code(next_u32()? as u8)
                    .ok_or_else(|| CodecError::UnknownKind(mn.into()))?;
                let comm = CommId(next_u32()?);
                let root_raw: i64 = parse(parts.next().ok_or(CodecError::Truncated)?)?;
                let root = (root_raw >= 0).then_some(Rank(root_raw as u32));
                let bytes: u64 = parse(parts.next().ok_or(CodecError::Truncated)?)?;
                if mn == "CBEG" {
                    EventKind::CollBegin { op, comm, root, bytes }
                } else {
                    EventKind::CollEnd { op, comm, root, bytes }
                }
            }
            "FORK" => EventKind::Fork { region: RegionId(next_u32()?) },
            "JOIN" => EventKind::Join { region: RegionId(next_u32()?) },
            "BENT" => EventKind::BarrierEnter { region: RegionId(next_u32()?) },
            "BEXT" => EventKind::BarrierExit { region: RegionId(next_u32()?) },
            other => return Err(CodecError::UnknownKind(other.into())),
        };
        let p = *index.entry(loc).or_insert_with(|| {
            trace.procs.push(ProcessTrace::new(loc));
            trace.procs.len() - 1
        });
        trace.procs[p].push(time, kind);
    }
    Ok(trace)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, CodecError> {
    s.parse().map_err(|_| CodecError::BadField(s.into()))
}

// -------------------------------------------------------------- binary ----

const MAGIC: u32 = 0x4454_4c31; // "DTL1"

fn coll_code(op: CollOp) -> u8 {
    match op {
        CollOp::Barrier => 0,
        CollOp::Bcast => 1,
        CollOp::Scatter => 2,
        CollOp::Reduce => 3,
        CollOp::Gather => 4,
        CollOp::Allreduce => 5,
        CollOp::Allgather => 6,
        CollOp::Alltoall => 7,
        CollOp::Scan => 8,
    }
}

fn coll_from_code(c: u8) -> Option<CollOp> {
    Some(match c {
        0 => CollOp::Barrier,
        1 => CollOp::Bcast,
        2 => CollOp::Scatter,
        3 => CollOp::Reduce,
        4 => CollOp::Gather,
        5 => CollOp::Allreduce,
        6 => CollOp::Allgather,
        7 => CollOp::Alltoall,
        8 => CollOp::Scan,
        _ => return None,
    })
}

fn kind_code(kind: &EventKind) -> u8 {
    match kind {
        EventKind::Enter { .. } => 0,
        EventKind::Exit { .. } => 1,
        EventKind::Send { .. } => 2,
        EventKind::Recv { .. } => 3,
        EventKind::CollBegin { .. } => 4,
        EventKind::CollEnd { .. } => 5,
        EventKind::Fork { .. } => 6,
        EventKind::Join { .. } => 7,
        EventKind::BarrierEnter { .. } => 8,
        EventKind::BarrierExit { .. } => 9,
    }
}

/// Encode a trace in the compact binary format.
pub fn to_binary(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + trace.n_events() * 24);
    buf.put_u32(MAGIC);
    buf.put_u32(trace.procs.len() as u32);
    for pt in &trace.procs {
        buf.put_u32(pt.location.rank.0);
        buf.put_u32(pt.location.thread.0);
        buf.put_u64(pt.events.len() as u64);
        for e in &pt.events {
            buf.put_i64(e.time.as_ps());
            buf.put_u8(kind_code(&e.kind));
            match e.kind {
                EventKind::Enter { region }
                | EventKind::Exit { region }
                | EventKind::Fork { region }
                | EventKind::Join { region }
                | EventKind::BarrierEnter { region }
                | EventKind::BarrierExit { region } => buf.put_u32(region.0),
                EventKind::Send { to, tag, bytes } => {
                    buf.put_u32(to.0);
                    buf.put_u32(tag.0);
                    buf.put_u64(bytes);
                }
                EventKind::Recv { from, tag, bytes } => {
                    buf.put_u32(from.0);
                    buf.put_u32(tag.0);
                    buf.put_u64(bytes);
                }
                EventKind::CollBegin { op, comm, root, bytes }
                | EventKind::CollEnd { op, comm, root, bytes } => {
                    buf.put_u8(coll_code(op));
                    buf.put_u32(comm.0);
                    buf.put_i64(root.map_or(-1, |r| r.0 as i64));
                    buf.put_u64(bytes);
                }
            }
        }
    }
    buf.freeze()
}

/// Decode the binary format.
pub fn from_binary(mut buf: Bytes) -> Result<Trace, CodecError> {
    fn need(buf: &Bytes, n: usize) -> Result<(), CodecError> {
        if buf.remaining() < n {
            Err(CodecError::Truncated)
        } else {
            Ok(())
        }
    }
    need(&buf, 8)?;
    if buf.get_u32() != MAGIC {
        return Err(CodecError::BadField("magic".into()));
    }
    let n_procs = buf.get_u32() as usize;
    let mut trace = Trace::default();
    for _ in 0..n_procs {
        need(&buf, 16)?;
        let rank = Rank(buf.get_u32());
        let thread = ThreadId(buf.get_u32());
        let n_events = buf.get_u64() as usize;
        let mut pt = ProcessTrace::new(Location { rank, thread });
        pt.events.reserve_exact(n_events);
        for _ in 0..n_events {
            need(&buf, 9)?;
            let time = Time::from_ps(buf.get_i64());
            let code = buf.get_u8();
            let kind = match code {
                0 | 1 | 6 | 7 | 8 | 9 => {
                    need(&buf, 4)?;
                    let region = RegionId(buf.get_u32());
                    match code {
                        0 => EventKind::Enter { region },
                        1 => EventKind::Exit { region },
                        6 => EventKind::Fork { region },
                        7 => EventKind::Join { region },
                        8 => EventKind::BarrierEnter { region },
                        _ => EventKind::BarrierExit { region },
                    }
                }
                2 | 3 => {
                    need(&buf, 16)?;
                    let peer = Rank(buf.get_u32());
                    let tag = Tag(buf.get_u32());
                    let bytes = buf.get_u64();
                    if code == 2 {
                        EventKind::Send { to: peer, tag, bytes }
                    } else {
                        EventKind::Recv { from: peer, tag, bytes }
                    }
                }
                4 | 5 => {
                    need(&buf, 21)?;
                    let op = coll_from_code(buf.get_u8())
                        .ok_or_else(|| CodecError::UnknownKind("collective".into()))?;
                    let comm = CommId(buf.get_u32());
                    let root_raw = buf.get_i64();
                    let root = (root_raw >= 0).then_some(Rank(root_raw as u32));
                    let bytes = buf.get_u64();
                    if code == 4 {
                        EventKind::CollBegin { op, comm, root, bytes }
                    } else {
                        EventKind::CollEnd { op, comm, root, bytes }
                    }
                }
                other => return Err(CodecError::UnknownKind(format!("code {other}"))),
            };
            pt.events.push(EventRecord::new(time, kind));
        }
        trace.procs.push(pt);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::for_ranks(2);
        t.procs[0].push(Time::from_ns(100), EventKind::Enter { region: RegionId(1) });
        t.procs[0].push(
            Time::from_ns(200),
            EventKind::Send { to: Rank(1), tag: Tag(3), bytes: 1024 },
        );
        t.procs[0].push(
            Time::from_ns(300),
            EventKind::CollBegin {
                op: CollOp::Allreduce,
                comm: CommId::WORLD,
                root: None,
                bytes: 8,
            },
        );
        t.procs[0].push(
            Time::from_ns(400),
            EventKind::CollEnd {
                op: CollOp::Allreduce,
                comm: CommId::WORLD,
                root: None,
                bytes: 8,
            },
        );
        t.procs[0].push(Time::from_ns(500), EventKind::Exit { region: RegionId(1) });
        t.procs[1].push(
            Time::from_ns(250),
            EventKind::Recv { from: Rank(0), tag: Tag(3), bytes: 1024 },
        );
        t.procs[1].push(
            Time::from_ns(260),
            EventKind::CollBegin {
                op: CollOp::Bcast,
                comm: CommId(1),
                root: Some(Rank(0)),
                bytes: 64,
            },
        );
        t.procs[1].push(
            Time::from_ns(270),
            EventKind::CollEnd {
                op: CollOp::Bcast,
                comm: CommId(1),
                root: Some(Rank(0)),
                bytes: 64,
            },
        );
        t
    }

    fn traces_equal(a: &Trace, b: &Trace) -> bool {
        a.procs.len() == b.procs.len()
            && a.procs.iter().zip(&b.procs).all(|(x, y)| {
                x.location == y.location && x.events == y.events
            })
    }

    #[test]
    fn text_round_trip() {
        let t = sample_trace();
        let s = to_text(&t);
        let back = from_text(&s).unwrap();
        assert!(traces_equal(&t, &back), "text round-trip mismatch:\n{s}");
    }

    #[test]
    fn binary_round_trip() {
        let t = sample_trace();
        let b = to_binary(&t);
        let back = from_binary(b).unwrap();
        assert!(traces_equal(&t, &back));
    }

    #[test]
    fn text_ignores_comments_and_blanks() {
        let t = sample_trace();
        let s = format!("# header\n\n{}\n# trailer\n", to_text(&t));
        let back = from_text(&s).unwrap();
        assert!(traces_equal(&t, &back));
    }

    #[test]
    fn binary_detects_truncation() {
        let t = sample_trace();
        let b = to_binary(&t);
        for cut in [0, 4, 7, b.len() / 2, b.len() - 1] {
            let res = from_binary(b.slice(..cut));
            assert!(res.is_err(), "cut at {cut} not detected");
        }
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut buf = BytesMut::new();
        buf.put_u32(0xdeadbeef);
        buf.put_u32(0);
        assert!(matches!(
            from_binary(buf.freeze()),
            Err(CodecError::BadField(_))
        ));
    }

    #[test]
    fn text_rejects_unknown_mnemonic() {
        assert!(matches!(
            from_text("0:0 100 BOGUS 1"),
            Err(CodecError::UnknownKind(_))
        ));
    }

    #[test]
    fn negative_timestamps_survive() {
        // Workers behind the master legitimately produce negative local
        // times after alignment.
        let mut t = Trace::for_ranks(1);
        t.procs[0].push(Time::from_ns(-5000), EventKind::Enter { region: RegionId(0) });
        let round = from_text(&to_text(&t)).unwrap();
        assert_eq!(round.procs[0].events[0].time, Time::from_ns(-5000));
        let round = from_binary(to_binary(&t)).unwrap();
        assert_eq!(round.procs[0].events[0].time, Time::from_ns(-5000));
    }
}
