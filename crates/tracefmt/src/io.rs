//! Trace codecs: a human-readable text format and two binary formats.
//!
//! The text format writes one event per line (`rank:thread time_ps MNEMONIC
//! args…`), convenient for diffing and debugging. Binary v1 ([`to_binary`] /
//! [`from_binary`]) is a simple record stream built on [`bytes`], an order
//! of magnitude denser — what a tracing library would actually flush to disk
//! (paper §III: buffers are flushed at termination or when full). Binary v2
//! ([`to_binary_columnar`] / [`StreamDecoder`]) frames the same events into
//! length-prefixed per-timeline blocks whose timestamps are stored as a
//! dense column segment, so a reader can ingest a trace chunk by chunk —
//! decoding each block as soon as its bytes arrive, without materializing
//! the whole record vector first — and hand the timestamp columns straight
//! to the columnar synchronisation pipeline. See DESIGN.md for the exact
//! frame layout.

use crate::column::{TimeColumn, TraceColumns};
use crate::event::{CollOp, EventKind, EventRecord};
use crate::ids::{CommId, Location, Rank, RegionId, Tag, ThreadId};
use crate::trace::{ProcessTrace, Trace};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use simclock::Time;
use std::fmt::Write as _;

/// Errors arising while decoding a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended in the middle of a record.
    Truncated,
    /// Unknown event tag or mnemonic.
    UnknownKind(String),
    /// A field failed to parse.
    BadField(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::UnknownKind(s) => write!(f, "unknown event kind {s:?}"),
            CodecError::BadField(s) => write!(f, "bad field: {s}"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------- text ----

/// Rough bytes-per-line estimate for sizing text output buffers: location,
/// picosecond timestamp, mnemonic and a few numeric args land near 40–60
/// characters per event in practice.
const TEXT_BYTES_PER_EVENT: usize = 56;

/// Encode a trace in the line-oriented text format.
///
/// The output buffer is preallocated from the event count so encoding a
/// large trace does not repeatedly regrow one giant `String`.
pub fn to_text(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.n_events() * TEXT_BYTES_PER_EVENT);
    for pt in &trace.procs {
        for e in &pt.events {
            write_text_line(&mut out, pt.location, e);
        }
    }
    out
}

/// Stream the text format to any [`std::io::Write`] sink, line by line.
///
/// Unlike [`to_text`] this never holds more than one formatted line in
/// memory, so arbitrarily large traces can be written to a file or pipe
/// with constant overhead.
pub fn to_text_writer<W: std::io::Write>(trace: &Trace, sink: &mut W) -> std::io::Result<()> {
    let mut line = String::with_capacity(TEXT_BYTES_PER_EVENT * 2);
    for pt in &trace.procs {
        for e in &pt.events {
            line.clear();
            write_text_line(&mut line, pt.location, e);
            sink.write_all(line.as_bytes())?;
        }
    }
    Ok(())
}

fn write_text_line(out: &mut String, loc: Location, e: &EventRecord) {
    let _ = write!(
        out,
        "{}:{} {} {}",
        loc.rank.0,
        loc.thread.0,
        e.time.as_ps(),
        e.kind.mnemonic()
    );
    match e.kind {
        EventKind::Enter { region } | EventKind::Exit { region } => {
            let _ = write!(out, " {}", region.0);
        }
        EventKind::Send { to, tag, bytes } => {
            let _ = write!(out, " {} {} {}", to.0, tag.0, bytes);
        }
        EventKind::Recv { from, tag, bytes } => {
            let _ = write!(out, " {} {} {}", from.0, tag.0, bytes);
        }
        EventKind::CollBegin { op, comm, root, bytes }
        | EventKind::CollEnd { op, comm, root, bytes } => {
            let _ = write!(
                out,
                " {} {} {} {}",
                coll_code(op),
                comm.0,
                root.map_or(-1, |r| r.0 as i64),
                bytes
            );
        }
        EventKind::Fork { region }
        | EventKind::Join { region }
        | EventKind::BarrierEnter { region }
        | EventKind::BarrierExit { region } => {
            let _ = write!(out, " {}", region.0);
        }
    }
    out.push('\n');
}

/// Decode the text format back into a trace. Timelines appear in first-seen
/// order.
pub fn from_text(s: &str) -> Result<Trace, CodecError> {
    let mut trace = Trace::default();
    let mut index: std::collections::HashMap<Location, usize> = std::collections::HashMap::new();
    for line in s.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let loc_str = parts.next().ok_or(CodecError::Truncated)?;
        let (r, t) = loc_str
            .split_once(':')
            .ok_or_else(|| CodecError::BadField(loc_str.into()))?;
        let loc = Location {
            rank: Rank(parse(r)?),
            thread: ThreadId(parse(t)?),
        };
        let time = Time::from_ps(parse(parts.next().ok_or(CodecError::Truncated)?)?);
        let mn = parts.next().ok_or(CodecError::Truncated)?;
        let mut next_u32 = || -> Result<u32, CodecError> {
            parse(parts.next().ok_or(CodecError::Truncated)?)
        };
        let kind = match mn {
            "ENTR" => EventKind::Enter { region: RegionId(next_u32()?) },
            "EXIT" => EventKind::Exit { region: RegionId(next_u32()?) },
            "SEND" => {
                let to = Rank(next_u32()?);
                let tag = Tag(next_u32()?);
                let bytes: u64 = parse(parts.next().ok_or(CodecError::Truncated)?)?;
                EventKind::Send { to, tag, bytes }
            }
            "RECV" => {
                let from = Rank(next_u32()?);
                let tag = Tag(next_u32()?);
                let bytes: u64 = parse(parts.next().ok_or(CodecError::Truncated)?)?;
                EventKind::Recv { from, tag, bytes }
            }
            "CBEG" | "CEND" => {
                let op = coll_from_code(next_u32()? as u8)
                    .ok_or_else(|| CodecError::UnknownKind(mn.into()))?;
                let comm = CommId(next_u32()?);
                let root_raw: i64 = parse(parts.next().ok_or(CodecError::Truncated)?)?;
                let root = (root_raw >= 0).then_some(Rank(root_raw as u32));
                let bytes: u64 = parse(parts.next().ok_or(CodecError::Truncated)?)?;
                if mn == "CBEG" {
                    EventKind::CollBegin { op, comm, root, bytes }
                } else {
                    EventKind::CollEnd { op, comm, root, bytes }
                }
            }
            "FORK" => EventKind::Fork { region: RegionId(next_u32()?) },
            "JOIN" => EventKind::Join { region: RegionId(next_u32()?) },
            "BENT" => EventKind::BarrierEnter { region: RegionId(next_u32()?) },
            "BEXT" => EventKind::BarrierExit { region: RegionId(next_u32()?) },
            other => return Err(CodecError::UnknownKind(other.into())),
        };
        let p = *index.entry(loc).or_insert_with(|| {
            trace.procs.push(ProcessTrace::new(loc));
            trace.procs.len() - 1
        });
        trace.procs[p].push(time, kind);
    }
    Ok(trace)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, CodecError> {
    s.parse().map_err(|_| CodecError::BadField(s.into()))
}

// -------------------------------------------------------------- binary ----

const MAGIC: u32 = 0x4454_4c31; // "DTL1"

fn coll_code(op: CollOp) -> u8 {
    match op {
        CollOp::Barrier => 0,
        CollOp::Bcast => 1,
        CollOp::Scatter => 2,
        CollOp::Reduce => 3,
        CollOp::Gather => 4,
        CollOp::Allreduce => 5,
        CollOp::Allgather => 6,
        CollOp::Alltoall => 7,
        CollOp::Scan => 8,
    }
}

fn coll_from_code(c: u8) -> Option<CollOp> {
    Some(match c {
        0 => CollOp::Barrier,
        1 => CollOp::Bcast,
        2 => CollOp::Scatter,
        3 => CollOp::Reduce,
        4 => CollOp::Gather,
        5 => CollOp::Allreduce,
        6 => CollOp::Allgather,
        7 => CollOp::Alltoall,
        8 => CollOp::Scan,
        _ => return None,
    })
}

fn kind_code(kind: &EventKind) -> u8 {
    match kind {
        EventKind::Enter { .. } => 0,
        EventKind::Exit { .. } => 1,
        EventKind::Send { .. } => 2,
        EventKind::Recv { .. } => 3,
        EventKind::CollBegin { .. } => 4,
        EventKind::CollEnd { .. } => 5,
        EventKind::Fork { .. } => 6,
        EventKind::Join { .. } => 7,
        EventKind::BarrierEnter { .. } => 8,
        EventKind::BarrierExit { .. } => 9,
    }
}

/// Encoded size of `kind_code + args` for one event, excluding the
/// timestamp — the per-record payload unit shared by both binary formats.
fn kind_payload_len(kind: &EventKind) -> usize {
    match kind {
        EventKind::Enter { .. }
        | EventKind::Exit { .. }
        | EventKind::Fork { .. }
        | EventKind::Join { .. }
        | EventKind::BarrierEnter { .. }
        | EventKind::BarrierExit { .. } => 1 + 4,
        EventKind::Send { .. } | EventKind::Recv { .. } => 1 + 16,
        EventKind::CollBegin { .. } | EventKind::CollEnd { .. } => 1 + 21,
    }
}

/// Append `kind_code + args` (no timestamp) to `buf` — the record payload
/// encoding shared by binary v1 and the columnar block payloads.
fn encode_kind(buf: &mut BytesMut, kind: &EventKind) {
    buf.put_u8(kind_code(kind));
    match *kind {
        EventKind::Enter { region }
        | EventKind::Exit { region }
        | EventKind::Fork { region }
        | EventKind::Join { region }
        | EventKind::BarrierEnter { region }
        | EventKind::BarrierExit { region } => buf.put_u32(region.0),
        EventKind::Send { to, tag, bytes } => {
            buf.put_u32(to.0);
            buf.put_u32(tag.0);
            buf.put_u64(bytes);
        }
        EventKind::Recv { from, tag, bytes } => {
            buf.put_u32(from.0);
            buf.put_u32(tag.0);
            buf.put_u64(bytes);
        }
        EventKind::CollBegin { op, comm, root, bytes }
        | EventKind::CollEnd { op, comm, root, bytes } => {
            buf.put_u8(coll_code(op));
            buf.put_u32(comm.0);
            buf.put_i64(root.map_or(-1, |r| r.0 as i64));
            buf.put_u64(bytes);
        }
    }
}

/// Encode a trace in the compact binary format.
pub fn to_binary(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + trace.n_events() * 24);
    buf.put_u32(MAGIC);
    buf.put_u32(trace.procs.len() as u32);
    for pt in &trace.procs {
        buf.put_u32(pt.location.rank.0);
        buf.put_u32(pt.location.thread.0);
        buf.put_u64(pt.events.len() as u64);
        for e in &pt.events {
            buf.put_i64(e.time.as_ps());
            encode_kind(&mut buf, &e.kind);
        }
    }
    buf.freeze()
}

/// Decode the binary format.
pub fn from_binary(mut buf: Bytes) -> Result<Trace, CodecError> {
    fn need(buf: &Bytes, n: usize) -> Result<(), CodecError> {
        if buf.remaining() < n {
            Err(CodecError::Truncated)
        } else {
            Ok(())
        }
    }
    need(&buf, 8)?;
    if buf.get_u32() != MAGIC {
        return Err(CodecError::BadField("magic".into()));
    }
    let n_procs = buf.get_u32() as usize;
    let mut trace = Trace::default();
    for _ in 0..n_procs {
        need(&buf, 16)?;
        let rank = Rank(buf.get_u32());
        let thread = ThreadId(buf.get_u32());
        if rank.0 > MAX_LOCATION_ID || thread.0 > MAX_LOCATION_ID {
            return Err(CodecError::BadField(format!(
                "timeline id out of range: rank {}, thread {}",
                rank.0, thread.0
            )));
        }
        let n_events = buf.get_u64() as usize;
        // Every encoded event is at least 9 bytes (timestamp + kind code),
        // so an event count the remaining input cannot possibly hold is a
        // truncated/corrupt stream. Checking *before* reserving also keeps
        // a hostile header from forcing a multi-gigabyte allocation (or a
        // capacity-overflow panic) out of a few bytes of input.
        if buf.remaining() < n_events.saturating_mul(9) {
            return Err(CodecError::Truncated);
        }
        let mut pt = ProcessTrace::new(Location { rank, thread });
        pt.events.reserve_exact(n_events);
        for _ in 0..n_events {
            need(&buf, 9)?;
            let time = Time::from_ps(buf.get_i64());
            let code = buf.get_u8();
            let kind = match code {
                0 | 1 | 6 | 7 | 8 | 9 => {
                    need(&buf, 4)?;
                    let region = RegionId(buf.get_u32());
                    match code {
                        0 => EventKind::Enter { region },
                        1 => EventKind::Exit { region },
                        6 => EventKind::Fork { region },
                        7 => EventKind::Join { region },
                        8 => EventKind::BarrierEnter { region },
                        _ => EventKind::BarrierExit { region },
                    }
                }
                2 | 3 => {
                    need(&buf, 16)?;
                    let peer = Rank(buf.get_u32());
                    let tag = Tag(buf.get_u32());
                    let bytes = buf.get_u64();
                    if code == 2 {
                        EventKind::Send { to: peer, tag, bytes }
                    } else {
                        EventKind::Recv { from: peer, tag, bytes }
                    }
                }
                4 | 5 => {
                    need(&buf, 21)?;
                    let op = coll_from_code(buf.get_u8())
                        .ok_or_else(|| CodecError::UnknownKind("collective".into()))?;
                    let comm = CommId(buf.get_u32());
                    let root_raw = buf.get_i64();
                    let root = (root_raw >= 0).then_some(Rank(root_raw as u32));
                    let bytes = buf.get_u64();
                    if code == 4 {
                        EventKind::CollBegin { op, comm, root, bytes }
                    } else {
                        EventKind::CollEnd { op, comm, root, bytes }
                    }
                }
                other => return Err(CodecError::UnknownKind(format!("code {other}"))),
            };
            pt.events.push(EventRecord::new(time, kind));
        }
        trace.procs.push(pt);
    }
    Ok(trace)
}

// ------------------------------------------------- columnar binary v2 ----

/// Magic of the columnar block-framed binary format ("DTC2").
const MAGIC_COLUMNAR: u32 = 0x4454_4332;

/// Default number of events per block frame written by
/// [`to_binary_columnar`]. Large enough that the 16-byte frame header is
/// noise, small enough that a frame (tens of KiB) is comfortably below a
/// typical read-buffer chunk — a streaming reader then buffers at most a
/// small partial frame per chunk boundary and scans the rest in place —
/// and the decoder's working set stays in cache.
pub const BLOCK_EVENTS: usize = 2048;

/// Hard ceiling on the per-block event count a decoder will accept (and an
/// encoder will emit). A corrupted or hostile frame header claiming billions
/// of events would otherwise make a streaming reader buffer gigabytes
/// waiting for a frame that can never complete; with the ceiling the header
/// is rejected as [`CodecError::BadField`] the moment it is parsed.
pub const MAX_BLOCK_EVENTS: usize = 1 << 20;

/// Largest kind/args record the encoder produces (a collective record).
const MAX_KIND_PAYLOAD: usize = 22;

/// Ceiling on a block's payload length, implied by [`MAX_BLOCK_EVENTS`].
pub const MAX_BLOCK_PAYLOAD: usize = MAX_BLOCK_EVENTS * MAX_KIND_PAYLOAD;

/// Ceiling on the rank and thread ids a decoder will accept in a timeline
/// header. Location ids index dense per-rank structures downstream — the
/// frozen `l_min` table is quadratic in the largest rank id — so a single
/// flipped high byte in a header would otherwise surface as a huge
/// allocation (or a capacity-overflow panic) long after decode instead of
/// a typed error. Sixteen million timelines is corruption, not scale.
/// The ceiling also stays far below the `u32::MAX` end-of-stream sentinel.
pub const MAX_LOCATION_ID: u32 = (1 << 24) - 1;

/// Validate a parsed (non-trailer) frame header against the format's
/// sanity ceilings.
fn check_block_header(
    rank: u32,
    thread: u32,
    n_events: usize,
    payload_len: usize,
) -> Result<(), CodecError> {
    if rank > MAX_LOCATION_ID || thread > MAX_LOCATION_ID {
        return Err(CodecError::BadField(format!(
            "timeline id out of range: rank {rank}, thread {thread}"
        )));
    }
    if n_events > MAX_BLOCK_EVENTS || payload_len > MAX_BLOCK_PAYLOAD {
        return Err(CodecError::BadField(format!(
            "oversized block header: {n_events} events, {payload_len} payload bytes"
        )));
    }
    // Every record is at least 5 bytes (kind code + one u32 arg), so a
    // payload shorter than that cannot possibly hold n_events records.
    if payload_len < n_events * 5 {
        return Err(CodecError::BadField(format!(
            "block header inconsistent: {n_events} events in {payload_len} payload bytes"
        )));
    }
    Ok(())
}

/// One decoded block of the columnar format: a run of consecutive events
/// from a single timeline, timestamps already split into a dense column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineBlock {
    /// Which timeline the events belong to.
    pub location: Location,
    /// The timestamps, in picoseconds, one per event.
    pub times: TimeColumn,
    /// The kind/args payload, one per event, parallel to `times`.
    pub kinds: Vec<EventKind>,
}

impl TimelineBlock {
    /// Number of events in the block.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True when the block holds no events.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }
}

/// Encode a trace in the columnar block-framed binary format, splitting
/// each timeline into blocks of at most [`BLOCK_EVENTS`] events.
pub fn to_binary_columnar(trace: &Trace) -> Bytes {
    to_binary_columnar_blocked(trace, BLOCK_EVENTS)
}

/// [`to_binary_columnar`] with an explicit block size (clamped to ≥ 1).
/// Smaller blocks mean earlier data for a streaming reader at the cost of
/// more frame headers.
pub fn to_binary_columnar_blocked(trace: &Trace, block_events: usize) -> Bytes {
    let block_events = block_events.clamp(1, MAX_BLOCK_EVENTS);
    let mut buf = BytesMut::with_capacity(4 + trace.n_events() * 24);
    buf.put_u32(MAGIC_COLUMNAR);
    let mut blocks = 0u64;
    for pt in &trace.procs {
        if pt.events.is_empty() {
            // Preserve empty timelines with a zero-event block.
            put_block_header(&mut buf, pt.location, 0, 0);
            blocks += 1;
            continue;
        }
        for chunk in pt.events.chunks(block_events) {
            let payload_len: usize = chunk.iter().map(|e| kind_payload_len(&e.kind)).sum();
            put_block_header(&mut buf, pt.location, chunk.len(), payload_len);
            blocks += 1;
            for e in chunk {
                buf.put_i64(e.time.as_ps());
            }
            for e in chunk {
                encode_kind(&mut buf, &e.kind);
            }
        }
    }
    // End-of-stream trailer: a reserved frame header (rank = thread =
    // u32::MAX) carrying the low 32 bits of the event and block counts.
    // Without it a stream cut exactly between frames would read as a valid
    // shorter trace; with it every proper prefix is detectably truncated.
    buf.put_u32(u32::MAX);
    buf.put_u32(u32::MAX);
    buf.put_u32(trace.n_events() as u32);
    buf.put_u32(blocks as u32);
    buf.freeze()
}

fn put_block_header(buf: &mut BytesMut, loc: Location, n_events: usize, payload_len: usize) {
    buf.put_u32(loc.rank.0);
    buf.put_u32(loc.thread.0);
    buf.put_u32(n_events as u32);
    buf.put_u32(payload_len as u32);
}

#[inline]
fn rd_u32(s: &[u8], at: usize) -> u32 {
    u32::from_be_bytes(s[at..at + 4].try_into().unwrap())
}

/// Where completed block frames go during a [`StreamDecoder`] scan:
/// either materialized as [`TimelineBlock`]s, or decoded straight into a
/// [`TraceBuilder`] without the intermediate per-block allocations.
trait BlockSink {
    /// One complete frame: `times_be` is the big-endian timestamp column
    /// segment (`n_events * 8` bytes), `payload` the kind/args records.
    fn frame(
        &mut self,
        location: Location,
        times_be: &[u8],
        payload: &[u8],
        n_events: usize,
    ) -> Result<(), CodecError>;
}

impl BlockSink for Vec<TimelineBlock> {
    fn frame(
        &mut self,
        location: Location,
        times_be: &[u8],
        payload: &[u8],
        n_events: usize,
    ) -> Result<(), CodecError> {
        let mut times = TimeColumn::with_capacity(n_events);
        times.extend_from_be_bytes(times_be);
        let kinds = decode_kind_payload(payload, n_events)?;
        self.push(TimelineBlock { location, times, kinds });
        Ok(())
    }
}

impl BlockSink for TraceBuilder {
    fn frame(
        &mut self,
        location: Location,
        times_be: &[u8],
        payload: &[u8],
        n_events: usize,
    ) -> Result<(), CodecError> {
        self.push_frame(location, times_be, payload, n_events)
    }
}

/// Decode one `kind_code + args` record from a block payload, advancing
/// `at`. Each arm reads its whole fixed-size argument run through a
/// single bounds check; the field splits below are on arrays of known
/// length, so they compile to plain loads.
#[inline]
fn decode_one_kind(p: &[u8], at: &mut usize) -> Result<EventKind, CodecError> {
    #[inline]
    fn take<const N: usize>(p: &[u8], at: &mut usize) -> Result<[u8; N], CodecError> {
        let s = p.get(*at..*at + N).ok_or(CodecError::Truncated)?;
        *at += N;
        Ok(s.try_into().unwrap())
    }
    #[inline]
    fn be_u32<const AT: usize>(s: &[u8]) -> u32 {
        u32::from_be_bytes(s[AT..AT + 4].try_into().unwrap())
    }
    #[inline]
    fn be_u64<const AT: usize>(s: &[u8]) -> u64 {
        u64::from_be_bytes(s[AT..AT + 8].try_into().unwrap())
    }
    let code = *p.get(*at).ok_or(CodecError::Truncated)?;
    *at += 1;
    Ok(match code {
        0 | 1 | 6 | 7 | 8 | 9 => {
            let region = RegionId(u32::from_be_bytes(take::<4>(p, at)?));
            match code {
                0 => EventKind::Enter { region },
                1 => EventKind::Exit { region },
                6 => EventKind::Fork { region },
                7 => EventKind::Join { region },
                8 => EventKind::BarrierEnter { region },
                _ => EventKind::BarrierExit { region },
            }
        }
        2 | 3 => {
            let s = take::<16>(p, at)?;
            let peer = Rank(be_u32::<0>(&s));
            let tag = Tag(be_u32::<4>(&s));
            let bytes = be_u64::<8>(&s);
            if code == 2 {
                EventKind::Send { to: peer, tag, bytes }
            } else {
                EventKind::Recv { from: peer, tag, bytes }
            }
        }
        4 | 5 => {
            let s = take::<21>(p, at)?;
            let op = coll_from_code(s[0]).ok_or_else(|| CodecError::UnknownKind("collective".into()))?;
            let comm = CommId(be_u32::<1>(&s));
            let root_raw = i64::from_be_bytes(s[5..13].try_into().unwrap());
            let root = (root_raw >= 0).then_some(Rank(root_raw as u32));
            let bytes = be_u64::<13>(&s);
            if code == 4 {
                EventKind::CollBegin { op, comm, root, bytes }
            } else {
                EventKind::CollEnd { op, comm, root, bytes }
            }
        }
        other => return Err(CodecError::UnknownKind(format!("code {other}"))),
    })
}

/// Decode `n_events` records of `kind_code + args` from a block payload.
/// The payload must be consumed exactly.
fn decode_kind_payload(p: &[u8], n_events: usize) -> Result<Vec<EventKind>, CodecError> {
    let mut kinds = Vec::with_capacity(n_events);
    let mut at = 0usize;
    for _ in 0..n_events {
        kinds.push(decode_one_kind(p, &mut at)?);
    }
    if at != p.len() {
        return Err(CodecError::BadField("block payload length".into()));
    }
    Ok(kinds)
}

/// Incremental decoder for the columnar format.
///
/// Feed byte chunks of any size as they arrive; each call returns the
/// blocks completed by that chunk. Only the bytes of the one incomplete
/// trailing frame are buffered, so memory stays bounded by the block size
/// regardless of trace length:
///
/// ```
/// use tracefmt::io::{to_binary_columnar, StreamDecoder, TraceBuilder};
/// # use tracefmt::{Trace, EventKind, RegionId};
/// # use simclock::Time;
/// # let mut trace = Trace::for_ranks(1);
/// # trace.procs[0].push(Time::from_us(1), EventKind::Enter { region: RegionId(0) });
/// let encoded = to_binary_columnar(&trace);
/// let mut dec = StreamDecoder::new();
/// let mut builder = TraceBuilder::new();
/// for chunk in encoded.chunks(64 * 1024) {
///     dec.feed_into(chunk, &mut builder)?;
/// }
/// dec.finish()?;
/// let (decoded, columns) = builder.finish_parts();
/// # assert_eq!(decoded.n_events(), trace.n_events());
/// # assert_eq!(columns.n_events(), 1);
/// # Ok::<(), tracefmt::io::CodecError>(())
/// ```
#[derive(Debug, Default)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    pos: usize,
    seen_magic: bool,
    finished: bool,
    events_seen: u64,
    blocks_seen: u64,
}

impl StreamDecoder {
    /// Fresh decoder expecting the stream magic first.
    pub fn new() -> Self {
        StreamDecoder::default()
    }

    /// Bytes buffered but not yet decoded (the incomplete trailing frame).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Events decoded so far.
    pub fn events_decoded(&self) -> u64 {
        self.events_seen
    }

    /// Timeline blocks decoded so far.
    pub fn blocks_decoded(&self) -> u64 {
        self.blocks_seen
    }

    /// Has the end-of-stream trailer been seen?
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Feed the next chunk; returns every block frame completed by it.
    ///
    /// After an error the decoder is poisoned — the stream is corrupt and
    /// further feeding is not meaningful.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<Vec<TimelineBlock>, CodecError> {
        let mut out = Vec::new();
        self.feed_sink(chunk, &mut out)?;
        Ok(out)
    }

    /// Feed the next chunk, decoding completed frames straight into
    /// `builder`. This is the fast ingest path: no intermediate
    /// [`TimelineBlock`] is materialized, and a chunk that starts on a
    /// frame boundary (the common case for any reasonable chunk size) is
    /// scanned in place without being copied into the decoder's buffer.
    pub fn feed_into(
        &mut self,
        chunk: &[u8],
        builder: &mut TraceBuilder,
    ) -> Result<(), CodecError> {
        self.feed_sink(chunk, builder)
    }

    fn feed_sink<S: BlockSink>(&mut self, chunk: &[u8], sink: &mut S) -> Result<(), CodecError> {
        let mut chunk = chunk;
        // A partial frame is buffered: top the buffer up only to that
        // frame's end (never the whole chunk), drain it, and leave the
        // rest of the chunk for the in-place scan below. The buffer thus
        // never holds more than one frame.
        while self.buffered() > 0 && !chunk.is_empty() {
            let need = self.wanted().saturating_sub(self.buffered()).max(1);
            let take = need.min(chunk.len());
            self.buf.extend_from_slice(&chunk[..take]);
            chunk = &chunk[take..];
            // Take the buffer out so `scan` may borrow both it and `self`.
            let data = std::mem::take(&mut self.buf);
            let res = self.scan(&data[self.pos..], sink);
            self.buf = data;
            self.pos += res?;
            if self.pos >= self.buf.len() {
                self.buf.clear();
                self.pos = 0;
            }
        }
        if !chunk.is_empty() {
            // Zero-copy path: the chunk starts on a frame boundary — scan
            // it in place and buffer only the trailing partial frame.
            debug_assert_eq!(self.buffered(), 0);
            self.buf.clear();
            self.pos = 0;
            let consumed = self.scan(chunk, sink)?;
            self.buf.extend_from_slice(&chunk[consumed..]);
        }
        Ok(())
    }

    /// Bytes that must be buffered (from the start of the buffered
    /// region) before the next unit — magic, frame header, or the full
    /// frame the present header announces — can be parsed.
    fn wanted(&self) -> usize {
        if !self.seen_magic {
            return 4;
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < 16 {
            return 16;
        }
        if rd_u32(avail, 0) == u32::MAX && rd_u32(avail, 4) == u32::MAX {
            return 16;
        }
        16 + rd_u32(avail, 8) as usize * 8 + rd_u32(avail, 12) as usize
    }

    /// Scan `data` for complete frames, handing each to `sink`. Returns
    /// the number of bytes consumed — always a frame boundary; the caller
    /// buffers the remainder until more bytes arrive.
    fn scan<S: BlockSink>(&mut self, data: &[u8], sink: &mut S) -> Result<usize, CodecError> {
        let mut pos = 0usize;
        if !self.seen_magic {
            if data.len() < 4 {
                return Ok(0);
            }
            if rd_u32(data, 0) != MAGIC_COLUMNAR {
                return Err(CodecError::BadField("magic".into()));
            }
            pos = 4;
            self.seen_magic = true;
        }
        loop {
            if self.finished {
                if data.len() > pos {
                    return Err(CodecError::BadField("data after end-of-stream trailer".into()));
                }
                break;
            }
            let avail = &data[pos..];
            if avail.len() < 16 {
                break;
            }
            let n_events = rd_u32(avail, 8) as usize;
            let payload_len = rd_u32(avail, 12) as usize;
            if rd_u32(avail, 0) == u32::MAX && rd_u32(avail, 4) == u32::MAX {
                // End-of-stream trailer; counters must match what we saw.
                if n_events as u32 != self.events_seen as u32
                    || payload_len as u32 != self.blocks_seen as u32
                {
                    return Err(CodecError::BadField("end-of-stream counter mismatch".into()));
                }
                pos += 16;
                self.finished = true;
                continue;
            }
            check_block_header(rd_u32(avail, 0), rd_u32(avail, 4), n_events, payload_len)?;
            let frame_len = 16 + n_events * 8 + payload_len;
            if avail.len() < frame_len {
                break;
            }
            let location = Location {
                rank: Rank(rd_u32(avail, 0)),
                thread: ThreadId(rd_u32(avail, 4)),
            };
            let times_end = 16 + n_events * 8;
            sink.frame(
                location,
                &avail[16..times_end],
                &avail[times_end..frame_len],
                n_events,
            )?;
            self.events_seen += n_events as u64;
            self.blocks_seen += 1;
            pos += frame_len;
        }
        Ok(pos)
    }

    /// Declare end of stream. Errors with [`CodecError::Truncated`] unless
    /// the end-of-stream trailer was decoded — any stream cut mid-frame,
    /// between frames, or before the trailer is reported here.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.finished {
            Ok(())
        } else {
            Err(CodecError::Truncated)
        }
    }
}

/// Accumulates [`TimelineBlock`]s into a trace (and its timestamp
/// columns), merging blocks of the same location in arrival order — the
/// inverse of the encoder's block split.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    trace: Trace,
    cols: Vec<TimeColumn>,
    index: std::collections::HashMap<Location, usize>,
}

impl TraceBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Index of the timeline for `location`, created on first sight
    /// (timelines keep first-seen order).
    fn timeline(&mut self, location: Location) -> usize {
        *self.index.entry(location).or_insert_with(|| {
            self.trace.procs.push(ProcessTrace::new(location));
            self.cols.push(TimeColumn::new());
            self.trace.procs.len() - 1
        })
    }

    /// Append a decoded block to its timeline.
    pub fn push_block(&mut self, block: TimelineBlock) {
        let p = self.timeline(block.location);
        let pt = &mut self.trace.procs[p];
        pt.events.reserve(block.kinds.len());
        for (&ps, kind) in block.times.as_slice().iter().zip(block.kinds) {
            pt.events.push(EventRecord::new(Time::from_ps(ps), kind));
        }
        self.cols[p].extend_from_ps(block.times.as_slice());
    }

    /// Decode one block frame straight into its timeline — the zero-copy
    /// ingest path behind [`StreamDecoder::feed_into`]. One pass builds
    /// the event records and the timestamp column together; nothing is
    /// allocated per block.
    fn push_frame(
        &mut self,
        location: Location,
        times_be: &[u8],
        payload: &[u8],
        n_events: usize,
    ) -> Result<(), CodecError> {
        let p = self.timeline(location);
        let pt = &mut self.trace.procs[p];
        pt.events.reserve(n_events);
        let col = &mut self.cols[p];
        // Bulk-decode the timestamp segment into the column, then build
        // the interleaved records off the freshly decoded tail.
        let start = col.len();
        col.extend_from_be_bytes(times_be);
        let times = &col.as_slice()[start..];
        let mut at = 0usize;
        for &ps in times {
            let kind = decode_one_kind(payload, &mut at)?;
            pt.events.push(EventRecord::new(Time::from_ps(ps), kind));
        }
        if at != payload.len() {
            return Err(CodecError::BadField("block payload length".into()));
        }
        Ok(())
    }

    /// Events accumulated so far.
    pub fn n_events(&self) -> usize {
        self.trace.n_events()
    }

    /// Finish into a plain trace.
    pub fn finish(self) -> Trace {
        self.trace
    }

    /// Finish into the trace plus its gathered timestamp columns — the
    /// ready-to-run input of the columnar pipeline, produced during decode
    /// with no separate gather pass.
    pub fn finish_parts(self) -> (Trace, TraceColumns) {
        (self.trace, TraceColumns::from_columns(self.cols))
    }
}

/// What a header-only scan of a `DTC2` chunk stream saw — the basis for
/// admission-control cost estimates in services that must bound a job's
/// memory *before* decoding it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamEstimate {
    /// Events announced by the block headers scanned so far.
    pub events: u64,
    /// Block frames whose headers were scanned.
    pub blocks: u64,
    /// Total bytes in the input chunks.
    pub bytes: u64,
    /// Whether the end-of-stream trailer was reached. A `false` here means
    /// the stream is truncated (or a header was implausible and the scan
    /// stopped early) — the estimate is then a lower bound.
    pub complete: bool,
}

/// Scan a `DTC2` chunk stream's *frame headers only*, without decoding any
/// payload, and report the event/block totals the headers announce.
///
/// The scan never allocates more than a 16-byte carry buffer and never
/// touches timestamp or kind bytes, so it is O(#blocks) no matter how large
/// the trace is. It is deliberately tolerant: a truncated stream, a bad
/// magic, or an implausible header ends the scan with `complete = false`
/// and whatever totals were accumulated — admission control wants a cheap
/// estimate, not a verdict (the decoder proper delivers the typed error).
pub fn estimate_columnar_stream<'a>(
    chunks: impl IntoIterator<Item = &'a [u8]>,
) -> StreamEstimate {
    let mut est = StreamEstimate::default();
    // Carry buffer for a header (or the magic) split across chunks.
    let mut carry = [0u8; 16];
    let mut carried = 0usize;
    let mut need = 4usize; // magic first
    let mut seen_magic = false;
    // Scan hit a bad magic or implausible header; keep counting bytes only.
    let mut aborted = false;
    // Payload bytes of the current frame still to skip.
    let mut skip = 0u64;
    for chunk in chunks {
        est.bytes += chunk.len() as u64;
        if est.complete || aborted {
            continue; // count trailing bytes, scan is done
        }
        let mut at = 0usize;
        while at < chunk.len() {
            if skip > 0 {
                let s = skip.min((chunk.len() - at) as u64);
                at += s as usize;
                skip -= s;
                continue;
            }
            let take = (need - carried).min(chunk.len() - at);
            carry[carried..carried + take].copy_from_slice(&chunk[at..at + take]);
            carried += take;
            at += take;
            if carried < need {
                break; // chunk exhausted mid-header
            }
            carried = 0;
            if !seen_magic {
                if rd_u32(&carry, 0) != MAGIC_COLUMNAR {
                    aborted = true;
                    break;
                }
                seen_magic = true;
                need = 16;
                continue;
            }
            let n_events = rd_u32(&carry, 8) as usize;
            let payload_len = rd_u32(&carry, 12) as usize;
            if rd_u32(&carry, 0) == u32::MAX && rd_u32(&carry, 4) == u32::MAX {
                est.complete = true;
                break;
            }
            if check_block_header(rd_u32(&carry, 0), rd_u32(&carry, 4), n_events, payload_len)
                .is_err()
            {
                aborted = true;
                break;
            }
            est.events += n_events as u64;
            est.blocks += 1;
            skip = n_events as u64 * 8 + payload_len as u64;
        }
    }
    est
}

/// Decode the columnar format in one call (convenience wrapper around
/// [`StreamDecoder`] + [`TraceBuilder`]).
pub fn from_binary_columnar(buf: Bytes) -> Result<Trace, CodecError> {
    let mut dec = StreamDecoder::new();
    let mut builder = TraceBuilder::new();
    dec.feed_into(&buf, &mut builder)?;
    dec.finish()?;
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::for_ranks(2);
        t.procs[0].push(Time::from_ns(100), EventKind::Enter { region: RegionId(1) });
        t.procs[0].push(
            Time::from_ns(200),
            EventKind::Send { to: Rank(1), tag: Tag(3), bytes: 1024 },
        );
        t.procs[0].push(
            Time::from_ns(300),
            EventKind::CollBegin {
                op: CollOp::Allreduce,
                comm: CommId::WORLD,
                root: None,
                bytes: 8,
            },
        );
        t.procs[0].push(
            Time::from_ns(400),
            EventKind::CollEnd {
                op: CollOp::Allreduce,
                comm: CommId::WORLD,
                root: None,
                bytes: 8,
            },
        );
        t.procs[0].push(Time::from_ns(500), EventKind::Exit { region: RegionId(1) });
        t.procs[1].push(
            Time::from_ns(250),
            EventKind::Recv { from: Rank(0), tag: Tag(3), bytes: 1024 },
        );
        t.procs[1].push(
            Time::from_ns(260),
            EventKind::CollBegin {
                op: CollOp::Bcast,
                comm: CommId(1),
                root: Some(Rank(0)),
                bytes: 64,
            },
        );
        t.procs[1].push(
            Time::from_ns(270),
            EventKind::CollEnd {
                op: CollOp::Bcast,
                comm: CommId(1),
                root: Some(Rank(0)),
                bytes: 64,
            },
        );
        t
    }

    fn traces_equal(a: &Trace, b: &Trace) -> bool {
        a.procs.len() == b.procs.len()
            && a.procs.iter().zip(&b.procs).all(|(x, y)| {
                x.location == y.location && x.events == y.events
            })
    }

    #[test]
    fn text_round_trip() {
        let t = sample_trace();
        let s = to_text(&t);
        let back = from_text(&s).unwrap();
        assert!(traces_equal(&t, &back), "text round-trip mismatch:\n{s}");
    }

    #[test]
    fn binary_round_trip() {
        let t = sample_trace();
        let b = to_binary(&t);
        let back = from_binary(b).unwrap();
        assert!(traces_equal(&t, &back));
    }

    #[test]
    fn text_ignores_comments_and_blanks() {
        let t = sample_trace();
        let s = format!("# header\n\n{}\n# trailer\n", to_text(&t));
        let back = from_text(&s).unwrap();
        assert!(traces_equal(&t, &back));
    }

    #[test]
    fn binary_detects_truncation() {
        let t = sample_trace();
        let b = to_binary(&t);
        for cut in [0, 4, 7, b.len() / 2, b.len() - 1] {
            let res = from_binary(b.slice(..cut));
            assert!(res.is_err(), "cut at {cut} not detected");
        }
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut buf = BytesMut::new();
        buf.put_u32(0xdeadbeef);
        buf.put_u32(0);
        assert!(matches!(
            from_binary(buf.freeze()),
            Err(CodecError::BadField(_))
        ));
    }

    #[test]
    fn text_rejects_unknown_mnemonic() {
        assert!(matches!(
            from_text("0:0 100 BOGUS 1"),
            Err(CodecError::UnknownKind(_))
        ));
    }

    #[test]
    fn text_writer_matches_to_text() {
        let t = sample_trace();
        let mut sink = Vec::new();
        to_text_writer(&t, &mut sink).unwrap();
        assert_eq!(String::from_utf8(sink).unwrap(), to_text(&t));
    }

    #[test]
    fn columnar_round_trip_various_block_sizes() {
        let t = sample_trace();
        for block in [1, 2, 3, 8192] {
            let b = to_binary_columnar_blocked(&t, block);
            let back = from_binary_columnar(b).unwrap();
            assert!(traces_equal(&t, &back), "block size {block}");
        }
    }

    #[test]
    fn columnar_preserves_empty_timelines() {
        let mut t = Trace::for_ranks(3);
        t.procs[1].push(Time::from_ns(10), EventKind::Enter { region: RegionId(0) });
        let back = from_binary_columnar(to_binary_columnar(&t)).unwrap();
        assert!(traces_equal(&t, &back));
    }

    #[test]
    fn streaming_decode_equals_full_decode_any_chunk_size() {
        let t = sample_trace();
        let b = to_binary_columnar_blocked(&t, 2);
        for chunk_size in [1, 3, 7, 16, 64, b.len()] {
            let mut dec = StreamDecoder::new();
            let mut builder = TraceBuilder::new();
            for chunk in b.chunks(chunk_size) {
                for block in dec.feed(chunk).unwrap() {
                    builder.push_block(block);
                }
            }
            dec.finish().unwrap();
            let (back, cols) = builder.finish_parts();
            assert!(traces_equal(&t, &back), "chunk size {chunk_size}");
            assert_eq!(cols.n_events(), t.n_events());
            for (id, e) in t.iter_events() {
                assert_eq!(cols.time(id), e.time);
            }
        }
    }

    #[test]
    fn columnar_detects_truncation_at_every_boundary() {
        let t = sample_trace();
        let b = to_binary_columnar_blocked(&t, 2);
        // Any proper prefix must fail with Truncated (never panic): either
        // feed() trips over a broken frame or finish() reports the stub.
        for cut in 0..b.len() {
            let mut dec = StreamDecoder::new();
            let outcome = dec
                .feed(&b[..cut])
                .map(drop)
                .and_then(|()| dec.finish());
            assert_eq!(
                outcome,
                Err(CodecError::Truncated),
                "cut at {cut}/{} not detected",
                b.len()
            );
        }
    }

    #[test]
    fn columnar_rejects_bad_magic() {
        let mut buf = BytesMut::new();
        buf.put_u32(0xdeadbeef);
        let mut dec = StreamDecoder::new();
        assert!(matches!(
            dec.feed(&buf.freeze()),
            Err(CodecError::BadField(_))
        ));
    }

    #[test]
    fn columnar_rejects_unknown_kind_code() {
        let mut buf = BytesMut::new();
        buf.put_u32(0x4454_4332);
        // One block, one event, payload = bogus kind code + 4 arg bytes.
        buf.put_u32(0); // rank
        buf.put_u32(0); // thread
        buf.put_u32(1); // n_events
        buf.put_u32(5); // payload_len
        buf.put_i64(42); // timestamp column
        buf.put_u8(200); // unknown kind code
        buf.put_u32(0);
        let mut dec = StreamDecoder::new();
        assert!(matches!(
            dec.feed(&buf.freeze()),
            Err(CodecError::UnknownKind(_))
        ));
    }

    #[test]
    fn columnar_rejects_unknown_coll_code() {
        let mut buf = BytesMut::new();
        buf.put_u32(0x4454_4332);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u32(1);
        buf.put_u32(22); // CollBegin payload size
        buf.put_i64(42);
        buf.put_u8(4); // CollBegin
        buf.put_u8(99); // unknown collective op
        buf.put_u32(0);
        buf.put_i64(-1);
        buf.put_u64(8);
        let mut dec = StreamDecoder::new();
        assert!(matches!(
            dec.feed(&buf.freeze()),
            Err(CodecError::UnknownKind(_))
        ));
    }

    #[test]
    fn columnar_rejects_payload_length_mismatch() {
        let mut buf = BytesMut::new();
        buf.put_u32(0x4454_4332);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u32(1);
        buf.put_u32(7); // too long for one Enter record (5 bytes)
        buf.put_i64(42);
        buf.put_u8(0); // Enter
        buf.put_u32(1); // region
        buf.put_u8(0); // 2 bytes of trailing garbage
        buf.put_u8(0);
        let mut dec = StreamDecoder::new();
        assert!(matches!(
            dec.feed(&buf.freeze()),
            Err(CodecError::BadField(_))
        ));
    }

    #[test]
    fn v1_truncation_at_every_boundary_returns_truncated() {
        let t = sample_trace();
        let b = to_binary(&t);
        for cut in 0..b.len() {
            match from_binary(b.slice(..cut)) {
                Err(CodecError::Truncated) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn v1_rejects_unknown_kind_and_coll_codes() {
        let mut buf = BytesMut::new();
        buf.put_u32(0x4454_4c31);
        buf.put_u32(1);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u64(1);
        buf.put_i64(42);
        buf.put_u8(250); // unknown kind code
        assert!(matches!(
            from_binary(buf.freeze()),
            Err(CodecError::UnknownKind(_))
        ));
        let mut buf = BytesMut::new();
        buf.put_u32(0x4454_4c31);
        buf.put_u32(1);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u64(1);
        buf.put_i64(42);
        buf.put_u8(5); // CollEnd
        buf.put_u8(77); // unknown collective op
        buf.put_u32(0);
        buf.put_i64(-1);
        buf.put_u64(8);
        assert!(matches!(
            from_binary(buf.freeze()),
            Err(CodecError::UnknownKind(_))
        ));
    }

    #[test]
    fn v1_rejects_absurd_event_count_without_allocating() {
        // A header announcing ~u64::MAX events must be rejected as
        // Truncated before any allocation is attempted.
        let mut buf = BytesMut::new();
        buf.put_u32(0x4454_4c31);
        buf.put_u32(1); // one proc
        buf.put_u32(0); // rank
        buf.put_u32(0); // thread
        buf.put_u64(u64::MAX); // absurd event count
        buf.put_i64(42);
        assert!(matches!(
            from_binary(buf.freeze()),
            Err(CodecError::Truncated)
        ));
    }

    #[test]
    fn columnar_rejects_oversized_block_header() {
        // A frame header claiming 2^31 events would make a naive reader
        // wait for ~16 GiB; the decoder must reject it immediately.
        let mut buf = BytesMut::new();
        buf.put_u32(0x4454_4332);
        buf.put_u32(0); // rank
        buf.put_u32(0); // thread
        buf.put_u32(1 << 31); // n_events far beyond MAX_BLOCK_EVENTS
        buf.put_u32(64); // payload_len
        let mut dec = StreamDecoder::new();
        assert!(matches!(dec.feed(&buf.freeze()), Err(CodecError::BadField(_))));
    }

    #[test]
    fn columnar_rejects_corrupt_rank_in_block_header() {
        // A flipped high byte in a header's rank id must fail typed at
        // parse time — the id would otherwise reach dense per-rank
        // structures downstream (the l_min table is quadratic in it).
        let encoded = to_binary_columnar(&sample_trace());
        let mut corrupt = encoded.to_vec();
        corrupt[4] ^= 0xF0; // rank field of the first frame header
        let mut dec = StreamDecoder::new();
        assert!(matches!(dec.feed(&corrupt), Err(CodecError::BadField(_))));
    }

    #[test]
    fn binary_rejects_corrupt_rank_in_proc_header() {
        let encoded = to_binary(&sample_trace());
        let mut corrupt = encoded.to_vec();
        corrupt[8] ^= 0xF0; // rank field of the first process header
        assert!(matches!(
            from_binary(Bytes::from(corrupt)),
            Err(CodecError::BadField(_))
        ));
    }

    #[test]
    fn columnar_rejects_inconsistent_block_header() {
        // 8 events cannot fit in a 10-byte payload (records are >= 5 bytes).
        let mut buf = BytesMut::new();
        buf.put_u32(0x4454_4332);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u32(8);
        buf.put_u32(10);
        let mut dec = StreamDecoder::new();
        assert!(matches!(dec.feed(&buf.freeze()), Err(CodecError::BadField(_))));
    }

    #[test]
    fn stream_estimate_matches_encoder_totals() {
        let t = sample_trace();
        let b = to_binary_columnar_blocked(&t, 2);
        for chunk_size in [1, 3, 7, 64, b.len()] {
            let est = estimate_columnar_stream(b.chunks(chunk_size));
            assert_eq!(est.events, t.n_events() as u64, "chunks of {chunk_size}");
            assert!(est.complete, "chunks of {chunk_size}");
            assert_eq!(est.bytes, b.len() as u64);
            assert!(est.blocks >= 4, "blocks of 2 events over 8 events");
        }
    }

    #[test]
    fn stream_estimate_tolerates_truncation_and_garbage() {
        let t = sample_trace();
        let b = to_binary_columnar_blocked(&t, 2);
        // Truncated stream: a lower bound, flagged incomplete.
        let est = estimate_columnar_stream(std::iter::once(&b[..b.len() / 2]));
        assert!(!est.complete);
        assert!(est.events <= t.n_events() as u64);
        // Garbage: no panic, nothing counted past the bad magic.
        let est = estimate_columnar_stream(std::iter::once(&[0xde, 0xad, 0xbe, 0xef][..]));
        assert!(!est.complete);
        assert_eq!(est.events, 0);
    }

    #[test]
    fn negative_timestamps_survive() {
        // Workers behind the master legitimately produce negative local
        // times after alignment.
        let mut t = Trace::for_ranks(1);
        t.procs[0].push(Time::from_ns(-5000), EventKind::Enter { region: RegionId(0) });
        let round = from_text(&to_text(&t)).unwrap();
        assert_eq!(round.procs[0].events[0].time, Time::from_ns(-5000));
        let round = from_binary(to_binary(&t)).unwrap();
        assert_eq!(round.procs[0].events[0].time, Time::from_ns(-5000));
    }
}
