//! Trace codecs: a human-readable text format and three binary formats.
//!
//! The text format writes one event per line (`rank:thread time_ps MNEMONIC
//! args…`), convenient for diffing and debugging. Binary v1 ([`to_binary`] /
//! [`from_binary`]) is a simple record stream built on [`bytes`], an order
//! of magnitude denser — what a tracing library would actually flush to disk
//! (paper §III: buffers are flushed at termination or when full). Binary v2
//! ([`to_binary_columnar`] / [`StreamDecoder`]) frames the same events into
//! length-prefixed per-timeline blocks whose timestamps are stored as a
//! dense column segment, so a reader can ingest a trace chunk by chunk —
//! decoding each block as soon as its bytes arrive, without materializing
//! the whole record vector first — and hand the timestamp columns straight
//! to the columnar synchronisation pipeline. Binary v3
//! ([`to_binary_columnar_v3`]) keeps v2's framing but stores the timestamp
//! segment as 8-byte-aligned *little-endian* `i64` and the kind/args
//! payload at a fixed stride, so an aligned buffer (an mmap, a stream
//! chunk) is reinterpreted as a [`TimeColumn`] run in one bulk copy instead
//! of a per-element byte-swap loop. v2 remains the interchange default; a
//! [`StreamDecoder`] negotiates the version from the stream magic. See
//! DESIGN.md §14 for the exact frame layouts and alignment rules.

use crate::column::{TimeColumn, TraceColumns};
use crate::event::{CollOp, EventKind, EventRecord};
use crate::ids::{CommId, Location, Rank, RegionId, Tag, ThreadId};
use crate::trace::{ProcessTrace, Trace};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use simclock::Time;
use std::fmt::Write as _;

/// Errors arising while decoding a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended in the middle of a record.
    Truncated,
    /// Unknown event tag or mnemonic.
    UnknownKind(String),
    /// A field failed to parse.
    BadField(String),
    /// Two incompatible wire versions were concatenated in one stream
    /// (e.g. a `DTC3` stream glued after a `DTC2` trailer). Per-stream
    /// version negotiation happens once, at the magic; mixed input is
    /// rejected up front rather than misdecoded.
    MixedVersions,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::UnknownKind(s) => write!(f, "unknown event kind {s:?}"),
            CodecError::BadField(s) => write!(f, "bad field: {s}"),
            CodecError::MixedVersions => {
                write!(f, "mixed DTC2/DTC3 streams in one input")
            }
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------- text ----

/// Rough bytes-per-line estimate for sizing text output buffers: location,
/// picosecond timestamp, mnemonic and a few numeric args land near 40–60
/// characters per event in practice.
const TEXT_BYTES_PER_EVENT: usize = 56;

/// Encode a trace in the line-oriented text format.
///
/// The output buffer is preallocated from the event count so encoding a
/// large trace does not repeatedly regrow one giant `String`.
pub fn to_text(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.n_events() * TEXT_BYTES_PER_EVENT);
    for pt in &trace.procs {
        for e in &pt.events {
            write_text_line(&mut out, pt.location, e);
        }
    }
    out
}

/// Stream the text format to any [`std::io::Write`] sink, line by line.
///
/// Unlike [`to_text`] this never holds more than one formatted line in
/// memory, so arbitrarily large traces can be written to a file or pipe
/// with constant overhead.
pub fn to_text_writer<W: std::io::Write>(trace: &Trace, sink: &mut W) -> std::io::Result<()> {
    let mut line = String::with_capacity(TEXT_BYTES_PER_EVENT * 2);
    for pt in &trace.procs {
        for e in &pt.events {
            line.clear();
            write_text_line(&mut line, pt.location, e);
            sink.write_all(line.as_bytes())?;
        }
    }
    Ok(())
}

fn write_text_line(out: &mut String, loc: Location, e: &EventRecord) {
    let _ = write!(
        out,
        "{}:{} {} {}",
        loc.rank.0,
        loc.thread.0,
        e.time.as_ps(),
        e.kind.mnemonic()
    );
    match e.kind {
        EventKind::Enter { region } | EventKind::Exit { region } => {
            let _ = write!(out, " {}", region.0);
        }
        EventKind::Send { to, tag, bytes } => {
            let _ = write!(out, " {} {} {}", to.0, tag.0, bytes);
        }
        EventKind::Recv { from, tag, bytes } => {
            let _ = write!(out, " {} {} {}", from.0, tag.0, bytes);
        }
        EventKind::CollBegin { op, comm, root, bytes }
        | EventKind::CollEnd { op, comm, root, bytes } => {
            let _ = write!(
                out,
                " {} {} {} {}",
                coll_code(op),
                comm.0,
                root.map_or(-1, |r| r.0 as i64),
                bytes
            );
        }
        EventKind::Fork { region }
        | EventKind::Join { region }
        | EventKind::BarrierEnter { region }
        | EventKind::BarrierExit { region } => {
            let _ = write!(out, " {}", region.0);
        }
    }
    out.push('\n');
}

/// Decode the text format back into a trace. Timelines appear in first-seen
/// order.
pub fn from_text(s: &str) -> Result<Trace, CodecError> {
    let mut trace = Trace::default();
    let mut index: std::collections::HashMap<Location, usize> = std::collections::HashMap::new();
    for line in s.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let loc_str = parts.next().ok_or(CodecError::Truncated)?;
        let (r, t) = loc_str
            .split_once(':')
            .ok_or_else(|| CodecError::BadField(loc_str.into()))?;
        let loc = Location {
            rank: Rank(parse(r)?),
            thread: ThreadId(parse(t)?),
        };
        let time = Time::from_ps(parse(parts.next().ok_or(CodecError::Truncated)?)?);
        let mn = parts.next().ok_or(CodecError::Truncated)?;
        let mut next_u32 = || -> Result<u32, CodecError> {
            parse(parts.next().ok_or(CodecError::Truncated)?)
        };
        let kind = match mn {
            "ENTR" => EventKind::Enter { region: RegionId(next_u32()?) },
            "EXIT" => EventKind::Exit { region: RegionId(next_u32()?) },
            "SEND" => {
                let to = Rank(next_u32()?);
                let tag = Tag(next_u32()?);
                let bytes: u64 = parse(parts.next().ok_or(CodecError::Truncated)?)?;
                EventKind::Send { to, tag, bytes }
            }
            "RECV" => {
                let from = Rank(next_u32()?);
                let tag = Tag(next_u32()?);
                let bytes: u64 = parse(parts.next().ok_or(CodecError::Truncated)?)?;
                EventKind::Recv { from, tag, bytes }
            }
            "CBEG" | "CEND" => {
                let op = coll_from_code(next_u32()? as u8)
                    .ok_or_else(|| CodecError::UnknownKind(mn.into()))?;
                let comm = CommId(next_u32()?);
                let root_raw: i64 = parse(parts.next().ok_or(CodecError::Truncated)?)?;
                let root = (root_raw >= 0).then_some(Rank(root_raw as u32));
                let bytes: u64 = parse(parts.next().ok_or(CodecError::Truncated)?)?;
                if mn == "CBEG" {
                    EventKind::CollBegin { op, comm, root, bytes }
                } else {
                    EventKind::CollEnd { op, comm, root, bytes }
                }
            }
            "FORK" => EventKind::Fork { region: RegionId(next_u32()?) },
            "JOIN" => EventKind::Join { region: RegionId(next_u32()?) },
            "BENT" => EventKind::BarrierEnter { region: RegionId(next_u32()?) },
            "BEXT" => EventKind::BarrierExit { region: RegionId(next_u32()?) },
            other => return Err(CodecError::UnknownKind(other.into())),
        };
        let p = *index.entry(loc).or_insert_with(|| {
            trace.procs.push(ProcessTrace::new(loc));
            trace.procs.len() - 1
        });
        trace.procs[p].push(time, kind);
    }
    Ok(trace)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, CodecError> {
    s.parse().map_err(|_| CodecError::BadField(s.into()))
}

// -------------------------------------------------------------- binary ----

const MAGIC: u32 = 0x4454_4c31; // "DTL1"

fn coll_code(op: CollOp) -> u8 {
    match op {
        CollOp::Barrier => 0,
        CollOp::Bcast => 1,
        CollOp::Scatter => 2,
        CollOp::Reduce => 3,
        CollOp::Gather => 4,
        CollOp::Allreduce => 5,
        CollOp::Allgather => 6,
        CollOp::Alltoall => 7,
        CollOp::Scan => 8,
    }
}

fn coll_from_code(c: u8) -> Option<CollOp> {
    Some(match c {
        0 => CollOp::Barrier,
        1 => CollOp::Bcast,
        2 => CollOp::Scatter,
        3 => CollOp::Reduce,
        4 => CollOp::Gather,
        5 => CollOp::Allreduce,
        6 => CollOp::Allgather,
        7 => CollOp::Alltoall,
        8 => CollOp::Scan,
        _ => return None,
    })
}

fn kind_code(kind: &EventKind) -> u8 {
    match kind {
        EventKind::Enter { .. } => 0,
        EventKind::Exit { .. } => 1,
        EventKind::Send { .. } => 2,
        EventKind::Recv { .. } => 3,
        EventKind::CollBegin { .. } => 4,
        EventKind::CollEnd { .. } => 5,
        EventKind::Fork { .. } => 6,
        EventKind::Join { .. } => 7,
        EventKind::BarrierEnter { .. } => 8,
        EventKind::BarrierExit { .. } => 9,
    }
}

/// Encoded size of `kind_code + args` for one event, excluding the
/// timestamp — the per-record payload unit shared by both binary formats.
fn kind_payload_len(kind: &EventKind) -> usize {
    match kind {
        EventKind::Enter { .. }
        | EventKind::Exit { .. }
        | EventKind::Fork { .. }
        | EventKind::Join { .. }
        | EventKind::BarrierEnter { .. }
        | EventKind::BarrierExit { .. } => 1 + 4,
        EventKind::Send { .. } | EventKind::Recv { .. } => 1 + 16,
        EventKind::CollBegin { .. } | EventKind::CollEnd { .. } => 1 + 21,
    }
}

/// Append `kind_code + args` (no timestamp) to `buf` — the record payload
/// encoding shared by binary v1 and the columnar block payloads.
fn encode_kind(buf: &mut BytesMut, kind: &EventKind) {
    buf.put_u8(kind_code(kind));
    match *kind {
        EventKind::Enter { region }
        | EventKind::Exit { region }
        | EventKind::Fork { region }
        | EventKind::Join { region }
        | EventKind::BarrierEnter { region }
        | EventKind::BarrierExit { region } => buf.put_u32(region.0),
        EventKind::Send { to, tag, bytes } => {
            buf.put_u32(to.0);
            buf.put_u32(tag.0);
            buf.put_u64(bytes);
        }
        EventKind::Recv { from, tag, bytes } => {
            buf.put_u32(from.0);
            buf.put_u32(tag.0);
            buf.put_u64(bytes);
        }
        EventKind::CollBegin { op, comm, root, bytes }
        | EventKind::CollEnd { op, comm, root, bytes } => {
            buf.put_u8(coll_code(op));
            buf.put_u32(comm.0);
            buf.put_i64(root.map_or(-1, |r| r.0 as i64));
            buf.put_u64(bytes);
        }
    }
}

/// Encode a trace in the compact binary format.
pub fn to_binary(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + trace.n_events() * 24);
    buf.put_u32(MAGIC);
    buf.put_u32(trace.procs.len() as u32);
    for pt in &trace.procs {
        buf.put_u32(pt.location.rank.0);
        buf.put_u32(pt.location.thread.0);
        buf.put_u64(pt.events.len() as u64);
        for e in &pt.events {
            buf.put_i64(e.time.as_ps());
            encode_kind(&mut buf, &e.kind);
        }
    }
    buf.freeze()
}

/// Decode the binary format.
pub fn from_binary(mut buf: Bytes) -> Result<Trace, CodecError> {
    fn need(buf: &Bytes, n: usize) -> Result<(), CodecError> {
        if buf.remaining() < n {
            Err(CodecError::Truncated)
        } else {
            Ok(())
        }
    }
    need(&buf, 8)?;
    if buf.get_u32() != MAGIC {
        return Err(CodecError::BadField("magic".into()));
    }
    let n_procs = buf.get_u32() as usize;
    let mut trace = Trace::default();
    for _ in 0..n_procs {
        need(&buf, 16)?;
        let rank = Rank(buf.get_u32());
        let thread = ThreadId(buf.get_u32());
        if rank.0 > MAX_LOCATION_ID || thread.0 > MAX_LOCATION_ID {
            return Err(CodecError::BadField(format!(
                "timeline id out of range: rank {}, thread {}",
                rank.0, thread.0
            )));
        }
        let n_events = buf.get_u64() as usize;
        // Every encoded event is at least 9 bytes (timestamp + kind code),
        // so an event count the remaining input cannot possibly hold is a
        // truncated/corrupt stream. Checking *before* reserving also keeps
        // a hostile header from forcing a multi-gigabyte allocation (or a
        // capacity-overflow panic) out of a few bytes of input.
        if buf.remaining() < n_events.saturating_mul(9) {
            return Err(CodecError::Truncated);
        }
        let mut pt = ProcessTrace::new(Location { rank, thread });
        pt.events.reserve_exact(n_events);
        for _ in 0..n_events {
            need(&buf, 9)?;
            let time = Time::from_ps(buf.get_i64());
            let code = buf.get_u8();
            let kind = match code {
                0 | 1 | 6 | 7 | 8 | 9 => {
                    need(&buf, 4)?;
                    let region = RegionId(buf.get_u32());
                    match code {
                        0 => EventKind::Enter { region },
                        1 => EventKind::Exit { region },
                        6 => EventKind::Fork { region },
                        7 => EventKind::Join { region },
                        8 => EventKind::BarrierEnter { region },
                        _ => EventKind::BarrierExit { region },
                    }
                }
                2 | 3 => {
                    need(&buf, 16)?;
                    let peer = Rank(buf.get_u32());
                    let tag = Tag(buf.get_u32());
                    let bytes = buf.get_u64();
                    if code == 2 {
                        EventKind::Send { to: peer, tag, bytes }
                    } else {
                        EventKind::Recv { from: peer, tag, bytes }
                    }
                }
                4 | 5 => {
                    need(&buf, 21)?;
                    let op = coll_from_code(buf.get_u8())
                        .ok_or_else(|| CodecError::UnknownKind("collective".into()))?;
                    let comm = CommId(buf.get_u32());
                    let root_raw = buf.get_i64();
                    let root = (root_raw >= 0).then_some(Rank(root_raw as u32));
                    let bytes = buf.get_u64();
                    if code == 4 {
                        EventKind::CollBegin { op, comm, root, bytes }
                    } else {
                        EventKind::CollEnd { op, comm, root, bytes }
                    }
                }
                other => return Err(CodecError::UnknownKind(format!("code {other}"))),
            };
            pt.events.push(EventRecord::new(time, kind));
        }
        trace.procs.push(pt);
    }
    Ok(trace)
}

// ------------------------------------------------- columnar binary v2 ----

/// Magic of the columnar block-framed binary format ("DTC2").
const MAGIC_COLUMNAR: u32 = 0x4454_4332;

/// Default number of events per block frame written by
/// [`to_binary_columnar`]. Large enough that the 16-byte frame header is
/// noise, small enough that a frame (tens of KiB) is comfortably below a
/// typical read-buffer chunk — a streaming reader then buffers at most a
/// small partial frame per chunk boundary and scans the rest in place —
/// and the decoder's working set stays in cache.
pub const BLOCK_EVENTS: usize = 2048;

/// Hard ceiling on the per-block event count a decoder will accept (and an
/// encoder will emit). A corrupted or hostile frame header claiming billions
/// of events would otherwise make a streaming reader buffer gigabytes
/// waiting for a frame that can never complete; with the ceiling the header
/// is rejected as [`CodecError::BadField`] the moment it is parsed.
pub const MAX_BLOCK_EVENTS: usize = 1 << 20;

/// Largest kind/args record the encoder produces (a collective record).
const MAX_KIND_PAYLOAD: usize = 22;

/// Ceiling on a block's payload length, implied by [`MAX_BLOCK_EVENTS`].
pub const MAX_BLOCK_PAYLOAD: usize = MAX_BLOCK_EVENTS * MAX_KIND_PAYLOAD;

/// Ceiling on the rank and thread ids a decoder will accept in a timeline
/// header. Location ids index dense per-rank structures downstream — the
/// frozen `l_min` table is quadratic in the largest rank id — so a single
/// flipped high byte in a header would otherwise surface as a huge
/// allocation (or a capacity-overflow panic) long after decode instead of
/// a typed error. Sixteen million timelines is corruption, not scale.
/// The ceiling also stays far below the `u32::MAX` end-of-stream sentinel.
pub const MAX_LOCATION_ID: u32 = (1 << 24) - 1;

/// Validate a parsed (non-trailer) frame header against the format's
/// sanity ceilings.
fn check_block_header(
    rank: u32,
    thread: u32,
    n_events: usize,
    payload_len: usize,
) -> Result<(), CodecError> {
    if rank > MAX_LOCATION_ID || thread > MAX_LOCATION_ID {
        return Err(CodecError::BadField(format!(
            "timeline id out of range: rank {rank}, thread {thread}"
        )));
    }
    if n_events > MAX_BLOCK_EVENTS || payload_len > MAX_BLOCK_PAYLOAD {
        return Err(CodecError::BadField(format!(
            "oversized block header: {n_events} events, {payload_len} payload bytes"
        )));
    }
    // Every record is at least 5 bytes (kind code + one u32 arg), so a
    // payload shorter than that cannot possibly hold n_events records.
    if payload_len < n_events * 5 {
        return Err(CodecError::BadField(format!(
            "block header inconsistent: {n_events} events in {payload_len} payload bytes"
        )));
    }
    Ok(())
}

/// One decoded block of the columnar format: a run of consecutive events
/// from a single timeline, timestamps already split into a dense column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineBlock {
    /// Which timeline the events belong to.
    pub location: Location,
    /// The timestamps, in picoseconds, one per event.
    pub times: TimeColumn,
    /// The kind/args payload, one per event, parallel to `times`.
    pub kinds: Vec<EventKind>,
}

impl TimelineBlock {
    /// Number of events in the block.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True when the block holds no events.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }
}

/// Encode a trace in the columnar block-framed binary format, splitting
/// each timeline into blocks of at most [`BLOCK_EVENTS`] events.
pub fn to_binary_columnar(trace: &Trace) -> Bytes {
    to_binary_columnar_blocked(trace, BLOCK_EVENTS)
}

/// [`to_binary_columnar`] with an explicit block size (clamped to ≥ 1).
/// Smaller blocks mean earlier data for a streaming reader at the cost of
/// more frame headers.
pub fn to_binary_columnar_blocked(trace: &Trace, block_events: usize) -> Bytes {
    let block_events = block_events.clamp(1, MAX_BLOCK_EVENTS);
    let mut buf = BytesMut::with_capacity(4 + trace.n_events() * 24);
    buf.put_u32(MAGIC_COLUMNAR);
    let mut blocks = 0u64;
    for pt in &trace.procs {
        if pt.events.is_empty() {
            // Preserve empty timelines with a zero-event block.
            put_block_header(&mut buf, pt.location, 0, 0);
            blocks += 1;
            continue;
        }
        for chunk in pt.events.chunks(block_events) {
            let payload_len: usize = chunk.iter().map(|e| kind_payload_len(&e.kind)).sum();
            put_block_header(&mut buf, pt.location, chunk.len(), payload_len);
            blocks += 1;
            for e in chunk {
                buf.put_i64(e.time.as_ps());
            }
            for e in chunk {
                encode_kind(&mut buf, &e.kind);
            }
        }
    }
    // End-of-stream trailer: a reserved frame header (rank = thread =
    // u32::MAX) carrying the low 32 bits of the event and block counts.
    // Without it a stream cut exactly between frames would read as a valid
    // shorter trace; with it every proper prefix is detectably truncated.
    buf.put_u32(u32::MAX);
    buf.put_u32(u32::MAX);
    buf.put_u32(trace.n_events() as u32);
    buf.put_u32(blocks as u32);
    buf.freeze()
}

fn put_block_header(buf: &mut BytesMut, loc: Location, n_events: usize, payload_len: usize) {
    buf.put_u32(loc.rank.0);
    buf.put_u32(loc.thread.0);
    buf.put_u32(n_events as u32);
    buf.put_u32(payload_len as u32);
}

#[inline]
fn rd_u32(s: &[u8], at: usize) -> u32 {
    u32::from_be_bytes(s[at..at + 4].try_into().unwrap())
}

// ------------------------------------------------- columnar binary v3 ----

/// Magic of the aligned little-endian block-framed binary format ("DTC3").
const MAGIC_COLUMNAR_V3: u32 = 0x4454_4333;

/// Bytes of the fixed-stride args record every v3 event carries (four
/// little-endian fields: `a: u32, b: u32, c: u64, d: u64`).
const V3_ARGS_BYTES: usize = 24;

/// Payload bytes per v3 event: one kind-code byte plus the args record.
const V3_RECORD_BYTES: usize = 1 + V3_ARGS_BYTES;

/// Which columnar wire format a stream carries, negotiated from its magic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnarVersion {
    /// "DTC2": big-endian timestamps, variable-stride payload.
    V2,
    /// "DTC3": 8-aligned little-endian timestamps, fixed-stride payload.
    V3,
}

/// Pad bytes between a v3 frame header and its timestamp segment, chosen
/// so the segment starts at a stream offset ≡ 0 (mod 8). The header is 16
/// bytes, so this only depends on the frame's own start offset. Both the
/// encoder and the decoder derive the pad from the offset — it is never
/// written into the header.
#[inline]
fn v3_pad(frame_start: u64) -> usize {
    ((8 - (frame_start + 16) % 8) % 8) as usize
}

/// Validate a parsed (non-trailer) v3 frame header. Records are
/// fixed-stride, so the payload length is fully determined by the event
/// count — anything else is corruption.
fn check_block_header_v3(
    rank: u32,
    thread: u32,
    n_events: usize,
    payload_len: usize,
) -> Result<(), CodecError> {
    if rank > MAX_LOCATION_ID || thread > MAX_LOCATION_ID {
        return Err(CodecError::BadField(format!(
            "timeline id out of range: rank {rank}, thread {thread}"
        )));
    }
    if n_events > MAX_BLOCK_EVENTS {
        return Err(CodecError::BadField(format!(
            "oversized block header: {n_events} events"
        )));
    }
    if payload_len != n_events * V3_RECORD_BYTES {
        return Err(CodecError::BadField(format!(
            "v3 block header inconsistent: {n_events} events in {payload_len} payload bytes"
        )));
    }
    Ok(())
}

/// Append one event's fixed-stride v3 args record (no kind code). Every
/// kind writes the same four little-endian fields; unused fields are zero.
#[inline]
fn encode_args_v3(buf: &mut BytesMut, kind: &EventKind) {
    let (a, b, c, d): (u32, u32, u64, u64) = match *kind {
        EventKind::Enter { region }
        | EventKind::Exit { region }
        | EventKind::Fork { region }
        | EventKind::Join { region }
        | EventKind::BarrierEnter { region }
        | EventKind::BarrierExit { region } => (region.0, 0, 0, 0),
        EventKind::Send { to, tag, bytes } => (to.0, tag.0, bytes, 0),
        EventKind::Recv { from, tag, bytes } => (from.0, tag.0, bytes, 0),
        EventKind::CollBegin { op, comm, root, bytes }
        | EventKind::CollEnd { op, comm, root, bytes } => (
            coll_code(op) as u32,
            comm.0,
            root.map_or(-1i64, |r| r.0 as i64) as u64,
            bytes,
        ),
    };
    buf.put_u32_le(a);
    buf.put_u32_le(b);
    buf.put_u64_le(c);
    buf.put_u64_le(d);
}

/// Decode one v3 event from its kind code and fixed-stride args record.
#[inline]
fn decode_kind_v3(code: u8, args: &[u8; V3_ARGS_BYTES]) -> Result<EventKind, CodecError> {
    #[inline]
    fn le_u32<const AT: usize>(s: &[u8; V3_ARGS_BYTES]) -> u32 {
        u32::from_le_bytes(s[AT..AT + 4].try_into().unwrap())
    }
    #[inline]
    fn le_u64<const AT: usize>(s: &[u8; V3_ARGS_BYTES]) -> u64 {
        u64::from_le_bytes(s[AT..AT + 8].try_into().unwrap())
    }
    let a = le_u32::<0>(args);
    Ok(match code {
        0 | 1 | 6 | 7 | 8 | 9 => {
            let region = RegionId(a);
            match code {
                0 => EventKind::Enter { region },
                1 => EventKind::Exit { region },
                6 => EventKind::Fork { region },
                7 => EventKind::Join { region },
                8 => EventKind::BarrierEnter { region },
                _ => EventKind::BarrierExit { region },
            }
        }
        2 | 3 => {
            let peer = Rank(a);
            let tag = Tag(le_u32::<4>(args));
            let bytes = le_u64::<8>(args);
            if code == 2 {
                EventKind::Send { to: peer, tag, bytes }
            } else {
                EventKind::Recv { from: peer, tag, bytes }
            }
        }
        4 | 5 => {
            let op = u8::try_from(a)
                .ok()
                .and_then(coll_from_code)
                .ok_or_else(|| CodecError::UnknownKind("collective".into()))?;
            let comm = CommId(le_u32::<4>(args));
            let root_raw = le_u64::<8>(args) as i64;
            let root = (root_raw >= 0).then_some(Rank(root_raw as u32));
            let bytes = le_u64::<16>(args);
            if code == 4 {
                EventKind::CollBegin { op, comm, root, bytes }
            } else {
                EventKind::CollEnd { op, comm, root, bytes }
            }
        }
        other => return Err(CodecError::UnknownKind(format!("code {other}"))),
    })
}

/// Encode a trace in the aligned little-endian v3 format with the default
/// block size.
pub fn to_binary_columnar_v3(trace: &Trace) -> Bytes {
    to_binary_columnar_v3_blocked(trace, BLOCK_EVENTS)
}

/// [`to_binary_columnar_v3`] with an explicit block size (clamped to ≥ 1).
///
/// The frame layout mirrors v2 — 16-byte big-endian header, timestamp
/// segment, payload, end-of-stream trailer — with two deliberate changes:
/// zero pad bytes follow the header so the timestamp segment lands on an
/// 8-aligned stream offset, and both the timestamps (little-endian `i64`)
/// and the payload (fixed 25-byte stride: code byte run, then 24-byte args
/// records) are laid out for bulk reinterpretation rather than per-element
/// decode. v3 trades ~30% more bytes for a decode path that is mostly
/// `memcpy`.
pub fn to_binary_columnar_v3_blocked(trace: &Trace, block_events: usize) -> Bytes {
    let block_events = block_events.clamp(1, MAX_BLOCK_EVENTS);
    let mut buf = BytesMut::with_capacity(4 + trace.n_events() * (8 + V3_RECORD_BYTES) + 64);
    buf.put_u32(MAGIC_COLUMNAR_V3);
    let mut blocks = 0u64;
    let emit = |buf: &mut BytesMut, loc: Location, chunk: &[EventRecord]| {
        put_block_header(buf, loc, chunk.len(), chunk.len() * V3_RECORD_BYTES);
        for _ in 0..v3_pad(buf.len() as u64 - 16) {
            buf.put_u8(0);
        }
        for e in chunk {
            buf.put_i64_le(e.time.as_ps());
        }
        for e in chunk {
            buf.put_u8(kind_code(&e.kind));
        }
        for e in chunk {
            encode_args_v3(buf, &e.kind);
        }
    };
    for pt in &trace.procs {
        if pt.events.is_empty() {
            // Preserve empty timelines with a zero-event block.
            emit(&mut buf, pt.location, &[]);
            blocks += 1;
            continue;
        }
        for chunk in pt.events.chunks(block_events) {
            emit(&mut buf, pt.location, chunk);
            blocks += 1;
        }
    }
    // Same end-of-stream trailer as v2 (and no pad before it).
    buf.put_u32(u32::MAX);
    buf.put_u32(u32::MAX);
    buf.put_u32(trace.n_events() as u32);
    buf.put_u32(blocks as u32);
    buf.freeze()
}

/// Where completed block frames go during a [`StreamDecoder`] scan:
/// either materialized as [`TimelineBlock`]s, or decoded straight into a
/// [`TraceBuilder`] without the intermediate per-block allocations.
trait BlockSink {
    /// One complete v2 frame: `times_be` is the big-endian timestamp
    /// column segment (`n_events * 8` bytes), `payload` the variable-stride
    /// kind/args records.
    fn frame(
        &mut self,
        location: Location,
        times_be: &[u8],
        payload: &[u8],
        n_events: usize,
    ) -> Result<(), CodecError>;

    /// One complete v3 frame, already split into its fixed-stride
    /// segments: `times_le` (little-endian `i64` run, 8-aligned on the
    /// wire), `codes` (`n_events` kind-code bytes), `args` (`n_events`
    /// 24-byte records).
    fn frame_v3(
        &mut self,
        location: Location,
        times_le: &[u8],
        codes: &[u8],
        args: &[u8],
        n_events: usize,
    ) -> Result<(), CodecError>;
}

impl BlockSink for Vec<TimelineBlock> {
    fn frame(
        &mut self,
        location: Location,
        times_be: &[u8],
        payload: &[u8],
        n_events: usize,
    ) -> Result<(), CodecError> {
        let mut times = TimeColumn::with_capacity(n_events);
        times.extend_from_be_bytes(times_be);
        let kinds = decode_kind_payload(payload, n_events)?;
        self.push(TimelineBlock { location, times, kinds });
        Ok(())
    }

    fn frame_v3(
        &mut self,
        location: Location,
        times_le: &[u8],
        codes: &[u8],
        args: &[u8],
        n_events: usize,
    ) -> Result<(), CodecError> {
        let mut times = TimeColumn::with_capacity(n_events);
        times.extend_from_le_bytes(times_le);
        let mut kinds = Vec::with_capacity(n_events);
        for (&code, rec) in codes.iter().zip(args.chunks_exact(V3_ARGS_BYTES)) {
            kinds.push(decode_kind_v3(code, rec.try_into().expect("exact chunk"))?);
        }
        self.push(TimelineBlock { location, times, kinds });
        Ok(())
    }
}

impl BlockSink for TraceBuilder {
    fn frame(
        &mut self,
        location: Location,
        times_be: &[u8],
        payload: &[u8],
        n_events: usize,
    ) -> Result<(), CodecError> {
        self.push_frame(location, times_be, payload, n_events)
    }

    fn frame_v3(
        &mut self,
        location: Location,
        times_le: &[u8],
        codes: &[u8],
        args: &[u8],
        n_events: usize,
    ) -> Result<(), CodecError> {
        self.push_frame_v3(location, times_le, codes, args, n_events)
    }
}

/// Decode one `kind_code + args` record from a block payload, advancing
/// `at`. Each arm reads its whole fixed-size argument run through a
/// single bounds check; the field splits below are on arrays of known
/// length, so they compile to plain loads.
#[inline]
fn decode_one_kind(p: &[u8], at: &mut usize) -> Result<EventKind, CodecError> {
    #[inline]
    fn take<const N: usize>(p: &[u8], at: &mut usize) -> Result<[u8; N], CodecError> {
        let s = p.get(*at..*at + N).ok_or(CodecError::Truncated)?;
        *at += N;
        Ok(s.try_into().unwrap())
    }
    #[inline]
    fn be_u32<const AT: usize>(s: &[u8]) -> u32 {
        u32::from_be_bytes(s[AT..AT + 4].try_into().unwrap())
    }
    #[inline]
    fn be_u64<const AT: usize>(s: &[u8]) -> u64 {
        u64::from_be_bytes(s[AT..AT + 8].try_into().unwrap())
    }
    let code = *p.get(*at).ok_or(CodecError::Truncated)?;
    *at += 1;
    Ok(match code {
        0 | 1 | 6 | 7 | 8 | 9 => {
            let region = RegionId(u32::from_be_bytes(take::<4>(p, at)?));
            match code {
                0 => EventKind::Enter { region },
                1 => EventKind::Exit { region },
                6 => EventKind::Fork { region },
                7 => EventKind::Join { region },
                8 => EventKind::BarrierEnter { region },
                _ => EventKind::BarrierExit { region },
            }
        }
        2 | 3 => {
            let s = take::<16>(p, at)?;
            let peer = Rank(be_u32::<0>(&s));
            let tag = Tag(be_u32::<4>(&s));
            let bytes = be_u64::<8>(&s);
            if code == 2 {
                EventKind::Send { to: peer, tag, bytes }
            } else {
                EventKind::Recv { from: peer, tag, bytes }
            }
        }
        4 | 5 => {
            let s = take::<21>(p, at)?;
            let op = coll_from_code(s[0]).ok_or_else(|| CodecError::UnknownKind("collective".into()))?;
            let comm = CommId(be_u32::<1>(&s));
            let root_raw = i64::from_be_bytes(s[5..13].try_into().unwrap());
            let root = (root_raw >= 0).then_some(Rank(root_raw as u32));
            let bytes = be_u64::<13>(&s);
            if code == 4 {
                EventKind::CollBegin { op, comm, root, bytes }
            } else {
                EventKind::CollEnd { op, comm, root, bytes }
            }
        }
        other => return Err(CodecError::UnknownKind(format!("code {other}"))),
    })
}

/// Decode `n_events` records of `kind_code + args` from a block payload.
/// The payload must be consumed exactly.
fn decode_kind_payload(p: &[u8], n_events: usize) -> Result<Vec<EventKind>, CodecError> {
    let mut kinds = Vec::with_capacity(n_events);
    let mut at = 0usize;
    for _ in 0..n_events {
        kinds.push(decode_one_kind(p, &mut at)?);
    }
    if at != p.len() {
        return Err(CodecError::BadField("block payload length".into()));
    }
    Ok(kinds)
}

/// Incremental decoder for the columnar format.
///
/// Feed byte chunks of any size as they arrive; each call returns the
/// blocks completed by that chunk. Only the bytes of the one incomplete
/// trailing frame are buffered, so memory stays bounded by the block size
/// regardless of trace length:
///
/// ```
/// use tracefmt::io::{to_binary_columnar, StreamDecoder, TraceBuilder};
/// # use tracefmt::{Trace, EventKind, RegionId};
/// # use simclock::Time;
/// # let mut trace = Trace::for_ranks(1);
/// # trace.procs[0].push(Time::from_us(1), EventKind::Enter { region: RegionId(0) });
/// let encoded = to_binary_columnar(&trace);
/// let mut dec = StreamDecoder::new();
/// let mut builder = TraceBuilder::new();
/// for chunk in encoded.chunks(64 * 1024) {
///     dec.feed_into(chunk, &mut builder)?;
/// }
/// dec.finish()?;
/// let (decoded, columns) = builder.finish_parts();
/// # assert_eq!(decoded.n_events(), trace.n_events());
/// # assert_eq!(columns.n_events(), 1);
/// # Ok::<(), tracefmt::io::CodecError>(())
/// ```
#[derive(Debug, Default)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    pos: usize,
    version: Option<ColumnarVersion>,
    finished: bool,
    events_seen: u64,
    blocks_seen: u64,
    /// Absolute stream offset of the next unconsumed byte. Frame pads in
    /// v3 are a pure function of the frame's absolute offset, so the
    /// decoder carries it across chunk boundaries.
    stream_pos: u64,
}

impl StreamDecoder {
    /// Fresh decoder expecting the stream magic first.
    pub fn new() -> Self {
        StreamDecoder::default()
    }

    /// The wire version negotiated from the stream magic (None until the
    /// first four bytes arrive).
    pub fn version(&self) -> Option<ColumnarVersion> {
        self.version
    }

    /// Bytes buffered but not yet decoded (the incomplete trailing frame).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Events decoded so far.
    pub fn events_decoded(&self) -> u64 {
        self.events_seen
    }

    /// Timeline blocks decoded so far.
    pub fn blocks_decoded(&self) -> u64 {
        self.blocks_seen
    }

    /// Has the end-of-stream trailer been seen?
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Feed the next chunk; returns every block frame completed by it.
    ///
    /// After an error the decoder is poisoned — the stream is corrupt and
    /// further feeding is not meaningful.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<Vec<TimelineBlock>, CodecError> {
        let mut out = Vec::new();
        self.feed_sink(chunk, &mut out)?;
        Ok(out)
    }

    /// Feed the next chunk, decoding completed frames straight into
    /// `builder`. This is the fast ingest path: no intermediate
    /// [`TimelineBlock`] is materialized, and a chunk that starts on a
    /// frame boundary (the common case for any reasonable chunk size) is
    /// scanned in place without being copied into the decoder's buffer.
    pub fn feed_into(
        &mut self,
        chunk: &[u8],
        builder: &mut TraceBuilder,
    ) -> Result<(), CodecError> {
        self.feed_sink(chunk, builder)
    }

    /// Feed the next chunk, decoding only the timestamp columns into
    /// `builder` — the re-ingest lane for streams whose order-based
    /// analysis is already cached (see [`TimesBuilder`]). On v3 streams
    /// nothing is decoded per event: the aligned timestamp segments are
    /// bulk-reinterpreted and the payload segments skipped.
    pub fn feed_times_into(
        &mut self,
        chunk: &[u8],
        builder: &mut TimesBuilder,
    ) -> Result<(), CodecError> {
        self.feed_sink(chunk, builder)
    }

    fn feed_sink<S: BlockSink>(&mut self, chunk: &[u8], sink: &mut S) -> Result<(), CodecError> {
        let mut chunk = chunk;
        // A partial frame is buffered: top the buffer up only to that
        // frame's end (never the whole chunk), drain it, and leave the
        // rest of the chunk for the in-place scan below. The buffer thus
        // never holds more than one frame.
        while self.buffered() > 0 && !chunk.is_empty() {
            let need = self.wanted().saturating_sub(self.buffered()).max(1);
            let take = need.min(chunk.len());
            self.buf.extend_from_slice(&chunk[..take]);
            chunk = &chunk[take..];
            // Take the buffer out so `scan` may borrow both it and `self`.
            let data = std::mem::take(&mut self.buf);
            let res = self.scan(&data[self.pos..], sink);
            self.buf = data;
            let consumed = res?;
            self.pos += consumed;
            self.stream_pos += consumed as u64;
            if self.pos >= self.buf.len() {
                self.buf.clear();
                self.pos = 0;
            }
        }
        if !chunk.is_empty() {
            // Zero-copy path: the chunk starts on a frame boundary — scan
            // it in place and buffer only the trailing partial frame.
            debug_assert_eq!(self.buffered(), 0);
            self.buf.clear();
            self.pos = 0;
            let consumed = self.scan(chunk, sink)?;
            self.stream_pos += consumed as u64;
            self.buf.extend_from_slice(&chunk[consumed..]);
        }
        Ok(())
    }

    /// Bytes that must be buffered (from the start of the buffered
    /// region) before the next unit — magic, frame header, or the full
    /// frame the present header announces — can be parsed.
    fn wanted(&self) -> usize {
        let Some(version) = self.version else {
            return 4;
        };
        let avail = &self.buf[self.pos..];
        if avail.len() < 16 {
            return 16;
        }
        if rd_u32(avail, 0) == u32::MAX && rd_u32(avail, 4) == u32::MAX {
            return 16;
        }
        // The buffered region always starts on a frame boundary, so the
        // frame's absolute offset — which fixes the v3 pad — is exactly
        // `stream_pos`.
        let pad = match version {
            ColumnarVersion::V2 => 0,
            ColumnarVersion::V3 => v3_pad(self.stream_pos),
        };
        16 + pad + rd_u32(avail, 8) as usize * 8 + rd_u32(avail, 12) as usize
    }

    /// Scan `data` for complete frames, handing each to `sink`. Returns
    /// the number of bytes consumed — always a frame boundary; the caller
    /// buffers the remainder until more bytes arrive.
    fn scan<S: BlockSink>(&mut self, data: &[u8], sink: &mut S) -> Result<usize, CodecError> {
        let mut pos = 0usize;
        if self.version.is_none() {
            if data.len() < 4 {
                return Ok(0);
            }
            self.version = Some(match rd_u32(data, 0) {
                MAGIC_COLUMNAR => ColumnarVersion::V2,
                MAGIC_COLUMNAR_V3 => ColumnarVersion::V3,
                _ => return Err(CodecError::BadField("magic".into())),
            });
            pos = 4;
        }
        let version = self.version.expect("negotiated above");
        loop {
            if self.finished {
                if data.len() > pos {
                    return Err(CodecError::BadField("data after end-of-stream trailer".into()));
                }
                break;
            }
            let avail = &data[pos..];
            if avail.len() < 16 {
                break;
            }
            let n_events = rd_u32(avail, 8) as usize;
            let payload_len = rd_u32(avail, 12) as usize;
            if rd_u32(avail, 0) == u32::MAX && rd_u32(avail, 4) == u32::MAX {
                // End-of-stream trailer; counters must match what we saw.
                if n_events as u32 != self.events_seen as u32
                    || payload_len as u32 != self.blocks_seen as u32
                {
                    return Err(CodecError::BadField("end-of-stream counter mismatch".into()));
                }
                pos += 16;
                self.finished = true;
                continue;
            }
            let pad = match version {
                ColumnarVersion::V2 => {
                    check_block_header(rd_u32(avail, 0), rd_u32(avail, 4), n_events, payload_len)?;
                    0
                }
                ColumnarVersion::V3 => {
                    check_block_header_v3(
                        rd_u32(avail, 0),
                        rd_u32(avail, 4),
                        n_events,
                        payload_len,
                    )?;
                    v3_pad(self.stream_pos + pos as u64)
                }
            };
            let frame_len = 16 + pad + n_events * 8 + payload_len;
            if avail.len() < frame_len {
                break;
            }
            let location = Location {
                rank: Rank(rd_u32(avail, 0)),
                thread: ThreadId(rd_u32(avail, 4)),
            };
            let times_start = 16 + pad;
            let times_end = times_start + n_events * 8;
            match version {
                ColumnarVersion::V2 => sink.frame(
                    location,
                    &avail[times_start..times_end],
                    &avail[times_end..frame_len],
                    n_events,
                )?,
                ColumnarVersion::V3 => sink.frame_v3(
                    location,
                    &avail[times_start..times_end],
                    &avail[times_end..times_end + n_events],
                    &avail[times_end + n_events..frame_len],
                    n_events,
                )?,
            }
            self.events_seen += n_events as u64;
            self.blocks_seen += 1;
            pos += frame_len;
        }
        Ok(pos)
    }

    /// Declare end of stream. Errors with [`CodecError::Truncated`] unless
    /// the end-of-stream trailer was decoded — any stream cut mid-frame,
    /// between frames, or before the trailer is reported here.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.finished {
            Ok(())
        } else {
            Err(CodecError::Truncated)
        }
    }
}

/// Accumulates [`TimelineBlock`]s into a trace (and its timestamp
/// columns), merging blocks of the same location in arrival order — the
/// inverse of the encoder's block split.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    trace: Trace,
    cols: Vec<TimeColumn>,
    index: std::collections::HashMap<Location, usize>,
}

impl TraceBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Index of the timeline for `location`, created on first sight
    /// (timelines keep first-seen order).
    fn timeline(&mut self, location: Location) -> usize {
        *self.index.entry(location).or_insert_with(|| {
            self.trace.procs.push(ProcessTrace::new(location));
            self.cols.push(TimeColumn::new());
            self.trace.procs.len() - 1
        })
    }

    /// Append a decoded block to its timeline.
    pub fn push_block(&mut self, block: TimelineBlock) {
        let p = self.timeline(block.location);
        let pt = &mut self.trace.procs[p];
        pt.events.reserve(block.kinds.len());
        for (&ps, kind) in block.times.as_slice().iter().zip(block.kinds) {
            pt.events.push(EventRecord::new(Time::from_ps(ps), kind));
        }
        self.cols[p].extend_from_ps(block.times.as_slice());
    }

    /// Decode one block frame straight into its timeline — the zero-copy
    /// ingest path behind [`StreamDecoder::feed_into`]. One pass builds
    /// the event records and the timestamp column together; nothing is
    /// allocated per block.
    fn push_frame(
        &mut self,
        location: Location,
        times_be: &[u8],
        payload: &[u8],
        n_events: usize,
    ) -> Result<(), CodecError> {
        let p = self.timeline(location);
        let pt = &mut self.trace.procs[p];
        pt.events.reserve(n_events);
        let col = &mut self.cols[p];
        // Bulk-decode the timestamp segment into the column, then build
        // the interleaved records off the freshly decoded tail.
        let start = col.len();
        col.extend_from_be_bytes(times_be);
        let times = &col.as_slice()[start..];
        let mut at = 0usize;
        for &ps in times {
            let kind = decode_one_kind(payload, &mut at)?;
            pt.events.push(EventRecord::new(Time::from_ps(ps), kind));
        }
        if at != payload.len() {
            return Err(CodecError::BadField("block payload length".into()));
        }
        Ok(())
    }

    /// v3 counterpart of `push_frame`: the timestamp run is appended to
    /// the column in one aligned bulk copy (or an unaligned-load loop when
    /// the chunk buffer happens to be misaligned — see [`crate::cast`]),
    /// and the fixed-stride payload decodes with no per-field bounds
    /// checks or cursor tracking.
    fn push_frame_v3(
        &mut self,
        location: Location,
        times_le: &[u8],
        codes: &[u8],
        args: &[u8],
        n_events: usize,
    ) -> Result<(), CodecError> {
        let p = self.timeline(location);
        let pt = &mut self.trace.procs[p];
        pt.events.reserve(n_events);
        let col = &mut self.cols[p];
        let start = col.len();
        col.extend_from_le_bytes(times_le);
        let times = &col.as_slice()[start..];
        for ((&ps, &code), rec) in times
            .iter()
            .zip(codes)
            .zip(args.chunks_exact(V3_ARGS_BYTES))
        {
            let kind = decode_kind_v3(code, rec.try_into().expect("exact chunk"))?;
            pt.events.push(EventRecord::new(Time::from_ps(ps), kind));
        }
        Ok(())
    }

    /// Events accumulated so far.
    pub fn n_events(&self) -> usize {
        self.trace.n_events()
    }

    /// Finish into a plain trace.
    pub fn finish(self) -> Trace {
        self.trace
    }

    /// Finish into the trace plus its gathered timestamp columns — the
    /// ready-to-run input of the columnar pipeline, produced during decode
    /// with no separate gather pass.
    pub fn finish_parts(self) -> (Trace, TraceColumns) {
        (self.trace, TraceColumns::from_columns(self.cols))
    }
}

/// Accumulates only the timestamp columns of a columnar stream — the
/// re-ingest path for stored bytes whose analysis is already cached.
/// Message matching and collective reconstruction are order-based and
/// timestamps never enter them, so a consumer re-censusing or
/// re-synchronizing a stream it has analyzed before needs just the times.
///
/// On `DTC3` streams this is the zero-copy lane end to end: each frame's
/// 8-aligned little-endian timestamp segment is reinterpreted as an `i64`
/// run and bulk-copied straight into its column ([`crate::cast`]); the
/// kind/args segments are skipped without per-event decoding. On `DTC2`
/// the timestamps still decode element-wise (big-endian byteswap), which
/// is exactly the asymmetry the ingest benchmark measures.
#[derive(Debug, Default)]
pub struct TimesBuilder {
    locations: Vec<Location>,
    cols: Vec<TimeColumn>,
    index: std::collections::HashMap<Location, usize>,
}

impl TimesBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        TimesBuilder::default()
    }

    /// Index of the timeline for `location`, created on first sight
    /// (timelines keep first-seen order, matching [`TraceBuilder`]).
    fn timeline(&mut self, location: Location) -> usize {
        *self.index.entry(location).or_insert_with(|| {
            self.locations.push(location);
            self.cols.push(TimeColumn::new());
            self.locations.len() - 1
        })
    }

    /// Timestamps accumulated so far.
    pub fn n_events(&self) -> usize {
        self.cols.iter().map(TimeColumn::len).sum()
    }

    /// Finish into the timeline locations (in first-seen order, the same
    /// order [`TraceBuilder`] assigns) and the gathered columns.
    pub fn finish(self) -> (Vec<Location>, TraceColumns) {
        (self.locations, TraceColumns::from_columns(self.cols))
    }
}

impl BlockSink for TimesBuilder {
    fn frame(
        &mut self,
        location: Location,
        times_be: &[u8],
        _payload: &[u8],
        _n_events: usize,
    ) -> Result<(), CodecError> {
        let p = self.timeline(location);
        self.cols[p].extend_from_be_bytes(times_be);
        Ok(())
    }

    fn frame_v3(
        &mut self,
        location: Location,
        times_le: &[u8],
        _codes: &[u8],
        _args: &[u8],
        _n_events: usize,
    ) -> Result<(), CodecError> {
        let p = self.timeline(location);
        self.cols[p].extend_from_le_bytes(times_le);
        Ok(())
    }
}

/// What a header-only scan of a `DTC2` chunk stream saw — the basis for
/// admission-control cost estimates in services that must bound a job's
/// memory *before* decoding it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamEstimate {
    /// Events announced by the block headers scanned so far.
    pub events: u64,
    /// Block frames whose headers were scanned.
    pub blocks: u64,
    /// Total bytes in the input chunks.
    pub bytes: u64,
    /// Whether the end-of-stream trailer was reached. A `false` here means
    /// the stream is truncated (or a header was implausible and the scan
    /// stopped early) — the estimate is then a lower bound.
    pub complete: bool,
    /// Wire version negotiated from the stream magic (None when the scan
    /// aborted before — or on — the magic).
    pub version: Option<ColumnarVersion>,
    /// The bytes after the end-of-stream trailer begin with the *other*
    /// version's magic: two incompatible streams were concatenated.
    /// Admission control rejects such input with a typed error instead of
    /// letting the decoder trip over it mid-job.
    pub mixed: bool,
    /// Bytes following the end-of-stream trailer: garbage, or a
    /// concatenated second stream. Zero for a cleanly terminated stream.
    /// The decoder proper rejects any such bytes, so `complete` alone does
    /// NOT mean the job will decode — admission must treat a stream with a
    /// dirty tail like an incomplete one and keep the byte-derived floor
    /// under its event estimate, or trailing garbage would under-charge
    /// the budget for a job that is guaranteed to fail.
    pub trailing_bytes: u64,
}

/// Scan a `DTC2` chunk stream's *frame headers only*, without decoding any
/// payload, and report the event/block totals the headers announce.
///
/// The scan never allocates more than a 16-byte carry buffer and never
/// touches timestamp or kind bytes, so it is O(#blocks) no matter how large
/// the trace is. It is deliberately tolerant: a truncated stream, a bad
/// magic, or an implausible header ends the scan with `complete = false`
/// and whatever totals were accumulated — admission control wants a cheap
/// estimate, not a verdict (the decoder proper delivers the typed error).
pub fn estimate_columnar_stream<'a>(
    chunks: impl IntoIterator<Item = &'a [u8]>,
) -> StreamEstimate {
    let mut est = StreamEstimate::default();
    // Carry buffer for a header (or the magic) split across chunks.
    let mut carry = [0u8; 16];
    let mut carried = 0usize;
    let mut need = 4usize; // magic first
    // Scan hit a bad magic or implausible header; keep counting bytes only.
    let mut aborted = false;
    // The four bytes after a trailer were inspected for a foreign magic.
    let mut tail_checked = false;
    // Payload bytes of the current frame still to skip.
    let mut skip = 0u64;
    // Absolute offset of the next byte the scan will consume — fixes the
    // pad of each v3 frame (the pad depends only on the frame's offset).
    let mut off = 0u64;
    // Absolute offset just past the end-of-stream trailer, once seen.
    let mut trailer_end: Option<u64> = None;
    for chunk in chunks {
        est.bytes += chunk.len() as u64;
        if (est.complete && tail_checked) || aborted {
            continue; // count trailing bytes, scan is done
        }
        let mut at = 0usize;
        while at < chunk.len() {
            if skip > 0 {
                let s = skip.min((chunk.len() - at) as u64);
                at += s as usize;
                off += s;
                skip -= s;
                continue;
            }
            let take = (need - carried).min(chunk.len() - at);
            carry[carried..carried + take].copy_from_slice(&chunk[at..at + take]);
            carried += take;
            at += take;
            off += take as u64;
            if carried < need {
                break; // chunk exhausted mid-header
            }
            carried = 0;
            if est.complete {
                // The stream already ended; if what follows is the other
                // version's magic, two incompatible streams were glued
                // together — flag it so admission can reject typed.
                let next = rd_u32(&carry, 0);
                let next_version = match next {
                    MAGIC_COLUMNAR => Some(ColumnarVersion::V2),
                    MAGIC_COLUMNAR_V3 => Some(ColumnarVersion::V3),
                    _ => None,
                };
                est.mixed = next_version.is_some() && next_version != est.version;
                tail_checked = true;
                break;
            }
            let Some(version) = est.version else {
                est.version = match rd_u32(&carry, 0) {
                    MAGIC_COLUMNAR => Some(ColumnarVersion::V2),
                    MAGIC_COLUMNAR_V3 => Some(ColumnarVersion::V3),
                    _ => {
                        aborted = true;
                        break;
                    }
                };
                need = 16;
                continue;
            };
            let n_events = rd_u32(&carry, 8) as usize;
            let payload_len = rd_u32(&carry, 12) as usize;
            if rd_u32(&carry, 0) == u32::MAX && rd_u32(&carry, 4) == u32::MAX {
                est.complete = true;
                trailer_end = Some(off);
                need = 4; // peek at whatever follows for a foreign magic
                continue;
            }
            let header_ok = match version {
                ColumnarVersion::V2 => {
                    check_block_header(rd_u32(&carry, 0), rd_u32(&carry, 4), n_events, payload_len)
                        .is_ok()
                }
                ColumnarVersion::V3 => check_block_header_v3(
                    rd_u32(&carry, 0),
                    rd_u32(&carry, 4),
                    n_events,
                    payload_len,
                )
                .is_ok(),
            };
            if !header_ok {
                aborted = true;
                break;
            }
            est.events += n_events as u64;
            est.blocks += 1;
            // `off` now sits just past the 16-byte header, i.e. at
            // `frame_start + 16`, which is ≡ frame_start (mod 8) — exactly
            // what the v3 pad is derived from.
            let pad = match version {
                ColumnarVersion::V2 => 0,
                ColumnarVersion::V3 => v3_pad(off - 16),
            };
            skip = pad as u64 + n_events as u64 * 8 + payload_len as u64;
        }
    }
    if let Some(end) = trailer_end {
        est.trailing_bytes = est.bytes.saturating_sub(end);
    }
    est
}

// ------------------------------------------- stream random access ----

/// Zero-copy random access over a sequence of borrowed byte chunks — the
/// storage view the incremental synchronization pipeline reads a columnar
/// stream through. The chunks are never concatenated; a read that falls
/// inside one chunk borrows it directly, and only reads crossing a chunk
/// boundary copy into the caller's scratch buffer.
#[derive(Debug)]
pub struct ChunkStore<'a> {
    chunks: &'a [&'a [u8]],
    /// `starts[i]` = absolute offset of `chunks[i]`; one extra trailing
    /// entry holds the total byte count.
    starts: Vec<u64>,
}

impl<'a> ChunkStore<'a> {
    /// Build the offset directory (one prefix sum per chunk).
    pub fn new(chunks: &'a [&'a [u8]]) -> ChunkStore<'a> {
        let mut starts = Vec::with_capacity(chunks.len() + 1);
        let mut at = 0u64;
        for c in chunks {
            starts.push(at);
            at += c.len() as u64;
        }
        starts.push(at);
        ChunkStore { chunks, starts }
    }

    /// Total bytes across all chunks.
    pub fn len(&self) -> u64 {
        *self.starts.last().expect("has sentinel")
    }

    /// True when the store holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow `len` bytes at absolute offset `off`. In-chunk ranges are
    /// returned without copying; ranges crossing a chunk boundary are
    /// assembled into `scratch` first.
    ///
    /// # Panics
    /// When `off + len` exceeds [`ChunkStore::len`] — callers index with
    /// offsets from a validated [`StreamIndex`], so an out-of-range read
    /// is a logic error, not an input error.
    pub fn read<'s>(&self, off: u64, len: usize, scratch: &'s mut Vec<u8>) -> &'s [u8]
    where
        'a: 's,
    {
        assert!(
            off + len as u64 <= self.len(),
            "ChunkStore read out of range: {off}+{len} > {}",
            self.len()
        );
        if len == 0 {
            return &[];
        }
        // Last chunk starting at or before `off`.
        let ci = self.starts.partition_point(|&s| s <= off) - 1;
        let in_off = (off - self.starts[ci]) as usize;
        let chunk = self.chunks[ci];
        if in_off + len <= chunk.len() {
            return &chunk[in_off..in_off + len];
        }
        scratch.clear();
        scratch.reserve(len);
        let mut ci = ci;
        let mut in_off = in_off;
        while scratch.len() < len {
            let chunk = self.chunks[ci];
            let take = (len - scratch.len()).min(chunk.len() - in_off);
            scratch.extend_from_slice(&chunk[in_off..in_off + take]);
            ci += 1;
            in_off = 0;
        }
        scratch
    }
}

/// Directory entry for one block frame found by [`index_columnar_chunks`]:
/// where the frame's segments live in the stream and which run of its
/// timeline's events it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Index into [`StreamIndex::locations`] (first-seen timeline order,
    /// the same order [`TraceBuilder`] assigns).
    pub timeline: u32,
    /// Index, within the timeline, of the block's first event.
    pub first_idx: u64,
    /// Events in the block.
    pub n_events: u32,
    /// Absolute stream offset of the timestamp segment
    /// (`n_events * 8` bytes; big-endian on v2, 8-aligned little-endian
    /// on v3).
    pub times_off: u64,
    /// Absolute stream offset of the kind/args payload (variable-stride
    /// records on v2; the kind-code run followed by the fixed-stride args
    /// records on v3).
    pub payload_off: u64,
    /// Payload length in bytes.
    pub payload_len: u32,
}

/// A header-level directory of a *complete, well-formed* columnar stream:
/// every block frame located and attributed to its timeline, without any
/// timestamp or payload byte having been decoded.
///
/// Unlike [`estimate_columnar_stream`] — which is deliberately tolerant —
/// the indexer is strict: it enforces the same magic negotiation, header
/// ceilings, trailer counters and no-data-after-trailer rule as
/// [`StreamDecoder`], so a stream that indexes cleanly is one the decoder
/// would accept in full. The incremental pipeline builds on this: random
/// access to any block's segments via a [`ChunkStore`], with the input
/// bytes staying wherever the caller put them.
#[derive(Debug, Clone)]
pub struct StreamIndex {
    /// Wire version negotiated from the magic.
    pub version: ColumnarVersion,
    /// Timelines in first-seen order.
    pub locations: Vec<Location>,
    /// Every block frame, in stream order.
    pub blocks: Vec<BlockMeta>,
    /// Per timeline, the indices into `blocks` of its frames, in stream
    /// (= program) order.
    pub proc_blocks: Vec<Vec<u32>>,
    /// Per timeline, its total event count.
    pub proc_lens: Vec<u64>,
    /// Total stream length in bytes.
    pub total_bytes: u64,
}

impl StreamIndex {
    /// Total events across all timelines.
    pub fn n_events(&self) -> u64 {
        self.proc_lens.iter().sum()
    }
}

/// Index a columnar stream presented as byte chunks. See [`StreamIndex`]
/// for the strictness contract; errors mirror [`StreamDecoder`]'s.
pub fn index_columnar_chunks(chunks: &[&[u8]]) -> Result<StreamIndex, CodecError> {
    let store = ChunkStore::new(chunks);
    let total = store.len();
    let mut scratch = Vec::new();
    if total < 4 {
        return Err(CodecError::Truncated);
    }
    let magic = rd_u32(store.read(0, 4, &mut scratch), 0);
    let version = match magic {
        MAGIC_COLUMNAR => ColumnarVersion::V2,
        MAGIC_COLUMNAR_V3 => ColumnarVersion::V3,
        _ => return Err(CodecError::BadField("magic".into())),
    };
    let mut idx = StreamIndex {
        version,
        locations: Vec::new(),
        blocks: Vec::new(),
        proc_blocks: Vec::new(),
        proc_lens: Vec::new(),
        total_bytes: total,
    };
    let mut index: std::collections::HashMap<Location, u32> = std::collections::HashMap::new();
    let mut off = 4u64;
    let mut events_seen = 0u64;
    let mut blocks_seen = 0u64;
    loop {
        if off + 16 > total {
            return Err(CodecError::Truncated);
        }
        let header = store.read(off, 16, &mut scratch);
        let (rank, thread) = (rd_u32(header, 0), rd_u32(header, 4));
        let n_events = rd_u32(header, 8) as usize;
        let payload_len = rd_u32(header, 12) as usize;
        if rank == u32::MAX && thread == u32::MAX {
            // End-of-stream trailer; counters must match what we saw.
            if n_events as u32 != events_seen as u32 || payload_len as u32 != blocks_seen as u32 {
                return Err(CodecError::BadField("end-of-stream counter mismatch".into()));
            }
            off += 16;
            if off != total {
                return Err(CodecError::BadField("data after end-of-stream trailer".into()));
            }
            return Ok(idx);
        }
        let pad = match version {
            ColumnarVersion::V2 => {
                check_block_header(rank, thread, n_events, payload_len)?;
                0
            }
            ColumnarVersion::V3 => {
                check_block_header_v3(rank, thread, n_events, payload_len)?;
                v3_pad(off)
            }
        };
        let times_off = off + 16 + pad as u64;
        let payload_off = times_off + n_events as u64 * 8;
        let frame_end = payload_off + payload_len as u64;
        if frame_end > total {
            return Err(CodecError::Truncated);
        }
        let location = Location { rank: Rank(rank), thread: ThreadId(thread) };
        let p = *index.entry(location).or_insert_with(|| {
            idx.locations.push(location);
            idx.proc_blocks.push(Vec::new());
            idx.proc_lens.push(0);
            (idx.locations.len() - 1) as u32
        });
        idx.proc_blocks[p as usize].push(idx.blocks.len() as u32);
        idx.blocks.push(BlockMeta {
            timeline: p,
            first_idx: idx.proc_lens[p as usize],
            n_events: n_events as u32,
            times_off,
            payload_off,
            payload_len: payload_len as u32,
        });
        idx.proc_lens[p as usize] += n_events as u64;
        events_seen += n_events as u64;
        blocks_seen += 1;
        off = frame_end;
    }
}

/// Decode one block's raw timestamp segment (as addressed by
/// [`BlockMeta::times_off`]) into picosecond values appended to `out`.
pub fn decode_block_times(version: ColumnarVersion, seg: &[u8], out: &mut Vec<i64>) {
    debug_assert!(seg.len().is_multiple_of(8));
    match version {
        ColumnarVersion::V2 => out.extend(
            seg.chunks_exact(8).map(|c| i64::from_be_bytes(c.try_into().expect("exact chunk"))),
        ),
        ColumnarVersion::V3 => out.extend(
            seg.chunks_exact(8).map(|c| i64::from_le_bytes(c.try_into().expect("exact chunk"))),
        ),
    }
}

/// Decode one block's kind/args payload (as addressed by
/// [`BlockMeta::payload_off`]) into event kinds appended to `out`.
pub fn decode_block_kinds(
    version: ColumnarVersion,
    payload: &[u8],
    n_events: usize,
    out: &mut Vec<EventKind>,
) -> Result<(), CodecError> {
    out.reserve(n_events);
    match version {
        ColumnarVersion::V2 => {
            let mut at = 0usize;
            for _ in 0..n_events {
                out.push(decode_one_kind(payload, &mut at)?);
            }
            if at != payload.len() {
                return Err(CodecError::BadField("block payload length".into()));
            }
        }
        ColumnarVersion::V3 => {
            if payload.len() != n_events * V3_RECORD_BYTES {
                return Err(CodecError::BadField("block payload length".into()));
            }
            let (codes, args) = payload.split_at(n_events);
            for (&code, rec) in codes.iter().zip(args.chunks_exact(V3_ARGS_BYTES)) {
                out.push(decode_kind_v3(code, rec.try_into().expect("exact chunk"))?);
            }
        }
    }
    Ok(())
}

/// Incremental encoder for the columnar formats — the write-side twin of
/// [`StreamDecoder`]. Emits the stream as a sequence of self-contained
/// byte chunks (magic, then one chunk per frame, then the trailer) whose
/// concatenation is a well-formed `DTC2`/`DTC3` stream; v3 pads are
/// derived from the running output offset exactly as the block encoders
/// derive them, so a re-emitted stream with the same block structure and
/// payload bytes is bit-identical to the original.
#[derive(Debug)]
pub struct FrameWriter {
    version: ColumnarVersion,
    /// Output stream offset of the next chunk (fixes v3 pads).
    pos: u64,
    events: u64,
    blocks: u64,
}

impl FrameWriter {
    /// Start a stream: returns the writer and the magic chunk.
    pub fn new(version: ColumnarVersion) -> (FrameWriter, Vec<u8>) {
        let magic = match version {
            ColumnarVersion::V2 => MAGIC_COLUMNAR,
            ColumnarVersion::V3 => MAGIC_COLUMNAR_V3,
        };
        (
            FrameWriter { version, pos: 4, events: 0, blocks: 0 },
            magic.to_be_bytes().to_vec(),
        )
    }

    /// Encode one block frame. `payload` must already be this version's
    /// wire payload for exactly `times_ps.len()` events (variable-stride
    /// records on v2; the kind-code run followed by the args records on
    /// v3) — re-emitting a decoded block passes its payload bytes through
    /// verbatim.
    pub fn frame(&mut self, location: Location, times_ps: &[i64], payload: &[u8]) -> Vec<u8> {
        let n = times_ps.len();
        let pad = match self.version {
            ColumnarVersion::V2 => 0,
            ColumnarVersion::V3 => {
                debug_assert_eq!(payload.len(), n * V3_RECORD_BYTES);
                v3_pad(self.pos)
            }
        };
        let mut out = Vec::with_capacity(16 + pad + n * 8 + payload.len());
        out.extend_from_slice(&location.rank.0.to_be_bytes());
        out.extend_from_slice(&location.thread.0.to_be_bytes());
        out.extend_from_slice(&(n as u32).to_be_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.resize(out.len() + pad, 0);
        match self.version {
            ColumnarVersion::V2 => {
                for &ps in times_ps {
                    out.extend_from_slice(&ps.to_be_bytes());
                }
            }
            ColumnarVersion::V3 => {
                for &ps in times_ps {
                    out.extend_from_slice(&ps.to_le_bytes());
                }
            }
        }
        out.extend_from_slice(payload);
        self.pos += out.len() as u64;
        self.events += n as u64;
        self.blocks += 1;
        out
    }

    /// Finish the stream: returns the end-of-stream trailer chunk.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&u32::MAX.to_be_bytes());
        out.extend_from_slice(&u32::MAX.to_be_bytes());
        out.extend_from_slice(&(self.events as u32).to_be_bytes());
        out.extend_from_slice(&(self.blocks as u32).to_be_bytes());
        out
    }
}

/// Decode the columnar format — v2 or v3, negotiated from the magic — in
/// one call (convenience wrapper around [`StreamDecoder`] +
/// [`TraceBuilder`]).
pub fn from_binary_columnar(buf: Bytes) -> Result<Trace, CodecError> {
    let mut dec = StreamDecoder::new();
    let mut builder = TraceBuilder::new();
    dec.feed_into(&buf, &mut builder)?;
    dec.finish()?;
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::for_ranks(2);
        t.procs[0].push(Time::from_ns(100), EventKind::Enter { region: RegionId(1) });
        t.procs[0].push(
            Time::from_ns(200),
            EventKind::Send { to: Rank(1), tag: Tag(3), bytes: 1024 },
        );
        t.procs[0].push(
            Time::from_ns(300),
            EventKind::CollBegin {
                op: CollOp::Allreduce,
                comm: CommId::WORLD,
                root: None,
                bytes: 8,
            },
        );
        t.procs[0].push(
            Time::from_ns(400),
            EventKind::CollEnd {
                op: CollOp::Allreduce,
                comm: CommId::WORLD,
                root: None,
                bytes: 8,
            },
        );
        t.procs[0].push(Time::from_ns(500), EventKind::Exit { region: RegionId(1) });
        t.procs[1].push(
            Time::from_ns(250),
            EventKind::Recv { from: Rank(0), tag: Tag(3), bytes: 1024 },
        );
        t.procs[1].push(
            Time::from_ns(260),
            EventKind::CollBegin {
                op: CollOp::Bcast,
                comm: CommId(1),
                root: Some(Rank(0)),
                bytes: 64,
            },
        );
        t.procs[1].push(
            Time::from_ns(270),
            EventKind::CollEnd {
                op: CollOp::Bcast,
                comm: CommId(1),
                root: Some(Rank(0)),
                bytes: 64,
            },
        );
        t
    }

    fn traces_equal(a: &Trace, b: &Trace) -> bool {
        a.procs.len() == b.procs.len()
            && a.procs.iter().zip(&b.procs).all(|(x, y)| {
                x.location == y.location && x.events == y.events
            })
    }

    #[test]
    fn text_round_trip() {
        let t = sample_trace();
        let s = to_text(&t);
        let back = from_text(&s).unwrap();
        assert!(traces_equal(&t, &back), "text round-trip mismatch:\n{s}");
    }

    #[test]
    fn binary_round_trip() {
        let t = sample_trace();
        let b = to_binary(&t);
        let back = from_binary(b).unwrap();
        assert!(traces_equal(&t, &back));
    }

    #[test]
    fn times_builder_matches_full_decode_columns() {
        let t = sample_trace();
        for bytes in [to_binary_columnar_blocked(&t, 3), to_binary_columnar_v3_blocked(&t, 3)] {
            // Full decode: trace + columns through TraceBuilder.
            let mut dec = StreamDecoder::new();
            let mut full = TraceBuilder::new();
            dec.feed_into(&bytes, &mut full).unwrap();
            dec.finish().unwrap();
            let (trace, want_cols) = full.finish_parts();
            // Times-only decode, at several chunkings including awkward
            // ones that split timestamp segments mid-run.
            for chunk in [1usize, 7, 64, bytes.len()] {
                let mut dec = StreamDecoder::new();
                let mut times = TimesBuilder::new();
                for c in bytes.chunks(chunk) {
                    dec.feed_times_into(c, &mut times).unwrap();
                }
                dec.finish().unwrap();
                assert_eq!(times.n_events(), trace.n_events());
                let (locs, cols) = times.finish();
                assert_eq!(cols, want_cols);
                let want_locs: Vec<Location> =
                    trace.procs.iter().map(|p| p.location).collect();
                assert_eq!(locs, want_locs);
            }
        }
    }

    #[test]
    fn text_ignores_comments_and_blanks() {
        let t = sample_trace();
        let s = format!("# header\n\n{}\n# trailer\n", to_text(&t));
        let back = from_text(&s).unwrap();
        assert!(traces_equal(&t, &back));
    }

    #[test]
    fn binary_detects_truncation() {
        let t = sample_trace();
        let b = to_binary(&t);
        for cut in [0, 4, 7, b.len() / 2, b.len() - 1] {
            let res = from_binary(b.slice(..cut));
            assert!(res.is_err(), "cut at {cut} not detected");
        }
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut buf = BytesMut::new();
        buf.put_u32(0xdeadbeef);
        buf.put_u32(0);
        assert!(matches!(
            from_binary(buf.freeze()),
            Err(CodecError::BadField(_))
        ));
    }

    #[test]
    fn text_rejects_unknown_mnemonic() {
        assert!(matches!(
            from_text("0:0 100 BOGUS 1"),
            Err(CodecError::UnknownKind(_))
        ));
    }

    #[test]
    fn text_writer_matches_to_text() {
        let t = sample_trace();
        let mut sink = Vec::new();
        to_text_writer(&t, &mut sink).unwrap();
        assert_eq!(String::from_utf8(sink).unwrap(), to_text(&t));
    }

    #[test]
    fn columnar_round_trip_various_block_sizes() {
        let t = sample_trace();
        for block in [1, 2, 3, 8192] {
            let b = to_binary_columnar_blocked(&t, block);
            let back = from_binary_columnar(b).unwrap();
            assert!(traces_equal(&t, &back), "block size {block}");
        }
    }

    #[test]
    fn columnar_preserves_empty_timelines() {
        let mut t = Trace::for_ranks(3);
        t.procs[1].push(Time::from_ns(10), EventKind::Enter { region: RegionId(0) });
        let back = from_binary_columnar(to_binary_columnar(&t)).unwrap();
        assert!(traces_equal(&t, &back));
    }

    #[test]
    fn streaming_decode_equals_full_decode_any_chunk_size() {
        let t = sample_trace();
        let b = to_binary_columnar_blocked(&t, 2);
        for chunk_size in [1, 3, 7, 16, 64, b.len()] {
            let mut dec = StreamDecoder::new();
            let mut builder = TraceBuilder::new();
            for chunk in b.chunks(chunk_size) {
                for block in dec.feed(chunk).unwrap() {
                    builder.push_block(block);
                }
            }
            dec.finish().unwrap();
            let (back, cols) = builder.finish_parts();
            assert!(traces_equal(&t, &back), "chunk size {chunk_size}");
            assert_eq!(cols.n_events(), t.n_events());
            for (id, e) in t.iter_events() {
                assert_eq!(cols.time(id), e.time);
            }
        }
    }

    #[test]
    fn columnar_detects_truncation_at_every_boundary() {
        let t = sample_trace();
        let b = to_binary_columnar_blocked(&t, 2);
        // Any proper prefix must fail with Truncated (never panic): either
        // feed() trips over a broken frame or finish() reports the stub.
        for cut in 0..b.len() {
            let mut dec = StreamDecoder::new();
            let outcome = dec
                .feed(&b[..cut])
                .map(drop)
                .and_then(|()| dec.finish());
            assert_eq!(
                outcome,
                Err(CodecError::Truncated),
                "cut at {cut}/{} not detected",
                b.len()
            );
        }
    }

    #[test]
    fn columnar_rejects_bad_magic() {
        let mut buf = BytesMut::new();
        buf.put_u32(0xdeadbeef);
        let mut dec = StreamDecoder::new();
        assert!(matches!(
            dec.feed(&buf.freeze()),
            Err(CodecError::BadField(_))
        ));
    }

    #[test]
    fn columnar_rejects_unknown_kind_code() {
        let mut buf = BytesMut::new();
        buf.put_u32(0x4454_4332);
        // One block, one event, payload = bogus kind code + 4 arg bytes.
        buf.put_u32(0); // rank
        buf.put_u32(0); // thread
        buf.put_u32(1); // n_events
        buf.put_u32(5); // payload_len
        buf.put_i64(42); // timestamp column
        buf.put_u8(200); // unknown kind code
        buf.put_u32(0);
        let mut dec = StreamDecoder::new();
        assert!(matches!(
            dec.feed(&buf.freeze()),
            Err(CodecError::UnknownKind(_))
        ));
    }

    #[test]
    fn columnar_rejects_unknown_coll_code() {
        let mut buf = BytesMut::new();
        buf.put_u32(0x4454_4332);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u32(1);
        buf.put_u32(22); // CollBegin payload size
        buf.put_i64(42);
        buf.put_u8(4); // CollBegin
        buf.put_u8(99); // unknown collective op
        buf.put_u32(0);
        buf.put_i64(-1);
        buf.put_u64(8);
        let mut dec = StreamDecoder::new();
        assert!(matches!(
            dec.feed(&buf.freeze()),
            Err(CodecError::UnknownKind(_))
        ));
    }

    #[test]
    fn columnar_rejects_payload_length_mismatch() {
        let mut buf = BytesMut::new();
        buf.put_u32(0x4454_4332);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u32(1);
        buf.put_u32(7); // too long for one Enter record (5 bytes)
        buf.put_i64(42);
        buf.put_u8(0); // Enter
        buf.put_u32(1); // region
        buf.put_u8(0); // 2 bytes of trailing garbage
        buf.put_u8(0);
        let mut dec = StreamDecoder::new();
        assert!(matches!(
            dec.feed(&buf.freeze()),
            Err(CodecError::BadField(_))
        ));
    }

    #[test]
    fn v1_truncation_at_every_boundary_returns_truncated() {
        let t = sample_trace();
        let b = to_binary(&t);
        for cut in 0..b.len() {
            match from_binary(b.slice(..cut)) {
                Err(CodecError::Truncated) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn v1_rejects_unknown_kind_and_coll_codes() {
        let mut buf = BytesMut::new();
        buf.put_u32(0x4454_4c31);
        buf.put_u32(1);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u64(1);
        buf.put_i64(42);
        buf.put_u8(250); // unknown kind code
        assert!(matches!(
            from_binary(buf.freeze()),
            Err(CodecError::UnknownKind(_))
        ));
        let mut buf = BytesMut::new();
        buf.put_u32(0x4454_4c31);
        buf.put_u32(1);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u64(1);
        buf.put_i64(42);
        buf.put_u8(5); // CollEnd
        buf.put_u8(77); // unknown collective op
        buf.put_u32(0);
        buf.put_i64(-1);
        buf.put_u64(8);
        assert!(matches!(
            from_binary(buf.freeze()),
            Err(CodecError::UnknownKind(_))
        ));
    }

    #[test]
    fn v1_rejects_absurd_event_count_without_allocating() {
        // A header announcing ~u64::MAX events must be rejected as
        // Truncated before any allocation is attempted.
        let mut buf = BytesMut::new();
        buf.put_u32(0x4454_4c31);
        buf.put_u32(1); // one proc
        buf.put_u32(0); // rank
        buf.put_u32(0); // thread
        buf.put_u64(u64::MAX); // absurd event count
        buf.put_i64(42);
        assert!(matches!(
            from_binary(buf.freeze()),
            Err(CodecError::Truncated)
        ));
    }

    #[test]
    fn columnar_rejects_oversized_block_header() {
        // A frame header claiming 2^31 events would make a naive reader
        // wait for ~16 GiB; the decoder must reject it immediately.
        let mut buf = BytesMut::new();
        buf.put_u32(0x4454_4332);
        buf.put_u32(0); // rank
        buf.put_u32(0); // thread
        buf.put_u32(1 << 31); // n_events far beyond MAX_BLOCK_EVENTS
        buf.put_u32(64); // payload_len
        let mut dec = StreamDecoder::new();
        assert!(matches!(dec.feed(&buf.freeze()), Err(CodecError::BadField(_))));
    }

    #[test]
    fn columnar_rejects_corrupt_rank_in_block_header() {
        // A flipped high byte in a header's rank id must fail typed at
        // parse time — the id would otherwise reach dense per-rank
        // structures downstream (the l_min table is quadratic in it).
        let encoded = to_binary_columnar(&sample_trace());
        let mut corrupt = encoded.to_vec();
        corrupt[4] ^= 0xF0; // rank field of the first frame header
        let mut dec = StreamDecoder::new();
        assert!(matches!(dec.feed(&corrupt), Err(CodecError::BadField(_))));
    }

    #[test]
    fn binary_rejects_corrupt_rank_in_proc_header() {
        let encoded = to_binary(&sample_trace());
        let mut corrupt = encoded.to_vec();
        corrupt[8] ^= 0xF0; // rank field of the first process header
        assert!(matches!(
            from_binary(Bytes::from(corrupt)),
            Err(CodecError::BadField(_))
        ));
    }

    #[test]
    fn columnar_rejects_inconsistent_block_header() {
        // 8 events cannot fit in a 10-byte payload (records are >= 5 bytes).
        let mut buf = BytesMut::new();
        buf.put_u32(0x4454_4332);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u32(8);
        buf.put_u32(10);
        let mut dec = StreamDecoder::new();
        assert!(matches!(dec.feed(&buf.freeze()), Err(CodecError::BadField(_))));
    }

    #[test]
    fn stream_estimate_matches_encoder_totals() {
        let t = sample_trace();
        let b = to_binary_columnar_blocked(&t, 2);
        for chunk_size in [1, 3, 7, 64, b.len()] {
            let est = estimate_columnar_stream(b.chunks(chunk_size));
            assert_eq!(est.events, t.n_events() as u64, "chunks of {chunk_size}");
            assert!(est.complete, "chunks of {chunk_size}");
            assert_eq!(est.bytes, b.len() as u64);
            assert!(est.blocks >= 4, "blocks of 2 events over 8 events");
        }
    }

    #[test]
    fn stream_estimate_tolerates_truncation_and_garbage() {
        let t = sample_trace();
        let b = to_binary_columnar_blocked(&t, 2);
        // Truncated stream: a lower bound, flagged incomplete.
        let est = estimate_columnar_stream(std::iter::once(&b[..b.len() / 2]));
        assert!(!est.complete);
        assert!(est.events <= t.n_events() as u64);
        // Garbage: no panic, nothing counted past the bad magic.
        let est = estimate_columnar_stream(std::iter::once(&[0xde, 0xad, 0xbe, 0xef][..]));
        assert!(!est.complete);
        assert_eq!(est.events, 0);
    }

    #[test]
    fn v3_round_trip_various_block_sizes() {
        let t = sample_trace();
        for block in [1, 2, 3, 8192] {
            let b = to_binary_columnar_v3_blocked(&t, block);
            let back = from_binary_columnar(b).unwrap();
            assert!(traces_equal(&t, &back), "block size {block}");
        }
    }

    #[test]
    fn v3_decode_is_bit_identical_to_v2() {
        let t = sample_trace();
        let v2 = from_binary_columnar(to_binary_columnar_blocked(&t, 3)).unwrap();
        let v3 = from_binary_columnar(to_binary_columnar_v3_blocked(&t, 3)).unwrap();
        assert!(traces_equal(&v2, &v3));
    }

    #[test]
    fn v3_preserves_empty_timelines_and_negative_times() {
        let mut t = Trace::for_ranks(3);
        t.procs[1].push(Time::from_ns(-5000), EventKind::Enter { region: RegionId(0) });
        let back = from_binary_columnar(to_binary_columnar_v3(&t)).unwrap();
        assert!(traces_equal(&t, &back));
    }

    #[test]
    fn v3_timestamp_segments_are_8_aligned() {
        let t = sample_trace();
        for block in [1, 2, 5] {
            let b = to_binary_columnar_v3_blocked(&t, block);
            // Walk the frames by hand and check every timestamp segment's
            // stream offset.
            let mut off = 4usize;
            loop {
                let n = rd_u32(&b, off + 8) as usize;
                if rd_u32(&b, off) == u32::MAX && rd_u32(&b, off + 4) == u32::MAX {
                    assert_eq!(off + 16, b.len(), "trailer ends the stream");
                    break;
                }
                let payload = rd_u32(&b, off + 12) as usize;
                let pad = v3_pad(off as u64);
                let times_at = off + 16 + pad;
                assert_eq!(times_at % 8, 0, "block {block}, frame at {off}");
                off = times_at + n * 8 + payload;
            }
        }
    }

    #[test]
    fn v3_streaming_decode_equals_full_decode_any_chunk_size() {
        let t = sample_trace();
        let b = to_binary_columnar_v3_blocked(&t, 2);
        for chunk_size in [1, 3, 7, 16, 64, b.len()] {
            let mut dec = StreamDecoder::new();
            let mut builder = TraceBuilder::new();
            for chunk in b.chunks(chunk_size) {
                for block in dec.feed(chunk).unwrap() {
                    builder.push_block(block);
                }
            }
            assert_eq!(dec.version(), Some(ColumnarVersion::V3));
            dec.finish().unwrap();
            let (back, cols) = builder.finish_parts();
            assert!(traces_equal(&t, &back), "chunk size {chunk_size}");
            assert_eq!(cols.n_events(), t.n_events());
            for (id, e) in t.iter_events() {
                assert_eq!(cols.time(id), e.time);
            }
        }
    }

    #[test]
    fn v3_detects_truncation_at_every_boundary() {
        let t = sample_trace();
        let b = to_binary_columnar_v3_blocked(&t, 2);
        for cut in 0..b.len() {
            let mut dec = StreamDecoder::new();
            let outcome = dec
                .feed(&b[..cut])
                .map(drop)
                .and_then(|()| dec.finish());
            assert_eq!(
                outcome,
                Err(CodecError::Truncated),
                "cut at {cut}/{} not detected",
                b.len()
            );
        }
    }

    #[test]
    fn v3_rejects_inconsistent_payload_length() {
        // v3 records are fixed-stride: payload_len must be exactly 25·n.
        let mut buf = BytesMut::new();
        buf.put_u32(0x4454_4333);
        buf.put_u32(0); // rank
        buf.put_u32(0); // thread
        buf.put_u32(1); // n_events
        buf.put_u32(24); // should be 25
        let mut dec = StreamDecoder::new();
        assert!(matches!(dec.feed(&buf.freeze()), Err(CodecError::BadField(_))));
    }

    #[test]
    fn v3_rejects_unknown_kind_and_coll_codes() {
        let t = sample_trace();
        let b = to_binary_columnar_v3_blocked(&t, MAX_BLOCK_EVENTS);
        // First frame: header at 4, pad, then 5 timestamps, then 5 codes.
        let codes_at = 4 + 16 + v3_pad(4) + 5 * 8;
        let mut corrupt = b.to_vec();
        corrupt[codes_at] = 200; // unknown kind code
        let mut dec = StreamDecoder::new();
        assert!(matches!(dec.feed(&corrupt), Err(CodecError::UnknownKind(_))));
        // Corrupt the op field (args record `a`) of the CollBegin at index
        // 2 of rank 0's first frame.
        let args_at = codes_at + 5 + 2 * V3_ARGS_BYTES;
        let mut corrupt = b.to_vec();
        corrupt[args_at] = 99; // unknown collective op (LE low byte)
        let mut dec = StreamDecoder::new();
        assert!(matches!(dec.feed(&corrupt), Err(CodecError::UnknownKind(_))));
    }

    #[test]
    fn v3_rejects_corrupt_rank_and_oversized_headers() {
        let encoded = to_binary_columnar_v3(&sample_trace());
        let mut corrupt = encoded.to_vec();
        corrupt[4] ^= 0xF0; // rank field of the first frame header
        let mut dec = StreamDecoder::new();
        assert!(matches!(dec.feed(&corrupt), Err(CodecError::BadField(_))));

        let mut buf = BytesMut::new();
        buf.put_u32(0x4454_4333);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u32(1 << 31); // n_events far beyond MAX_BLOCK_EVENTS
        buf.put_u32(64);
        let mut dec = StreamDecoder::new();
        assert!(matches!(dec.feed(&buf.freeze()), Err(CodecError::BadField(_))));
    }

    #[test]
    fn stream_estimate_prices_v3_and_reports_version() {
        let t = sample_trace();
        let b = to_binary_columnar_v3_blocked(&t, 2);
        for chunk_size in [1, 3, 7, 64, b.len()] {
            let est = estimate_columnar_stream(b.chunks(chunk_size));
            assert_eq!(est.events, t.n_events() as u64, "chunks of {chunk_size}");
            assert!(est.complete, "chunks of {chunk_size}");
            assert_eq!(est.bytes, b.len() as u64);
            assert_eq!(est.version, Some(ColumnarVersion::V3));
            assert!(!est.mixed);
        }
        let est = estimate_columnar_stream(std::iter::once(&to_binary_columnar(&t)[..]));
        assert_eq!(est.version, Some(ColumnarVersion::V2));
    }

    #[test]
    fn stream_estimate_flags_mixed_version_concatenation() {
        let t = sample_trace();
        let v2 = to_binary_columnar(&t);
        let v3 = to_binary_columnar_v3(&t);
        for chunk_size in [1, 5, 64, usize::MAX] {
            let mut glued = v2.to_vec();
            glued.extend_from_slice(&v3);
            let est = estimate_columnar_stream(glued.chunks(chunk_size.min(glued.len())));
            assert!(est.complete);
            assert!(est.mixed, "v2+v3 concat not flagged (chunks of {chunk_size})");
            assert_eq!(est.version, Some(ColumnarVersion::V2));

            let mut glued = v3.to_vec();
            glued.extend_from_slice(&v2);
            let est = estimate_columnar_stream(glued.chunks(chunk_size.min(glued.len())));
            assert!(est.mixed, "v3+v2 concat not flagged (chunks of {chunk_size})");
        }
        // Same-version concatenation is malformed but not *mixed* — the
        // decoder's "data after end-of-stream trailer" error covers it.
        let mut glued = v2.to_vec();
        glued.extend_from_slice(&v2);
        let est = estimate_columnar_stream(std::iter::once(&glued[..]));
        assert!(est.complete && !est.mixed);
    }

    #[test]
    fn stream_estimate_reports_trailing_bytes() {
        let t = sample_trace();
        for bytes in [to_binary_columnar_blocked(&t, 2), to_binary_columnar_v3_blocked(&t, 2)] {
            // Clean stream: no trailing bytes, at any chunking.
            for chunk_size in [1, 3, 7, bytes.len()] {
                let est = estimate_columnar_stream(bytes.chunks(chunk_size));
                assert!(est.complete);
                assert_eq!(est.trailing_bytes, 0, "chunks of {chunk_size}");
            }
            // Trailing garbage after a valid trailer: still `complete`
            // (the trailer WAS seen), but the tail is reported so
            // admission can refuse to trust the header-announced totals —
            // the decoder proper will reject this stream.
            for garbage_len in [1usize, 3, 4, 17] {
                let mut dirty = bytes.to_vec();
                dirty.extend(std::iter::repeat_n(0xA5u8, garbage_len));
                for chunk_size in [1, 5, dirty.len()] {
                    let est = estimate_columnar_stream(dirty.chunks(chunk_size));
                    assert!(est.complete);
                    assert!(!est.mixed);
                    assert_eq!(est.bytes, dirty.len() as u64);
                    assert_eq!(
                        est.trailing_bytes, garbage_len as u64,
                        "garbage {garbage_len}, chunks of {chunk_size}"
                    );
                }
            }
            // Same-version concatenation: not `mixed`, but the whole
            // second stream is trailing — admission must not price this
            // as the first stream's totals alone.
            let mut glued = bytes.to_vec();
            glued.extend_from_slice(&bytes);
            let est = estimate_columnar_stream(std::iter::once(&glued[..]));
            assert!(est.complete && !est.mixed);
            assert_eq!(est.trailing_bytes, bytes.len() as u64);
            // Truncated stream: no trailer, so no trailing bytes.
            let est = estimate_columnar_stream(std::iter::once(&bytes[..bytes.len() - 1]));
            assert!(!est.complete);
            assert_eq!(est.trailing_bytes, 0);
        }
    }

    #[test]
    fn chunk_store_reads_across_boundaries() {
        let data: Vec<u8> = (0..=255u8).collect();
        let pieces: Vec<&[u8]> = vec![&data[..7], &data[7..7], &data[7..100], &data[100..]];
        let store = ChunkStore::new(&pieces);
        assert_eq!(store.len(), 256);
        let mut scratch = Vec::new();
        for off in [0usize, 3, 6, 7, 50, 99, 100, 255] {
            for len in [0usize, 1, 2, 8, 100] {
                if off + len > 256 {
                    continue;
                }
                let got = store.read(off as u64, len, &mut scratch).to_vec();
                assert_eq!(got, &data[off..off + len], "read {off}+{len}");
            }
        }
    }

    #[test]
    fn index_agrees_with_streaming_decode() {
        let t = sample_trace();
        for (bytes, version) in [
            (to_binary_columnar_blocked(&t, 3), ColumnarVersion::V2),
            (to_binary_columnar_v3_blocked(&t, 3), ColumnarVersion::V3),
        ] {
            for chunk_size in [1usize, 7, 16, bytes.len()] {
                let pieces: Vec<&[u8]> = bytes.chunks(chunk_size).collect();
                let idx = index_columnar_chunks(&pieces).unwrap();
                assert_eq!(idx.version, version);
                assert_eq!(idx.total_bytes, bytes.len() as u64);
                assert_eq!(idx.n_events(), t.n_events() as u64);
                assert_eq!(idx.locations.len(), t.n_procs());
                // Rebuild the whole trace through the random-access lane
                // and compare with the reference decoder.
                let store = ChunkStore::new(&pieces);
                let mut scratch = Vec::new();
                let mut builder = TraceBuilder::new();
                for b in &idx.blocks {
                    let loc = idx.locations[b.timeline as usize];
                    let mut times = Vec::new();
                    let seg =
                        store.read(b.times_off, b.n_events as usize * 8, &mut scratch);
                    decode_block_times(version, seg, &mut times);
                    let mut kinds = Vec::new();
                    let payload =
                        store.read(b.payload_off, b.payload_len as usize, &mut scratch);
                    decode_block_kinds(version, payload, b.n_events as usize, &mut kinds)
                        .unwrap();
                    let mut col = TimeColumn::with_capacity(times.len());
                    col.extend_from_ps(&times);
                    builder.push_block(TimelineBlock { location: loc, times: col, kinds });
                }
                let back = builder.finish();
                assert!(traces_equal(&t, &back), "chunks of {chunk_size}");
            }
        }
    }

    #[test]
    fn index_is_strict_about_malformed_streams() {
        let t = sample_trace();
        let bytes = to_binary_columnar_v3_blocked(&t, 2);
        // Every truncation is typed.
        for cut in 0..bytes.len() {
            let pieces: Vec<&[u8]> = vec![&bytes[..cut]];
            assert!(
                matches!(
                    index_columnar_chunks(&pieces),
                    Err(CodecError::Truncated) | Err(CodecError::BadField(_))
                ),
                "cut at {cut} accepted"
            );
        }
        // Data after the trailer is rejected (the decoder's rule).
        let mut dirty = bytes.to_vec();
        dirty.push(0);
        let pieces: Vec<&[u8]> = vec![&dirty];
        assert!(matches!(index_columnar_chunks(&pieces), Err(CodecError::BadField(_))));
        // Bad magic.
        let pieces: Vec<&[u8]> = vec![&[0xde, 0xad, 0xbe, 0xef]];
        assert!(matches!(index_columnar_chunks(&pieces), Err(CodecError::BadField(_))));
        // Corrupted trailer counter.
        let mut corrupt = bytes.to_vec();
        let at = corrupt.len() - 8; // events-low32 field of the trailer
        corrupt[at] ^= 1;
        let pieces: Vec<&[u8]> = vec![&corrupt];
        assert!(matches!(index_columnar_chunks(&pieces), Err(CodecError::BadField(_))));
    }

    #[test]
    fn frame_writer_reemits_bit_identically() {
        let t = sample_trace();
        for (bytes, version) in [
            (to_binary_columnar_blocked(&t, 3), ColumnarVersion::V2),
            (to_binary_columnar_v3_blocked(&t, 3), ColumnarVersion::V3),
        ] {
            let pieces: Vec<&[u8]> = bytes.chunks(13).collect();
            let idx = index_columnar_chunks(&pieces).unwrap();
            let store = ChunkStore::new(&pieces);
            let mut scratch = Vec::new();
            let (mut writer, mut out) = FrameWriter::new(version);
            for b in &idx.blocks {
                let loc = idx.locations[b.timeline as usize];
                let mut times = Vec::new();
                let seg = store.read(b.times_off, b.n_events as usize * 8, &mut scratch);
                decode_block_times(version, seg, &mut times);
                let payload = store
                    .read(b.payload_off, b.payload_len as usize, &mut scratch)
                    .to_vec();
                out.extend_from_slice(&writer.frame(loc, &times, &payload));
            }
            out.extend_from_slice(&writer.finish());
            assert_eq!(&out[..], &bytes[..], "{version:?} re-emission diverged");
        }
    }

    /// Satellite pin for the partial-frame buffering paths: splitting the
    /// stream into exactly two pieces at *every* byte boundary — including
    /// every split inside a v3 alignment pad and every split landing
    /// exactly on an 8-byte timestamp-segment boundary — must decode
    /// identically to the one-shot decode, on both the full-decode and the
    /// times-only lanes.
    #[test]
    fn two_piece_split_at_every_boundary_decodes_identically() {
        // Block size 1 and an odd trace shape maximize pad-phase variety:
        // consecutive v3 frames land on different (mod 8) offsets.
        let t = sample_trace();
        for bytes in [
            to_binary_columnar_blocked(&t, 1),
            to_binary_columnar_v3_blocked(&t, 1),
            to_binary_columnar_v3_blocked(&t, 3),
        ] {
            let reference = from_binary_columnar(bytes.clone()).unwrap();
            for cut in 0..=bytes.len() {
                let mut dec = StreamDecoder::new();
                let mut builder = TraceBuilder::new();
                dec.feed_into(&bytes[..cut], &mut builder).unwrap();
                dec.feed_into(&bytes[cut..], &mut builder).unwrap();
                dec.finish().unwrap();
                let (back, cols) = builder.finish_parts();
                assert!(traces_equal(&reference, &back), "split at {cut}");
                assert_eq!(cols.n_events(), reference.n_events(), "split at {cut}");

                let mut dec = StreamDecoder::new();
                let mut times = TimesBuilder::new();
                dec.feed_times_into(&bytes[..cut], &mut times).unwrap();
                dec.feed_times_into(&bytes[cut..], &mut times).unwrap();
                dec.finish().unwrap();
                let (_locs, tcols) = times.finish();
                for (id, e) in reference.iter_events() {
                    assert_eq!(tcols.time(id), e.time, "times lane, split at {cut}");
                }
            }
            // Chunks of exactly 8 bytes: every timestamp element boundary
            // in a v3 segment is also a chunk boundary.
            let mut dec = StreamDecoder::new();
            let mut builder = TraceBuilder::new();
            for piece in bytes.chunks(8) {
                dec.feed_into(piece, &mut builder).unwrap();
            }
            dec.finish().unwrap();
            assert!(traces_equal(&reference, &builder.finish()), "8-byte chunking");
        }
    }

    #[test]
    fn negative_timestamps_survive() {
        // Workers behind the master legitimately produce negative local
        // times after alignment.
        let mut t = Trace::for_ranks(1);
        t.procs[0].push(Time::from_ns(-5000), EventKind::Enter { region: RegionId(0) });
        let round = from_text(&to_text(&t)).unwrap();
        assert_eq!(round.procs[0].events[0].time, Time::from_ns(-5000));
        let round = from_binary(to_binary(&t)).unwrap();
        assert_eq!(round.procs[0].events[0].time, Time::from_ns(-5000));
    }
}
