//! Clock-condition violation detection.
//!
//! The clock condition (paper Eq. 1) requires `t_recv >= t_send + l_min` for
//! every message, where `l_min` is the minimum latency between the two
//! locations. This module checks it for
//!
//! * matched point-to-point messages ([`check_p2p`]),
//! * *logical* messages derived from collective operations by the paper's
//!   flavour mapping ([`check_collectives`]): 1-to-N (root begin → member
//!   ends), N-to-1 (member begins → root end), N-to-N (every begin → every
//!   other end),
//! * the POMP shared-memory rules of Fig. 8 ([`check_pomp`]): the fork event
//!   must come first, the join event last, and barrier executions of all
//!   threads must overlap.
//!
//! Everything is reported both as raw violation counts and as the
//! percentages the paper plots.

use crate::analysis::{CollectiveInstance, Matching, MessageMatch, ParallelRegion};
use crate::column::TimeSource;
use crate::event::CollFlavor;
use crate::ids::{EventId, Rank};
use crate::trace::Trace;
use simclock::Dur;

/// Minimum-latency model used as the `l_min` of the clock condition.
pub trait MinLatency {
    /// Minimum message latency from `from` to `to`.
    fn l_min(&self, from: Rank, to: Rank) -> Dur;
}

/// The same minimum latency between every pair of ranks.
#[derive(Debug, Clone, Copy)]
pub struct UniformLatency(pub Dur);

impl MinLatency for UniformLatency {
    fn l_min(&self, _from: Rank, _to: Rank) -> Dur {
        self.0
    }
}

impl<F: Fn(Rank, Rank) -> Dur> MinLatency for F {
    fn l_min(&self, from: Rank, to: Rank) -> Dur {
        self(from, to)
    }
}

/// A dense `l_min` table frozen from any [`MinLatency`] model.
///
/// Latency models are often closures over simulator state and may be costly
/// to query; the synchronization pipeline evaluates `l_min` once per rank
/// pair up front and reads this table in every later stage. The table is
/// plain data, hence `Send + Sync` — worker threads of the parallel
/// pipeline share one reference.
#[derive(Debug, Clone)]
pub struct LatencyTable {
    n: usize,
    entries: Vec<Dur>,
}

impl LatencyTable {
    /// Freeze `lmin` for all pairs of `ranks`. The table covers rank
    /// indices `0..=max(ranks)`; pairs not listed read whatever `lmin`
    /// returned for them during construction.
    pub fn freeze(lmin: &dyn MinLatency, ranks: &[Rank]) -> Self {
        let n = ranks.iter().map(|r| r.idx() + 1).max().unwrap_or(0);
        let mut entries = vec![Dur::ZERO; n * n];
        for a in 0..n {
            for b in 0..n {
                entries[a * n + b] = lmin.l_min(Rank(a as u32), Rank(b as u32));
            }
        }
        LatencyTable { n, entries }
    }

    /// Number of ranks covered.
    pub fn n_ranks(&self) -> usize {
        self.n
    }
}

impl MinLatency for LatencyTable {
    fn l_min(&self, from: Rank, to: Rank) -> Dur {
        self.entries[from.idx() * self.n + to.idx()]
    }
}

/// One violated point-to-point message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViolatedMessage {
    /// The send event.
    pub send: EventId,
    /// The receive event.
    pub recv: EventId,
    /// `t_recv - t_send` as recorded (negative when the order is reversed).
    pub measured_transfer: Dur,
    /// The `l_min` that applied to this message.
    pub l_min: Dur,
}

/// Outcome of the point-to-point clock-condition check.
#[derive(Debug, Clone, Default)]
pub struct P2pReport {
    /// Number of matched messages inspected.
    pub total: usize,
    /// Messages violating `t_recv >= t_send + l_min`.
    pub violations: Vec<ViolatedMessage>,
    /// Subset of `violations` where the order is outright reversed
    /// (`t_recv < t_send`) — the paper's Fig. 7 front row.
    pub reversed: usize,
}

impl P2pReport {
    /// Fraction of messages violating the clock condition, in percent.
    pub fn violation_pct(&self) -> f64 {
        pct(self.violations.len(), self.total)
    }

    /// Fraction of messages whose send/receive order is reversed, percent.
    pub fn reversed_pct(&self) -> f64 {
        pct(self.reversed, self.total)
    }

    /// Fold another report into this one, preserving violation order:
    /// appending shard reports in shard order reproduces the sequential
    /// report bit for bit.
    pub fn merge(&mut self, other: P2pReport) {
        self.total += other.total;
        self.reversed += other.reversed;
        self.violations.extend(other.violations);
    }
}

/// Check the clock condition on all matched messages.
pub fn check_p2p(trace: &Trace, matching: &Matching, lmin: &dyn MinLatency) -> P2pReport {
    check_p2p_messages(trace, &matching.messages, lmin)
}

/// Check the clock condition on a slice of matched messages — the shard
/// unit of the parallel pipeline. Equivalent to [`check_p2p`] when handed
/// the full message list.
pub fn check_p2p_messages(
    trace: &Trace,
    messages: &[MessageMatch],
    lmin: &dyn MinLatency,
) -> P2pReport {
    check_p2p_messages_at(trace, messages, lmin)
}

/// [`check_p2p_messages`] over any timestamp layout — the same census runs
/// on an AoS [`Trace`] or a columnar
/// [`TraceColumns`](crate::column::TraceColumns), producing bit-identical
/// reports.
pub fn check_p2p_messages_at<S: TimeSource + ?Sized>(
    times: &S,
    messages: &[MessageMatch],
    lmin: &dyn MinLatency,
) -> P2pReport {
    let mut report = P2pReport {
        total: messages.len(),
        ..P2pReport::default()
    };
    for m in messages {
        let ts = times.time_of(m.send);
        let tr = times.time_of(m.recv);
        let bound = lmin.l_min(m.from, m.to);
        let transfer = tr - ts;
        if transfer < bound {
            if transfer < Dur::ZERO {
                report.reversed += 1;
            }
            report.violations.push(ViolatedMessage {
                send: m.send,
                recv: m.recv,
                measured_transfer: transfer,
                l_min: bound,
            });
        }
    }
    report
}

/// Outcome of the collective (logical-message) check.
#[derive(Debug, Clone, Default)]
pub struct CollReport {
    /// Collective instances inspected.
    pub instances: usize,
    /// Logical messages derived from the flavour mapping.
    pub logical_total: usize,
    /// Logical messages violating the clock condition.
    pub logical_violated: usize,
    /// Logical messages whose order is outright reversed.
    pub logical_reversed: usize,
    /// Instances with at least one violated logical message.
    pub instances_affected: usize,
}

impl CollReport {
    /// Percentage of logical messages violated.
    pub fn violation_pct(&self) -> f64 {
        pct(self.logical_violated, self.logical_total)
    }

    /// Percentage of logical messages reversed.
    pub fn reversed_pct(&self) -> f64 {
        pct(self.logical_reversed, self.logical_total)
    }

    /// Fold another report into this one. [`check_collectives`] over
    /// instance shards, merged in shard order, equals the sequential run.
    pub fn merge(&mut self, other: CollReport) {
        self.instances += other.instances;
        self.logical_total += other.logical_total;
        self.logical_violated += other.logical_violated;
        self.logical_reversed += other.logical_reversed;
        self.instances_affected += other.instances_affected;
    }
}

/// Check logical messages derived from collectives.
///
/// The flavour mapping follows the paper's §V: a collective is decomposed
/// into point-to-point semantics — 1-to-N: the root's begin must precede
/// every member's end by `l_min`; N-to-1: every member's begin must precede
/// the root's end; N-to-N: every member's begin must precede every *other*
/// member's end.
pub fn check_collectives(
    trace: &Trace,
    instances: &[CollectiveInstance],
    lmin: &dyn MinLatency,
) -> CollReport {
    check_collectives_at(trace, instances, lmin)
}

/// [`check_collectives`] over any timestamp layout (AoS trace or columnar
/// store) — bit-identical reports either way.
pub fn check_collectives_at<S: TimeSource + ?Sized>(
    times: &S,
    instances: &[CollectiveInstance],
    lmin: &dyn MinLatency,
) -> CollReport {
    let mut report = CollReport {
        instances: instances.len(),
        ..CollReport::default()
    };
    for inst in instances {
        let mut violated_here = 0usize;
        let mut check = |from: Rank, t_from, to: Rank, t_to| {
            report.logical_total += 1;
            let bound = lmin.l_min(from, to);
            let transfer = t_to - t_from;
            if transfer < bound {
                report.logical_violated += 1;
                violated_here += 1;
                if transfer < Dur::ZERO {
                    report.logical_reversed += 1;
                }
            }
        };
        match inst.op.flavor() {
            CollFlavor::OneToN => {
                if let Some(root) = inst.root_member().copied() {
                    let t_root = times.time_of(root.begin);
                    for m in &inst.members {
                        if m.rank != root.rank {
                            check(root.rank, t_root, m.rank, times.time_of(m.end));
                        }
                    }
                }
            }
            CollFlavor::NToOne => {
                if let Some(root) = inst.root_member().copied() {
                    let t_root_end = times.time_of(root.end);
                    for m in &inst.members {
                        if m.rank != root.rank {
                            check(m.rank, times.time_of(m.begin), root.rank, t_root_end);
                        }
                    }
                }
            }
            CollFlavor::NToN => {
                for a in &inst.members {
                    let t_a = times.time_of(a.begin);
                    for b in &inst.members {
                        if a.rank != b.rank {
                            check(a.rank, t_a, b.rank, times.time_of(b.end));
                        }
                    }
                }
            }
            CollFlavor::Prefix => {
                // Rank i's end depends on every lower rank's begin (data
                // flows up the prefix order). Member lists are in rank
                // order by construction.
                for (ai, a) in inst.members.iter().enumerate() {
                    let t_a = times.time_of(a.begin);
                    for b in inst.members.iter().skip(ai + 1) {
                        check(a.rank, t_a, b.rank, times.time_of(b.end));
                    }
                }
            }
        }
        if violated_here > 0 {
            report.instances_affected += 1;
        }
    }
    report
}

/// Outcome of the POMP shared-memory check (paper Fig. 8).
#[derive(Debug, Clone, Default)]
pub struct PompReport {
    /// Parallel-region instances inspected.
    pub regions: usize,
    /// Regions where the fork event is not the earliest event.
    pub entry_violations: usize,
    /// Regions where the join event is not the latest event.
    pub exit_violations: usize,
    /// Regions whose implicit-barrier executions do not overlap
    /// (some thread's exit precedes another thread's enter).
    pub barrier_violations: usize,
    /// Regions with at least one violation of any kind.
    pub any_violations: usize,
}

impl PompReport {
    /// Percentage of regions with entry violations.
    pub fn entry_pct(&self) -> f64 {
        pct(self.entry_violations, self.regions)
    }

    /// Percentage of regions with exit violations.
    pub fn exit_pct(&self) -> f64 {
        pct(self.exit_violations, self.regions)
    }

    /// Percentage of regions with barrier violations.
    pub fn barrier_pct(&self) -> f64 {
        pct(self.barrier_violations, self.regions)
    }

    /// Percentage of regions with any violation.
    pub fn any_pct(&self) -> f64 {
        pct(self.any_violations, self.regions)
    }
}

/// Check the POMP happened-before rules on reconstructed parallel regions:
/// all events of a region must be enclosed by its fork and join, and barrier
/// executions of all threads must overlap.
pub fn check_pomp(trace: &Trace, regions: &[ParallelRegion]) -> PompReport {
    check_pomp_at(trace, regions)
}

/// [`check_pomp`] over any timestamp layout (AoS trace or columnar store)
/// — bit-identical reports either way.
pub fn check_pomp_at<S: TimeSource + ?Sized>(times: &S, regions: &[ParallelRegion]) -> PompReport {
    let mut report = PompReport {
        regions: regions.len(),
        ..PompReport::default()
    };
    for reg in regions {
        let t_fork = times.time_of(reg.fork);
        let t_join = times.time_of(reg.join);
        let mut entry = false;
        let mut exit = false;
        let mut bar_enter_max = None::<simclock::Time>;
        let mut bar_exit_min = None::<simclock::Time>;
        for th in &reg.threads {
            for i in th.first as usize..=th.last as usize {
                let t = times.time_of(EventId::new(th.proc, i));
                if t < t_fork {
                    entry = true;
                }
                if t > t_join {
                    exit = true;
                }
            }
            if let Some(be) = th.barrier_enter {
                let t = times.time_of(be);
                bar_enter_max = Some(bar_enter_max.map_or(t, |m| m.max(t)));
            }
            if let Some(bx) = th.barrier_exit {
                let t = times.time_of(bx);
                bar_exit_min = Some(bar_exit_min.map_or(t, |m| m.min(t)));
            }
        }
        let barrier = match (bar_enter_max, bar_exit_min) {
            // Violated when some thread left before another entered.
            (Some(enter_max), Some(exit_min)) => exit_min < enter_max,
            _ => false,
        };
        if entry {
            report.entry_violations += 1;
        }
        if exit {
            report.exit_violations += 1;
        }
        if barrier {
            report.barrier_violations += 1;
        }
        if entry || exit || barrier {
            report.any_violations += 1;
        }
    }
    report
}

fn pct(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{match_collectives, match_messages, match_parallel_regions};
    use crate::event::{CollOp, EventKind};
    use crate::ids::{CommId, RegionId, Tag};
    use simclock::Time;

    fn us(n: i64) -> Time {
        Time::from_us(n)
    }

    fn two_rank_message(t_send: i64, t_recv: i64) -> Trace {
        let mut t = Trace::for_ranks(2);
        t.procs[0].push(us(t_send), EventKind::Send { to: Rank(1), tag: Tag(0), bytes: 8 });
        t.procs[1].push(us(t_recv), EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 8 });
        t
    }

    #[test]
    fn consistent_message_passes() {
        let t = two_rank_message(0, 10);
        let m = match_messages(&t);
        let r = check_p2p(&t, &m, &UniformLatency(Dur::from_us(4)));
        assert_eq!(r.total, 1);
        assert!(r.violations.is_empty());
        assert_eq!(r.violation_pct(), 0.0);
    }

    #[test]
    fn reversed_message_detected() {
        // Fig. 2(b): received before sent.
        let t = two_rank_message(10, 5);
        let m = match_messages(&t);
        let r = check_p2p(&t, &m, &UniformLatency(Dur::from_us(4)));
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.reversed, 1);
        assert_eq!(r.reversed_pct(), 100.0);
        assert!(r.violations[0].measured_transfer.is_negative());
    }

    #[test]
    fn sub_latency_transfer_violates_but_is_not_reversed() {
        let t = two_rank_message(0, 2); // 2 µs transfer, l_min 4 µs
        let m = match_messages(&t);
        let r = check_p2p(&t, &m, &UniformLatency(Dur::from_us(4)));
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.reversed, 0);
    }

    #[test]
    fn closure_latency_model() {
        let t = two_rank_message(0, 2);
        let m = match_messages(&t);
        let model = |_from: Rank, _to: Rank| Dur::from_us(1);
        let r = check_p2p(&t, &m, &model);
        assert!(r.violations.is_empty());
    }

    fn collective_trace(op: CollOp, root: Option<Rank>, times: &[(i64, i64)]) -> Trace {
        let mut t = Trace::for_ranks(times.len());
        for (p, &(b, e)) in times.iter().enumerate() {
            t.procs[p].push(
                us(b),
                EventKind::CollBegin { op, comm: CommId::WORLD, root, bytes: 8 },
            );
            t.procs[p].push(
                us(e),
                EventKind::CollEnd { op, comm: CommId::WORLD, root, bytes: 8 },
            );
        }
        t
    }

    #[test]
    fn bcast_logical_messages() {
        // Root 0 begins at 10; rank 1 ends at 5 (violated), rank 2 at 20 (ok).
        let t = collective_trace(CollOp::Bcast, Some(Rank(0)), &[(10, 21), (0, 5), (0, 20)]);
        let insts = match_collectives(&t).unwrap();
        let r = check_collectives(&t, &insts, &UniformLatency(Dur::from_us(2)));
        assert_eq!(r.logical_total, 2); // root -> 2 members
        assert_eq!(r.logical_violated, 1);
        assert_eq!(r.logical_reversed, 1);
        assert_eq!(r.instances_affected, 1);
    }

    #[test]
    fn reduce_logical_messages() {
        // Root 0 ends at 3; members begin at 1 and 2 -> both violated with
        // l_min 2 (3-1=2 ok boundary? transfer must be >= l_min; 2>=2 ok, 3-2=1 violated).
        let t = collective_trace(CollOp::Reduce, Some(Rank(0)), &[(0, 3), (1, 4), (2, 5)]);
        let insts = match_collectives(&t).unwrap();
        let r = check_collectives(&t, &insts, &UniformLatency(Dur::from_us(2)));
        assert_eq!(r.logical_total, 2);
        assert_eq!(r.logical_violated, 1);
        assert_eq!(r.logical_reversed, 0);
    }

    #[test]
    fn barrier_n_to_n_counts_pairs() {
        // 3 ranks: 3*2 = 6 logical messages. All begins at 0, ends at 10:
        // no violations with l_min 2.
        let t = collective_trace(CollOp::Barrier, None, &[(0, 10), (0, 10), (0, 10)]);
        let insts = match_collectives(&t).unwrap();
        let r = check_collectives(&t, &insts, &UniformLatency(Dur::from_us(2)));
        assert_eq!(r.logical_total, 6);
        assert_eq!(r.logical_violated, 0);
        // Now one rank "exits" before another "enters": rank 2 ends at 1
        // while rank 0 begins at 5.
        let t = collective_trace(CollOp::Barrier, None, &[(5, 10), (0, 10), (0, 1)]);
        let insts = match_collectives(&t).unwrap();
        let r = check_collectives(&t, &insts, &UniformLatency(Dur::from_us(2)));
        assert!(r.logical_violated >= 1);
        assert!(r.logical_reversed >= 1);
        assert_eq!(r.instances_affected, 1);
    }

    fn pomp_trace(
        fork: i64,
        join: i64,
        worker_first: i64,
        worker_bar: (i64, i64),
        master_bar: (i64, i64),
    ) -> Trace {
        let r = RegionId(0);
        let mut t = Trace::for_threads(2);
        t.procs[0].push(us(fork), EventKind::Fork { region: r });
        t.procs[0].push(us(master_bar.0), EventKind::BarrierEnter { region: r });
        t.procs[0].push(us(master_bar.1), EventKind::BarrierExit { region: r });
        t.procs[0].push(us(join), EventKind::Join { region: r });
        t.procs[1].push(us(worker_first), EventKind::Enter { region: r });
        t.procs[1].push(us(worker_first + 1), EventKind::Exit { region: r });
        t.procs[1].push(us(worker_bar.0), EventKind::BarrierEnter { region: r });
        t.procs[1].push(us(worker_bar.1), EventKind::BarrierExit { region: r });
        t
    }

    #[test]
    fn consistent_pomp_region() {
        let t = pomp_trace(0, 100, 5, (10, 20), (10, 20));
        let regions = match_parallel_regions(&t).unwrap();
        let r = check_pomp(&t, &regions);
        assert_eq!(r.regions, 1);
        assert_eq!(r.any_violations, 0);
    }

    #[test]
    fn entry_violation_fork_not_first() {
        // Worker appears to start *before* the fork (Fig. 8 "region entry").
        let t = pomp_trace(4, 100, 2, (10, 20), (10, 20));
        let regions = match_parallel_regions(&t).unwrap();
        let r = check_pomp(&t, &regions);
        assert_eq!(r.entry_violations, 1);
        assert_eq!(r.exit_violations, 0);
        assert_eq!(r.any_violations, 1);
    }

    #[test]
    fn exit_violation_join_not_last() {
        let t = pomp_trace(0, 15, 5, (10, 20), (10, 14));
        let regions = match_parallel_regions(&t).unwrap();
        let r = check_pomp(&t, &regions);
        assert_eq!(r.exit_violations, 1);
    }

    #[test]
    fn latency_table_matches_model() {
        let model = |from: Rank, to: Rank| Dur::from_us((from.0 as i64 + 1) * (to.0 as i64 + 2));
        let ranks = [Rank(0), Rank(1), Rank(2)];
        let table = LatencyTable::freeze(&model, &ranks);
        assert_eq!(table.n_ranks(), 3);
        for &a in &ranks {
            for &b in &ranks {
                assert_eq!(table.l_min(a, b), model(a, b));
            }
        }
    }

    #[test]
    fn latency_table_empty_ranks() {
        let table = LatencyTable::freeze(&UniformLatency(Dur::from_us(1)), &[]);
        assert_eq!(table.n_ranks(), 0);
    }

    /// Sharded checks, merged in shard order, must equal the sequential run
    /// bit for bit — the invariant the parallel pipeline's censuses rest on.
    #[test]
    fn sharded_p2p_check_equals_sequential() {
        let mut t = Trace::for_ranks(4);
        // Mix of fine, sub-latency, and reversed messages.
        for k in 0..20i64 {
            let (from, to) = ((k % 4) as usize, ((k + 1) % 4) as usize);
            let skew = (k % 5) * 3 - 6; // some negative transfers
            t.procs[from].push(
                us(10 * k),
                EventKind::Send { to: Rank(to as u32), tag: Tag(k as u32), bytes: 8 },
            );
            t.procs[to].push(
                us(10 * k + skew),
                EventKind::Recv { from: Rank(from as u32), tag: Tag(k as u32), bytes: 8 },
            );
        }
        let m = match_messages(&t);
        let lmin = UniformLatency(Dur::from_us(2));
        let seq = check_p2p(&t, &m, &lmin);
        for shard_size in [1, 3, 7, 100] {
            let mut merged = P2pReport::default();
            for chunk in m.messages.chunks(shard_size) {
                merged.merge(check_p2p_messages(&t, chunk, &lmin));
            }
            assert_eq!(merged.total, seq.total);
            assert_eq!(merged.reversed, seq.reversed);
            assert_eq!(merged.violations.len(), seq.violations.len());
            for (a, b) in merged.violations.iter().zip(&seq.violations) {
                assert_eq!(a.send, b.send);
                assert_eq!(a.recv, b.recv);
                assert_eq!(a.measured_transfer, b.measured_transfer);
            }
        }
    }

    #[test]
    fn sharded_collective_check_equals_sequential() {
        let mut t = Trace::for_ranks(3);
        for k in 0..9i64 {
            let jitter = [0, 4, -3][(k % 3) as usize];
            for p in 0..3usize {
                t.procs[p].push(
                    us(100 * k + p as i64 + jitter),
                    EventKind::CollBegin {
                        op: CollOp::Barrier,
                        comm: CommId::WORLD,
                        root: None,
                        bytes: 8,
                    },
                );
                t.procs[p].push(
                    us(100 * k + 10 + p as i64 - jitter),
                    EventKind::CollEnd {
                        op: CollOp::Barrier,
                        comm: CommId::WORLD,
                        root: None,
                        bytes: 8,
                    },
                );
            }
        }
        let insts = match_collectives(&t).unwrap();
        let lmin = UniformLatency(Dur::from_us(3));
        let seq = check_collectives(&t, &insts, &lmin);
        for shard_size in [1, 2, 4, 50] {
            let mut merged = CollReport::default();
            for chunk in insts.chunks(shard_size) {
                merged.merge(check_collectives(&t, chunk, &lmin));
            }
            assert_eq!(merged.instances, seq.instances);
            assert_eq!(merged.logical_total, seq.logical_total);
            assert_eq!(merged.logical_violated, seq.logical_violated);
            assert_eq!(merged.logical_reversed, seq.logical_reversed);
            assert_eq!(merged.instances_affected, seq.instances_affected);
        }
    }

    #[test]
    fn barrier_violation_no_overlap() {
        // Fig. 2(d): master's barrier is over (8) before the worker enters (10).
        let t = pomp_trace(0, 100, 5, (10, 20), (6, 8));
        let regions = match_parallel_regions(&t).unwrap();
        let r = check_pomp(&t, &regions);
        assert_eq!(r.barrier_violations, 1);
        assert!(r.barrier_pct() > 99.0);
    }
}
