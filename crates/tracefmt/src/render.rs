//! ASCII timeline rendering — VAMPIR-style time-line views in a terminal.
//!
//! The paper's Figs. 2 and 3 are time-line diagrams; [`render_timeline`]
//! draws the same picture from any trace window: one row per timeline,
//! event glyphs placed proportionally, and message arrows indicated by
//! matching send/receive markers. Violated messages (receive drawn left of
//! its send) become immediately visible, like the backward arrows the paper
//! describes confusing VAMPIR users.

use crate::analysis::match_messages;
use crate::event::EventKind;
use crate::trace::Trace;
use simclock::Time;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Total line width in characters.
    pub width: usize,
    /// Restrict to a time window (defaults to the whole trace span).
    pub window: Option<(Time, Time)>,
    /// Mark matched messages with `s`/`r` pairs and flag reversed ones.
    pub mark_messages: bool,
    /// Region registry for a legend of the regions appearing in the view.
    pub regions: Option<crate::regions::RegionRegistry>,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width: 100,
            window: None,
            mark_messages: true,
            regions: None,
        }
    }
}

fn glyph(kind: &EventKind) -> char {
    match kind {
        EventKind::Enter { .. } => '(',
        EventKind::Exit { .. } => ')',
        EventKind::Send { .. } => 'S',
        EventKind::Recv { .. } => 'R',
        EventKind::CollBegin { .. } => '[',
        EventKind::CollEnd { .. } => ']',
        EventKind::Fork { .. } => 'F',
        EventKind::Join { .. } => 'J',
        EventKind::BarrierEnter { .. } => '{',
        EventKind::BarrierExit { .. } => '}',
    }
}

/// Render a trace window as an ASCII time-line diagram.
///
/// Each timeline becomes one row; glyphs: `( )` enter/exit, `S R`
/// send/receive, `[ ]` collective begin/end, `F J` fork/join, `{ }`
/// barrier enter/exit. When later events land on an occupied column the
/// earlier glyph wins (the row shows the first event per column). A footer
/// lists reversed messages when `mark_messages` is on.
pub fn render_timeline(trace: &Trace, opts: &RenderOptions) -> String {
    let Some((span_lo, span_hi)) = trace.time_span() else {
        return String::from("(empty trace)\n");
    };
    let (lo, hi) = opts.window.unwrap_or((span_lo, span_hi));
    let width = opts.width.max(20);
    let span = (hi - lo).as_secs_f64().max(1e-12);
    let col = |t: Time| -> Option<usize> {
        if t < lo || t > hi {
            return None;
        }
        let frac = (t - lo).as_secs_f64() / span;
        Some(((width - 1) as f64 * frac).round() as usize)
    };

    let mut out = String::new();
    out.push_str(&format!(
        "time {:.6}s .. {:.6}s ({:.3} us span)\n",
        lo.as_secs_f64(),
        hi.as_secs_f64(),
        (hi - lo).as_us_f64()
    ));
    for pt in &trace.procs {
        let mut row = vec!['-'; width];
        for e in &pt.events {
            if let Some(c) = col(e.time) {
                if row[c] == '-' {
                    row[c] = glyph(&e.kind);
                }
            }
        }
        out.push_str(&format!("{:>8} |", pt.location.to_string()));
        out.extend(row);
        out.push_str("|\n");
    }

    if let Some(reg) = &opts.regions {
        // Legend: the distinct regions entered in this view.
        let mut seen = std::collections::BTreeSet::new();
        for pt in &trace.procs {
            for e in &pt.events {
                if let EventKind::Enter { region } = e.kind {
                    seen.insert(region);
                }
            }
        }
        if !seen.is_empty() {
            out.push_str("regions: ");
            let names: Vec<String> =
                seen.iter().map(|&r| reg.name_or_id(r)).collect();
            out.push_str(&names.join(", "));
            out.push('\n');
        }
    }

    if opts.mark_messages {
        let matching = match_messages(trace);
        let mut reversed = 0;
        for m in &matching.messages {
            if trace.time(m.recv) < trace.time(m.send) {
                reversed += 1;
            }
        }
        if reversed > 0 {
            out.push_str(&format!(
                "!! {reversed} message(s) point backward in this view (recv drawn left of send)\n"
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Rank, RegionId, Tag};

    fn us(n: i64) -> Time {
        Time::from_us(n)
    }

    fn sample(reversed: bool) -> Trace {
        let mut t = Trace::for_ranks(2);
        t.procs[0].push(us(0), EventKind::Enter { region: RegionId(0) });
        t.procs[0].push(us(50), EventKind::Send { to: Rank(1), tag: Tag(0), bytes: 0 });
        t.procs[0].push(us(100), EventKind::Exit { region: RegionId(0) });
        let recv_at = if reversed { 25 } else { 75 };
        t.procs[1].push(us(recv_at), EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 });
        t
    }

    #[test]
    fn renders_rows_and_glyphs() {
        let s = render_timeline(&sample(false), &RenderOptions::default());
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("time"));
        assert!(lines[1].contains("r0:t0"));
        assert!(lines[1].contains('S'));
        assert!(lines[1].contains('('));
        assert!(lines[2].contains('R'));
        assert!(!s.contains("backward"));
    }

    #[test]
    fn flags_reversed_messages() {
        let s = render_timeline(&sample(true), &RenderOptions::default());
        assert!(s.contains("1 message(s) point backward"));
        // The R glyph sits left of the S glyph in the rendered rows.
        let lines: Vec<&str> = s.lines().collect();
        let s_col = lines[1].find('S').expect("send glyph");
        let r_col = lines[2].find('R').expect("recv glyph");
        assert!(r_col < s_col, "reversed arrow should be visible");
    }

    #[test]
    fn window_restricts_view() {
        let t = sample(false);
        let opts = RenderOptions {
            window: Some((us(40), us(80))),
            ..RenderOptions::default()
        };
        let s = render_timeline(&t, &opts);
        // Enter (t=0) and Exit (t=100) fall outside the window.
        assert!(!s.lines().nth(1).unwrap().contains('('));
        assert!(!s.lines().nth(1).unwrap().contains(')'));
        assert!(s.lines().nth(1).unwrap().contains('S'));
    }

    #[test]
    fn legend_uses_the_registry() {
        let mut opts = RenderOptions::default();
        let mut reg = crate::regions::RegionRegistry::new();
        reg.define(RegionId(0), "main_loop");
        opts.regions = Some(reg);
        let s = render_timeline(&sample(false), &opts);
        assert!(s.contains("regions: main_loop"), "{s}");
    }

    #[test]
    fn empty_trace_is_graceful() {
        let s = render_timeline(&Trace::for_ranks(2), &RenderOptions::default());
        assert!(s.contains("empty"));
    }
}
