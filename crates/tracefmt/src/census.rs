//! Plan-based violation censuses over columnar timestamps.
//!
//! [`check_p2p_messages_at`](crate::violation::check_p2p_messages_at) and
//! [`check_collectives_at`](crate::violation::check_collectives_at) walk
//! the *analysis* structures per census: every message pays a virtual
//! `l_min` call, every collective instance re-derives its logical messages
//! from the flavour mapping, and every check sits behind a branch. The
//! synchronization pipeline runs these censuses up to three times per
//! analysis round over timestamps that change between rounds while the
//! analysis structures do not.
//!
//! A [`CensusPlan`] hoists everything timestamp-independent out of the
//! loop, once per analysis:
//!
//! * event coordinates are resolved to offsets into one *flat* timestamp
//!   array — which is exactly the [`TraceColumns`] slab
//!   ([`TraceColumns::flat`]), so the kernels gather straight from live
//!   pipeline storage with **zero copies** per census round, and a check
//!   is two indexed loads instead of two two-level lookups;
//! * `l_min` bounds are frozen per check into a dense `i64` lane;
//! * collective instances are pre-expanded into their logical messages
//!   (paper §V flavour mapping), with per-instance ranges retained for the
//!   `instances_affected` count.
//!
//! The census kernels then run over struct-of-arrays lanes in fixed-width
//! chunks, accumulating per-chunk violation bitmasks branchlessly; the
//! violation *list* is materialized only for chunks whose mask is nonzero,
//! in message order, so reports are bit-identical to the reference checks
//! — same counts, same violation order. On x86-64 with AVX2 the mask
//! kernel additionally uses 4-lane `i64` gathers and packed compares
//! behind runtime detection; the arithmetic is integer-only, so the
//! specialization cannot change results.

use crate::analysis::{CollectiveInstance, MessageMatch};
use crate::column::TraceColumns;
use crate::event::CollFlavor;
use crate::ids::EventId;
use crate::trace::Trace;
use crate::violation::{CollReport, MinLatency, P2pReport, ViolatedMessage};
use simclock::Dur;
use std::fmt;

/// Width of one census chunk: one `u64` violation bitmask per chunk.
const CHUNK: usize = 64;

/// An event coordinate in a plan referred to a timeline the trace does not
/// have, or an event index past the end of its timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanBuildError {
    /// The offending event id.
    EventOutOfRange(EventId),
    /// The trace has more events than the plan's 32-bit flat offsets (and
    /// the AVX2 gather's signed-index form) can address.
    TraceTooLarge,
}

impl fmt::Display for PlanBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanBuildError::EventOutOfRange(id) => {
                write!(f, "event {id} is outside the trace shape the plan was built for")
            }
            PlanBuildError::TraceTooLarge => {
                write!(f, "trace exceeds the plan's 2^31-event addressing limit")
            }
        }
    }
}

impl std::error::Error for PlanBuildError {}

/// One struct-of-arrays lane of clock-condition checks: for check `k`,
/// `transfer = flat[to[k]] - flat[from[k]]` must be `>= bound[k]`.
///
/// Offsets are `u32` deliberately: the sequential lane streams are half
/// the width of the random gather traffic they drive, and the AVX2 path
/// gets the cheaper `i32`-index gather form (`build` rejects traces past
/// `i32::MAX` events, so the signed reinterpretation is lossless).
#[derive(Debug, Clone, Default)]
struct CheckLane {
    from: Vec<u32>,
    to: Vec<u32>,
    bound: Vec<i64>,
}

impl CheckLane {
    fn push(&mut self, from: u64, to: u64, bound: Dur) {
        self.from.push(from as u32);
        self.to.push(to as u32);
        self.bound.push(bound.as_ps());
    }

    fn len(&self) -> usize {
        self.from.len()
    }
}

/// Timestamp-independent census state, frozen once per analysis.
///
/// Build with [`CensusPlan::build`] (or the [`for_columns`]
/// [`CensusPlan::for_columns`] convenience), then run
/// [`p2p_census`](CensusPlan::p2p_census) /
/// [`collective_census`](CensusPlan::collective_census) against the flat
/// timeline-major timestamp array — normally the live [`TraceColumns`]
/// slab via [`flat_of`](CensusPlan::flat_of), which costs nothing to
/// produce. Reports are bit-identical to [`check_p2p_messages_at`] /
/// [`check_collectives_at`] over the same analysis structures.
///
/// [`check_p2p_messages_at`]: crate::violation::check_p2p_messages_at
/// [`check_collectives_at`]: crate::violation::check_collectives_at
#[derive(Debug, Clone)]
pub struct CensusPlan {
    /// Per-timeline event counts the plan was built against.
    lens: Vec<u32>,
    /// Point-to-point checks, one per matched message, in message order.
    p2p: CheckLane,
    /// Send/recv ids per message, for violation materialization.
    p2p_ids: Vec<(EventId, EventId)>,
    /// Logical-message checks expanded from collectives.
    coll: CheckLane,
    /// Range of `coll` belonging to each instance.
    inst_ranges: Vec<(u32, u32)>,
}

impl CensusPlan {
    /// Freeze a plan for a trace shape given as per-timeline event counts.
    ///
    /// `lmin` is evaluated once per check here and never again; the
    /// per-instance flavour expansion of `instances` happens here too.
    pub fn build(
        timeline_lens: &[usize],
        messages: &[MessageMatch],
        instances: &[CollectiveInstance],
        lmin: &dyn MinLatency,
    ) -> Result<CensusPlan, PlanBuildError> {
        let lens: Vec<u32> = timeline_lens.iter().map(|&l| l as u32).collect();
        let mut proc_base = Vec::with_capacity(lens.len());
        let mut base = 0u64;
        for &l in &lens {
            proc_base.push(base);
            base += u64::from(l);
        }
        if base > i32::MAX as u64 {
            return Err(PlanBuildError::TraceTooLarge);
        }
        let locate = |id: EventId| -> Result<u64, PlanBuildError> {
            if id.p() < lens.len() && id.idx < lens[id.p()] {
                Ok(proc_base[id.p()] + u64::from(id.idx))
            } else {
                Err(PlanBuildError::EventOutOfRange(id))
            }
        };

        let mut p2p = CheckLane::default();
        let mut p2p_ids = Vec::with_capacity(messages.len());
        for m in messages {
            p2p.push(locate(m.send)?, locate(m.recv)?, lmin.l_min(m.from, m.to));
            p2p_ids.push((m.send, m.recv));
        }

        // Expand each instance into the same logical-message set the
        // reference check derives (counts are order-independent, so only
        // the per-instance multiset must match).
        let mut coll = CheckLane::default();
        let mut inst_ranges = Vec::with_capacity(instances.len());
        for inst in instances {
            let start = coll.len() as u32;
            match inst.op.flavor() {
                CollFlavor::OneToN => {
                    if let Some(root) = inst.root_member().copied() {
                        let f = locate(root.begin)?;
                        for m in &inst.members {
                            if m.rank != root.rank {
                                coll.push(f, locate(m.end)?, lmin.l_min(root.rank, m.rank));
                            }
                        }
                    }
                }
                CollFlavor::NToOne => {
                    if let Some(root) = inst.root_member().copied() {
                        let t = locate(root.end)?;
                        for m in &inst.members {
                            if m.rank != root.rank {
                                coll.push(locate(m.begin)?, t, lmin.l_min(m.rank, root.rank));
                            }
                        }
                    }
                }
                CollFlavor::NToN => {
                    for a in &inst.members {
                        let f = locate(a.begin)?;
                        for b in &inst.members {
                            if a.rank != b.rank {
                                coll.push(f, locate(b.end)?, lmin.l_min(a.rank, b.rank));
                            }
                        }
                    }
                }
                CollFlavor::Prefix => {
                    for (ai, a) in inst.members.iter().enumerate() {
                        let f = locate(a.begin)?;
                        for b in inst.members.iter().skip(ai + 1) {
                            coll.push(f, locate(b.end)?, lmin.l_min(a.rank, b.rank));
                        }
                    }
                }
            }
            inst_ranges.push((start, coll.len() as u32));
        }

        Ok(CensusPlan {
            lens,
            p2p,
            p2p_ids,
            coll,
            inst_ranges,
        })
    }

    /// [`build`](CensusPlan::build) against the shape of `cols`.
    pub fn for_columns(
        cols: &TraceColumns,
        messages: &[MessageMatch],
        instances: &[CollectiveInstance],
        lmin: &dyn MinLatency,
    ) -> Result<CensusPlan, PlanBuildError> {
        let lens: Vec<usize> = cols.iter().map(|c| c.len()).collect();
        CensusPlan::build(&lens, messages, instances, lmin)
    }

    /// Number of point-to-point checks (matched messages) in the plan.
    pub fn n_messages(&self) -> usize {
        self.p2p.len()
    }

    /// Number of collective instances in the plan.
    pub fn n_instances(&self) -> usize {
        self.inst_ranges.len()
    }

    /// Borrow the flat gather array of `cols` — the slab itself. Zero
    /// copies: the kernels read the pipeline's live timestamp storage.
    ///
    /// # Panics
    /// Panics when `cols` does not have the shape the plan was built for —
    /// a mismatched layout would silently census the wrong events.
    pub fn flat_of<'a>(&self, cols: &'a TraceColumns) -> &'a [i64] {
        assert_eq!(cols.n_procs(), self.lens.len(), "plan/column timeline count mismatch");
        for (p, col) in cols.iter().enumerate() {
            assert_eq!(col.len() as u32, self.lens[p], "plan/column length mismatch on timeline {p}");
        }
        cols.flat()
    }

    /// Flatten an array-of-structs trace into the plan's gather layout
    /// (the AoS layout has no slab to borrow, so this one does copy).
    ///
    /// # Panics
    /// Panics on a shape mismatch, like [`flat_of`](CensusPlan::flat_of).
    pub fn flatten_trace(&self, trace: &Trace) -> Vec<i64> {
        assert_eq!(trace.procs.len(), self.lens.len(), "plan/trace timeline count mismatch");
        let mut ps = Vec::with_capacity(self.lens.iter().map(|&l| l as usize).sum());
        for (p, pt) in trace.procs.iter().enumerate() {
            assert_eq!(pt.events.len() as u32, self.lens[p], "plan/trace length mismatch on timeline {p}");
            ps.extend(pt.events.iter().map(|e| e.time.as_ps()));
        }
        ps
    }

    /// Point-to-point census over all planned messages. `times` is the
    /// flat timeline-major timestamp array
    /// ([`flat_of`](CensusPlan::flat_of)).
    pub fn p2p_census(&self, times: &[i64]) -> P2pReport {
        self.p2p_census_range(times, 0, self.p2p.len())
    }

    /// Point-to-point census over the message range `lo..hi` — the shard
    /// unit of the parallel pipeline. Shard reports merged in shard order
    /// equal the full census bit for bit.
    pub fn p2p_census_range(&self, times: &[i64], lo: usize, hi: usize) -> P2pReport {
        let mut report = P2pReport {
            total: hi - lo,
            ..P2pReport::default()
        };
        let mut k = lo;
        while k < hi {
            let end = (k + CHUNK).min(hi);
            let (vmask, rmask) = lane_masks(&self.p2p, times, k, end);
            report.reversed += (vmask & rmask).count_ones() as usize;
            // Materialize violations in message order — only for chunks
            // that actually have any.
            let mut bits = vmask;
            while bits != 0 {
                let m = k + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let (send, recv) = self.p2p_ids[m];
                let transfer =
                    times[self.p2p.to[m] as usize] - times[self.p2p.from[m] as usize];
                report.violations.push(ViolatedMessage {
                    send,
                    recv,
                    measured_transfer: Dur::from_ps(transfer),
                    l_min: Dur::from_ps(self.p2p.bound[m]),
                });
            }
            k = end;
        }
        report
    }

    /// Collective census over all planned instances. `times` is the flat
    /// timeline-major timestamp array ([`flat_of`](CensusPlan::flat_of)).
    pub fn collective_census(&self, times: &[i64]) -> CollReport {
        self.collective_census_range(times, 0, self.inst_ranges.len())
    }

    /// Collective census over the instance range `lo..hi`. Shard reports
    /// merged in shard order equal the full census bit for bit.
    pub fn collective_census_range(&self, times: &[i64], lo: usize, hi: usize) -> CollReport {
        let mut report = CollReport {
            instances: hi - lo,
            ..CollReport::default()
        };
        for &(start, end) in &self.inst_ranges[lo..hi] {
            let (mut start, end) = (start as usize, end as usize);
            report.logical_total += end - start;
            let mut violated_here = 0usize;
            while start < end {
                let chunk_end = (start + CHUNK).min(end);
                let (vmask, rmask) = lane_masks(&self.coll, times, start, chunk_end);
                violated_here += vmask.count_ones() as usize;
                report.logical_reversed += (vmask & rmask).count_ones() as usize;
                start = chunk_end;
            }
            report.logical_violated += violated_here;
            report.instances_affected += usize::from(violated_here > 0);
        }
        report
    }
}

/// Violation and reversal bitmasks for checks `lo..hi` of a lane
/// (`hi - lo <= 64`): bit `k - lo` of the first mask is set when check `k`
/// violates its bound, of the second when its transfer is negative.
fn lane_masks(lane: &CheckLane, times: &[i64], lo: usize, hi: usize) -> (u64, u64) {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // SAFETY: gated on runtime AVX2 detection.
            return unsafe { lane_masks_avx2(lane, times, lo, hi) };
        }
    }
    lane_masks_scalar(lane, times, lo, hi)
}

/// Branchless scalar mask kernel — the portable path and the reference the
/// AVX2 specialization must agree with.
fn lane_masks_scalar(lane: &CheckLane, times: &[i64], lo: usize, hi: usize) -> (u64, u64) {
    debug_assert!(hi - lo <= CHUNK);
    let mut vmask = 0u64;
    let mut rmask = 0u64;
    for (bit, k) in (lo..hi).enumerate() {
        let transfer = times[lane.to[k] as usize] - times[lane.from[k] as usize];
        vmask |= u64::from(transfer < lane.bound[k]) << bit;
        rmask |= u64::from(transfer < 0) << bit;
    }
    (vmask, rmask)
}

/// Is AVX2 available on this machine? Checked once, cached. Setting
/// `TRACEFMT_NO_AVX2` (to anything) forces the scalar path — the
/// differential tests use it to exercise both kernels on one host.
#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2")
            && std::env::var_os("TRACEFMT_NO_AVX2").is_none()
    })
}

/// AVX2 mask kernel: 4-lane `i64` gathers of both endpoints, packed
/// subtract and signed compares, mask bits collected via `movemask`.
/// Integer-only arithmetic — bit-identical to [`lane_masks_scalar`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lane_masks_avx2(lane: &CheckLane, times: &[i64], lo: usize, hi: usize) -> (u64, u64) {
    use std::arch::x86_64::*;
    debug_assert!(hi - lo <= CHUNK);
    let base = times.as_ptr();
    let mut vmask = 0u64;
    let mut rmask = 0u64;
    let zero = _mm256_setzero_si256();
    let mut k = lo;
    let mut bit = 0u32;
    // SAFETY (both loops): every offset in the lane was validated against
    // the trace shape at plan build (which also capped the flat size at
    // `i32::MAX`, so the u32→i32 index reinterpretation is lossless), and
    // `flat_of` asserted the same shape on borrow, so all gather indices
    // are in bounds of `times`.
    //
    // Two independent 4-lane groups per iteration: the gathers are the
    // long-latency step, and interleaving two chains keeps more of them
    // in flight than out-of-order execution manages across iterations of
    // a 4-wide loop.
    while k + 8 <= hi {
        let idx_from0 = _mm_loadu_si128(lane.from.as_ptr().add(k).cast());
        let idx_to0 = _mm_loadu_si128(lane.to.as_ptr().add(k).cast());
        let idx_from1 = _mm_loadu_si128(lane.from.as_ptr().add(k + 4).cast());
        let idx_to1 = _mm_loadu_si128(lane.to.as_ptr().add(k + 4).cast());
        let t_from0 = _mm256_i32gather_epi64::<8>(base, idx_from0);
        let t_to0 = _mm256_i32gather_epi64::<8>(base, idx_to0);
        let t_from1 = _mm256_i32gather_epi64::<8>(base, idx_from1);
        let t_to1 = _mm256_i32gather_epi64::<8>(base, idx_to1);
        let bound0 = _mm256_loadu_si256(lane.bound.as_ptr().add(k).cast());
        let bound1 = _mm256_loadu_si256(lane.bound.as_ptr().add(k + 4).cast());
        let transfer0 = _mm256_sub_epi64(t_to0, t_from0);
        let transfer1 = _mm256_sub_epi64(t_to1, t_from1);
        // transfer < bound  <=>  bound > transfer
        let viol0 = _mm256_cmpgt_epi64(bound0, transfer0);
        let viol1 = _mm256_cmpgt_epi64(bound1, transfer1);
        let rev0 = _mm256_cmpgt_epi64(zero, transfer0);
        let rev1 = _mm256_cmpgt_epi64(zero, transfer1);
        let v0 = _mm256_movemask_pd(_mm256_castsi256_pd(viol0)) as u64;
        let v1 = _mm256_movemask_pd(_mm256_castsi256_pd(viol1)) as u64;
        let r0 = _mm256_movemask_pd(_mm256_castsi256_pd(rev0)) as u64;
        let r1 = _mm256_movemask_pd(_mm256_castsi256_pd(rev1)) as u64;
        vmask |= (v0 | v1 << 4) << bit;
        rmask |= (r0 | r1 << 4) << bit;
        k += 8;
        bit += 8;
    }
    while k + 4 <= hi {
        let idx_from = _mm_loadu_si128(lane.from.as_ptr().add(k).cast());
        let idx_to = _mm_loadu_si128(lane.to.as_ptr().add(k).cast());
        let t_from = _mm256_i32gather_epi64::<8>(base, idx_from);
        let t_to = _mm256_i32gather_epi64::<8>(base, idx_to);
        let bound = _mm256_loadu_si256(lane.bound.as_ptr().add(k).cast());
        let transfer = _mm256_sub_epi64(t_to, t_from);
        let viol = _mm256_cmpgt_epi64(bound, transfer);
        let rev = _mm256_cmpgt_epi64(zero, transfer);
        let v = _mm256_movemask_pd(_mm256_castsi256_pd(viol)) as u64;
        let r = _mm256_movemask_pd(_mm256_castsi256_pd(rev)) as u64;
        vmask |= v << bit;
        rmask |= r << bit;
        k += 4;
        bit += 4;
    }
    for k in k..hi {
        let transfer = times[lane.to[k] as usize] - times[lane.from[k] as usize];
        vmask |= u64::from(transfer < lane.bound[k]) << bit;
        rmask |= u64::from(transfer < 0) << bit;
        bit += 1;
    }
    (vmask, rmask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{match_collectives, match_messages};
    use crate::event::{CollOp, EventKind};
    use crate::ids::{CommId, Rank, Tag};
    use crate::violation::{check_collectives_at, check_p2p_messages_at, UniformLatency};
    use simclock::Time;

    /// A trace with a spread of fine, sub-latency, and reversed messages
    /// plus rooted and unrooted collectives.
    fn mixed_trace(ranks: usize, rounds: i64) -> Trace {
        let mut t = Trace::for_ranks(ranks);
        for k in 0..rounds {
            let from = (k % ranks as i64) as usize;
            let to = ((k + 1) % ranks as i64) as usize;
            let skew = (k % 7) * 3 - 9; // some negative transfers
            t.procs[from].push(
                Time::from_us(100 * k),
                EventKind::Send { to: Rank(to as u32), tag: Tag(k as u32), bytes: 8 },
            );
            t.procs[to].push(
                Time::from_us(100 * k + skew),
                EventKind::Recv { from: Rank(from as u32), tag: Tag(k as u32), bytes: 8 },
            );
            if k % 5 == 0 {
                let (op, root) = match k % 3 {
                    0 => (CollOp::Bcast, Some(Rank((k % ranks as i64) as u32))),
                    1 => (CollOp::Reduce, Some(Rank(0))),
                    _ => (CollOp::Barrier, None),
                };
                for p in 0..ranks {
                    let jitter = ((p as i64 + k) % 5) * 4 - 8;
                    t.procs[p].push(
                        Time::from_us(100 * k + 20 + jitter),
                        EventKind::CollBegin { op, comm: CommId::WORLD, root, bytes: 8 },
                    );
                    t.procs[p].push(
                        Time::from_us(100 * k + 30 - jitter),
                        EventKind::CollEnd { op, comm: CommId::WORLD, root, bytes: 8 },
                    );
                }
            }
        }
        t
    }

    fn lens(t: &Trace) -> Vec<usize> {
        t.procs.iter().map(|p| p.events.len()).collect()
    }

    #[test]
    fn p2p_census_is_bit_identical_to_reference() {
        let t = mixed_trace(4, 200);
        let m = match_messages(&t);
        let lmin = UniformLatency(Dur::from_us(4));
        let plan = CensusPlan::build(&lens(&t), &m.messages, &[], &lmin).unwrap();
        let cols = TraceColumns::gather(&t);
        let flat = plan.flat_of(&cols);
        let got = plan.p2p_census(flat);
        let want = check_p2p_messages_at(&cols, &m.messages, &lmin);
        assert_eq!(got.total, want.total);
        assert_eq!(got.reversed, want.reversed);
        assert_eq!(got.violations.len(), want.violations.len());
        assert!(!want.violations.is_empty(), "test trace should violate");
        for (a, b) in got.violations.iter().zip(&want.violations) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn collective_census_is_bit_identical_to_reference() {
        let t = mixed_trace(5, 200);
        let insts = match_collectives(&t).unwrap();
        let lmin = UniformLatency(Dur::from_us(3));
        let plan = CensusPlan::build(&lens(&t), &[], &insts, &lmin).unwrap();
        let cols = TraceColumns::gather(&t);
        let flat = plan.flat_of(&cols);
        let got = plan.collective_census(flat);
        let want = check_collectives_at(&cols, &insts, &lmin);
        assert_eq!(got.instances, want.instances);
        assert_eq!(got.logical_total, want.logical_total);
        assert_eq!(got.logical_violated, want.logical_violated);
        assert_eq!(got.logical_reversed, want.logical_reversed);
        assert_eq!(got.instances_affected, want.instances_affected);
        assert!(want.logical_violated > 0, "test trace should violate");
    }

    #[test]
    fn sharded_ranges_merge_to_full_census() {
        let t = mixed_trace(4, 150);
        let m = match_messages(&t);
        let insts = match_collectives(&t).unwrap();
        let lmin = UniformLatency(Dur::from_us(4));
        let plan = CensusPlan::build(&lens(&t), &m.messages, &insts, &lmin).unwrap();
        let cols = TraceColumns::gather(&t);
        let flat = plan.flat_of(&cols);
        let full_p2p = plan.p2p_census(flat);
        let full_coll = plan.collective_census(flat);
        for shard in [1usize, 3, 17, 64, 1000] {
            let mut p2p = P2pReport::default();
            let mut lo = 0;
            while lo < plan.n_messages() {
                let hi = (lo + shard).min(plan.n_messages());
                p2p.merge(plan.p2p_census_range(flat, lo, hi));
                lo = hi;
            }
            assert_eq!(p2p.total, full_p2p.total);
            assert_eq!(p2p.reversed, full_p2p.reversed);
            assert_eq!(p2p.violations, full_p2p.violations);
            let mut coll = CollReport::default();
            let mut lo = 0;
            while lo < plan.n_instances() {
                let hi = (lo + shard).min(plan.n_instances());
                coll.merge(plan.collective_census_range(flat, lo, hi));
                lo = hi;
            }
            assert_eq!(coll.logical_total, full_coll.logical_total);
            assert_eq!(coll.logical_violated, full_coll.logical_violated);
            assert_eq!(coll.instances_affected, full_coll.instances_affected);
        }
    }

    #[test]
    fn scalar_and_simd_masks_agree() {
        // Force comparison irrespective of what lane_masks dispatches to.
        let t = mixed_trace(4, 130);
        let m = match_messages(&t);
        let lmin = UniformLatency(Dur::from_us(4));
        let plan = CensusPlan::build(&lens(&t), &m.messages, &[], &lmin).unwrap();
        let cols = TraceColumns::gather(&t);
        let times = plan.flat_of(&cols);
        let n = plan.p2p.len();
        let mut lo = 0;
        while lo < n {
            // Odd chunk ends exercise the SIMD tail path.
            let hi = (lo + 61).min(n);
            let scalar = lane_masks_scalar(&plan.p2p, times, lo, hi);
            let dispatched = lane_masks(&plan.p2p, times, lo, hi);
            assert_eq!(scalar, dispatched);
            #[cfg(target_arch = "x86_64")]
            if avx2_available() {
                let simd = unsafe { lane_masks_avx2(&plan.p2p, times, lo, hi) };
                assert_eq!(scalar, simd);
            }
            lo = hi;
        }
    }

    #[test]
    fn flatten_trace_matches_slab_layout() {
        let t = mixed_trace(3, 40);
        let m = match_messages(&t);
        let lmin = UniformLatency(Dur::from_us(2));
        let plan = CensusPlan::build(&lens(&t), &m.messages, &[], &lmin).unwrap();
        let cols = TraceColumns::gather(&t);
        assert_eq!(plan.flat_of(&cols), plan.flatten_trace(&t).as_slice());
    }

    #[test]
    fn out_of_range_event_is_rejected() {
        let t = mixed_trace(2, 10);
        let mut m = match_messages(&t);
        m.messages[0].recv = EventId::new(1, 10_000);
        let err = CensusPlan::build(&lens(&t), &m.messages, &[], &UniformLatency(Dur::ZERO))
            .unwrap_err();
        assert_eq!(err, PlanBuildError::EventOutOfRange(EventId::new(1, 10_000)));
        let mut m2 = match_messages(&t);
        m2.messages[0].send = EventId::new(7, 0);
        assert!(CensusPlan::build(&lens(&t), &m2.messages, &[], &UniformLatency(Dur::ZERO))
            .is_err());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn flat_of_shape_mismatch_panics() {
        let t = mixed_trace(2, 10);
        let plan = CensusPlan::build(&lens(&t), &[], &[], &UniformLatency(Dur::ZERO)).unwrap();
        let mut shorter = t.clone();
        shorter.procs[0].events.pop();
        plan.flat_of(&TraceColumns::gather(&shorter));
    }
}
