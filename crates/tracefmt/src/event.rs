//! The event model.
//!
//! Mirrors what MPI/OpenMP tracers record (paper §III): entering and leaving
//! code regions, sending and receiving point-to-point messages, collective
//! operations, and the POMP shared-memory events (fork/join, barrier
//! enter/exit) of Mohr et al. Each [`EventRecord`] carries the local
//! timestamp the tracing library read on the executing core — exactly the
//! value that postmortem synchronisation later has to repair.

use crate::ids::{CommId, Rank, RegionId, Tag};
use serde::{Deserialize, Serialize};
use simclock::Time;
use std::fmt;

/// Flavours of MPI collective operations, grouped by their data-flow
/// direction. The direction drives the collective → point-to-point mapping
/// used for clock-condition checking and by the CLC extension (paper §V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollOp {
    /// Synchronisation only (N-to-N).
    Barrier,
    /// Root to all (1-to-N).
    Bcast,
    /// Root distributes distinct pieces (1-to-N).
    Scatter,
    /// All to root (N-to-1).
    Reduce,
    /// All to root (N-to-1).
    Gather,
    /// Reduction distributed to all (N-to-N).
    Allreduce,
    /// Everyone's data to everyone (N-to-N).
    Allgather,
    /// Personalised all-to-all exchange (N-to-N).
    Alltoall,
    /// Prefix reduction: rank i receives the combination of ranks 0..=i
    /// (prefix data flow).
    Scan,
}

/// Data-flow direction of a collective (paper §V: "taking the semantics of
/// the different flavors of MPI collective operations into account").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollFlavor {
    /// Root sends to all others (Bcast, Scatter).
    OneToN,
    /// All others send to the root (Reduce, Gather).
    NToOne,
    /// Everyone communicates with everyone (Barrier, Allreduce, …).
    NToN,
    /// Rank i depends on every lower rank (Scan).
    Prefix,
}

impl CollOp {
    /// The operation's data-flow flavour.
    pub fn flavor(self) -> CollFlavor {
        match self {
            CollOp::Bcast | CollOp::Scatter => CollFlavor::OneToN,
            CollOp::Reduce | CollOp::Gather => CollFlavor::NToOne,
            CollOp::Barrier | CollOp::Allreduce | CollOp::Allgather | CollOp::Alltoall => {
                CollFlavor::NToN
            }
            CollOp::Scan => CollFlavor::Prefix,
        }
    }

    /// Does the operation take a root argument?
    pub fn has_root(self) -> bool {
        matches!(self.flavor(), CollFlavor::OneToN | CollFlavor::NToOne)
    }

    /// MPI-style name.
    pub fn label(self) -> &'static str {
        match self {
            CollOp::Barrier => "MPI_Barrier",
            CollOp::Bcast => "MPI_Bcast",
            CollOp::Scatter => "MPI_Scatter",
            CollOp::Reduce => "MPI_Reduce",
            CollOp::Gather => "MPI_Gather",
            CollOp::Allreduce => "MPI_Allreduce",
            CollOp::Allgather => "MPI_Allgather",
            CollOp::Alltoall => "MPI_Alltoall",
            CollOp::Scan => "MPI_Scan",
        }
    }
}

impl fmt::Display for CollOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Control flow entered a code region.
    Enter {
        /// The region entered.
        region: RegionId,
    },
    /// Control flow left a code region.
    Exit {
        /// The region left.
        region: RegionId,
    },
    /// A point-to-point message left this process.
    Send {
        /// Destination rank.
        to: Rank,
        /// Message tag.
        tag: Tag,
        /// Payload size.
        bytes: u64,
    },
    /// A point-to-point message was received.
    Recv {
        /// Source rank.
        from: Rank,
        /// Message tag.
        tag: Tag,
        /// Payload size.
        bytes: u64,
    },
    /// A collective operation began on this process.
    CollBegin {
        /// Which collective.
        op: CollOp,
        /// Communicator it runs on.
        comm: CommId,
        /// Root rank for rooted flavours.
        root: Option<Rank>,
        /// Per-process payload size.
        bytes: u64,
    },
    /// A collective operation completed on this process.
    CollEnd {
        /// Which collective.
        op: CollOp,
        /// Communicator it runs on.
        comm: CommId,
        /// Root rank for rooted flavours.
        root: Option<Rank>,
        /// Per-process payload size.
        bytes: u64,
    },
    /// OpenMP: master forked a parallel team (POMP).
    Fork {
        /// Parallel-region id.
        region: RegionId,
    },
    /// OpenMP: master joined the team back (POMP).
    Join {
        /// Parallel-region id.
        region: RegionId,
    },
    /// OpenMP: a thread arrived at a barrier (explicit or implicit).
    BarrierEnter {
        /// Parallel-region id the barrier belongs to.
        region: RegionId,
    },
    /// OpenMP: a thread left a barrier.
    BarrierExit {
        /// Parallel-region id the barrier belongs to.
        region: RegionId,
    },
}

impl EventKind {
    /// Is this a message-transfer event (send or receive)? Used for the
    /// paper's Fig. 7 metric "message transfer events in relation to the
    /// total number of events".
    pub fn is_message(self) -> bool {
        matches!(self, EventKind::Send { .. } | EventKind::Recv { .. })
    }

    /// Is this a collective begin/end?
    pub fn is_collective(self) -> bool {
        matches!(self, EventKind::CollBegin { .. } | EventKind::CollEnd { .. })
    }

    /// Short mnemonic for codecs and debugging output.
    pub fn mnemonic(self) -> &'static str {
        match self {
            EventKind::Enter { .. } => "ENTR",
            EventKind::Exit { .. } => "EXIT",
            EventKind::Send { .. } => "SEND",
            EventKind::Recv { .. } => "RECV",
            EventKind::CollBegin { .. } => "CBEG",
            EventKind::CollEnd { .. } => "CEND",
            EventKind::Fork { .. } => "FORK",
            EventKind::Join { .. } => "JOIN",
            EventKind::BarrierEnter { .. } => "BENT",
            EventKind::BarrierExit { .. } => "BEXT",
        }
    }
}

/// One trace record: a timestamp taken from the executing core's local clock
/// plus the event description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Local timestamp (possibly wrong — that is the point of the paper).
    pub time: Time,
    /// What happened.
    pub kind: EventKind,
}

impl EventRecord {
    /// Construct a record.
    pub fn new(time: Time, kind: EventKind) -> Self {
        EventRecord { time, kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flavors_match_the_paper() {
        assert_eq!(CollOp::Bcast.flavor(), CollFlavor::OneToN);
        assert_eq!(CollOp::Scatter.flavor(), CollFlavor::OneToN);
        assert_eq!(CollOp::Reduce.flavor(), CollFlavor::NToOne);
        assert_eq!(CollOp::Gather.flavor(), CollFlavor::NToOne);
        assert_eq!(CollOp::Barrier.flavor(), CollFlavor::NToN);
        assert_eq!(CollOp::Allreduce.flavor(), CollFlavor::NToN);
        assert_eq!(CollOp::Allgather.flavor(), CollFlavor::NToN);
        assert_eq!(CollOp::Alltoall.flavor(), CollFlavor::NToN);
        assert_eq!(CollOp::Scan.flavor(), CollFlavor::Prefix);
    }

    #[test]
    fn rooted_ops_have_roots() {
        assert!(CollOp::Bcast.has_root());
        assert!(CollOp::Reduce.has_root());
        assert!(!CollOp::Barrier.has_root());
        assert!(!CollOp::Alltoall.has_root());
        assert!(!CollOp::Scan.has_root());
    }

    #[test]
    fn message_classification() {
        let send = EventKind::Send {
            to: Rank(1),
            tag: Tag(0),
            bytes: 8,
        };
        let enter = EventKind::Enter {
            region: RegionId(0),
        };
        assert!(send.is_message());
        assert!(!enter.is_message());
        assert!(!send.is_collective());
        let cb = EventKind::CollBegin {
            op: CollOp::Barrier,
            comm: CommId::WORLD,
            root: None,
            bytes: 0,
        };
        assert!(cb.is_collective());
    }

    #[test]
    fn mnemonics_are_unique() {
        use std::collections::HashSet;
        let kinds = [
            EventKind::Enter { region: RegionId(0) },
            EventKind::Exit { region: RegionId(0) },
            EventKind::Send { to: Rank(0), tag: Tag(0), bytes: 0 },
            EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 },
            EventKind::CollBegin { op: CollOp::Barrier, comm: CommId::WORLD, root: None, bytes: 0 },
            EventKind::CollEnd { op: CollOp::Barrier, comm: CommId::WORLD, root: None, bytes: 0 },
            EventKind::Fork { region: RegionId(0) },
            EventKind::Join { region: RegionId(0) },
            EventKind::BarrierEnter { region: RegionId(0) },
            EventKind::BarrierExit { region: RegionId(0) },
        ];
        let set: HashSet<_> = kinds.iter().map(|k| k.mnemonic()).collect();
        assert_eq!(set.len(), kinds.len());
    }
}
