//! Postmortem trace analysis: reconstructing the communication structure.
//!
//! Tracers record sends and receives independently on each process; which
//! send pairs with which receive is recovered afterwards from MPI's
//! non-overtaking rule — messages between one (source, destination, tag)
//! triple match in FIFO order. Collective instances are recovered from the
//! per-communicator call order, and OpenMP parallel regions from the POMP
//! fork/join bracketing. These reconstructions are purely *logical*: they
//! use event order within each timeline, never the (unreliable) timestamps,
//! so corrupted clocks cannot corrupt the structure.

use crate::event::{CollOp, EventKind};
use crate::ids::{CommId, EventId, Rank, RegionId};
use crate::trace::Trace;
use std::collections::{HashMap, VecDeque};

/// A matched point-to-point message: its send and receive events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageMatch {
    /// The `Send` event.
    pub send: EventId,
    /// The matching `Recv` event.
    pub recv: EventId,
    /// Source rank.
    pub from: Rank,
    /// Destination rank.
    pub to: Rank,
    /// Payload size.
    pub bytes: u64,
}

/// Result of message matching, including any dangling events (normally a
/// sign of a truncated or partial trace).
#[derive(Debug, Clone, Default)]
pub struct Matching {
    /// Matched send/receive pairs.
    pub messages: Vec<MessageMatch>,
    /// Sends with no matching receive in the trace.
    pub unmatched_sends: Vec<EventId>,
    /// Receives with no matching send in the trace.
    pub unmatched_recvs: Vec<EventId>,
}

impl Matching {
    /// True if every message event found its partner.
    pub fn is_complete(&self) -> bool {
        self.unmatched_sends.is_empty() && self.unmatched_recvs.is_empty()
    }
}

/// The FIFO queue key of message matching: `(source, destination, tag)`.
pub type SendKey = (Rank, Rank, u32);

/// Pending-send queues per [`SendKey`], in program order — the state
/// message matching threads from its send-collection pass to its
/// receive-consumption pass.
pub type PendingSends = HashMap<SendKey, VecDeque<(EventId, u64)>>;

/// Collect the sends of timeline `p` in program order, as
/// `(key, send event, bytes)` triples ready to be queued into a
/// [`PendingSends`] map. One shard of [`match_messages`]'s first pass.
pub fn collect_sends(trace: &Trace, p: usize) -> Vec<(SendKey, EventId, u64)> {
    let pt = &trace.procs[p];
    let from = pt.location.rank;
    let mut out = Vec::new();
    for (i, e) in pt.events.iter().enumerate() {
        if let EventKind::Send { to, tag, bytes } = e.kind {
            out.push(((from, to, tag.0), EventId::new(p, i), bytes));
        }
    }
    out
}

/// Consume pending sends with the receives of timeline `p`, in program
/// order: matches are appended to `out.messages`, receives with no pending
/// send to `out.unmatched_recvs`. One shard of [`match_messages`]'s second
/// pass — when ranks are unique, every `(from, to, tag)` queue is drained
/// by exactly one timeline, so per-timeline consumption parallelises
/// without reordering any queue.
pub fn consume_recvs(trace: &Trace, p: usize, pending: &mut PendingSends, out: &mut Matching) {
    let pt = &trace.procs[p];
    let to = pt.location.rank;
    for (i, e) in pt.events.iter().enumerate() {
        if let EventKind::Recv { from, tag, .. } = e.kind {
            let recv = EventId::new(p, i);
            match pending.get_mut(&(from, to, tag.0)).and_then(|q| q.pop_front()) {
                Some((send, bytes)) => out.messages.push(MessageMatch {
                    send,
                    recv,
                    from,
                    to,
                    bytes,
                }),
                None => out.unmatched_recvs.push(recv),
            }
        }
    }
}

/// Per-event message matcher: the streaming face of [`match_messages`].
///
/// Callers that never materialize a [`Trace`] (block-directory scans over
/// an on-disk stream) feed events one at a time in the same two-pass order
/// the batch function uses — every timeline's sends in program order, then
/// every timeline's receives in program order — and [`finish`] yields a
/// [`Matching`] bit-identical to the batch result.
///
/// [`finish`]: MessageMatcher::finish
#[derive(Debug, Default)]
pub struct MessageMatcher {
    pending: PendingSends,
    out: Matching,
}

impl MessageMatcher {
    /// Fresh matcher with no pending sends.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pass 1: feed event `i` of timeline `p` (whose location rank is
    /// `from`). Non-`Send` kinds are ignored.
    pub fn feed_send(&mut self, from: Rank, p: usize, i: usize, kind: &EventKind) {
        if let EventKind::Send { to, tag, bytes } = *kind {
            self.pending
                .entry((from, to, tag.0))
                .or_default()
                .push_back((EventId::new(p, i), bytes));
        }
    }

    /// Pass 2: feed event `i` of timeline `p` (whose location rank is
    /// `to`). Non-`Recv` kinds are ignored; receives consume pending sends
    /// FIFO, per MPI's non-overtaking rule.
    pub fn feed_recv(&mut self, to: Rank, p: usize, i: usize, kind: &EventKind) {
        if let EventKind::Recv { from, tag, .. } = *kind {
            let recv = EventId::new(p, i);
            match self
                .pending
                .get_mut(&(from, to, tag.0))
                .and_then(|q| q.pop_front())
            {
                Some((send, bytes)) => self.out.messages.push(MessageMatch {
                    send,
                    recv,
                    from,
                    to,
                    bytes,
                }),
                None => self.out.unmatched_recvs.push(recv),
            }
        }
    }

    /// Drain leftover sends into `unmatched_sends` and return the matching.
    pub fn finish(mut self) -> Matching {
        for q in self.pending.values() {
            self.out.unmatched_sends.extend(q.iter().map(|&(id, _)| id));
        }
        self.out.unmatched_sends.sort();
        self.out
    }
}

/// Match sends to receives by (source, destination, tag) in FIFO order.
///
/// The trace's timelines are indexed by rank position in `trace.procs`;
/// ranks referenced by `Send`/`Recv` events are resolved through each
/// timeline's location.
pub fn match_messages(trace: &Trace) -> Matching {
    // FIFO queues of pending sends per (from, to, tag), collected in
    // per-timeline order (which is program order, the order MPI's
    // non-overtaking rule speaks about).
    let mut m = MessageMatcher::new();
    for p in 0..trace.n_procs() {
        let from = trace.procs[p].location.rank;
        for (i, e) in trace.procs[p].events.iter().enumerate() {
            m.feed_send(from, p, i, &e.kind);
        }
    }

    // Second pass: receives consume sends FIFO.
    for p in 0..trace.n_procs() {
        let to = trace.procs[p].location.rank;
        for (i, e) in trace.procs[p].events.iter().enumerate() {
            m.feed_recv(to, p, i, &e.kind);
        }
    }
    m.finish()
}

/// One member's participation in a collective instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollMember {
    /// Rank of the member.
    pub rank: Rank,
    /// Its `CollBegin` event.
    pub begin: EventId,
    /// Its `CollEnd` event.
    pub end: EventId,
}

/// A reconstructed collective operation instance across all participants.
#[derive(Debug, Clone)]
pub struct CollectiveInstance {
    /// Which operation.
    pub op: CollOp,
    /// Communicator.
    pub comm: CommId,
    /// Root rank for rooted flavours.
    pub root: Option<Rank>,
    /// Begin/end pair per participating rank.
    pub members: Vec<CollMember>,
}

impl CollectiveInstance {
    /// The member entry for the root, if the operation is rooted.
    pub fn root_member(&self) -> Option<&CollMember> {
        let root = self.root?;
        self.members.iter().find(|m| m.rank == root)
    }
}

/// One collective call of one timeline, in call order — the unit
/// [`collect_collective_calls`] scans out and
/// [`assemble_collective_instances`] zips into instances.
#[derive(Debug, Clone, Copy)]
pub struct CollCall {
    /// Rank of the calling timeline.
    pub rank: Rank,
    /// The call's `CollBegin` event.
    pub begin: EventId,
    /// The call's `CollEnd` event (`None` for a truncated trace).
    pub end: Option<EventId>,
    /// Which operation the caller recorded.
    pub op: CollOp,
    /// Root rank for rooted flavours.
    pub root: Option<Rank>,
}

/// Per-event collective call scanner for one timeline: the streaming face
/// of [`collect_collective_calls`]. Feed every event of timeline `p` in
/// program order; [`finish`] yields the per-communicator call lists the
/// batch scan would have produced, ready for
/// [`assemble_collective_instances`].
///
/// [`finish`]: CollectiveScanner::finish
#[derive(Debug)]
pub struct CollectiveScanner {
    p: usize,
    rank: Rank,
    out: HashMap<CommId, Vec<CollCall>>,
    // comm -> open call stack position for this proc.
    open: HashMap<CommId, usize>,
}

impl CollectiveScanner {
    /// Scanner for timeline `p` whose location rank is `rank`.
    pub fn new(p: usize, rank: Rank) -> Self {
        Self {
            p,
            rank,
            out: HashMap::new(),
            open: HashMap::new(),
        }
    }

    /// Feed event `i` of the timeline. Errors on a `CollEnd` with no open
    /// `CollBegin` on the same communicator.
    pub fn feed(&mut self, i: usize, kind: &EventKind) -> Result<(), String> {
        match *kind {
            EventKind::CollBegin { op, comm, root, .. } => {
                let list = self.out.entry(comm).or_default();
                self.open.insert(comm, list.len());
                list.push(CollCall {
                    rank: self.rank,
                    begin: EventId::new(self.p, i),
                    end: None,
                    op,
                    root,
                });
            }
            EventKind::CollEnd { comm, .. } => {
                let p = self.p;
                let idx = *self
                    .open
                    .get(&comm)
                    .ok_or_else(|| format!("CollEnd without CollBegin at proc {p}"))?;
                self.out.get_mut(&comm).expect("open implies list")[idx].end =
                    Some(EventId::new(self.p, i));
            }
            _ => {}
        }
        Ok(())
    }

    /// The per-communicator call lists, in call order.
    pub fn finish(self) -> HashMap<CommId, Vec<CollCall>> {
        self.out
    }
}

/// Scan timeline `p` for collective calls, grouped per communicator in
/// call order. One shard of [`match_collectives`]'s scan pass. Errors on a
/// `CollEnd` with no open `CollBegin` on the same communicator.
pub fn collect_collective_calls(
    trace: &Trace,
    p: usize,
) -> Result<HashMap<CommId, Vec<CollCall>>, String> {
    let pt = &trace.procs[p];
    let mut scanner = CollectiveScanner::new(p, pt.location.rank);
    for (i, e) in pt.events.iter().enumerate() {
        scanner.feed(i, &e.kind)?;
    }
    Ok(scanner.finish())
}

/// Zip the per-timeline call lists of one communicator into instances:
/// the k-th call of every participating timeline belongs to instance k.
/// `lists[p]` is timeline `p`'s call list (empty for non-participants).
/// One shard of [`match_collectives`]'s assembly pass — communicators are
/// independent, so they parallelise freely.
pub fn assemble_collective_instances(
    comm: CommId,
    lists: &[Vec<CollCall>],
) -> Result<Vec<CollectiveInstance>, String> {
    let participating: Vec<usize> = (0..lists.len()).filter(|&p| !lists[p].is_empty()).collect();
    let n_calls = participating
        .iter()
        .map(|&p| lists[p].len())
        .max()
        .unwrap_or(0);
    let mut out = Vec::with_capacity(n_calls);
    for k in 0..n_calls {
        let mut members = Vec::new();
        let mut op: Option<CollOp> = None;
        let mut root: Option<Rank> = None;
        for &p in &participating {
            let Some(call) = lists[p].get(k) else {
                return Err(format!("rank at proc {p} missing collective #{k} on {comm}"));
            };
            match op {
                None => {
                    op = Some(call.op);
                    root = call.root;
                }
                Some(o) if o != call.op => {
                    return Err(format!(
                        "collective #{k} on {comm}: op mismatch {o:?} vs {:?}",
                        call.op
                    ));
                }
                _ => {}
            }
            let end = call.end.ok_or_else(|| {
                format!("collective #{k} on {comm}: missing CollEnd at proc {p}")
            })?;
            members.push(CollMember {
                rank: call.rank,
                begin: call.begin,
                end,
            });
        }
        out.push(CollectiveInstance {
            op: op.expect("non-empty instance"),
            comm,
            root,
            members,
        });
    }
    Ok(out)
}

/// Reconstruct collective instances: within one communicator, the k-th
/// collective call of every rank belongs to instance k (MPI requires all
/// ranks of a communicator to issue collectives in the same order).
///
/// Returns instances in per-communicator call order. Instances whose `op`
/// differs across ranks indicate a malformed trace and are reported via
/// `Err` with the instance index.
pub fn match_collectives(trace: &Trace) -> Result<Vec<CollectiveInstance>, String> {
    let mut per_comm: HashMap<CommId, Vec<Vec<CollCall>>> = HashMap::new();
    for p in 0..trace.n_procs() {
        for (comm, list) in collect_collective_calls(trace, p)? {
            let lists = per_comm
                .entry(comm)
                .or_insert_with(|| vec![Vec::new(); trace.n_procs()]);
            lists[p] = list;
        }
    }

    let mut comms: Vec<_> = per_comm.keys().copied().collect();
    comms.sort();
    let mut out = Vec::new();
    for comm in comms {
        out.extend(assemble_collective_instances(comm, &per_comm[&comm])?);
    }
    Ok(out)
}

/// One thread's view of a parallel region instance (POMP model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionThread {
    /// Timeline index of the thread.
    pub proc: usize,
    /// The thread's first event of the region (index into its timeline).
    pub first: u32,
    /// The thread's last event of the region (inclusive).
    pub last: u32,
    /// Barrier enter event, if present.
    pub barrier_enter: Option<EventId>,
    /// Barrier exit event, if present.
    pub barrier_exit: Option<EventId>,
}

/// A reconstructed OpenMP parallel region instance.
#[derive(Debug, Clone)]
pub struct ParallelRegion {
    /// Region id from the fork event.
    pub region: RegionId,
    /// The master's `Fork` event.
    pub fork: EventId,
    /// The master's `Join` event.
    pub join: EventId,
    /// Per-thread spans (including the master's own work inside the
    /// region).
    pub threads: Vec<RegionThread>,
}

/// Reconstruct parallel regions from POMP events.
///
/// Assumes the trace's timelines are the threads of one team (as produced by
/// [`Trace::for_threads`]): thread 0 carries `Fork`/`Join`, every thread
/// carries its in-region events bracketed (logically) between consecutive
/// fork/join pairs, in the same instance order on all threads.
pub fn match_parallel_regions(trace: &Trace) -> Result<Vec<ParallelRegion>, String> {
    if trace.procs.is_empty() {
        return Ok(Vec::new());
    }
    // Collect fork/join pairs on the master timeline.
    let master = 0usize;
    let mut forks: Vec<(RegionId, EventId)> = Vec::new();
    let mut joins: Vec<EventId> = Vec::new();
    for (i, e) in trace.procs[master].events.iter().enumerate() {
        match e.kind {
            EventKind::Fork { region } => forks.push((region, EventId::new(master, i))),
            EventKind::Join { .. } => joins.push(EventId::new(master, i)),
            _ => {}
        }
    }
    if forks.len() != joins.len() {
        return Err(format!(
            "unbalanced fork/join: {} forks, {} joins",
            forks.len(),
            joins.len()
        ));
    }

    // Per thread, split its event stream into region instances by counting
    // barrier enters/exits per instance: thread-local events between the
    // k-th region markers belong to instance k. We use explicit per-thread
    // instance cursors driven by BarrierExit (every instance ends with the
    // implicit barrier in the POMP model).
    let mut regions: Vec<ParallelRegion> = forks
        .iter()
        .zip(&joins)
        .map(|(&(region, fork), &join)| ParallelRegion {
            region,
            fork,
            join,
            threads: Vec::new(),
        })
        .collect();

    for (p, pt) in trace.procs.iter().enumerate() {
        let mut inst = 0usize;
        let mut current: Option<RegionThread> = None;
        for (i, e) in pt.events.iter().enumerate() {
            match e.kind {
                // Fork/Join live outside the per-thread span.
                EventKind::Fork { .. } | EventKind::Join { .. } => {}
                EventKind::BarrierEnter { .. } => {
                    let cur = current.get_or_insert(RegionThread {
                        proc: p,
                        first: i as u32,
                        last: i as u32,
                        barrier_enter: None,
                        barrier_exit: None,
                    });
                    cur.barrier_enter = Some(EventId::new(p, i));
                    cur.last = i as u32;
                }
                EventKind::BarrierExit { .. } => {
                    let cur = current.get_or_insert(RegionThread {
                        proc: p,
                        first: i as u32,
                        last: i as u32,
                        barrier_enter: None,
                        barrier_exit: None,
                    });
                    cur.barrier_exit = Some(EventId::new(p, i));
                    cur.last = i as u32;
                    // The implicit barrier exit closes the instance.
                    let done = current.take().expect("just inserted");
                    let reg = regions.get_mut(inst).ok_or_else(|| {
                        format!("thread {p} has more region instances than the master forked")
                    })?;
                    reg.threads.push(done);
                    inst += 1;
                }
                _ => {
                    let cur = current.get_or_insert(RegionThread {
                        proc: p,
                        first: i as u32,
                        last: i as u32,
                        barrier_enter: None,
                        barrier_exit: None,
                    });
                    cur.last = i as u32;
                }
            }
        }
        if current.is_some() {
            return Err(format!("thread {p}: trailing region without barrier exit"));
        }
    }
    Ok(regions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Tag;
    use simclock::Time;

    fn us(n: i64) -> Time {
        Time::from_us(n)
    }

    #[test]
    fn fifo_matching_is_order_based_not_time_based() {
        let mut t = Trace::for_ranks(2);
        // Two messages 0 -> 1 with the same tag; timestamps deliberately
        // scrambled — matching must follow program order.
        t.procs[0].push(us(10), EventKind::Send { to: Rank(1), tag: Tag(7), bytes: 1 });
        t.procs[0].push(us(11), EventKind::Send { to: Rank(1), tag: Tag(7), bytes: 2 });
        t.procs[1].push(us(5), EventKind::Recv { from: Rank(0), tag: Tag(7), bytes: 1 });
        t.procs[1].push(us(6), EventKind::Recv { from: Rank(0), tag: Tag(7), bytes: 2 });
        let m = match_messages(&t);
        assert!(m.is_complete());
        assert_eq!(m.messages.len(), 2);
        assert_eq!(m.messages[0].send, EventId::new(0, 0));
        assert_eq!(m.messages[0].recv, EventId::new(1, 0));
        assert_eq!(m.messages[0].bytes, 1);
        assert_eq!(m.messages[1].bytes, 2);
    }

    #[test]
    fn different_tags_do_not_cross_match() {
        let mut t = Trace::for_ranks(2);
        t.procs[0].push(us(1), EventKind::Send { to: Rank(1), tag: Tag(1), bytes: 0 });
        t.procs[1].push(us(2), EventKind::Recv { from: Rank(0), tag: Tag(2), bytes: 0 });
        let m = match_messages(&t);
        assert_eq!(m.messages.len(), 0);
        assert_eq!(m.unmatched_sends.len(), 1);
        assert_eq!(m.unmatched_recvs.len(), 1);
        assert!(!m.is_complete());
    }

    #[test]
    fn collective_reconstruction_by_call_order() {
        let mut t = Trace::for_ranks(2);
        for p in 0..2 {
            for _ in 0..2 {
                t.procs[p].push(
                    us(1),
                    EventKind::CollBegin {
                        op: CollOp::Allreduce,
                        comm: CommId::WORLD,
                        root: None,
                        bytes: 8,
                    },
                );
                t.procs[p].push(
                    us(2),
                    EventKind::CollEnd {
                        op: CollOp::Allreduce,
                        comm: CommId::WORLD,
                        root: None,
                        bytes: 8,
                    },
                );
            }
        }
        let insts = match_collectives(&t).unwrap();
        assert_eq!(insts.len(), 2);
        assert_eq!(insts[0].members.len(), 2);
        assert_eq!(insts[0].op, CollOp::Allreduce);
    }

    #[test]
    fn collective_op_mismatch_is_detected() {
        let mut t = Trace::for_ranks(2);
        t.procs[0].push(
            us(1),
            EventKind::CollBegin { op: CollOp::Barrier, comm: CommId::WORLD, root: None, bytes: 0 },
        );
        t.procs[0].push(
            us(2),
            EventKind::CollEnd { op: CollOp::Barrier, comm: CommId::WORLD, root: None, bytes: 0 },
        );
        t.procs[1].push(
            us(1),
            EventKind::CollBegin { op: CollOp::Bcast, comm: CommId::WORLD, root: Some(Rank(0)), bytes: 0 },
        );
        t.procs[1].push(
            us(2),
            EventKind::CollEnd { op: CollOp::Bcast, comm: CommId::WORLD, root: Some(Rank(0)), bytes: 0 },
        );
        assert!(match_collectives(&t).is_err());
    }

    #[test]
    fn rooted_collective_finds_root_member() {
        let mut t = Trace::for_ranks(3);
        for p in 0..3 {
            t.procs[p].push(
                us(1),
                EventKind::CollBegin {
                    op: CollOp::Bcast,
                    comm: CommId::WORLD,
                    root: Some(Rank(1)),
                    bytes: 4,
                },
            );
            t.procs[p].push(
                us(2),
                EventKind::CollEnd {
                    op: CollOp::Bcast,
                    comm: CommId::WORLD,
                    root: Some(Rank(1)),
                    bytes: 4,
                },
            );
        }
        let insts = match_collectives(&t).unwrap();
        assert_eq!(insts.len(), 1);
        let rm = insts[0].root_member().unwrap();
        assert_eq!(rm.rank, Rank(1));
    }

    #[test]
    fn parallel_region_reconstruction() {
        let mut t = Trace::for_threads(2);
        let r = RegionId(3);
        // Master: fork, work, barrier, join.
        t.procs[0].push(us(0), EventKind::Fork { region: r });
        t.procs[0].push(us(1), EventKind::Enter { region: r });
        t.procs[0].push(us(2), EventKind::Exit { region: r });
        t.procs[0].push(us(3), EventKind::BarrierEnter { region: r });
        t.procs[0].push(us(4), EventKind::BarrierExit { region: r });
        t.procs[0].push(us(5), EventKind::Join { region: r });
        // Worker: work, barrier.
        t.procs[1].push(us(1), EventKind::Enter { region: r });
        t.procs[1].push(us(2), EventKind::Exit { region: r });
        t.procs[1].push(us(3), EventKind::BarrierEnter { region: r });
        t.procs[1].push(us(4), EventKind::BarrierExit { region: r });

        let regions = match_parallel_regions(&t).unwrap();
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].threads.len(), 2);
        assert_eq!(regions[0].region, r);
        let master = &regions[0].threads[0];
        assert!(master.barrier_enter.is_some() && master.barrier_exit.is_some());
    }

    #[test]
    fn unbalanced_fork_join_rejected() {
        let mut t = Trace::for_threads(1);
        t.procs[0].push(us(0), EventKind::Fork { region: RegionId(0) });
        assert!(match_parallel_regions(&t).is_err());
    }
}
