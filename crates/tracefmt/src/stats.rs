//! Small, dependency-free statistics helpers used by the experiments
//! (latency tables, deviation series, regression of drift lines).

/// Streaming mean/variance accumulator (Welford's algorithm — numerically
/// stable for the paper's µs-scale latencies with tiny standard deviations,
/// cf. Table II's `9.80E-04` µs).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty accumulator.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, it: I) {
        for x in it {
            self.add(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(it: I) -> Self {
        let mut s = Summary::new();
        s.extend(it);
        s
    }
}

/// Ordinary least-squares line fit `y = slope·x + intercept`.
///
/// Used to characterise drift lines in deviation series and by the Duda
/// regression baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept at `x = 0`.
    pub intercept: f64,
    /// Coefficient of determination `R²` (1.0 when the fit is exact;
    /// 0.0 returned for degenerate inputs).
    pub r2: f64,
}

/// Fit a least-squares line through `(x, y)` points.
///
/// Returns `None` for fewer than two points or zero x-variance.
pub fn fit_line(points: &[(f64, f64)]) -> Option<LineFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for &(x, y) in points {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r2 = if syy == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    Some(LineFit {
        slope,
        intercept,
        r2,
    })
}

/// p-th percentile (0 ≤ p ≤ 100) by linear interpolation on a *sorted*
/// slice. Returns `None` for an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    let p = p.clamp(0.0, 100.0);
    let pos = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        // Sample std dev with n-1: sqrt(32/7).
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty_and_single() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        let mut s = Summary::new();
        s.add(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn summary_is_stable_for_tiny_spread() {
        // Table II scale: mean 4.29 µs, std dev 1e-3 µs.
        let mut s = Summary::new();
        for i in 0..999 {
            s.add(4.29 + 1e-3 * ((i % 3) as f64 - 1.0));
        }
        assert!((s.mean() - 4.29).abs() < 1e-9);
        assert!(s.std_dev() < 2e-3);
        assert!(s.std_dev() > 1e-4);
    }

    #[test]
    fn line_fit_exact() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        let f = fit_line(&pts).unwrap();
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn line_fit_degenerate() {
        assert!(fit_line(&[(1.0, 2.0)]).is_none());
        assert!(fit_line(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
        // Horizontal line: slope 0, r2 == 1 by convention (syy == 0).
        let f = fit_line(&[(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r2, 1.0);
    }

    #[test]
    fn percentiles() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(percentile(&v, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
    }
}
