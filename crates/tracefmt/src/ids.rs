//! Identifier newtypes for trace entities.
//!
//! Strong typing keeps ranks, threads, tags, regions and communicators from
//! being confused with one another in the analysis code; all of them are
//! thin wrappers around small integers and are free at runtime.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An MPI process rank.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Rank(pub u32);

impl Rank {
    /// Rank as a usable index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A thread within a process (OpenMP); thread 0 is the master.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct ThreadId(pub u32);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The (process, thread) pair identifying an event's timeline — what VAMPIR
/// draws as one horizontal line.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Location {
    /// Process rank.
    pub rank: Rank,
    /// Thread within the process.
    pub thread: ThreadId,
}

impl Location {
    /// Timeline of an MPI process (thread 0).
    pub fn rank(rank: u32) -> Self {
        Location {
            rank: Rank(rank),
            thread: ThreadId(0),
        }
    }

    /// Timeline of an OpenMP thread within rank 0.
    pub fn thread(thread: u32) -> Self {
        Location {
            rank: Rank(0),
            thread: ThreadId(thread),
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.rank, self.thread)
    }
}

/// A source-code region (function, loop, MPI call wrapper).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct RegionId(pub u32);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reg{}", self.0)
    }
}

/// An MPI message tag.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Tag(pub u32);

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

/// An MPI communicator.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct CommId(pub u32);

impl CommId {
    /// The world communicator.
    pub const WORLD: CommId = CommId(0);
}

impl fmt::Display for CommId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "comm{}", self.0)
    }
}

/// Stable identity of one event inside a [`crate::Trace`]: process-trace
/// index plus position within that process's event vector.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct EventId {
    /// Index of the process trace within the trace.
    pub proc: u32,
    /// Index of the event within the process trace.
    pub idx: u32,
}

impl EventId {
    /// Construct from indices.
    pub fn new(proc: usize, idx: usize) -> Self {
        EventId {
            proc: proc as u32,
            idx: idx as u32,
        }
    }

    /// Process-trace index.
    #[inline]
    pub fn p(self) -> usize {
        self.proc as usize
    }

    /// Event index within the process trace.
    #[inline]
    pub fn i(self) -> usize {
        self.idx as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}.{}", self.proc, self.idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Location::rank(3).to_string(), "r3:t0");
        assert_eq!(Location::thread(2).to_string(), "r0:t2");
        assert_eq!(EventId::new(1, 9).to_string(), "e1.9");
        assert_eq!(Tag(5).to_string(), "tag5");
        assert_eq!(RegionId(7).to_string(), "reg7");
        assert_eq!(CommId::WORLD.to_string(), "comm0");
    }

    #[test]
    fn event_id_round_trip() {
        let e = EventId::new(12, 34);
        assert_eq!(e.p(), 12);
        assert_eq!(e.i(), 34);
    }

    #[test]
    fn rank_ordering() {
        assert!(Rank(1) < Rank(2));
        assert_eq!(Rank(4).idx(), 4);
    }
}
