//! Region-name registry.
//!
//! Trace formats ship a definition table mapping numeric region ids to
//! source-level names ("MPI_Send", "solver_step", …); analyses and
//! time-line views are unreadable without it. [`RegionRegistry`] is that
//! table, pre-seeded with the MPI wrapper regions the simulated tracer
//! emits, extensible with user regions, and round-trippable through a text
//! sidecar like the trace codecs.

use crate::ids::RegionId;
use std::collections::HashMap;

/// Mapping between region ids and human-readable names.
#[derive(Debug, Clone, Default)]
pub struct RegionRegistry {
    names: HashMap<RegionId, String>,
}

impl RegionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-seeded with the MPI wrapper regions used by the
    /// simulated PMPI tracer (ids must match `mpisim::program::regions`).
    pub fn with_mpi_wrappers() -> Self {
        let mut r = Self::new();
        for (id, name) in [
            (1, "MPI_Send"),
            (2, "MPI_Recv"),
            (3, "MPI_Init"),
            (4, "MPI_Finalize"),
            (5, "MPI_Isend"),
            (6, "MPI_Irecv"),
            (7, "MPI_Wait"),
            (10, "MPI_Barrier"),
            (11, "MPI_Bcast"),
            (12, "MPI_Scatter"),
            (13, "MPI_Reduce"),
            (14, "MPI_Gather"),
            (15, "MPI_Allreduce"),
            (16, "MPI_Allgather"),
            (17, "MPI_Alltoall"),
            (18, "MPI_Scan"),
        ] {
            r.define(RegionId(id), name);
        }
        r
    }

    /// Define (or redefine) a region name.
    pub fn define(&mut self, id: RegionId, name: &str) {
        self.names.insert(id, name.to_string());
    }

    /// Name of a region, if defined.
    pub fn name(&self, id: RegionId) -> Option<&str> {
        self.names.get(&id).map(String::as_str)
    }

    /// Name of a region, or a `reg<N>` placeholder.
    pub fn name_or_id(&self, id: RegionId) -> String {
        self.name(id).map_or_else(|| id.to_string(), str::to_string)
    }

    /// Number of definitions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing is defined.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Serialise as a definitions sidecar (`<id> <name>` per line, sorted).
    pub fn to_text(&self) -> String {
        let mut rows: Vec<(&RegionId, &String)> = self.names.iter().collect();
        rows.sort_by_key(|(id, _)| **id);
        let mut out = String::new();
        for (id, name) in rows {
            out.push_str(&format!("{} {}\n", id.0, name));
        }
        out
    }

    /// Parse a definitions sidecar; malformed lines are reported.
    pub fn from_text(s: &str) -> Result<Self, String> {
        let mut r = Self::new();
        for (ln, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (id, name) = line
                .split_once(' ')
                .ok_or_else(|| format!("line {}: missing name", ln + 1))?;
            let id: u32 = id
                .parse()
                .map_err(|_| format!("line {}: bad region id {id:?}", ln + 1))?;
            r.define(RegionId(id), name);
        }
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpi_wrappers_are_seeded() {
        let r = RegionRegistry::with_mpi_wrappers();
        assert_eq!(r.name(RegionId(1)), Some("MPI_Send"));
        assert_eq!(r.name(RegionId(15)), Some("MPI_Allreduce"));
        assert_eq!(r.name(RegionId(18)), Some("MPI_Scan"));
        assert!(r.len() >= 16);
        assert!(!r.is_empty());
    }

    #[test]
    fn define_and_fallback() {
        let mut r = RegionRegistry::new();
        r.define(RegionId(1000), "solver_step");
        assert_eq!(r.name_or_id(RegionId(1000)), "solver_step");
        assert_eq!(r.name_or_id(RegionId(77)), "reg77");
        assert_eq!(r.name(RegionId(77)), None);
    }

    #[test]
    fn text_round_trip() {
        let mut r = RegionRegistry::with_mpi_wrappers();
        r.define(RegionId(1000), "halo exchange phase");
        let text = r.to_text();
        let back = RegionRegistry::from_text(&text).unwrap();
        assert_eq!(back.len(), r.len());
        assert_eq!(back.name(RegionId(1000)), Some("halo exchange phase"));
        assert_eq!(back.name(RegionId(2)), Some("MPI_Recv"));
    }

    #[test]
    fn sidecar_parsing_errors() {
        assert!(RegionRegistry::from_text("notanumber foo").is_err());
        assert!(RegionRegistry::from_text("42").is_err());
        // Comments and blanks are fine.
        let r = RegionRegistry::from_text("# header\n\n7 MPI_Wait\n").unwrap();
        assert_eq!(r.name(RegionId(7)), Some("MPI_Wait"));
    }

    #[test]
    fn wrapper_ids_match_mpisim_constants() {
        // Guard against drift between the two crates' id tables: the
        // mnemonic ids here must stay in sync with mpisim::program::regions.
        // (mpisim depends on tracefmt, so the check lives in mpisim's tests
        // too; this is the tracefmt-side pin.)
        let r = RegionRegistry::with_mpi_wrappers();
        assert_eq!(r.name(RegionId(5)), Some("MPI_Isend"));
        assert_eq!(r.name(RegionId(6)), Some("MPI_Irecv"));
        assert_eq!(r.name(RegionId(7)), Some("MPI_Wait"));
    }
}
