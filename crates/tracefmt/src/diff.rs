//! Trace differencing: quantify what a timestamp correction did.
//!
//! The CLC's whole selling point is *minimal, interval-preserving*
//! modification: it should move as few events as little as possible while
//! restoring the clock condition. [`diff_traces`] compares two structurally
//! identical traces (same events, possibly different timestamps) and
//! reports the shift distribution — total/mean/max displacement per process
//! and the distortion of local interval lengths — the quantities the CLC
//! literature uses to compare correction quality.

use crate::stats::Summary;
use crate::trace::Trace;
use simclock::Dur;

/// Why two traces cannot be diffed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffError {
    /// Different number of timelines.
    ProcCount(usize, usize),
    /// A timeline has different event counts.
    EventCount(usize, usize, usize),
    /// An event's kind changed (the traces are not the same run).
    KindMismatch(usize, usize),
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::ProcCount(a, b) => write!(f, "{a} vs {b} timelines"),
            DiffError::EventCount(p, a, b) => {
                write!(f, "timeline {p}: {a} vs {b} events")
            }
            DiffError::KindMismatch(p, i) => {
                write!(f, "event {p}.{i}: kind differs — not the same run")
            }
        }
    }
}

impl std::error::Error for DiffError {}

/// Shift statistics for one timeline.
#[derive(Debug, Clone)]
pub struct ProcDiff {
    /// Events whose timestamp changed.
    pub moved: usize,
    /// Events inspected.
    pub total: usize,
    /// Shift distribution in µs (after − before; negative = moved earlier).
    pub shift_us: Summary,
    /// Relative change of consecutive-event interval lengths, percent
    /// (only intervals that were positive before are counted).
    pub interval_distortion_pct: Summary,
}

/// A whole-trace diff.
#[derive(Debug, Clone)]
pub struct TraceDiff {
    /// Per-timeline statistics.
    pub procs: Vec<ProcDiff>,
}

impl TraceDiff {
    /// Total number of moved events.
    pub fn moved(&self) -> usize {
        self.procs.iter().map(|p| p.moved).sum()
    }

    /// Largest absolute shift across the whole trace, µs.
    pub fn max_abs_shift_us(&self) -> f64 {
        self.procs
            .iter()
            .map(|p| p.shift_us.min().abs().max(p.shift_us.max().abs()))
            .fold(0.0, f64::max)
    }

    /// Mean interval distortion across all timelines, percent.
    pub fn mean_interval_distortion_pct(&self) -> f64 {
        let mut s = Summary::new();
        for p in &self.procs {
            if p.interval_distortion_pct.count() > 0 {
                s.add(p.interval_distortion_pct.mean());
            }
        }
        s.mean()
    }
}

/// Diff two structurally identical traces (`before` → `after`).
///
/// ```
/// use simclock::Time;
/// use tracefmt::{diff_traces, EventKind, RegionId, Trace};
///
/// let mut before = Trace::for_ranks(1);
/// before.procs[0].push(Time::from_us(10), EventKind::Enter { region: RegionId(0) });
/// let mut after = before.clone();
/// after.procs[0].events[0].time = Time::from_us(25);
///
/// let d = diff_traces(&before, &after).unwrap();
/// assert_eq!(d.moved(), 1);
/// assert!((d.max_abs_shift_us() - 15.0).abs() < 1e-9);
/// ```
pub fn diff_traces(before: &Trace, after: &Trace) -> Result<TraceDiff, DiffError> {
    if before.n_procs() != after.n_procs() {
        return Err(DiffError::ProcCount(before.n_procs(), after.n_procs()));
    }
    let mut procs = Vec::with_capacity(before.n_procs());
    for (p, (b, a)) in before.procs.iter().zip(&after.procs).enumerate() {
        if b.events.len() != a.events.len() {
            return Err(DiffError::EventCount(p, b.events.len(), a.events.len()));
        }
        let mut moved = 0usize;
        let mut shift_us = Summary::new();
        let mut interval = Summary::new();
        for (i, (eb, ea)) in b.events.iter().zip(&a.events).enumerate() {
            if eb.kind != ea.kind {
                return Err(DiffError::KindMismatch(p, i));
            }
            let shift = ea.time - eb.time;
            if shift != Dur::ZERO {
                moved += 1;
            }
            shift_us.add(shift.as_us_f64());
        }
        for w in 0..b.events.len().saturating_sub(1) {
            let orig = (b.events[w + 1].time - b.events[w].time).as_us_f64();
            if orig > 0.0 {
                let corr = (a.events[w + 1].time - a.events[w].time).as_us_f64();
                interval.add(100.0 * (corr - orig).abs() / orig);
            }
        }
        procs.push(ProcDiff {
            moved,
            total: b.events.len(),
            shift_us,
            interval_distortion_pct: interval,
        });
    }
    Ok(TraceDiff { procs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::ids::{Rank, RegionId, Tag};
    use simclock::Time;

    fn base() -> Trace {
        let mut t = Trace::for_ranks(2);
        for k in 0..5i64 {
            t.procs[0].push(Time::from_us(k * 10), EventKind::Enter { region: RegionId(0) });
            t.procs[1].push(Time::from_us(k * 10), EventKind::Enter { region: RegionId(0) });
        }
        t
    }

    #[test]
    fn identical_traces_diff_to_zero() {
        let t = base();
        let d = diff_traces(&t, &t).unwrap();
        assert_eq!(d.moved(), 0);
        assert_eq!(d.max_abs_shift_us(), 0.0);
        assert_eq!(d.mean_interval_distortion_pct(), 0.0);
    }

    #[test]
    fn shifts_and_intervals_are_measured() {
        let before = base();
        let mut after = before.clone();
        // Shift proc 1's last two events by +5 and +15 µs.
        after.procs[1].events[3].time = Time::from_us(35);
        after.procs[1].events[4].time = Time::from_us(55);
        let d = diff_traces(&before, &after).unwrap();
        assert_eq!(d.moved(), 2);
        assert_eq!(d.procs[0].moved, 0);
        assert_eq!(d.procs[1].moved, 2);
        assert!((d.max_abs_shift_us() - 15.0).abs() < 1e-9);
        // Intervals on proc 1: 10,10,15,20 vs 10,10,10,10 → distortions
        // 0,0,50%,100%... interval[2]=35-20=15 (+50%), interval[3]=55-35=20
        // but original interval[3]=10 → |20-10|/10 = 100%.
        let mean = d.procs[1].interval_distortion_pct.mean();
        assert!((mean - (0.0 + 0.0 + 50.0 + 100.0) / 4.0).abs() < 1e-9, "{mean}");
    }

    #[test]
    fn structural_mismatches_are_detected() {
        let a = base();
        let mut b = base();
        b.procs.push(crate::trace::ProcessTrace::new(crate::ids::Location::rank(9)));
        assert!(matches!(diff_traces(&a, &b), Err(DiffError::ProcCount(2, 3))));

        let mut c = base();
        c.procs[0].push(Time::from_us(99), EventKind::Enter { region: RegionId(0) });
        assert!(matches!(
            diff_traces(&a, &c),
            Err(DiffError::EventCount(0, 5, 6))
        ));

        let mut d = base();
        d.procs[1].events[0].kind = EventKind::Send { to: Rank(0), tag: Tag(0), bytes: 0 };
        assert!(matches!(
            diff_traces(&a, &d),
            Err(DiffError::KindMismatch(1, 0))
        ));
    }
}
