//! Trace containers.
//!
//! A [`ProcessTrace`] is the event stream of one timeline (process or
//! thread), in the order the events were generated; a [`Trace`] bundles all
//! timelines of a run. Timestamps within one timeline are monotone by
//! construction (the tracer's clock is clamped), but timestamps *across*
//! timelines are exactly as unreliable as the paper describes.

use crate::event::{EventKind, EventRecord};
use crate::ids::{EventId, Location};
use serde::{Deserialize, Serialize};
use simclock::Time;

/// Event stream of one timeline.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProcessTrace {
    /// Which timeline this is.
    pub location: Location,
    /// Events in generation order.
    pub events: Vec<EventRecord>,
}

impl ProcessTrace {
    /// Empty trace for a timeline.
    pub fn new(location: Location) -> Self {
        ProcessTrace {
            location,
            events: Vec::new(),
        }
    }

    /// Append an event.
    pub fn push(&mut self, time: Time, kind: EventKind) {
        self.events.push(EventRecord::new(time, kind));
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Are the local timestamps non-decreasing (they must be, for a real
    /// tracer reading a monotone clock)?
    pub fn is_locally_monotone(&self) -> bool {
        self.events.windows(2).all(|w| w[0].time <= w[1].time)
    }
}

/// All timelines of one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// One entry per timeline.
    pub procs: Vec<ProcessTrace>,
}

impl Trace {
    /// Trace with one empty timeline per MPI rank `0..n`.
    pub fn for_ranks(n: usize) -> Self {
        Trace {
            procs: (0..n)
                .map(|r| ProcessTrace::new(Location::rank(r as u32)))
                .collect(),
        }
    }

    /// Trace with one empty timeline per OpenMP thread `0..n` (rank 0).
    pub fn for_threads(n: usize) -> Self {
        Trace {
            procs: (0..n)
                .map(|t| ProcessTrace::new(Location::thread(t as u32)))
                .collect(),
        }
    }

    /// Number of timelines.
    pub fn n_procs(&self) -> usize {
        self.procs.len()
    }

    /// Total number of events across all timelines.
    pub fn n_events(&self) -> usize {
        self.procs.iter().map(|p| p.events.len()).sum()
    }

    /// Number of message-transfer events (sends + receives), the
    /// denominator context of the paper's Fig. 7.
    pub fn n_message_events(&self) -> usize {
        self.procs
            .iter()
            .flat_map(|p| p.events.iter())
            .filter(|e| e.kind.is_message())
            .count()
    }

    /// Look up an event.
    pub fn event(&self, id: EventId) -> &EventRecord {
        &self.procs[id.p()].events[id.i()]
    }

    /// Mutable event access (used by timestamp-correction algorithms).
    pub fn event_mut(&mut self, id: EventId) -> &mut EventRecord {
        &mut self.procs[id.p()].events[id.i()]
    }

    /// Timestamp of an event.
    pub fn time(&self, id: EventId) -> Time {
        self.event(id).time
    }

    /// Iterate `(EventId, &EventRecord)` over all timelines.
    pub fn iter_events(&self) -> impl Iterator<Item = (EventId, &EventRecord)> {
        self.procs.iter().enumerate().flat_map(|(p, pt)| {
            pt.events
                .iter()
                .enumerate()
                .map(move |(i, e)| (EventId::new(p, i), e))
        })
    }

    /// Apply a per-timeline timestamp mapping: `f(proc_index, old) -> new`.
    /// This is how offset alignment and interpolation are applied postmortem.
    pub fn map_times<F: FnMut(usize, Time) -> Time>(&mut self, mut f: F) {
        for (p, pt) in self.procs.iter_mut().enumerate() {
            for e in &mut pt.events {
                e.time = f(p, e.time);
            }
        }
    }

    /// All timelines locally monotone?
    pub fn is_locally_monotone(&self) -> bool {
        self.procs.iter().all(|p| p.is_locally_monotone())
    }

    /// Earliest and latest timestamp in the trace, if any events exist.
    pub fn time_span(&self) -> Option<(Time, Time)> {
        let mut span: Option<(Time, Time)> = None;
        for (_, e) in self.iter_events() {
            span = Some(match span {
                None => (e.time, e.time),
                Some((lo, hi)) => (lo.min(e.time), hi.max(e.time)),
            });
        }
        span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Rank, RegionId, Tag};

    fn sample() -> Trace {
        let mut t = Trace::for_ranks(2);
        t.procs[0].push(Time::from_us(1), EventKind::Enter { region: RegionId(1) });
        t.procs[0].push(
            Time::from_us(2),
            EventKind::Send { to: Rank(1), tag: Tag(0), bytes: 8 },
        );
        t.procs[0].push(Time::from_us(3), EventKind::Exit { region: RegionId(1) });
        t.procs[1].push(
            Time::from_us(5),
            EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 8 },
        );
        t
    }

    #[test]
    fn counters() {
        let t = sample();
        assert_eq!(t.n_procs(), 2);
        assert_eq!(t.n_events(), 4);
        assert_eq!(t.n_message_events(), 2);
        assert_eq!(t.iter_events().count(), 4);
    }

    #[test]
    fn event_lookup_and_mutation() {
        let mut t = sample();
        let id = EventId::new(1, 0);
        assert_eq!(t.time(id), Time::from_us(5));
        t.event_mut(id).time = Time::from_us(9);
        assert_eq!(t.time(id), Time::from_us(9));
    }

    #[test]
    fn map_times_applies_per_proc() {
        let mut t = sample();
        t.map_times(|p, time| {
            if p == 0 {
                time + simclock::Dur::from_us(100)
            } else {
                time
            }
        });
        assert_eq!(t.time(EventId::new(0, 0)), Time::from_us(101));
        assert_eq!(t.time(EventId::new(1, 0)), Time::from_us(5));
    }

    #[test]
    fn monotonicity_check() {
        let mut t = sample();
        assert!(t.is_locally_monotone());
        t.procs[0].events[2].time = Time::from_us(0);
        assert!(!t.is_locally_monotone());
    }

    #[test]
    fn time_span() {
        let t = sample();
        assert_eq!(t.time_span(), Some((Time::from_us(1), Time::from_us(5))));
        assert_eq!(Trace::for_ranks(1).time_span(), None);
    }

    #[test]
    fn thread_trace_locations() {
        let t = Trace::for_threads(3);
        assert_eq!(t.procs[2].location, Location::thread(2));
    }
}
