//! On-disk trace archives.
//!
//! Real tracing tools store one file per process (rank-local buffers are
//! flushed independently — paper §III) plus a global metadata file; Scalasca
//! and OTF both follow this layout. [`write_archive`] / [`read_archive`]
//! implement the same structure:
//!
//! ```text
//! <dir>/metadata.txt      # version, timeline count, locations
//! <dir>/timeline_<k>.dtl  # binary event stream of timeline k
//! ```
//!
//! Each timeline file is the compact binary codec of [`crate::io`], so the
//! archive inherits its round-trip and truncation-detection guarantees.

use crate::io::{from_binary, to_binary, CodecError};
use crate::trace::{ProcessTrace, Trace};
use std::fs;
use std::io::{Read, Write};
use std::path::Path;

/// Archive format version tag.
const VERSION: u32 = 1;

/// Errors while reading or writing an archive.
#[derive(Debug)]
pub enum ArchiveError {
    /// Filesystem error.
    Io(std::io::Error),
    /// A timeline file failed to decode.
    Codec(usize, CodecError),
    /// Metadata malformed or inconsistent with the timeline files.
    BadMetadata(String),
}

impl std::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveError::Io(e) => write!(f, "io error: {e}"),
            ArchiveError::Codec(k, e) => write!(f, "timeline {k}: {e}"),
            ArchiveError::BadMetadata(s) => write!(f, "bad metadata: {s}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

impl From<std::io::Error> for ArchiveError {
    fn from(e: std::io::Error) -> Self {
        ArchiveError::Io(e)
    }
}

/// Write `trace` as an archive directory (created if missing; existing
/// timeline files are overwritten).
pub fn write_archive(dir: &Path, trace: &Trace) -> Result<(), ArchiveError> {
    fs::create_dir_all(dir)?;
    let mut meta = String::new();
    meta.push_str(&format!("version {VERSION}\n"));
    meta.push_str(&format!("timelines {}\n", trace.n_procs()));
    for (k, pt) in trace.procs.iter().enumerate() {
        meta.push_str(&format!(
            "timeline {k} rank {} thread {} events {}\n",
            pt.location.rank.0,
            pt.location.thread.0,
            pt.events.len()
        ));
        // One single-timeline trace per file, reusing the binary codec.
        let single = Trace {
            procs: vec![pt.clone()],
        };
        let bytes = to_binary(&single);
        let mut f = fs::File::create(dir.join(format!("timeline_{k}.dtl")))?;
        f.write_all(&bytes)?;
    }
    fs::write(dir.join("metadata.txt"), meta)?;
    Ok(())
}

/// Read an archive directory back into a trace. Timeline order follows the
/// metadata.
pub fn read_archive(dir: &Path) -> Result<Trace, ArchiveError> {
    let meta = fs::read_to_string(dir.join("metadata.txt"))?;
    let mut lines = meta.lines();
    let version = lines
        .next()
        .and_then(|l| l.strip_prefix("version "))
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or_else(|| ArchiveError::BadMetadata("missing version".into()))?;
    if version != VERSION {
        return Err(ArchiveError::BadMetadata(format!(
            "unsupported version {version}"
        )));
    }
    let n: usize = lines
        .next()
        .and_then(|l| l.strip_prefix("timelines "))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ArchiveError::BadMetadata("missing timeline count".into()))?;

    let mut procs: Vec<ProcessTrace> = Vec::with_capacity(n);
    for (k, line) in lines.enumerate() {
        if k >= n {
            break;
        }
        // `timeline <k> rank <r> thread <t> events <e>`
        let fields: Vec<&str> = line.split_ascii_whitespace().collect();
        if fields.len() != 8 || fields[0] != "timeline" {
            return Err(ArchiveError::BadMetadata(format!("line {k}: {line:?}")));
        }
        let declared_events: usize = fields[7]
            .parse()
            .map_err(|_| ArchiveError::BadMetadata(format!("line {k}: bad event count")))?;
        let mut buf = Vec::new();
        fs::File::open(dir.join(format!("timeline_{k}.dtl")))?.read_to_end(&mut buf)?;
        let single =
            from_binary(buf.into()).map_err(|e| ArchiveError::Codec(k, e))?;
        let pt = single
            .procs
            .into_iter()
            .next()
            .ok_or_else(|| ArchiveError::BadMetadata(format!("timeline {k} empty file")))?;
        if pt.events.len() != declared_events {
            return Err(ArchiveError::BadMetadata(format!(
                "timeline {k}: metadata says {declared_events} events, file has {}",
                pt.events.len()
            )));
        }
        procs.push(pt);
    }
    if procs.len() != n {
        return Err(ArchiveError::BadMetadata(format!(
            "metadata declares {n} timelines, found {}",
            procs.len()
        )));
    }
    Ok(Trace { procs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::ids::{Rank, RegionId, Tag};
    use simclock::Time;

    fn scratch_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "drift-lab-archive-{name}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> Trace {
        let mut t = Trace::for_ranks(3);
        for p in 0..3u32 {
            t.procs[p as usize].push(
                Time::from_us(p as i64),
                EventKind::Enter { region: RegionId(p) },
            );
            t.procs[p as usize].push(
                Time::from_us(10 + p as i64),
                EventKind::Send { to: Rank((p + 1) % 3), tag: Tag(0), bytes: 64 },
            );
        }
        t
    }

    #[test]
    fn round_trip() {
        let dir = scratch_dir("roundtrip");
        let t = sample();
        write_archive(&dir, &t).unwrap();
        let back = read_archive(&dir).unwrap();
        assert_eq!(back.n_procs(), 3);
        for p in 0..3 {
            assert_eq!(back.procs[p].location, t.procs[p].location);
            assert_eq!(back.procs[p].events, t.procs[p].events);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn layout_is_one_file_per_timeline() {
        let dir = scratch_dir("layout");
        write_archive(&dir, &sample()).unwrap();
        assert!(dir.join("metadata.txt").exists());
        for k in 0..3 {
            assert!(dir.join(format!("timeline_{k}.dtl")).exists());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_timeline_detected() {
        let dir = scratch_dir("corrupt");
        write_archive(&dir, &sample()).unwrap();
        // Truncate one timeline file.
        let path = dir.join("timeline_1.dtl");
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() / 2]).unwrap();
        let err = read_archive(&dir).unwrap_err();
        assert!(matches!(err, ArchiveError::Codec(1, _)), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inconsistent_metadata_detected() {
        let dir = scratch_dir("meta");
        write_archive(&dir, &sample()).unwrap();
        let meta = fs::read_to_string(dir.join("metadata.txt")).unwrap();
        let tampered = meta.replace("events 2", "events 99");
        fs::write(dir.join("metadata.txt"), tampered).unwrap();
        let err = read_archive(&dir).unwrap_err();
        assert!(matches!(err, ArchiveError::BadMetadata(_)), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_io_error() {
        let err = read_archive(Path::new("/nonexistent/drift-lab")).unwrap_err();
        assert!(matches!(err, ArchiveError::Io(_)));
    }
}
