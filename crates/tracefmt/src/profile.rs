//! Trace profiling: event composition and communication statistics.
//!
//! The paper's Fig. 7 back row ("fraction of message transfer events in
//! relation to the total number of events") is one instance of a general
//! need: knowing what a trace is made of. [`TraceProfile`] summarises a
//! trace — event counts per kind, per-timeline totals, message volume and
//! transfer-time statistics — for experiment reporting and sanity checks.

use crate::analysis::match_messages;
use crate::event::EventKind;
use crate::stats::Summary;
use crate::trace::Trace;
use simclock::Dur;

/// Counts of each event kind.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KindCounts {
    /// `Enter` events.
    pub enter: usize,
    /// `Exit` events.
    pub exit: usize,
    /// `Send` events.
    pub send: usize,
    /// `Recv` events.
    pub recv: usize,
    /// `CollBegin` events.
    pub coll_begin: usize,
    /// `CollEnd` events.
    pub coll_end: usize,
    /// `Fork` events.
    pub fork: usize,
    /// `Join` events.
    pub join: usize,
    /// `BarrierEnter` events.
    pub barrier_enter: usize,
    /// `BarrierExit` events.
    pub barrier_exit: usize,
}

impl KindCounts {
    fn add(&mut self, kind: &EventKind) {
        match kind {
            EventKind::Enter { .. } => self.enter += 1,
            EventKind::Exit { .. } => self.exit += 1,
            EventKind::Send { .. } => self.send += 1,
            EventKind::Recv { .. } => self.recv += 1,
            EventKind::CollBegin { .. } => self.coll_begin += 1,
            EventKind::CollEnd { .. } => self.coll_end += 1,
            EventKind::Fork { .. } => self.fork += 1,
            EventKind::Join { .. } => self.join += 1,
            EventKind::BarrierEnter { .. } => self.barrier_enter += 1,
            EventKind::BarrierExit { .. } => self.barrier_exit += 1,
        }
    }

    /// Total events counted.
    pub fn total(&self) -> usize {
        self.enter
            + self.exit
            + self.send
            + self.recv
            + self.coll_begin
            + self.coll_end
            + self.fork
            + self.join
            + self.barrier_enter
            + self.barrier_exit
    }
}

/// A trace's composition summary.
#[derive(Debug, Clone)]
pub struct TraceProfile {
    /// Event counts per kind, whole trace.
    pub kinds: KindCounts,
    /// Events per timeline.
    pub events_per_proc: Vec<usize>,
    /// Matched messages.
    pub messages: usize,
    /// Unmatched sends + receives (partial-trace indicator).
    pub unmatched: usize,
    /// Total payload bytes across matched messages.
    pub bytes: u64,
    /// Recorded transfer times (`t_recv − t_send`) in µs.
    pub transfer_us: Summary,
    /// Trace duration (first to last timestamp).
    pub span: Option<Dur>,
    /// Percentage of message-transfer events among all events
    /// (the paper's Fig. 7 back-row metric).
    pub message_event_pct: f64,
}

/// Profile a trace.
pub fn profile(trace: &Trace) -> TraceProfile {
    let mut kinds = KindCounts::default();
    for pt in &trace.procs {
        for e in &pt.events {
            kinds.add(&e.kind);
        }
    }
    let matching = match_messages(trace);
    let mut transfer_us = Summary::new();
    let mut bytes = 0u64;
    for m in &matching.messages {
        transfer_us.add((trace.time(m.recv) - trace.time(m.send)).as_us_f64());
        bytes += m.bytes;
    }
    let total = kinds.total();
    TraceProfile {
        events_per_proc: trace.procs.iter().map(|p| p.events.len()).collect(),
        messages: matching.messages.len(),
        unmatched: matching.unmatched_sends.len() + matching.unmatched_recvs.len(),
        bytes,
        transfer_us,
        span: trace.time_span().map(|(lo, hi)| hi - lo),
        message_event_pct: if total == 0 {
            0.0
        } else {
            100.0 * (kinds.send + kinds.recv) as f64 / total as f64
        },
        kinds,
    }
}

impl std::fmt::Display for TraceProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} events on {} timelines ({} message events, {:.1} %)",
            self.kinds.total(),
            self.events_per_proc.len(),
            self.kinds.send + self.kinds.recv,
            self.message_event_pct
        )?;
        writeln!(
            f,
            "  enter/exit {}/{}, send/recv {}/{}, coll {}/{}, pomp {}/{}/{}/{}",
            self.kinds.enter,
            self.kinds.exit,
            self.kinds.send,
            self.kinds.recv,
            self.kinds.coll_begin,
            self.kinds.coll_end,
            self.kinds.fork,
            self.kinds.join,
            self.kinds.barrier_enter,
            self.kinds.barrier_exit
        )?;
        writeln!(
            f,
            "  {} matched messages ({} unmatched), {} payload bytes",
            self.messages, self.unmatched, self.bytes
        )?;
        if let Some(span) = self.span {
            writeln!(f, "  span {:.3} s", span.as_secs_f64())?;
        }
        write!(
            f,
            "  transfer time: mean {:.3} us, min {:.3}, max {:.3}",
            self.transfer_us.mean(),
            self.transfer_us.min(),
            self.transfer_us.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Rank, RegionId, Tag};
    use simclock::Time;

    fn sample() -> Trace {
        let mut t = Trace::for_ranks(2);
        t.procs[0].push(Time::from_us(0), EventKind::Enter { region: RegionId(1) });
        t.procs[0].push(
            Time::from_us(5),
            EventKind::Send { to: Rank(1), tag: Tag(0), bytes: 128 },
        );
        t.procs[0].push(Time::from_us(9), EventKind::Exit { region: RegionId(1) });
        t.procs[1].push(
            Time::from_us(15),
            EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 128 },
        );
        t.procs[1].push(
            Time::from_us(20),
            EventKind::Send { to: Rank(0), tag: Tag(9), bytes: 64 },
        );
        t
    }

    #[test]
    fn counts_and_percentages() {
        let p = profile(&sample());
        assert_eq!(p.kinds.total(), 5);
        assert_eq!(p.kinds.send, 2);
        assert_eq!(p.kinds.recv, 1);
        assert_eq!(p.events_per_proc, vec![3, 2]);
        assert_eq!(p.messages, 1);
        assert_eq!(p.unmatched, 1); // the unanswered tag-9 send
        assert_eq!(p.bytes, 128);
        assert!((p.message_event_pct - 60.0).abs() < 1e-9);
        assert_eq!(p.span, Some(Dur::from_us(20)));
        assert!((p.transfer_us.mean() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace() {
        let p = profile(&Trace::for_ranks(1));
        assert_eq!(p.kinds.total(), 0);
        assert_eq!(p.message_event_pct, 0.0);
        assert_eq!(p.span, None);
    }

    #[test]
    fn display_renders() {
        let p = profile(&sample());
        let s = format!("{p}");
        assert!(s.contains("5 events"));
        assert!(s.contains("matched messages"));
    }
}
