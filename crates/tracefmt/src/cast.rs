//! Alignment-checked reinterpretation of byte runs as `i64` columns.
//!
//! The DTC3 wire format stores its timestamp segments as 8-byte-aligned
//! little-endian `i64` runs precisely so an ingest path can treat the raw
//! bytes *as* the column: on a little-endian target, when the segment's
//! address is 8-aligned (guaranteed for a page-aligned mmap because the
//! encoder pads every segment to an 8-aligned stream offset), appending it
//! to a `Vec<i64>` is one `memcpy` — no per-element decode at all.
//!
//! The cast is a shim rather than a dependency: `i64` accepts every bit
//! pattern, so the only soundness obligations are alignment and length,
//! both checked here. When either check fails (a `Vec<u8>` chunk buffer
//! has no alignment guarantee) the fallback decodes via
//! `i64::from_le_bytes`, which the compiler lowers to unaligned loads with
//! no byte-swap on little-endian targets — still far cheaper than the
//! big-endian per-element path.

/// View `bytes` as a little-endian `i64` slice without copying.
///
/// Returns `None` unless all of the following hold: the target is
/// little-endian (so the in-memory representation *is* the wire
/// representation), the pointer is 8-aligned, and the length is a multiple
/// of 8. Callers must treat `None` as "decode element-wise", never as an
/// error.
#[inline]
pub fn as_i64_slice_le(bytes: &[u8]) -> Option<&[i64]> {
    if cfg!(target_endian = "little")
        && (bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<i64>())
        && bytes.len().is_multiple_of(std::mem::size_of::<i64>())
    {
        // SAFETY: the pointer is 8-aligned and the length is a multiple of
        // 8 (checked above); `i64` has no invalid bit patterns; the
        // returned slice borrows `bytes`, so the usual borrow rules keep
        // the memory alive and unaliased for writes.
        Some(unsafe {
            std::slice::from_raw_parts(bytes.as_ptr().cast::<i64>(), bytes.len() / 8)
        })
    } else {
        None
    }
}

/// Append a little-endian `i64` run to `dst`: one bulk copy when
/// [`as_i64_slice_le`] applies, an element-wise unaligned-load loop
/// otherwise. `bytes.len()` must be a multiple of 8.
#[inline]
pub fn extend_i64_from_le_bytes(dst: &mut Vec<i64>, bytes: &[u8]) {
    debug_assert_eq!(bytes.len() % 8, 0);
    match as_i64_slice_le(bytes) {
        Some(run) => dst.extend_from_slice(run),
        None => dst.extend(
            bytes
                .chunks_exact(8)
                .map(|c| i64::from_le_bytes(c.try_into().unwrap())),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_cast_and_fallback_agree() {
        let values: Vec<i64> = (0..64).map(|i| i * 0x0101_0101_0101 - 7).collect();
        let mut bytes = Vec::new();
        for v in &values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        // Whatever the buffer's alignment, the decoded values must match.
        let mut out = Vec::new();
        extend_i64_from_le_bytes(&mut out, &bytes);
        assert_eq!(out, values);
        // Deliberately misaligned view: the cast must refuse, the fallback
        // must still decode the shifted values correctly.
        let mut shifted = vec![0u8];
        shifted.extend_from_slice(&bytes);
        let mis = &shifted[1..];
        if !(mis.as_ptr() as usize).is_multiple_of(8) {
            assert!(as_i64_slice_le(mis).is_none());
        }
        let mut out2 = Vec::new();
        extend_i64_from_le_bytes(&mut out2, mis);
        assert_eq!(out2, values);
    }

    #[test]
    fn cast_rejects_ragged_lengths() {
        let bytes = [0u8; 12];
        assert!(as_i64_slice_le(&bytes[..12]).is_none());
    }

    #[test]
    fn aligned_vec_gets_the_zero_copy_path() {
        // A Vec<i64>'s own storage is 8-aligned by construction, so viewing
        // its bytes must take the cast path on little-endian targets.
        let values: Vec<i64> = vec![1, -2, 3];
        let bytes = unsafe {
            std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), values.len() * 8)
        };
        if cfg!(target_endian = "little") {
            assert_eq!(as_i64_slice_le(bytes), Some(values.as_slice()));
        } else {
            assert!(as_i64_slice_le(bytes).is_none());
        }
    }
}
