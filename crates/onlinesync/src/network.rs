//! Dynamic clock-network scenarios: churn, spanning trees, NTP islands.
//!
//! The paper measures *static* clusters — every node present from init to
//! finalize, all probes taken against one master over one switch. Real
//! deployments are messier: nodes join and leave mid-run, synchronization
//! flows along a spanning tree that is recomputed whenever the membership
//! changes (Pabico, arXiv:1506.07584), and clusters form NTP "islands"
//! whose members agree tightly with each other but sit a WAN hop away
//! from the reference. A [`ClockNetwork`] generates exactly this world,
//! deterministically from a seed:
//!
//! * **Clocks.** Node 0 is the reference (zero drift, zero offset). Every
//!   other node gets its cluster's island offset plus an individual wobble
//!   and an individual drift model — constant, piecewise-constant
//!   (NTP-slew sawtooth) or thermal sinusoid, cycling by node index so
//!   every scenario mixes all three of the paper's regimes.
//! * **Churn.** Configured numbers of late joiners and early leavers get
//!   seeded join/leave times; everyone else lives for the whole horizon.
//! * **Tree epochs.** At the start and after every churn event, a
//!   spanning tree over the alive nodes is recomputed by deterministic
//!   Prim's algorithm from node 0, with intra-cluster edges weighted at
//!   LAN cost and inter-cluster edges at WAN cost (plus a seeded hash
//!   jitter as tie-break, so equal-cost trees still vary across seeds).
//! * **Probes.** Each alive node probes the reference on a fixed cadence.
//!   The probe's RTT and error compose along its current tree path to the
//!   root: every LAN hop adds a little noise, every WAN hop adds a lot —
//!   deep or cross-island nodes genuinely synchronize worse.
//!
//! The output is plain data ([`NodeProbe`] → [`ProbeFix`], local clock
//! readings via [`ClockNetwork::local_at`]), so the `workloads` crate can
//! turn a network into an ordinary trace that every engine in the
//! workspace — batch, columnar, windowed, service — can chew on.

use crate::filter::ProbeFix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simclock::{
    ConstantDrift, DriftModel, Dur, PiecewiseLinearDrift, SinusoidalDrift, Time,
};

/// What a churn event does to its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// The node appears and starts emitting events/probes.
    Join,
    /// The node disappears; no events or probes after this instant.
    Leave,
}

/// One membership change, in true time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// True time of the change.
    pub at: Time,
    /// Affected node.
    pub node: usize,
    /// Join or leave.
    pub kind: ChurnKind,
}

/// The sync spanning tree in force from [`TreeEpoch::from`] until the
/// next churn event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeEpoch {
    /// True time this tree took effect.
    pub from: Time,
    /// `parents[v]` is `v`'s upstream neighbour on the path to the
    /// reference; `None` for the root itself and for nodes not alive in
    /// this epoch.
    pub parents: Vec<Option<usize>>,
}

impl TreeEpoch {
    /// LAN and WAN hop counts of `node`'s path to the root, or `None` if
    /// the node is not in this epoch's tree.
    pub fn hops(&self, node: usize, cluster_of: &[usize]) -> Option<(u32, u32)> {
        if node == 0 {
            return Some((0, 0));
        }
        let mut lan = 0u32;
        let mut wan = 0u32;
        let mut v = node;
        // The tree has at most `parents.len()` edges; more steps means a
        // cycle, which generation forbids — treat as absent defensively.
        for _ in 0..self.parents.len() {
            let p = (*self.parents.get(v)?)?;
            if cluster_of[v] == cluster_of[p] {
                lan += 1;
            } else {
                wan += 1;
            }
            if p == 0 {
                return Some((lan, wan));
            }
            v = p;
        }
        None
    }
}

/// One two-way probe of the reference by a worker node, already reduced
/// to the Eq. 2 estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeProbe {
    /// Probing node.
    pub node: usize,
    /// Worker-local time of the estimate.
    pub worker_time: Time,
    /// Estimated reference − worker offset (includes path noise).
    pub offset: Dur,
    /// Round-trip along the node's tree path.
    pub rtt: Dur,
}

impl NodeProbe {
    /// The filter-facing view of this probe.
    pub fn fix(&self) -> ProbeFix {
        ProbeFix::new(self.worker_time, self.offset, self.rtt)
    }
}

/// Scenario shape. All knobs have sane defaults; override what a test or
/// experiment cares about.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Total nodes including the reference (node 0).
    pub nodes: usize,
    /// NTP islands; nodes are assigned round-robin (node 0's island is
    /// the reference island).
    pub clusters: usize,
    /// Scenario length in true seconds.
    pub horizon_s: f64,
    /// Nodes that join mid-run (in the first half of the horizon).
    pub joins: usize,
    /// Nodes that leave mid-run (in the second half of the horizon).
    pub leaves: usize,
    /// One-way LAN hop latency, µs.
    pub lan_us: f64,
    /// One-way WAN hop latency, µs.
    pub wan_us: f64,
    /// Probe cadence per node, ms of true time.
    pub probe_interval_ms: f64,
    /// Drift magnitude scale, ppm: each node's model is drawn with rates
    /// up to roughly this size.
    pub drift_ppm: f64,
    /// Island base offset scale, µs: clusters sit up to this far from the
    /// reference; members wobble a few percent of it around the base.
    pub island_offset_us: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            nodes: 8,
            clusters: 2,
            horizon_s: 4.0,
            joins: 1,
            leaves: 1,
            lan_us: 25.0,
            wan_us: 600.0,
            probe_interval_ms: 50.0,
            drift_ppm: 40.0,
            island_offset_us: 400.0,
        }
    }
}

/// Per-node clock: island base offset + wobble + drift model.
#[derive(Debug)]
struct NodeClock {
    offset: Dur,
    drift: Option<Box<dyn DriftModel>>,
}

/// A fully generated scenario (see the module docs).
#[derive(Debug)]
pub struct ClockNetwork {
    config: NetworkConfig,
    seed: u64,
    cluster_of: Vec<usize>,
    clocks: Vec<NodeClock>,
    /// Alive interval per node, half-open `[join, leave)`.
    alive: Vec<(Time, Time)>,
    churn: Vec<ChurnEvent>,
    epochs: Vec<TreeEpoch>,
}

/// splitmix64 — the deterministic tie-break hash for tree edges.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl ClockNetwork {
    /// Generate a scenario deterministically from `cfg` and `seed`.
    ///
    /// # Panics
    /// If `cfg.nodes == 0`, `cfg.clusters == 0`, or the requested churn
    /// counts don't leave at least the reference plus one steady worker.
    pub fn generate(cfg: NetworkConfig, seed: u64) -> Self {
        assert!(cfg.nodes >= 2, "need the reference plus at least one worker");
        assert!(cfg.clusters >= 1, "need at least one cluster");
        assert!(
            cfg.joins + cfg.leaves + 2 <= cfg.nodes,
            "churn ({} joins + {} leaves) leaves no steady worker among {} nodes",
            cfg.joins,
            cfg.leaves,
            cfg.nodes
        );
        // Domain-separated from other seed consumers in the workspace.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6f6e_6c69_6e65_7379);
        let horizon = Time::from_secs_f64(cfg.horizon_s);
        let cluster_of: Vec<usize> = (0..cfg.nodes).map(|n| n % cfg.clusters).collect();

        // Island base offsets; the reference island is centred on zero.
        let bases: Vec<f64> = (0..cfg.clusters)
            .map(|c| {
                if c == 0 {
                    0.0
                } else {
                    rng.gen_range(-cfg.island_offset_us..cfg.island_offset_us)
                }
            })
            .collect();
        let clocks: Vec<NodeClock> = (0..cfg.nodes)
            .map(|n| {
                if n == 0 {
                    return NodeClock { offset: Dur::ZERO, drift: None };
                }
                let wobble = cfg.island_offset_us * 0.05;
                let offset =
                    Dur::from_us_f64(bases[cluster_of[n]] + rng.gen_range(-wobble..wobble));
                let scale = cfg.drift_ppm * 1e-6;
                let drift: Box<dyn DriftModel> = match n % 3 {
                    0 => Box::new(ConstantDrift::new(rng.gen_range(-scale..scale))),
                    1 => {
                        // NTP-slew sawtooth: rate flips sign every slice.
                        let slices = 6;
                        let mut rate = rng.gen_range(0.5 * scale..scale)
                            * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                        let knots = (0..slices)
                            .map(|k| {
                                let t = Time::from_secs_f64(
                                    cfg.horizon_s * k as f64 / slices as f64,
                                );
                                let knot = (t, rate);
                                rate = -rate;
                                knot
                            })
                            .collect();
                        Box::new(PiecewiseLinearDrift::piecewise_constant(knots))
                    }
                    _ => Box::new(SinusoidalDrift::new(
                        rng.gen_range(0.3 * scale..scale),
                        rng.gen_range(0.5..2.5),
                        rng.gen_range(0.0..1.0),
                    )),
                };
                NodeClock { offset, drift: Some(drift) }
            })
            .collect();

        // Churn: joiners come from the top of the index range, leavers
        // just below them, so the reference and low-index nodes are the
        // steady core. Join in (10%, 45%) of the horizon, leave in
        // (55%, 90%).
        let mut alive = vec![(Time::ZERO, horizon); cfg.nodes];
        let mut churn = Vec::new();
        for j in 0..cfg.joins {
            let node = cfg.nodes - 1 - j;
            let at = Time::from_secs_f64(cfg.horizon_s * rng.gen_range(0.10..0.45));
            alive[node].0 = at;
            churn.push(ChurnEvent { at, node, kind: ChurnKind::Join });
        }
        for l in 0..cfg.leaves {
            let node = cfg.nodes - 1 - cfg.joins - l;
            let at = Time::from_secs_f64(cfg.horizon_s * rng.gen_range(0.55..0.90));
            alive[node].1 = at;
            churn.push(ChurnEvent { at, node, kind: ChurnKind::Leave });
        }
        churn.sort_by_key(|e| (e.at, e.node));

        let mut net = ClockNetwork {
            config: cfg,
            seed,
            cluster_of,
            clocks,
            alive,
            churn,
            epochs: Vec::new(),
        };
        // Initial tree, then one recompute per churn event.
        net.epochs.push(net.spanning_tree(Time::ZERO, 0));
        for (i, ev) in net.churn.clone().iter().enumerate() {
            net.epochs.push(net.spanning_tree(ev.at, (i + 1) as u64));
        }
        net
    }

    /// Deterministic Prim from node 0 over the nodes alive at `at`.
    fn spanning_tree(&self, at: Time, epoch_idx: u64) -> TreeEpoch {
        let n = self.config.nodes;
        let lan_w = Dur::from_us_f64(self.config.lan_us).as_ps().max(1);
        let wan_w = Dur::from_us_f64(self.config.wan_us).as_ps().max(1);
        let mut parents: Vec<Option<usize>> = vec![None; n];
        let mut in_tree = vec![false; n];
        in_tree[0] = true;
        let alive: Vec<bool> = (0..n).map(|v| v == 0 || self.alive_at(v, at)).collect();
        let weight = |a: usize, b: usize| -> i64 {
            let base = if self.cluster_of[a] == self.cluster_of[b] { lan_w } else { wan_w };
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let h = mix(self.seed ^ (lo as u64) << 40 ^ (hi as u64) << 20 ^ epoch_idx);
            // Up to 10% jitter: enough to break ties, never enough to make
            // a WAN edge beat a LAN edge.
            base + (h % (base as u64 / 10 + 1).max(1)) as i64
        };
        loop {
            let mut best: Option<(i64, usize, usize)> = None;
            for v in 0..n {
                if in_tree[v] || !alive[v] {
                    continue;
                }
                for (u, _) in in_tree.iter().enumerate().filter(|(_, t)| **t) {
                    let w = weight(u, v);
                    if best.is_none_or(|(bw, _, bv)| (w, v) < (bw, bv)) {
                        best = Some((w, u, v));
                    }
                }
            }
            match best {
                Some((_, u, v)) => {
                    parents[v] = Some(u);
                    in_tree[v] = true;
                }
                None => break,
            }
        }
        TreeEpoch { from: at, parents }
    }

    /// The scenario's configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Cluster (island) of each node.
    pub fn cluster_of(&self, node: usize) -> usize {
        self.cluster_of[node]
    }

    /// All churn events, sorted by time.
    pub fn churn(&self) -> &[ChurnEvent] {
        &self.churn
    }

    /// All tree epochs (the initial tree plus one per churn event).
    pub fn epochs(&self) -> &[TreeEpoch] {
        &self.epochs
    }

    /// Number of spanning-tree recomputations triggered by churn.
    pub fn recomputes(&self) -> usize {
        self.epochs.len().saturating_sub(1)
    }

    /// The tree in force at true time `t`.
    pub fn epoch_at(&self, t: Time) -> &TreeEpoch {
        match self.epochs.iter().rposition(|e| e.from <= t) {
            Some(i) => &self.epochs[i],
            None => &self.epochs[0],
        }
    }

    /// True if `node` is a member at true time `t` (half-open interval —
    /// a leaver is gone at its leave instant).
    pub fn alive_at(&self, node: usize, t: Time) -> bool {
        node == 0 || (self.alive[node].0 <= t && t < self.alive[node].1)
    }

    /// `node`'s membership interval `[join, leave)` in true time.
    pub fn alive_window(&self, node: usize) -> (Time, Time) {
        if node == 0 {
            (Time::ZERO, Time::from_secs_f64(self.config.horizon_s))
        } else {
            self.alive[node]
        }
    }

    /// `node`'s local clock reading at true time `t`.
    pub fn local_at(&self, node: usize, t: Time) -> Time {
        let c = &self.clocks[node];
        let wander = match &c.drift {
            None => Dur::ZERO,
            Some(d) => Dur::from_secs_f64(d.integrated(t)),
        };
        t + c.offset + wander
    }

    /// True reference − worker offset at true time `t` (what a perfect
    /// probe would measure, anchored at `local_at(node, t)`).
    pub fn true_offset(&self, node: usize, t: Time) -> Dur {
        t - self.local_at(node, t)
    }

    /// The probe schedule of one node: Eq. 2 estimates on the configured
    /// cadence while alive, with RTT and error composed along the node's
    /// tree path at each instant. Node 0 (the reference) never probes.
    pub fn probe_schedule(&self, node: usize) -> Vec<NodeProbe> {
        if node == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(mix(self.seed ^ (node as u64) << 8));
        let step = Dur::from_secs_f64(self.config.probe_interval_ms / 1e3);
        assert!(step > Dur::ZERO, "probe interval must be positive");
        let (from, to) = self.alive[node];
        let mut probes = Vec::new();
        // First probe half an interval after joining (a node syncs before
        // it starts doing real work).
        let mut t = from + step / 2;
        while t < to {
            let (lan, wan) = self
                .epoch_at(t)
                .hops(node, &self.cluster_of)
                .unwrap_or((0, 1)); // not in tree (race with churn): worst case
            // One-way path latency; RTT doubles it, jitter adds up to 50%.
            let one_way_us = lan as f64 * self.config.lan_us + wan as f64 * self.config.wan_us;
            let rtt_us: f64 = 2.0 * one_way_us * rng.gen_range(1.0..1.5);
            // Error: asymmetry can bias Eq. 2 by up to half the jitter on
            // each hop; more and worse hops → worse probes.
            let err_scale_us = 0.05 * self.config.lan_us * lan as f64
                + 0.05 * self.config.wan_us * wan as f64;
            let err_us = rng.gen_range(-err_scale_us..err_scale_us.max(1e-9));
            probes.push(NodeProbe {
                node,
                worker_time: self.local_at(node, t),
                offset: self.true_offset(node, t) + Dur::from_us_f64(err_us),
                rtt: Dur::from_us_f64(rtt_us.max(1.0)),
            });
            t += step;
        }
        probes
    }

    /// Probe schedules for every node, as filter-facing [`ProbeFix`]
    /// lists (index = node; node 0's list is empty).
    pub fn all_probe_fixes(&self) -> Vec<Vec<ProbeFix>> {
        (0..self.config.nodes)
            .map(|n| self.probe_schedule(n).iter().map(NodeProbe::fix).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(seed: u64) -> ClockNetwork {
        ClockNetwork::generate(NetworkConfig::default(), seed)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = net(7);
        let b = net(7);
        assert_eq!(a.churn(), b.churn());
        assert_eq!(a.epochs(), b.epochs());
        assert_eq!(a.all_probe_fixes(), b.all_probe_fixes());
    }

    #[test]
    fn epochs_track_churn() {
        let n = net(3);
        assert_eq!(n.epochs().len(), n.churn().len() + 1);
        assert_eq!(n.recomputes(), n.churn().len());
        // Epochs are in chronological order starting at the origin.
        assert_eq!(n.epochs()[0].from, Time::ZERO);
        for w in n.epochs().windows(2) {
            assert!(w[0].from <= w[1].from);
        }
    }

    #[test]
    fn trees_are_rooted_spanning_trees_over_alive_nodes() {
        let n = net(11);
        for e in n.epochs() {
            for v in 0..n.config().nodes {
                if v == 0 {
                    assert_eq!(e.parents[0], None, "root has no parent");
                    continue;
                }
                if n.alive_at(v, e.from) {
                    // Alive ⇒ in the tree with a path to the root.
                    let hops = e.hops(v, &n.cluster_of);
                    assert!(hops.is_some(), "node {v} unreachable at {:?}", e.from);
                    let (lan, wan) = hops.unwrap();
                    assert!(lan + wan >= 1);
                } else {
                    assert_eq!(e.parents[v], None, "dead node {v} has a parent");
                }
            }
        }
    }

    #[test]
    fn probes_fall_inside_the_alive_window_and_master_never_probes() {
        let n = net(5);
        assert!(n.probe_schedule(0).is_empty());
        for node in 1..n.config().nodes {
            let (from, to) = n.alive_window(node);
            for p in n.probe_schedule(node) {
                // Probe anchors are worker-local; map the window too.
                assert!(p.worker_time >= n.local_at(node, from));
                assert!(p.worker_time <= n.local_at(node, to));
                assert!(p.rtt > Dur::ZERO);
            }
        }
    }

    #[test]
    fn probe_offsets_track_the_true_offset() {
        let n = net(9);
        for node in 1..n.config().nodes {
            for p in n.probe_schedule(node) {
                // The injected error is bounded by the per-hop error
                // scales, far below the island offsets themselves; a WAN
                // path error stays under ~2× the WAN one-way latency.
                let bound = Dur::from_us_f64(2.0 * n.config().wan_us + n.config().lan_us * 8.0);
                // Recover true time from the worker anchor by inverting
                // approximately: compare against the offset at the probe's
                // generation instant instead — regenerate and check the
                // error directly.
                assert!(p.rtt < bound + bound, "rtt {:?} out of range", p.rtt);
            }
        }
    }

    #[test]
    fn cross_island_nodes_get_noisier_probes() {
        // Two clusters: island-0 nodes reach the root over LAN, island-1
        // nodes need a WAN hop. Their RTTs must differ by ~the WAN cost.
        let n = ClockNetwork::generate(
            NetworkConfig { joins: 0, leaves: 0, ..NetworkConfig::default() },
            21,
        );
        let mean_rtt = |node: usize| {
            let s = n.probe_schedule(node);
            s.iter().map(|p| p.rtt.as_us_f64()).sum::<f64>() / s.len() as f64
        };
        // Node 2 is island 0 (same as root), node 1 is island 1.
        assert_eq!(n.cluster_of(2), 0);
        assert_eq!(n.cluster_of(1), 1);
        assert!(
            mean_rtt(1) > mean_rtt(2) + n.config().wan_us,
            "WAN island probe RTT ({:.1} µs) should exceed LAN ({:.1} µs)",
            mean_rtt(1),
            mean_rtt(2)
        );
    }

    #[test]
    fn joiner_has_no_probes_before_join() {
        let cfg = NetworkConfig::default();
        let joiner = cfg.nodes - 1;
        let n = ClockNetwork::generate(cfg, 13);
        let (join, _) = n.alive_window(joiner);
        assert!(join > Time::ZERO, "last node should be the joiner");
        assert!(!n.alive_at(joiner, Time::ZERO));
        for p in n.probe_schedule(joiner) {
            assert!(p.worker_time >= n.local_at(joiner, join));
        }
    }
}
