//! # onlinesync — model-based *online* clock synchronization
//!
//! Everything else in this workspace corrects traces *after* the run:
//! linear interpolation fits one line through the init/finalize offset
//! probes, and the CLC repairs the residual violations postmortem. The
//! paper's core finding — drift is **not** constant — means the single
//! line is wrong in the middle of any long run. This crate supplies the
//! missing baseline: drift tracked *during* the run by a recursive
//! per-pair filter, in the spirit of Freris/Borkar/Kumar
//! (arXiv:1311.6914), so each timestamp is corrected with the model state
//! that was current when the event happened.
//!
//! * [`filter`] — [`DriftKalman`]: a 2-state (offset, drift) Kalman filter
//!   updated from two-way Cristian probe exchanges, with RTT-derived
//!   measurement noise. Numerically defensive: the state is guaranteed
//!   finite after every operation.
//! * [`corrector`] — [`OnlineLane`] / [`OnlineCorrector`]: map raw
//!   per-timeline timestamps through the current filter state as events
//!   arrive, interleaving probe updates by worker time; corrected output
//!   is guaranteed monotone per timeline when the raw input is.
//! * [`network`] — [`ClockNetwork`]: dynamic clock topologies. Nodes
//!   join/leave mid-trace, the sync spanning tree is recomputed on every
//!   churn event (Pabico, arXiv:1506.07584), clusters form per-cluster
//!   NTP islands, and probes to the reference node compose along the
//!   tree path (WAN hops are noisier than LAN hops).
//!
//! The pipeline in `clocksync` consumes this crate through
//! `SyncMethod::Online`; the `workloads` crate turns [`ClockNetwork`]
//! scenarios into ordinary traces every engine can chew on.

#![warn(missing_docs)]

pub mod corrector;
pub mod filter;
pub mod network;

pub use corrector::{OnlineCorrector, OnlineLane};
pub use filter::{DriftKalman, KalmanParams, ProbeFix};
pub use network::{ChurnEvent, ChurnKind, ClockNetwork, NetworkConfig, NodeProbe, TreeEpoch};
