//! The recursive per-pair drift/offset estimator.
//!
//! One [`DriftKalman`] tracks one worker clock against the reference
//! (master) clock. Its state is the pair
//!
//! ```text
//! x = [ offset_ps,        master − worker offset at the anchor time
//!       drift_ps_per_s ]  rate of change of that offset (1 ppm = 10⁶ ps/s)
//! ```
//!
//! anchored at the worker-local time of the last processed probe.
//! *Predict* propagates the state over elapsed worker time with a
//! constant-velocity model plus process noise (drift performs a random
//! walk — the non-constant-drift physics the paper measures); *update*
//! corrects it with one two-way Cristian probe whose measurement variance
//! is derived from the probe's round-trip time (half the RTT bounds the
//! asymmetry error, exactly the paper's Eq. 2 error argument).
//!
//! Timestamps stay `i64` picoseconds end to end; only the filter state and
//! covariance are `f64`. The filter is numerically defensive: after every
//! predict/update the state is checked and, if any entry went non-finite
//! (a hostile RTT, an absurd probe), the covariance is re-inflated to the
//! prior and the last finite state is kept — the filter never emits NaN
//! or infinite corrections.

use simclock::{Dur, Time};

/// Picoseconds per second, as f64.
const PS_PER_S: f64 = 1e12;

/// One Cristian probe observation, reduced to plain picosecond fields so
/// the filter has no dependency on any particular measurement type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeFix {
    /// Worker-local time of the observation.
    pub worker_time_ps: i64,
    /// Estimated master − worker offset at that time (Eq. 2).
    pub offset_ps: i64,
    /// Round-trip time of the probe exchange (error bound = rtt/2).
    pub rtt_ps: i64,
}

impl ProbeFix {
    /// Build from `simclock` types.
    pub fn new(worker_time: Time, offset: Dur, rtt: Dur) -> Self {
        ProbeFix {
            worker_time_ps: worker_time.as_ps(),
            offset_ps: offset.as_ps(),
            rtt_ps: rtt.as_ps(),
        }
    }
}

/// Filter tuning. The defaults are deliberately conservative: they track
/// tens-of-ppm drift excursions with second-scale probe cadences (the
/// regimes the paper's platforms exhibit) without chasing probe noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KalmanParams {
    /// Drift random-walk intensity, ppm² per second of elapsed worker
    /// time. Larger values let the filter follow sharp rate changes (NTP
    /// slews) faster at the cost of more noise in the drift estimate.
    pub drift_noise_ppm2_per_s: f64,
    /// White phase-noise floor of the offset itself, µs² per second.
    pub offset_noise_us2_per_s: f64,
    /// Measurement-noise floor in µs: probe error that the RTT does not
    /// reveal (interrupt latency, timestamping granularity). The
    /// effective probe standard deviation is `max(floor, rtt/2)`.
    pub probe_noise_floor_us: f64,
}

impl Default for KalmanParams {
    fn default() -> Self {
        KalmanParams {
            drift_noise_ppm2_per_s: 4.0,
            offset_noise_us2_per_s: 0.01,
            probe_noise_floor_us: 1.0,
        }
    }
}

impl KalmanParams {
    /// Drift process noise in (ps/s)²/s.
    fn q_drift(&self) -> f64 {
        // 1 ppm = 1e6 ps/s, so 1 ppm² = 1e12 (ps/s)².
        self.drift_noise_ppm2_per_s.max(0.0) * 1e12
    }

    /// Offset process noise in ps²/s.
    fn q_offset(&self) -> f64 {
        // 1 µs = 1e6 ps, so 1 µs² = 1e12 ps².
        self.offset_noise_us2_per_s.max(0.0) * 1e12
    }

    /// Measurement variance for a probe with round-trip `rtt_ps`, in ps².
    fn r_of(&self, rtt_ps: i64) -> f64 {
        let floor = self.probe_noise_floor_us.max(1e-3) * 1e6; // ps
        let half_rtt = (rtt_ps.max(0) as f64) / 2.0;
        let sd = floor.max(half_rtt);
        sd * sd
    }
}

/// Prior standard deviations before the first probe: 10 ms of offset,
/// 200 ppm of drift — generous enough to swallow any realistic clock.
const PRIOR_SD_OFFSET_PS: f64 = 1e10;
const PRIOR_SD_DRIFT_PS_PER_S: f64 = 200e6;

/// The recursive offset/drift filter for one worker↔master pair.
#[derive(Debug, Clone)]
pub struct DriftKalman {
    params: KalmanParams,
    /// Worker-local anchor time of the state, ps.
    anchor_ps: i64,
    /// Estimated master − worker offset at the anchor, ps.
    offset_ps: f64,
    /// Estimated offset rate, ps per second of worker time.
    drift_ps_per_s: f64,
    /// Covariance [[p00, p01], [p01, p11]] in ps², ps²/s, (ps/s)².
    p00: f64,
    p01: f64,
    p11: f64,
    /// Probes absorbed so far.
    updates: u64,
}

impl DriftKalman {
    /// A fresh filter with the identity state (offset 0, drift 0) and the
    /// full prior uncertainty.
    pub fn new(params: KalmanParams) -> Self {
        DriftKalman {
            params,
            anchor_ps: 0,
            offset_ps: 0.0,
            drift_ps_per_s: 0.0,
            p00: PRIOR_SD_OFFSET_PS * PRIOR_SD_OFFSET_PS,
            p01: 0.0,
            p11: PRIOR_SD_DRIFT_PS_PER_S * PRIOR_SD_DRIFT_PS_PER_S,
            updates: 0,
        }
    }

    /// Probes absorbed so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Current drift estimate in ppm.
    pub fn drift_ppm(&self) -> f64 {
        self.drift_ps_per_s / 1e6
    }

    /// Current offset estimate at the anchor time, ps.
    pub fn offset_ps(&self) -> f64 {
        self.offset_ps
    }

    /// Worker-local anchor time of the current state, ps.
    pub fn anchor_ps(&self) -> i64 {
        self.anchor_ps
    }

    /// One-sigma uncertainty of the offset estimate at the anchor, ps.
    pub fn offset_sd_ps(&self) -> f64 {
        self.p00.max(0.0).sqrt()
    }

    /// Predicted master − worker offset at worker time `t_ps`, without
    /// mutating the filter (pure extrapolation from the anchor).
    pub fn offset_at_ps(&self, t_ps: i64) -> f64 {
        let dt_s = t_ps.saturating_sub(self.anchor_ps) as f64 / PS_PER_S;
        self.offset_ps + self.drift_ps_per_s * dt_s
    }

    /// Advance the state to worker time `t_ps` (predict step). Elapsed
    /// time is clamped at zero: an out-of-order probe neither rewinds the
    /// anchor nor injects negative process noise.
    fn predict_to(&mut self, t_ps: i64) {
        let dt_s = (t_ps.saturating_sub(self.anchor_ps).max(0) as f64) / PS_PER_S;
        if dt_s > 0.0 {
            let q_d = self.params.q_drift();
            let q_o = self.params.q_offset();
            self.offset_ps += self.drift_ps_per_s * dt_s;
            // P ← F P Fᵀ + Q with F = [[1, dt], [0, 1]] and the
            // integrated white-noise-on-drift Q.
            let p00 = self.p00 + dt_s * (2.0 * self.p01 + dt_s * self.p11)
                + q_o * dt_s
                + q_d * dt_s * dt_s * dt_s / 3.0;
            let p01 = self.p01 + dt_s * self.p11 + q_d * dt_s * dt_s / 2.0;
            let p11 = self.p11 + q_d * dt_s;
            self.p00 = p00;
            self.p01 = p01;
            self.p11 = p11;
            self.anchor_ps = t_ps;
        } else if t_ps > self.anchor_ps {
            self.anchor_ps = t_ps;
        }
        self.sanitize();
    }

    /// Absorb one probe: predict to its worker time, then correct the
    /// state with the measured offset (measurement matrix H = [1, 0]).
    pub fn observe(&mut self, probe: ProbeFix) {
        self.predict_to(probe.worker_time_ps);
        let z = probe.offset_ps as f64;
        if self.updates == 0 {
            // First fix: collapse the offset prior onto the measurement
            // (the standard informative-prior shortcut; the drift prior
            // stays wide until a second fix gives the slope information).
            self.offset_ps = z;
            self.p00 = self.params.r_of(probe.rtt_ps);
            self.p01 = 0.0;
        } else {
            let r = self.params.r_of(probe.rtt_ps);
            let y = z - self.offset_ps;
            let s = self.p00 + r;
            // S ≥ R > 0 by construction, but stay defensive.
            if s > 0.0 && s.is_finite() {
                let k0 = self.p00 / s;
                let k1 = self.p01 / s;
                self.offset_ps += k0 * y;
                self.drift_ps_per_s += k1 * y;
                let p00 = (1.0 - k0) * self.p00;
                let p01 = (1.0 - k0) * self.p01;
                let p11 = self.p11 - k1 * self.p01;
                self.p00 = p00;
                self.p01 = p01;
                self.p11 = p11;
            }
        }
        self.updates += 1;
        self.sanitize();
    }

    /// Restore finiteness and positive-semidefiniteness after an extreme
    /// input. Keeps the last finite state; re-inflates the covariance to
    /// the prior when it degenerated.
    fn sanitize(&mut self) {
        if !self.offset_ps.is_finite() {
            self.offset_ps = 0.0;
            self.p00 = PRIOR_SD_OFFSET_PS * PRIOR_SD_OFFSET_PS;
            self.p01 = 0.0;
        }
        if !self.drift_ps_per_s.is_finite() {
            self.drift_ps_per_s = 0.0;
            self.p11 = PRIOR_SD_DRIFT_PS_PER_S * PRIOR_SD_DRIFT_PS_PER_S;
            self.p01 = 0.0;
        }
        if !(self.p00.is_finite() && self.p01.is_finite() && self.p11.is_finite()) {
            self.p00 = PRIOR_SD_OFFSET_PS * PRIOR_SD_OFFSET_PS;
            self.p01 = 0.0;
            self.p11 = PRIOR_SD_DRIFT_PS_PER_S * PRIOR_SD_DRIFT_PS_PER_S;
        }
        // Diagonal entries are variances; numerical cancellation can push
        // them fractionally below zero.
        self.p00 = self.p00.max(0.0);
        self.p11 = self.p11.max(0.0);
        // Keep the drift physically plausible (|drift| ≤ 1000 ppm): a
        // wildly corrupt probe must not catapult the slope.
        const MAX_DRIFT: f64 = 1000e6;
        self.drift_ps_per_s = self.drift_ps_per_s.clamp(-MAX_DRIFT, MAX_DRIFT);
        // And the offset within ±10⁵ s — far beyond any clock skew, close
        // enough to keep i64 conversions safe.
        const MAX_OFFSET: f64 = 1e17;
        self.offset_ps = self.offset_ps.clamp(-MAX_OFFSET, MAX_OFFSET);
    }

    /// True if every state and covariance entry is finite (always holds
    /// after construction and any sequence of [`observe`] calls — the
    /// proptest suite leans on this).
    ///
    /// [`observe`]: DriftKalman::observe
    pub fn is_finite(&self) -> bool {
        self.offset_ps.is_finite()
            && self.drift_ps_per_s.is_finite()
            && self.p00.is_finite()
            && self.p01.is_finite()
            && self.p11.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(t_us: i64, off_us: i64) -> ProbeFix {
        ProbeFix {
            worker_time_ps: t_us * 1_000_000,
            offset_ps: off_us * 1_000_000,
            rtt_ps: 10 * 1_000_000,
        }
    }

    #[test]
    fn converges_on_constant_drift() {
        // True offset: 100 µs + 20 ppm · t. Probe every second for 60 s.
        let mut f = DriftKalman::new(KalmanParams::default());
        for k in 0..60i64 {
            let t_us = k * 1_000_000;
            let off_us = 100 + (20e-6 * (t_us as f64)).round() as i64; // 20 ppm in µs/µs
            f.observe(probe(t_us, off_us));
        }
        assert!(f.is_finite());
        assert!(
            (f.drift_ppm() - 20.0).abs() < 1.0,
            "drift estimate {} ppm, want ~20",
            f.drift_ppm()
        );
        // Extrapolate 1 s past the last probe: error well under the probe
        // error bound.
        let t = 61 * 1_000_000 * 1_000_000i64;
        let truth = 100e6 + 20e-6 * t as f64;
        assert!(
            (f.offset_at_ps(t) - truth).abs() < 5e6,
            "predicted {} vs true {truth}",
            f.offset_at_ps(t)
        );
    }

    #[test]
    fn tracks_a_rate_step() {
        // +30 ppm for 30 s, then −30 ppm: the filter must swing its drift
        // estimate across the step within a few probes.
        let mut f = DriftKalman::new(KalmanParams::default());
        let mut off = 0.0f64;
        for k in 0..60i64 {
            let rate = if k < 30 { 30e-6 } else { -30e-6 };
            off += rate * 1e6; // µs gained over this second
            f.observe(probe(k * 1_000_000, off.round() as i64));
        }
        assert!((f.drift_ppm() + 30.0).abs() < 5.0, "drift {} ppm", f.drift_ppm());
    }

    #[test]
    fn hostile_probes_never_produce_nonfinite_state() {
        let mut f = DriftKalman::new(KalmanParams::default());
        let cases = [
            ProbeFix { worker_time_ps: i64::MAX, offset_ps: i64::MAX, rtt_ps: i64::MAX },
            ProbeFix { worker_time_ps: i64::MIN, offset_ps: i64::MIN, rtt_ps: 0 },
            ProbeFix { worker_time_ps: 0, offset_ps: 0, rtt_ps: -5 },
            ProbeFix { worker_time_ps: 1, offset_ps: i64::MAX, rtt_ps: 1 },
        ];
        for (i, c) in cases.iter().enumerate() {
            f.observe(*c);
            assert!(f.is_finite(), "state went non-finite after case {i}");
        }
        assert!(f.offset_at_ps(i64::MAX).is_finite());
    }

    #[test]
    fn out_of_order_probe_does_not_rewind() {
        let mut f = DriftKalman::new(KalmanParams::default());
        f.observe(probe(1_000_000, 50));
        f.observe(probe(2_000_000, 50));
        let anchor = f.anchor_ps();
        f.observe(probe(500_000, 1_000_000)); // stale, absurd
        assert_eq!(f.anchor_ps(), anchor, "anchor rewound on stale probe");
        assert!(f.is_finite());
    }

    #[test]
    fn noisy_rtt_probes_are_downweighted() {
        // Clean probes say 100 µs; one garbage probe with a huge RTT says
        // 10 ms. The estimate must stay near 100 µs.
        let mut f = DriftKalman::new(KalmanParams::default());
        for k in 0..10i64 {
            f.observe(probe(k * 1_000_000, 100));
        }
        f.observe(ProbeFix {
            worker_time_ps: 10 * 1_000_000 * 1_000_000,
            offset_ps: 10_000 * 1_000_000,
            rtt_ps: 200_000 * 1_000_000, // 200 ms RTT → ~100 ms error bound
        });
        let off_us = f.offset_at_ps(10 * 1_000_000 * 1_000_000) / 1e6;
        assert!((off_us - 100.0).abs() < 60.0, "outlier dominated: {off_us} µs");
    }
}
