//! Online timestamp correction through the current filter state.
//!
//! An [`OnlineLane`] owns one [`DriftKalman`] plus that timeline's probe
//! schedule, sorted by worker time. Events are fed in the order their
//! local clock produced them (per-timeline timestamps are monotone by
//! construction everywhere in this workspace); before correcting an event
//! the lane first absorbs every probe whose worker time is at or before
//! the event — exactly the information an online corrector would have had
//! at that moment. No probe from the future ever influences an event,
//! which is the defining difference from postmortem interpolation.
//!
//! The corrected output is clamped monotone per timeline: the filter
//! state moves when probes arrive, and a downward offset revision between
//! two close events must not reorder a timeline against itself (local
//! event order is ground truth, Lamport's first clock condition).

use crate::filter::{DriftKalman, KalmanParams, ProbeFix};

/// Online correction state for a single timeline (process).
#[derive(Debug, Clone)]
pub struct OnlineLane {
    filter: DriftKalman,
    /// Probe schedule sorted by `worker_time_ps`.
    probes: Vec<ProbeFix>,
    /// Next unconsumed probe.
    next: usize,
    /// Last emitted corrected timestamp, for the monotone clamp.
    last_out: Option<i64>,
}

impl OnlineLane {
    /// Build a lane from this timeline's probe schedule. The schedule is
    /// sorted by worker time internally; an empty schedule yields the
    /// identity correction (the master timeline's lane).
    pub fn new(mut probes: Vec<ProbeFix>, params: KalmanParams) -> Self {
        probes.sort_by_key(|p| p.worker_time_ps);
        OnlineLane {
            filter: DriftKalman::new(params),
            probes,
            next: 0,
            last_out: None,
        }
    }

    /// The filter, for inspection (drift/offset estimates, update count).
    pub fn filter(&self) -> &DriftKalman {
        &self.filter
    }

    /// Number of probes consumed so far.
    pub fn probes_consumed(&self) -> usize {
        self.next
    }

    /// Correct the next raw timestamp of this timeline. **Must** be called
    /// in nondecreasing raw-timestamp order (the natural per-timeline
    /// event order); the output is then guaranteed nondecreasing too.
    pub fn map_next(&mut self, raw_ps: i64) -> i64 {
        while self.next < self.probes.len() && self.probes[self.next].worker_time_ps <= raw_ps {
            self.filter.observe(self.probes[self.next]);
            self.next += 1;
        }
        let corr = self.filter.offset_at_ps(raw_ps);
        // The filter clamps its state so `corr` is finite and well inside
        // f64's exact-i64 range; saturate the add anyway for hostile raws.
        let out = raw_ps.saturating_add(corr.round() as i64);
        let out = match self.last_out {
            Some(prev) => out.max(prev),
            None => out,
        };
        self.last_out = Some(out);
        out
    }
}

/// Online correction for a whole trace: one [`OnlineLane`] per timeline.
#[derive(Debug, Clone)]
pub struct OnlineCorrector {
    lanes: Vec<OnlineLane>,
}

impl OnlineCorrector {
    /// One lane per timeline, in timeline order. Timelines beyond the end
    /// of `probes` (or with empty schedules) get the identity correction.
    pub fn new(probes: Vec<Vec<ProbeFix>>, params: KalmanParams) -> Self {
        OnlineCorrector {
            lanes: probes
                .into_iter()
                .map(|p| OnlineLane::new(p, params))
                .collect(),
        }
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// True if there are no lanes.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// The lane for timeline `proc`, if it exists.
    pub fn lane(&self, proc: usize) -> Option<&OnlineLane> {
        self.lanes.get(proc)
    }

    /// Mutable lane access; grows the lane vector with identity lanes so
    /// a trace with more timelines than probe schedules still corrects.
    pub fn lane_mut(&mut self, proc: usize) -> &mut OnlineLane {
        if proc >= self.lanes.len() {
            let params = KalmanParams::default();
            self.lanes
                .resize_with(proc + 1, || OnlineLane::new(Vec::new(), params));
        }
        &mut self.lanes[proc]
    }

    /// Correct the next raw timestamp on timeline `proc` (see
    /// [`OnlineLane::map_next`] for the ordering contract).
    pub fn map_next(&mut self, proc: usize, raw_ps: i64) -> i64 {
        self.lane_mut(proc).map_next(raw_ps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_probes_is_identity() {
        let mut lane = OnlineLane::new(Vec::new(), KalmanParams::default());
        for raw in [0i64, 17, 1_000_000, 123_456_789_000] {
            assert_eq!(lane.map_next(raw), raw);
        }
    }

    #[test]
    fn constant_offset_probes_shift_by_that_offset() {
        let probes = (0..20)
            .map(|k| ProbeFix {
                worker_time_ps: k * 1_000_000_000,
                offset_ps: 42_000_000, // 42 µs fast-forward
                rtt_ps: 5_000_000,
            })
            .collect();
        let mut lane = OnlineLane::new(probes, KalmanParams::default());
        // Event well inside the probe window: corrected ≈ raw + 42 µs.
        let out = lane.map_next(10 * 1_000_000_000);
        let err = (out - (10 * 1_000_000_000 + 42_000_000)).abs();
        assert!(err < 1_000_000, "off by {err} ps");
    }

    #[test]
    fn probes_before_event_are_consumed_future_ones_are_not() {
        let probes = vec![
            ProbeFix { worker_time_ps: 100, offset_ps: 0, rtt_ps: 1000 },
            ProbeFix { worker_time_ps: 200, offset_ps: 0, rtt_ps: 1000 },
            ProbeFix { worker_time_ps: 900, offset_ps: 0, rtt_ps: 1000 },
        ];
        let mut lane = OnlineLane::new(probes, KalmanParams::default());
        lane.map_next(250);
        assert_eq!(lane.probes_consumed(), 2);
        lane.map_next(901);
        assert_eq!(lane.probes_consumed(), 3);
    }

    #[test]
    fn output_is_monotone_even_when_offset_estimate_drops() {
        // Probe at t=1s says +100 µs, probe at t=2s says −100 µs: the
        // filter revises downward sharply, yet events at 1.9s then 2.1s
        // must not swap.
        let probes = vec![
            ProbeFix {
                worker_time_ps: 1_000_000_000_000,
                offset_ps: 100_000_000,
                rtt_ps: 2_000_000,
            },
            ProbeFix {
                worker_time_ps: 2_000_000_000_000,
                offset_ps: -100_000_000,
                rtt_ps: 2_000_000,
            },
        ];
        let mut lane = OnlineLane::new(probes, KalmanParams::default());
        let mut prev = i64::MIN;
        for raw in (0..30).map(|k| k * 100_000_000_000i64) {
            let out = lane.map_next(raw);
            assert!(out >= prev, "non-monotone at raw={raw}: {out} < {prev}");
            prev = out;
        }
    }

    #[test]
    fn corrector_grows_identity_lanes_on_demand() {
        let mut c = OnlineCorrector::new(vec![Vec::new()], KalmanParams::default());
        assert_eq!(c.len(), 1);
        assert_eq!(c.map_next(3, 777), 777);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn unsorted_probe_schedule_is_sorted_internally() {
        let probes = vec![
            ProbeFix { worker_time_ps: 5_000_000_000, offset_ps: 10_000, rtt_ps: 1000 },
            ProbeFix { worker_time_ps: 1_000_000_000, offset_ps: 10_000, rtt_ps: 1000 },
        ];
        let lane = OnlineLane::new(probes, KalmanParams::default());
        assert!(lane.probes[0].worker_time_ps <= lane.probes[1].worker_time_ps);
    }
}
