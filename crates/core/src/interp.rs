//! Timestamp maps: offset alignment and linear offset interpolation.
//!
//! Given offset measurements `(w, o)` — master-minus-worker offset `o` at
//! worker time `w` — a [`TimestampMap`] converts worker-local timestamps to
//! estimated master time:
//!
//! * [`OffsetAlignment`] uses a single measurement (paper's "offset
//!   alignment only at program initialization"): `m(t) = t + o₁`;
//! * [`LinearInterpolation`] uses two measurements, typically from
//!   `MPI_Init` and `MPI_Finalize` (Scalasca-style), via the paper's Eq. 3:
//!
//! ```text
//! m(t) = t + (o₂ − o₁)/(w₂ − w₁) · (t − w₁) + o₁
//! ```
//!
//! * [`PiecewiseInterpolation`] generalises to any number of anchor points —
//!   the "piecewise" option the paper mentions as perturbation-prone but
//!   strictly more accurate when mid-run measurements exist.

use crate::offset::OffsetMeasurement;
use simclock::{Dur, Time};
use tracefmt::Trace;

/// A worker-local → master-time mapping.
pub trait TimestampMap {
    /// Map one worker-local timestamp to estimated master time.
    fn map(&self, t: Time) -> Time;
}

/// The identity map (used for the master itself).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityMap;

impl TimestampMap for IdentityMap {
    fn map(&self, t: Time) -> Time {
        t
    }
}

/// Constant-offset correction from a single measurement.
#[derive(Debug, Clone, Copy)]
pub struct OffsetAlignment {
    /// The measured master − worker offset.
    pub offset: Dur,
}

impl OffsetAlignment {
    /// Alignment from a measurement.
    pub fn new(m: &OffsetMeasurement) -> Self {
        OffsetAlignment { offset: m.offset }
    }
}

impl OffsetAlignment {
    /// Apply the alignment to a dense picosecond column in place.
    ///
    /// `m(t) = t + o₁` is a pure integer add, so the loop carries no
    /// per-element dispatch or float work and autovectorizes to packed
    /// 64-bit adds. Bit-identical to mapping each element through
    /// [`TimestampMap::map`].
    pub fn map_col(&self, col: &mut [i64]) {
        let off = self.offset.as_ps();
        for ps in col.iter_mut() {
            *ps += off;
        }
    }
}

impl TimestampMap for OffsetAlignment {
    fn map(&self, t: Time) -> Time {
        t + self.offset
    }
}

/// Eq. 3: linear interpolation between two offset measurements.
///
/// ```
/// use clocksync::{LinearInterpolation, OffsetMeasurement, TimestampMap};
/// use simclock::{Dur, Time};
///
/// // Offset measured as +100 µs at worker time 0 and +300 µs at 100 s:
/// // the worker runs 2 ppm slow relative to the master.
/// let a = OffsetMeasurement {
///     worker_time: Time::ZERO, offset: Dur::from_us(100), rtt: Dur::from_us(9) };
/// let b = OffsetMeasurement {
///     worker_time: Time::from_secs(100), offset: Dur::from_us(300), rtt: Dur::from_us(9) };
/// let map = LinearInterpolation::new(&a, &b);
/// assert_eq!(map.map(Time::from_secs(50)), Time::from_secs(50) + Dur::from_us(200));
/// assert!((map.slope() - 2e-6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LinearInterpolation {
    w1: Time,
    o1: Dur,
    /// Offset change per second of worker time.
    slope: f64,
}

impl LinearInterpolation {
    /// Build from the two measurements (order is normalised internally).
    ///
    /// # Panics
    /// Panics if both anchors share the same worker time.
    pub fn new(a: &OffsetMeasurement, b: &OffsetMeasurement) -> Self {
        let (first, second) = if a.worker_time <= b.worker_time {
            (a, b)
        } else {
            (b, a)
        };
        let dw = (second.worker_time - first.worker_time).as_secs_f64();
        assert!(dw > 0.0, "interpolation anchors coincide");
        LinearInterpolation {
            w1: first.worker_time,
            o1: first.offset,
            slope: (second.offset - first.offset).as_secs_f64() / dw,
        }
    }

    /// The interpolated offset at worker time `t`.
    pub fn offset_at(&self, t: Time) -> Dur {
        self.o1 + Dur::from_secs_f64(self.slope * (t - self.w1).as_secs_f64())
    }

    /// The fitted drift slope (seconds of offset per second — the relative
    /// rate difference between worker and master).
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// Apply Eq. 3 to a dense picosecond column in place.
    ///
    /// The anchor constants are hoisted, but each element runs the exact
    /// [`offset_at`](LinearInterpolation::offset_at) float sequence —
    /// ps→seconds divide, slope multiply, `.round()`-ing seconds→ps
    /// conversion — so results are bit-identical to the per-event map.
    /// (The `.round()` is load-bearing: a `trunc(x + 0.5)` rewrite differs
    /// on values like `0.49999999999999994` and would break the columnar /
    /// AoS bit-identity guarantee.) The loop body is branchless, so the
    /// autovectorizer can turn it into packed converts and FMAs without
    /// changing any individual result.
    pub fn map_col(&self, col: &mut [i64]) {
        let w1 = self.w1.as_ps();
        let o1 = self.o1.as_ps();
        let slope = self.slope;
        for ps in col.iter_mut() {
            let ds = Dur::from_ps(*ps - w1).as_secs_f64();
            *ps += o1 + Dur::from_secs_f64(slope * ds).as_ps();
        }
    }
}

impl TimestampMap for LinearInterpolation {
    fn map(&self, t: Time) -> Time {
        t + self.offset_at(t)
    }
}

/// Piecewise-linear interpolation through any number of anchors; constant
/// extrapolation of the boundary segments outside the anchored range.
#[derive(Debug, Clone)]
pub struct PiecewiseInterpolation {
    anchors: Vec<OffsetMeasurement>,
}

impl PiecewiseInterpolation {
    /// Build from measurements (sorted internally by worker time).
    ///
    /// # Panics
    /// Panics when fewer than two anchors are given or two anchors share a
    /// worker time.
    pub fn new(mut anchors: Vec<OffsetMeasurement>) -> Self {
        assert!(anchors.len() >= 2, "need at least two anchors");
        anchors.sort_by_key(|m| m.worker_time);
        for w in anchors.windows(2) {
            assert!(
                w[0].worker_time < w[1].worker_time,
                "duplicate anchor times"
            );
        }
        PiecewiseInterpolation { anchors }
    }

    /// Number of anchors.
    pub fn len(&self) -> usize {
        self.anchors.len()
    }

    /// Always false (construction requires ≥ 2 anchors).
    pub fn is_empty(&self) -> bool {
        false
    }

    fn segment(&self, t: Time) -> (&OffsetMeasurement, &OffsetMeasurement) {
        let n = self.anchors.len();
        let idx = match self.anchors.binary_search_by_key(&t, |m| m.worker_time) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        }
        .min(n - 2);
        (&self.anchors[idx], &self.anchors[idx + 1])
    }
}

impl TimestampMap for PiecewiseInterpolation {
    fn map(&self, t: Time) -> Time {
        let (a, b) = self.segment(t);
        LinearInterpolation::new(a, b).map(t)
    }
}

/// Least-squares line through many offset measurements, weighted by probe
/// quality (`1/rtt`).
///
/// Sits between Eq. 3 (which trusts exactly two anchors) and
/// [`PiecewiseInterpolation`] (which follows every anchor, noise included):
/// the regression averages measurement noise away but still assumes a
/// constant drift — useful when many probes exist but the clock is a
/// well-behaved hardware counter.
#[derive(Debug, Clone, Copy)]
pub struct RegressionInterpolation {
    slope: f64,
    intercept_s: f64,
}

impl RegressionInterpolation {
    /// Weighted least-squares fit through the measurements.
    ///
    /// Returns `None` for fewer than two measurements or zero time spread.
    pub fn fit(ms: &[OffsetMeasurement]) -> Option<Self> {
        if ms.len() < 2 {
            return None;
        }
        let weight = |m: &OffsetMeasurement| {
            let rtt = m.rtt.as_secs_f64();
            if rtt > 0.0 {
                1.0 / rtt
            } else {
                1.0
            }
        };
        let wsum: f64 = ms.iter().map(weight).sum();
        let mx: f64 = ms.iter().map(|m| weight(m) * m.worker_time.as_secs_f64()).sum::<f64>() / wsum;
        let my: f64 = ms.iter().map(|m| weight(m) * m.offset.as_secs_f64()).sum::<f64>() / wsum;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for m in ms {
            let w = weight(m);
            let dx = m.worker_time.as_secs_f64() - mx;
            sxx += w * dx * dx;
            sxy += w * dx * (m.offset.as_secs_f64() - my);
        }
        if sxx == 0.0 {
            return None;
        }
        let slope = sxy / sxx;
        Some(RegressionInterpolation {
            slope,
            intercept_s: my - slope * mx,
        })
    }

    /// Fitted relative rate difference.
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// Fitted offset at worker time `t`.
    pub fn offset_at(&self, t: Time) -> Dur {
        Dur::from_secs_f64(self.slope * t.as_secs_f64() + self.intercept_s)
    }
}

impl TimestampMap for RegressionInterpolation {
    fn map(&self, t: Time) -> Time {
        t + self.offset_at(t)
    }
}

/// Apply per-process maps to a whole trace (`maps[p]` for process `p`).
pub fn apply_maps(trace: &mut Trace, maps: &[Box<dyn TimestampMap>]) {
    assert_eq!(maps.len(), trace.n_procs(), "one map per process required");
    trace.map_times(|p, t| maps[p].map(t));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(w_s: f64, o_us: f64) -> OffsetMeasurement {
        OffsetMeasurement {
            worker_time: Time::from_secs_f64(w_s),
            offset: Dur::from_us_f64(o_us),
            rtt: Dur::from_us(10),
        }
    }

    #[test]
    fn alignment_shifts_constantly() {
        let a = OffsetAlignment::new(&m(0.0, 250.0));
        assert_eq!(a.map(Time::ZERO), Time::from_us(250));
        assert_eq!(
            a.map(Time::from_secs(100)),
            Time::from_secs(100) + Dur::from_us(250)
        );
    }

    #[test]
    fn eq3_is_exact_at_anchors() {
        let m1 = m(10.0, 100.0);
        let m2 = m(110.0, 300.0);
        let li = LinearInterpolation::new(&m1, &m2);
        assert_eq!(li.map(m1.worker_time), m1.worker_time + m1.offset);
        assert_eq!(li.map(m2.worker_time), m2.worker_time + m2.offset);
    }

    #[test]
    fn eq3_interpolates_linearly() {
        // Offset grows 200 µs over 100 s → 2 µs/s; halfway: +200 µs.
        let li = LinearInterpolation::new(&m(0.0, 100.0), &m(100.0, 300.0));
        assert_eq!(li.offset_at(Time::from_secs(50)), Dur::from_us(200));
        assert!((li.slope() - 2e-6).abs() < 1e-12);
        // Extrapolates beyond the anchors (the linear model's whole point).
        assert_eq!(li.offset_at(Time::from_secs(200)), Dur::from_us(500));
        assert_eq!(li.offset_at(Time::from_secs(-50)), Dur::from_us(0));
    }

    #[test]
    fn anchor_order_does_not_matter() {
        let a = LinearInterpolation::new(&m(0.0, 0.0), &m(100.0, 100.0));
        let b = LinearInterpolation::new(&m(100.0, 100.0), &m(0.0, 0.0));
        let t = Time::from_secs(33);
        assert_eq!(a.map(t), b.map(t));
    }

    #[test]
    #[should_panic(expected = "coincide")]
    fn coincident_anchors_panic() {
        let _ = LinearInterpolation::new(&m(5.0, 1.0), &m(5.0, 2.0));
    }

    #[test]
    fn piecewise_follows_kinks() {
        // Offset: 0 at t=0, 100 µs at t=100, back to 0 at t=200 — a shape a
        // single line cannot fit.
        let pw = PiecewiseInterpolation::new(vec![m(0.0, 0.0), m(100.0, 100.0), m(200.0, 0.0)]);
        assert_eq!(pw.len(), 3);
        let at = |s: f64| pw.map(Time::from_secs_f64(s)) - Time::from_secs_f64(s);
        assert_eq!(at(50.0), Dur::from_us(50));
        assert_eq!(at(150.0), Dur::from_us(50));
        assert_eq!(at(100.0), Dur::from_us(100));
        // Boundary-segment extrapolation.
        assert_eq!(at(250.0), Dur::from_us(-50));
    }

    #[test]
    fn regression_fits_through_noisy_anchors() {
        // True offset line: 3 µs/s + 50 µs, with alternating ±2 µs noise.
        let anchors: Vec<OffsetMeasurement> = (0..20)
            .map(|k| {
                let noise = if k % 2 == 0 { 2.0 } else { -2.0 };
                m(k as f64 * 10.0, 50.0 + 3.0 * (k as f64 * 10.0) + noise)
            })
            .collect();
        let r = RegressionInterpolation::fit(&anchors).unwrap();
        assert!((r.slope() - 3e-6).abs() < 1e-8, "slope {}", r.slope());
        let mid = r.offset_at(Time::from_secs(95));
        assert!((mid.as_us_f64() - (50.0 + 285.0)).abs() < 2.5, "{mid:?}");
        // Two-point Eq. 3 through the first and last anchors is fully
        // exposed to their noise; the regression averages it away.
        let two = LinearInterpolation::new(&anchors[0], &anchors[19]);
        let reg_err = (r.offset_at(Time::from_secs(95)).as_us_f64() - 335.0).abs();
        let two_err = (two.offset_at(Time::from_secs(95)).as_us_f64() - 335.0).abs();
        assert!(reg_err <= two_err + 1e-9);
    }

    #[test]
    fn regression_weighting_prefers_clean_probes() {
        // One wild anchor with a huge rtt (low weight) must barely matter.
        let mut anchors: Vec<OffsetMeasurement> =
            (0..10).map(|k| m(k as f64 * 10.0, 100.0)).collect();
        anchors.push(OffsetMeasurement {
            worker_time: Time::from_secs(45),
            offset: Dur::from_us(10_000),
            rtt: Dur::from_ms(50), // terrible probe
        });
        let r = RegressionInterpolation::fit(&anchors).unwrap();
        let at = r.offset_at(Time::from_secs(45)).as_us_f64();
        assert!((at - 100.0).abs() < 50.0, "outlier dominated: {at}");
    }

    #[test]
    fn regression_degenerate_inputs() {
        assert!(RegressionInterpolation::fit(&[]).is_none());
        assert!(RegressionInterpolation::fit(&[m(1.0, 2.0)]).is_none());
        assert!(
            RegressionInterpolation::fit(&[m(5.0, 1.0), m(5.0, 2.0)]).is_none(),
            "no time spread"
        );
    }

    #[test]
    fn apply_maps_per_process() {
        use tracefmt::{EventKind, RegionId};
        let mut t = Trace::for_ranks(2);
        t.procs[0].push(Time::from_us(10), EventKind::Enter { region: RegionId(0) });
        t.procs[1].push(Time::from_us(10), EventKind::Enter { region: RegionId(0) });
        let maps: Vec<Box<dyn TimestampMap>> = vec![
            Box::new(IdentityMap),
            Box::new(OffsetAlignment { offset: Dur::from_us(5) }),
        ];
        apply_maps(&mut t, &maps);
        assert_eq!(t.procs[0].events[0].time, Time::from_us(10));
        assert_eq!(t.procs[1].events[0].time, Time::from_us(15));
    }

    #[test]
    fn map_col_matches_per_element_map() {
        let li = LinearInterpolation::new(&m(0.0, 100.0), &m(100.0, 300.0));
        let al = OffsetAlignment::new(&m(0.0, 250.0));
        // Negatives, magnitudes spanning ~±17 minutes, and picosecond
        // residues that land near the .5 rounding edge of the seconds→ps
        // conversion.
        let raw: Vec<i64> = (-2000..2000i64).map(|k| k * 499_999_999 + (k % 7)).collect();
        let mut col = raw.clone();
        li.map_col(&mut col);
        for (&r, &got) in raw.iter().zip(&col) {
            assert_eq!(got, li.map(Time::from_ps(r)).as_ps(), "linear at {r}");
        }
        let mut col = raw.clone();
        al.map_col(&mut col);
        for (&r, &got) in raw.iter().zip(&col) {
            assert_eq!(got, al.map(Time::from_ps(r)).as_ps(), "align at {r}");
        }
    }

    #[test]
    fn identity_map_is_identity() {
        let id = IdentityMap;
        assert_eq!(id.map(Time::from_ns(12345)), Time::from_ns(12345));
    }
}
