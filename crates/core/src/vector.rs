//! Fidge/Mattern vector clocks.
//!
//! Each process keeps a vector of per-process counters; local events bump
//! the own component, receives merge the sender's vector element-wise
//! (paper §V, [25]–[27]). Unlike Lamport stamps, vector timestamps are
//! *complete*: `a happened-before b` **iff** `V(a) < V(b)`, so they can
//! decide concurrency, which makes them the reference oracle for validating
//! happened-before-based corrections.

use tracefmt::{match_messages, EventKind, EventId, Trace};

/// A vector timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorStamp(pub Vec<u32>);

impl VectorStamp {
    /// Strict happened-before: every component ≤, at least one <.
    pub fn happened_before(&self, other: &VectorStamp) -> bool {
        let mut strict = false;
        for (a, b) in self.0.iter().zip(&other.0) {
            if a > b {
                return false;
            }
            if a < b {
                strict = true;
            }
        }
        strict
    }

    /// Neither happened before the other.
    pub fn concurrent_with(&self, other: &VectorStamp) -> bool {
        !self.happened_before(other) && !other.happened_before(self) && self != other
    }
}

/// Vector timestamps for every event: `out[p][i]` stamps event `i` of
/// process `p`.
pub fn vector_timestamps(trace: &Trace) -> Vec<Vec<VectorStamp>> {
    let matching = match_messages(trace);
    let mut send_of = std::collections::HashMap::new();
    for m in &matching.messages {
        send_of.insert(m.recv, m.send);
    }
    let n = trace.n_procs();
    let mut out: Vec<Vec<VectorStamp>> = trace
        .procs
        .iter()
        .map(|p| Vec::with_capacity(p.events.len()))
        .collect();
    let mut current: Vec<Vec<u32>> = vec![vec![0; n]; n];
    let mut pc = vec![0usize; n];

    loop {
        let mut progressed = false;
        for p in 0..n {
            while pc[p] < trace.procs[p].events.len() {
                let i = pc[p];
                let ev = &trace.procs[p].events[i];
                if let EventKind::Recv { .. } = ev.kind {
                    if let Some(s) = send_of.get(&EventId::new(p, i)) {
                        if s.i() >= pc[s.p()] {
                            break; // wait for the send to be stamped
                        }
                        let sender = out[s.p()][s.i()].0.clone();
                        for (c, m) in current[p].iter_mut().zip(&sender) {
                            *c = (*c).max(*m);
                        }
                    }
                }
                current[p][p] += 1;
                out[p].push(VectorStamp(current[p].clone()));
                pc[p] += 1;
                progressed = true;
            }
        }
        if (0..n).all(|p| pc[p] == trace.procs[p].events.len()) {
            return out;
        }
        assert!(progressed, "cyclic message structure in trace");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::Time;
    use tracefmt::{Rank, RegionId, Tag};

    fn msg_trace() -> Trace {
        // p0: local, send     p1: local, recv, local
        let mut t = Trace::for_ranks(2);
        t.procs[0].push(Time::from_us(0), EventKind::Enter { region: RegionId(0) });
        t.procs[0].push(Time::from_us(1), EventKind::Send { to: Rank(1), tag: Tag(0), bytes: 0 });
        t.procs[1].push(Time::from_us(0), EventKind::Enter { region: RegionId(0) });
        t.procs[1].push(Time::from_us(5), EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 });
        t.procs[1].push(Time::from_us(6), EventKind::Exit { region: RegionId(0) });
        t
    }

    #[test]
    fn components_advance_locally() {
        let t = msg_trace();
        let v = vector_timestamps(&t);
        assert_eq!(v[0][0].0, vec![1, 0]);
        assert_eq!(v[0][1].0, vec![2, 0]);
        assert_eq!(v[1][0].0, vec![0, 1]);
        // Recv merges the sender's vector.
        assert_eq!(v[1][1].0, vec![2, 2]);
        assert_eq!(v[1][2].0, vec![2, 3]);
    }

    #[test]
    fn happened_before_iff_path() {
        let t = msg_trace();
        let v = vector_timestamps(&t);
        // send happened-before recv and its successors.
        assert!(v[0][1].happened_before(&v[1][1]));
        assert!(v[0][1].happened_before(&v[1][2]));
        assert!(v[0][0].happened_before(&v[1][2]));
        // p1's first local event is concurrent with everything on p0.
        assert!(v[1][0].concurrent_with(&v[0][0]));
        assert!(v[1][0].concurrent_with(&v[0][1]));
        // Nothing happens before itself.
        assert!(!v[0][0].happened_before(&v[0][0]));
    }

    #[test]
    fn concurrency_is_symmetric() {
        let t = msg_trace();
        let v = vector_timestamps(&t);
        assert_eq!(
            v[1][0].concurrent_with(&v[0][1]),
            v[0][1].concurrent_with(&v[1][0])
        );
    }

    #[test]
    fn vector_condition_matches_lamport_condition() {
        // Every message in a consistent or inconsistent trace must yield
        // send happened-before recv in the vector order.
        let t = msg_trace();
        let v = vector_timestamps(&t);
        let m = match_messages(&t);
        for msg in &m.messages {
            assert!(v[msg.send.p()][msg.send.i()].happened_before(&v[msg.recv.p()][msg.recv.i()]));
        }
    }
}
