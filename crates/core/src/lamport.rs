//! Lamport's discrete logical clock.
//!
//! The classic happened-before counter (paper §V, [24]): every local event
//! increments the process counter; a receive additionally raises it above
//! the send's value. Logical timestamps establish a *consistent* order —
//! they satisfy the clock condition by construction — but discard interval
//! lengths entirely, which is why the paper ultimately advocates the
//! controlled logical clock instead.

use tracefmt::{match_messages, EventKind, Trace};

/// Lamport timestamps parallel to the trace layout: `out[p][i]` is the
/// logical time of event `i` on process `p`.
pub fn lamport_timestamps(trace: &Trace) -> Vec<Vec<u64>> {
    let matching = match_messages(trace);
    // recv event -> its send event.
    let mut send_of = std::collections::HashMap::new();
    for m in &matching.messages {
        send_of.insert(m.recv, m.send);
    }

    let mut out: Vec<Vec<u64>> = trace
        .procs
        .iter()
        .map(|p| vec![0u64; p.events.len()])
        .collect();
    let mut pc = vec![0usize; trace.n_procs()]; // next unprocessed event
    let mut counter = vec![0u64; trace.n_procs()];

    // Conservative sweeps: a receive waits for its send to be stamped.
    loop {
        let mut progressed = false;
        for p in 0..trace.n_procs() {
            while pc[p] < trace.procs[p].events.len() {
                let i = pc[p];
                let ev = &trace.procs[p].events[i];
                let stamp = match ev.kind {
                    EventKind::Recv { .. } => {
                        match send_of.get(&tracefmt::EventId::new(p, i)) {
                            Some(s) => {
                                let sp = s.p();
                                let si = s.i();
                                if si >= pc[sp] && (sp != p) {
                                    // Send not stamped yet; block this proc.
                                    break;
                                }
                                counter[p].max(out[sp][si]) + 1
                            }
                            // Unmatched receive: treat as local event.
                            None => counter[p] + 1,
                        }
                    }
                    _ => counter[p] + 1,
                };
                counter[p] = stamp;
                out[p][i] = stamp;
                pc[p] += 1;
                progressed = true;
            }
        }
        if pc
            .iter()
            .enumerate()
            .all(|(p, &c)| c == trace.procs[p].events.len())
        {
            return out;
        }
        assert!(progressed, "cyclic message structure in trace");
    }
}

/// Check the Lamport clock condition on the stamped trace: every receive's
/// logical time exceeds its send's. Mostly useful as a test oracle.
pub fn satisfies_lamport_condition(trace: &Trace, stamps: &[Vec<u64>]) -> bool {
    let matching = match_messages(trace);
    matching
        .messages
        .iter()
        .all(|m| stamps[m.recv.p()][m.recv.i()] > stamps[m.send.p()][m.send.i()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::Time;
    use tracefmt::{Rank, RegionId, Tag};

    #[test]
    fn local_events_count_up() {
        let mut t = Trace::for_ranks(1);
        for i in 0..5 {
            t.procs[0].push(Time::from_us(i), EventKind::Enter { region: RegionId(0) });
        }
        let s = lamport_timestamps(&t);
        assert_eq!(s[0], vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn recv_exceeds_send_even_with_reversed_timestamps() {
        let mut t = Trace::for_ranks(2);
        // Sender has done lots of local work: counter high.
        for i in 0..9 {
            t.procs[0].push(Time::from_us(i), EventKind::Enter { region: RegionId(0) });
        }
        t.procs[0].push(
            Time::from_us(100),
            EventKind::Send { to: Rank(1), tag: Tag(0), bytes: 0 },
        );
        // Receiver's wall-clock timestamp is BEFORE the send (violation),
        // but Lamport ignores wall clocks entirely.
        t.procs[1].push(
            Time::from_us(50),
            EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 },
        );
        let s = lamport_timestamps(&t);
        assert_eq!(s[0][9], 10);
        assert_eq!(s[1][0], 11);
        assert!(satisfies_lamport_condition(&t, &s));
    }

    #[test]
    fn cross_process_chains_propagate() {
        // 0 -> 1 -> 2 chain: stamps strictly increase along the chain.
        let mut t = Trace::for_ranks(3);
        t.procs[0].push(Time::from_us(0), EventKind::Send { to: Rank(1), tag: Tag(0), bytes: 0 });
        t.procs[1].push(Time::from_us(1), EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 });
        t.procs[1].push(Time::from_us(2), EventKind::Send { to: Rank(2), tag: Tag(0), bytes: 0 });
        t.procs[2].push(Time::from_us(3), EventKind::Recv { from: Rank(1), tag: Tag(0), bytes: 0 });
        let s = lamport_timestamps(&t);
        assert!(s[0][0] < s[1][0]);
        assert!(s[1][1] < s[2][0]);
    }

    #[test]
    fn unmatched_recv_does_not_hang() {
        let mut t = Trace::for_ranks(2);
        t.procs[1].push(Time::from_us(1), EventKind::Recv { from: Rank(0), tag: Tag(9), bytes: 0 });
        let s = lamport_timestamps(&t);
        assert_eq!(s[1][0], 1);
    }
}
