//! CLC extension to shared-memory (OpenMP/POMP) traces.
//!
//! The paper names this as an open limitation of the CLC (§VI: "current
//! limitations … include the non-observance of shared-memory clock
//! conditions related to OpenMP constructs"). This module closes it: the
//! POMP happened-before rules are expressed as generic timing constraints —
//!
//! * every event of a parallel region happens after the **fork**,
//! * the **join** happens after every event of the region,
//! * every barrier **exit** happens after every barrier **enter**,
//!
//! — and a generalized forward pass (same amortized arithmetic as the
//! message CLC) enforces them. Because threads of one SMP node communicate
//! through shared memory, the minimum "latency" of these constraints is the
//! synchronisation cost `d_min`, typically tens to hundreds of
//! nanoseconds.

use super::{ClcError, ClcParams, ClcReport, Jump};
use simclock::{Dur, Time};
use tracefmt::{match_parallel_regions, EventId, Trace};

/// One happened-before constraint: `time(to) ≥ time(from) + bound`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Constraint {
    /// The earlier event.
    pub from: EventId,
    /// The later event.
    pub to: EventId,
    /// Minimum separation.
    pub bound: Dur,
}

/// Extract the POMP constraints from a thread-team trace.
///
/// `d_min` is the minimum shared-memory synchronisation latency (the
/// shared-memory analogue of the paper's `l_min`).
pub fn pomp_constraints(trace: &Trace, d_min: Dur) -> Result<Vec<Constraint>, ClcError> {
    let regions = match_parallel_regions(trace).map_err(ClcError::BadCollectives)?;
    let mut out = Vec::new();
    for reg in &regions {
        let mut barrier_enters = Vec::new();
        let mut barrier_exits = Vec::new();
        for th in &reg.threads {
            // Fork precedes the thread's first event; the thread's last
            // event precedes the join. (Interior events are ordered by the
            // per-thread monotonicity the forward pass maintains anyway.)
            let first = EventId::new(th.proc, th.first as usize);
            let last = EventId::new(th.proc, th.last as usize);
            if first != reg.fork {
                out.push(Constraint { from: reg.fork, to: first, bound: d_min });
            }
            if last != reg.join {
                out.push(Constraint { from: last, to: reg.join, bound: d_min });
            }
            if let Some(be) = th.barrier_enter {
                barrier_enters.push(be);
            }
            if let Some(bx) = th.barrier_exit {
                barrier_exits.push(bx);
            }
        }
        // Barrier overlap: no thread leaves before every thread entered.
        for &exit in &barrier_exits {
            for &enter in &barrier_enters {
                if enter.p() != exit.p() {
                    out.push(Constraint { from: enter, to: exit, bound: d_min });
                }
            }
        }
    }
    Ok(out)
}

/// Apply the CLC forward pass to an arbitrary constraint set.
///
/// Constraints must be acyclic when combined with per-timeline program
/// order (true for POMP rules and any happened-before relation); a cycle
/// yields [`ClcError::CyclicTrace`].
pub fn controlled_logical_clock_generic(
    trace: &mut Trace,
    constraints: &[Constraint],
    params: &ClcParams,
) -> Result<ClcReport, ClcError> {
    if !(params.mu > 0.0 && params.mu <= 1.0) {
        return Err(ClcError::BadParams(format!("mu = {}", params.mu)));
    }
    // Index constraints by target event.
    let mut incoming: std::collections::HashMap<EventId, Vec<(EventId, Dur)>> =
        std::collections::HashMap::new();
    for c in constraints {
        incoming.entry(c.to).or_default().push((c.from, c.bound));
    }

    let originals: Vec<Vec<Time>> = trace
        .procs
        .iter()
        .map(|p| p.events.iter().map(|e| e.time).collect())
        .collect();
    let n = trace.n_procs();
    let mut pc = vec![0usize; n];
    let mut prev_orig = vec![Time::MIN; n];
    let mut prev_corr = vec![Time::MIN; n];
    let mut report = ClcReport::default();

    loop {
        let mut progressed = false;
        for p in 0..n {
            'events: while pc[p] < trace.procs[p].events.len() {
                let i = pc[p];
                let id = EventId::new(p, i);
                let orig = originals[p][i];
                let mut remote: Option<Time> = None;
                if let Some(deps) = incoming.get(&id) {
                    let mut bound: Option<Time> = None;
                    for &(from, d) in deps {
                        // Same-timeline constraints are satisfied by
                        // program order; only remote ones can block.
                        if from.p() == p {
                            if from.i() >= i {
                                return Err(ClcError::CyclicTrace);
                            }
                        } else if from.i() >= pc[from.p()] {
                            break 'events;
                        }
                        let c = trace.time(from) + d;
                        bound = Some(bound.map_or(c, |b: Time| b.max(c)));
                    }
                    remote = bound;
                }
                let candidate = if i == 0 {
                    orig
                } else {
                    let gap = (orig - prev_orig[p]).max(Dur::ZERO);
                    orig.max(prev_corr[p] + gap.scale(params.mu))
                };
                let corrected = match remote {
                    Some(r) if r > candidate => {
                        let size = r - candidate;
                        report.jumps.push(Jump { event: id, size });
                        report.max_jump = report.max_jump.max(size);
                        r
                    }
                    _ => candidate,
                };
                trace.procs[p].events[i].time = corrected;
                prev_orig[p] = orig;
                prev_corr[p] = corrected;
                pc[p] += 1;
                progressed = true;
            }
        }
        if (0..n).all(|p| pc[p] == trace.procs[p].events.len()) {
            break;
        }
        if !progressed {
            return Err(ClcError::CyclicTrace);
        }
    }
    report.events_total = trace.n_events();
    report.events_moved = trace
        .procs
        .iter()
        .zip(&originals)
        .map(|(p, orig)| {
            p.events
                .iter()
                .zip(orig)
                .filter(|(e, &o)| e.time != o)
                .count()
        })
        .sum();
    Ok(report)
}

/// Restore the POMP shared-memory clock conditions in an OpenMP trace.
pub fn controlled_logical_clock_pomp(
    trace: &mut Trace,
    d_min: Dur,
    params: &ClcParams,
) -> Result<ClcReport, ClcError> {
    let constraints = pomp_constraints(trace, d_min)?;
    controlled_logical_clock_generic(trace, &constraints, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::Time;
    use tracefmt::{check_pomp, EventKind, RegionId};

    fn us(n: i64) -> Time {
        Time::from_us(n)
    }

    /// A 2-thread region with every POMP rule violated by skewed clocks:
    /// worker events before the fork, barrier non-overlap, events after the
    /// join.
    fn broken_trace() -> Trace {
        let r = RegionId(0);
        let mut t = Trace::for_threads(2);
        // Master (thread 0), "correct" clock.
        t.procs[0].push(us(100), EventKind::Fork { region: r });
        t.procs[0].push(us(101), EventKind::Enter { region: r });
        t.procs[0].push(us(150), EventKind::Exit { region: r });
        t.procs[0].push(us(150), EventKind::BarrierEnter { region: r });
        t.procs[0].push(us(181), EventKind::BarrierExit { region: r });
        t.procs[0].push(us(182), EventKind::Join { region: r });
        // Worker (thread 1), clock 90 µs behind: everything looks early.
        t.procs[1].push(us(12), EventKind::Enter { region: r });
        t.procs[1].push(us(90), EventKind::Exit { region: r });
        t.procs[1].push(us(90), EventKind::BarrierEnter { region: r });
        t.procs[1].push(us(91), EventKind::BarrierExit { region: r });
        t
    }

    #[test]
    fn pomp_clc_restores_all_rules() {
        let mut t = broken_trace();
        let regions = match_parallel_regions(&t).unwrap();
        let before = check_pomp(&t, &regions);
        assert!(before.any_violations > 0, "fixture must violate");

        let d_min = Dur::from_ns(100);
        let rep = controlled_logical_clock_pomp(&mut t, d_min, &ClcParams::default()).unwrap();
        assert!(rep.n_jumps() > 0);

        let regions = match_parallel_regions(&t).unwrap();
        let after = check_pomp(&t, &regions);
        assert_eq!(after.any_violations, 0, "{after:?}");
        assert!(t.is_locally_monotone());
    }

    #[test]
    fn constraint_extraction_shapes() {
        let t = broken_trace();
        let cs = pomp_constraints(&t, Dur::from_ns(100)).unwrap();
        // fork -> first event of each thread (master's first is its Enter),
        // last events -> join, and 2 cross-thread barrier pairs... plus the
        // master's own fork->enter and exit->join edges.
        assert!(cs.len() >= 5, "{} constraints", cs.len());
        // Every constraint's endpoints are valid events.
        for c in &cs {
            assert!(c.from.i() < t.procs[c.from.p()].events.len());
            assert!(c.to.i() < t.procs[c.to.p()].events.len());
        }
    }

    #[test]
    fn consistent_trace_untouched() {
        let r = RegionId(0);
        let mut t = Trace::for_threads(2);
        t.procs[0].push(us(0), EventKind::Fork { region: r });
        t.procs[0].push(us(10), EventKind::BarrierEnter { region: r });
        t.procs[0].push(us(30), EventKind::BarrierExit { region: r });
        t.procs[0].push(us(40), EventKind::Join { region: r });
        t.procs[1].push(us(5), EventKind::Enter { region: r });
        t.procs[1].push(us(12), EventKind::Exit { region: r });
        t.procs[1].push(us(12), EventKind::BarrierEnter { region: r });
        t.procs[1].push(us(31), EventKind::BarrierExit { region: r });
        let before = t.clone();
        let rep =
            controlled_logical_clock_pomp(&mut t, Dur::from_ns(100), &ClcParams::default())
                .unwrap();
        assert_eq!(rep.n_jumps(), 0);
        for p in 0..2 {
            assert_eq!(t.procs[p].events, before.procs[p].events);
        }
    }

    #[test]
    fn repairs_a_simulated_openmp_run() {
        // End-to-end: the Fig. 8 benchmark at 4 threads is full of
        // violations; the POMP CLC must clear them all.
        let shape = simclock::Platform::ItaniumSmp.shape(1);
        let profile = simclock::Platform::ItaniumSmp
            .clock_profile(simclock::TimerKind::CycleCounter, 60.0);
        let clocks =
            simclock::ClockEnsemble::build(shape, simclock::ClockDomain::PerChip, &profile, 3);
        // (mpisim is a dev-dependency of clocksync? No — construct manually.)
        // Build a small synthetic multi-region trace instead, with per-chip
        // clock offsets applied by hand.
        let r = RegionId(0);
        let mut t = Trace::for_threads(4);
        let offs: Vec<Dur> = (0..4)
            .map(|chip| {
                let c = shape.core(0, chip, 0);
                clocks.ideal_at(c, Time::ZERO) - Time::ZERO
            })
            .collect();
        for k in 0..20i64 {
            let base = k * 1000;
            t.procs[0].push(us(base) + offs[0], EventKind::Fork { region: r });
            #[allow(clippy::needless_range_loop)]
            for th in 0..4usize {
                t.procs[th].push(us(base + 2) + offs[th], EventKind::Enter { region: r });
                t.procs[th].push(us(base + 50) + offs[th], EventKind::Exit { region: r });
                t.procs[th].push(us(base + 50) + offs[th], EventKind::BarrierEnter { region: r });
                t.procs[th].push(us(base + 52) + offs[th], EventKind::BarrierExit { region: r });
            }
            t.procs[0].push(us(base + 53) + offs[0], EventKind::Join { region: r });
        }
        let regions = match_parallel_regions(&t).unwrap();
        let before = check_pomp(&t, &regions);
        assert!(before.any_violations > 0, "chip offsets should violate");
        controlled_logical_clock_pomp(&mut t, Dur::from_ns(100), &ClcParams::default())
            .unwrap();
        let regions = match_parallel_regions(&t).unwrap();
        let after = check_pomp(&t, &regions);
        assert_eq!(after.any_violations, 0, "{after:?}");
    }

    #[test]
    fn cyclic_constraints_detected() {
        let mut t = Trace::for_ranks(2);
        t.procs[0].push(us(0), EventKind::Enter { region: RegionId(0) });
        t.procs[1].push(us(0), EventKind::Enter { region: RegionId(0) });
        let a = EventId::new(0, 0);
        let b = EventId::new(1, 0);
        let cs = vec![
            Constraint { from: a, to: b, bound: Dur::from_us(1) },
            Constraint { from: b, to: a, bound: Dur::from_us(1) },
        ];
        let err =
            controlled_logical_clock_generic(&mut t, &cs, &ClcParams::default()).unwrap_err();
        assert_eq!(err, ClcError::CyclicTrace);
    }
}
