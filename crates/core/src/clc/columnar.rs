//! CLC kernels over columnar timestamp storage.
//!
//! These re-implement the serial forward/backward passes and the
//! replay-based parallel forward pass of [`super`] and [`super::parallel`]
//! as tight loops over dense `i64` picosecond columns
//! ([`TraceColumns`]) instead of per-record struct walks. The arithmetic
//! is copied statement for statement, and the one structural difference —
//! the AoS passes dispatch on `EventKind` before consulting the dependency
//! maps, the columnar passes consult the maps directly — cannot change
//! behaviour: `Deps::send_of` only ever holds matched receive events and
//! `Deps::end_info` only collective-end events, so a map hit implies
//! exactly the kind the AoS match required, and a miss leaves the event
//! unconstrained in both versions. Bit-identity is enforced by the
//! differential test matrix in `tests/columnar_differential.rs`.

use super::{ClcError, ClcParams, ClcReport, Deps, Jump};
use crate::clc::parallel::CollCell;
use crossbeam::channel::{unbounded, Receiver, Sender};
use simclock::{Dur, Time};
use std::collections::HashMap;
use tracefmt::{EventId, MinLatency, Rank, TraceColumns};

/// Serial CLC on timestamp columns: the columnar twin of
/// [`super::controlled_logical_clock_with_deps`]. `ranks[p]` is the rank of
/// timeline `p`.
pub(crate) fn controlled_logical_clock_columnar_with_deps(
    cols: &mut TraceColumns,
    ranks: &[Rank],
    deps: &Deps,
    lmin: &(dyn MinLatency + Sync),
    params: &ClcParams,
) -> Result<ClcReport, ClcError> {
    validate(params)?;
    let originals = cols.to_time_vecs();
    let mut report = forward_pass_columnar(cols, ranks, &originals, deps, lmin, params.mu)?;
    if params.backward {
        backward_amortization_columnar(cols, ranks, deps, lmin, params, &report.jumps, false);
        let post = cols.to_time_vecs();
        let _ = forward_pass_columnar(cols, ranks, &post, deps, lmin, 1.0)?;
    }
    report.events_total = cols.n_events();
    report.events_moved = events_moved(cols, &originals);
    Ok(report)
}

/// Replay-based parallel CLC on timestamp columns: the columnar twin of
/// [`super::parallel::controlled_logical_clock_parallel_with_deps`]. One
/// worker per timeline; corrected send times flow over channels, collective
/// begin times through shared gather cells.
pub(crate) fn controlled_logical_clock_columnar_parallel_with_deps(
    cols: &mut TraceColumns,
    ranks: &[Rank],
    deps: &Deps,
    lmin: &(dyn MinLatency + Sync),
    params: &ClcParams,
) -> Result<ClcReport, ClcError> {
    validate(params)?;
    let n = cols.n_procs();

    let mut senders: Vec<Sender<(EventId, Time)>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<(EventId, Time)>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(Some(r));
    }
    let cells: Vec<CollCell> = deps
        .insts
        .iter()
        .map(|i| CollCell::new(i.members.len()))
        .collect();
    let inst_ranks: Vec<Vec<Rank>> = deps
        .insts
        .iter()
        .map(|i| i.members.iter().map(|m| m.0).collect())
        .collect();

    let originals = cols.to_time_vecs();

    let mut all_jumps: Vec<Vec<Jump>> = Vec::new();
    let cells_ref = &cells;
    let inst_ranks_ref = &inst_ranks;
    let originals_ref = &originals;
    let senders_ref = &senders;

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (p, col) in cols.iter_mut_slices() {
            let inbox = receivers[p].take().expect("inbox taken twice");
            let my_rank = ranks[p];
            let mu = params.mu;
            handles.push(scope.spawn(move || {
                replay_process_columnar(
                    p,
                    my_rank,
                    col,
                    &originals_ref[p],
                    inbox,
                    senders_ref,
                    deps,
                    cells_ref,
                    inst_ranks_ref,
                    lmin,
                    mu,
                )
            }));
        }
        for h in handles {
            all_jumps.push(h.join().expect("replay worker panicked"));
        }
    });
    drop(senders);

    let mut jumps: Vec<Jump> = all_jumps.into_iter().flatten().collect();
    jumps.sort_by_key(|j| (j.event.proc, j.event.idx));
    let max_jump = jumps.iter().map(|j| j.size).max().unwrap_or(Dur::ZERO);

    if params.backward {
        backward_amortization_columnar(cols, ranks, deps, lmin, params, &jumps, true);
        let post = cols.to_time_vecs();
        forward_pass_columnar(cols, ranks, &post, deps, lmin, 1.0)?;
    }

    Ok(ClcReport {
        max_jump,
        events_moved: events_moved(cols, &originals),
        events_total: cols.n_events(),
        jumps,
    })
}

fn validate(params: &ClcParams) -> Result<(), ClcError> {
    if !(params.mu > 0.0 && params.mu <= 1.0) {
        return Err(ClcError::BadParams(format!("mu = {}", params.mu)));
    }
    if params.backward && params.backward_window_factor <= 0.0 {
        return Err(ClcError::BadParams("non-positive backward window".into()));
    }
    Ok(())
}

fn events_moved(cols: &TraceColumns, originals: &[Vec<Time>]) -> usize {
    cols.iter()
        .zip(originals)
        .map(|(col, orig)| {
            col.as_slice()
                .iter()
                .zip(orig)
                .filter(|(&ps, &o)| ps != o.as_ps())
                .count()
        })
        .sum()
}

/// The forward pass over columns: assign corrected times in dependency
/// order, round-robin across timelines, exactly like
/// [`super::forward_pass`].
pub(crate) fn forward_pass_columnar(
    cols: &mut TraceColumns,
    ranks: &[Rank],
    originals: &[Vec<Time>],
    deps: &Deps,
    lmin: &dyn MinLatency,
    mu: f64,
) -> Result<ClcReport, ClcError> {
    let n = cols.n_procs();
    let mut pc = vec![0usize; n];
    let mut prev_orig = vec![Time::MIN; n];
    let mut prev_corr = vec![Time::MIN; n];
    let mut report = ClcReport::default();

    loop {
        let mut progressed = false;
        for p in 0..n {
            'events: while pc[p] < cols.col(p).len() {
                let i = pc[p];
                let id = EventId::new(p, i);
                let orig = originals[p][i];
                let my_rank = ranks[p];

                // Remote constraint, if any. A hit in `send_of` means this
                // is a matched receive; a hit in `end_info` a collective
                // end — the same dispatch the AoS pass derives from kinds.
                let mut remote: Option<Time> = None;
                if let Some(&(send, from)) = deps.send_of.get(&id) {
                    if send.i() >= pc[send.p()] {
                        break 'events; // send not yet corrected
                    }
                    remote = Some(cols.time(send) + lmin.l_min(from, my_rank));
                } else if let Some(&(inst_idx, pos)) = deps.end_info.get(&id) {
                    let inst = &deps.insts[inst_idx];
                    let mut bound: Option<Time> = None;
                    for j in inst.deps_of_end(pos) {
                        let (jrank, jbegin, _) = inst.members[j];
                        if jbegin.i() >= pc[jbegin.p()] {
                            break 'events; // dependency pending
                        }
                        let c = cols.time(jbegin) + lmin.l_min(jrank, my_rank);
                        bound = Some(bound.map_or(c, |b: Time| b.max(c)));
                    }
                    remote = bound;
                }

                // Amortized local candidate.
                let candidate = if i == 0 {
                    orig
                } else {
                    let gap = (orig - prev_orig[p]).max(Dur::ZERO);
                    orig.max(prev_corr[p] + gap.scale(mu))
                };
                let corrected = match remote {
                    Some(r) if r > candidate => {
                        let size = r - candidate;
                        report.jumps.push(Jump { event: id, size });
                        report.max_jump = report.max_jump.max(size);
                        r
                    }
                    _ => candidate,
                };
                cols.set_time(id, corrected);
                prev_orig[p] = orig;
                prev_corr[p] = corrected;
                pc[p] += 1;
                progressed = true;
            }
        }
        if (0..n).all(|p| pc[p] == cols.col(p).len()) {
            return Ok(report);
        }
        if !progressed {
            return Err(ClcError::CyclicTrace);
        }
    }
}

/// Backward amortization over columns: smooth each jump over a window of
/// preceding events, clamped against a snapshot — the columnar twin of the
/// serial `backward_amortization` / `parallel_backward` pair. With
/// `threaded` the per-timeline kernels run on scoped threads (timelines
/// are independent here, so threading cannot change the result).
fn backward_amortization_columnar(
    cols: &mut TraceColumns,
    ranks: &[Rank],
    deps: &Deps,
    lmin: &(dyn MinLatency + Sync),
    params: &ClcParams,
    jumps: &[Jump],
    threaded: bool,
) {
    let snapshot = cols.to_time_vecs();
    let snapshot_ref = &snapshot;
    let mut per_proc: Vec<Vec<Jump>> = vec![Vec::new(); cols.n_procs()];
    for j in jumps {
        per_proc[j.event.p()].push(*j);
    }
    for list in per_proc.iter_mut() {
        list.sort_by_key(|j| j.event.i());
    }
    if threaded {
        std::thread::scope(|scope| {
            for (p, col) in cols.iter_mut_slices() {
                let my_jumps = std::mem::take(&mut per_proc[p]);
                if my_jumps.is_empty() {
                    continue;
                }
                let my_rank = ranks[p];
                scope.spawn(move || {
                    backward_pass_columnar(
                        p, my_rank, col, &my_jumps, deps, lmin, params, snapshot_ref,
                    );
                });
            }
        });
    } else {
        for (p, col) in cols.iter_mut_slices() {
            backward_pass_columnar(
                p,
                ranks[p],
                col,
                &per_proc[p],
                deps,
                lmin,
                params,
                snapshot_ref,
            );
        }
    }
}

/// The per-timeline backward kernel over a raw picosecond slice — the
/// columnar twin of [`super::backward_pass_proc`], statement for statement.
#[allow(clippy::too_many_arguments)]
fn backward_pass_columnar(
    p: usize,
    my_rank: Rank,
    col: &mut [i64],
    jumps: &[Jump],
    deps: &Deps,
    lmin: &dyn MinLatency,
    params: &ClcParams,
    snapshot: &[Vec<Time>],
) {
    for jump in jumps {
        let k = jump.event.i();
        if k == 0 {
            continue;
        }
        let delta = jump.size;
        let t_pre = Time::from_ps(col[k]) - delta;
        let window = delta.scale(params.backward_window_factor);
        let w_start = t_pre - window;
        // Walk backward applying min(ramp, cap, shift_of_successor).
        let mut shift_above = delta;
        for i in (0..k).rev() {
            let t_i = Time::from_ps(col[i]);
            if t_i <= w_start {
                break;
            }
            let frac = (t_i - w_start).as_ps() as f64 / window.as_ps().max(1) as f64;
            let ramp = delta.scale(frac.clamp(0.0, 1.0));
            let id = EventId::new(p, i);
            let mut cap = Dur::MAX;
            if let Some(&(recv, to)) = deps.recv_of.get(&id) {
                cap = cap.min(snapshot[recv.p()][recv.i()] - lmin.l_min(my_rank, to) - t_i);
            }
            if let Some(&(inst_idx, pos)) = deps.begin_info.get(&id) {
                let inst = &deps.insts[inst_idx];
                for j in inst.dependents_of_begin(pos) {
                    let (jrank, _, jend) = inst.members[j];
                    cap = cap.min(snapshot[jend.p()][jend.i()] - lmin.l_min(my_rank, jrank) - t_i);
                }
            }
            let shift = ramp.min(cap).min(shift_above).max(Dur::ZERO);
            col[i] = (t_i + shift).as_ps();
            shift_above = shift;
            if shift == Dur::ZERO {
                break;
            }
        }
    }
}

/// The per-timeline replay worker over a raw picosecond slice — the
/// columnar twin of `replay_process`, with dependency-map hits standing in
/// for the kind dispatch.
#[allow(clippy::too_many_arguments)]
fn replay_process_columnar(
    p: usize,
    my_rank: Rank,
    col: &mut [i64],
    originals: &[Time],
    inbox: Receiver<(EventId, Time)>,
    senders: &[Sender<(EventId, Time)>],
    deps: &Deps,
    cells: &[CollCell],
    inst_ranks: &[Vec<Rank>],
    lmin: &(dyn MinLatency + Sync),
    mu: f64,
) -> Vec<Jump> {
    let mut jumps = Vec::new();
    let mut prev_orig = Time::MIN;
    let mut prev_corr = Time::MIN;
    let mut pending: HashMap<EventId, Time> = HashMap::new();

    for i in 0..col.len() {
        let id = EventId::new(p, i);
        let orig = originals[i];
        let mut remote: Option<Time> = None;
        if let Some(&(_, from)) = deps.send_of.get(&id) {
            // Wait for this recv's corrected send time.
            let send_time = loop {
                if let Some(t) = pending.remove(&id) {
                    break t;
                }
                let (rid, t) = inbox.recv().expect("sender hung up early");
                pending.insert(rid, t);
            };
            remote = Some(send_time + lmin.l_min(from, my_rank));
        } else if let Some(&(inst_idx, pos)) = deps.end_info.get(&id) {
            let needed: Vec<usize> = deps.insts[inst_idx].deps_of_end(pos).collect();
            remote = cells[inst_idx].await_bound(&needed, &inst_ranks[inst_idx], my_rank, lmin);
        }

        let candidate = if i == 0 {
            orig
        } else {
            let gap = (orig - prev_orig).max(Dur::ZERO);
            orig.max(prev_corr + gap.scale(mu))
        };
        let corrected = match remote {
            Some(r) if r > candidate => {
                jumps.push(Jump { event: id, size: r - candidate });
                r
            }
            _ => candidate,
        };
        col[i] = corrected.as_ps();
        prev_orig = orig;
        prev_corr = corrected;

        // Publish the corrected time to whoever depends on it.
        if let Some(&(recv, _)) = deps.recv_of.get(&id) {
            senders[recv.p()]
                .send((recv, corrected))
                .expect("receiver hung up early");
        }
        if let Some(&(inst_idx, pos)) = deps.begin_info.get(&id) {
            cells[inst_idx].deposit(pos, corrected);
        }
    }
    jumps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clc::{
        controlled_logical_clock,
        parallel::controlled_logical_clock_parallel_with_deps as aos_parallel, ClcParams,
    };
    use simclock::Time;
    use tracefmt::{CollOp, CommId, EventKind, Tag, Trace, UniformLatency};

    const LMIN: UniformLatency = UniformLatency(Dur::from_ps(4_000_000));

    /// Mixed p2p + collective trace with injected skew (deterministic).
    fn fixture(procs: usize, rounds: usize) -> Trace {
        let mut t = Trace::for_ranks(procs);
        let mut now = vec![0i64; procs];
        for round in 0..rounds {
            for (p, now_p) in now.iter_mut().enumerate() {
                let next = (p + 1) % procs;
                *now_p += 7 + ((round * 13 + p * 5) % 40) as i64;
                let skew = ((p * 37) % 90) as i64 - 45;
                t.procs[p].push(
                    Time::from_us(*now_p + skew),
                    EventKind::Send { to: Rank(next as u32), tag: Tag(round as u32), bytes: 8 },
                );
            }
            for (p, now_p) in now.iter_mut().enumerate() {
                let prev = (p + procs - 1) % procs;
                *now_p += 6 + ((round * 11 + p * 3) % 30) as i64;
                let skew = ((p * 37) % 90) as i64 - 45;
                t.procs[p].push(
                    Time::from_us(*now_p + skew),
                    EventKind::Recv { from: Rank(prev as u32), tag: Tag(round as u32), bytes: 8 },
                );
            }
            if round % 4 == 0 {
                let base = *now.iter().max().unwrap();
                for (p, now_p) in now.iter_mut().enumerate() {
                    let skew = ((p * 37) % 90) as i64 - 45;
                    *now_p = base + ((p * 3) % 10) as i64;
                    t.procs[p].push(
                        Time::from_us(*now_p + skew),
                        EventKind::CollBegin {
                            op: CollOp::Allreduce,
                            comm: CommId::WORLD,
                            root: None,
                            bytes: 8,
                        },
                    );
                    *now_p += 12 + ((p * 7) % 9) as i64;
                    t.procs[p].push(
                        Time::from_us(*now_p + skew),
                        EventKind::CollEnd {
                            op: CollOp::Allreduce,
                            comm: CommId::WORLD,
                            root: None,
                            bytes: 8,
                        },
                    );
                }
            }
        }
        t
    }

    fn ranks_of(t: &Trace) -> Vec<Rank> {
        t.procs.iter().map(|p| p.location.rank).collect()
    }

    #[test]
    fn columnar_serial_matches_aos_serial() {
        for (procs, rounds) in [(2, 8), (5, 17), (8, 25)] {
            let base = fixture(procs, rounds);
            let params = ClcParams::default();

            let mut aos = base.clone();
            let ra = controlled_logical_clock(&mut aos, &LMIN, &params).unwrap();

            let deps = crate::clc::extract_deps(&base).unwrap();
            let mut cols = TraceColumns::gather(&base);
            let rc = controlled_logical_clock_columnar_with_deps(
                &mut cols,
                &ranks_of(&base),
                &deps,
                &LMIN,
                &params,
            )
            .unwrap();

            assert_eq!(ra.n_jumps(), rc.n_jumps());
            assert_eq!(ra.max_jump, rc.max_jump);
            assert_eq!(ra.events_moved, rc.events_moved);
            for (ja, jc) in ra.jumps.iter().zip(&rc.jumps) {
                assert_eq!(ja.event, jc.event);
                assert_eq!(ja.size, jc.size);
            }
            for (id, e) in aos.iter_events() {
                assert_eq!(cols.time(id), e.time, "{procs}x{rounds} event {id:?}");
            }
        }
    }

    #[test]
    fn columnar_parallel_matches_aos_parallel() {
        let base = fixture(6, 20);
        let params = ClcParams::default();
        let deps = crate::clc::extract_deps(&base).unwrap();

        let mut aos = base.clone();
        let ra = aos_parallel(&mut aos, &deps, &LMIN, &params).unwrap();

        let mut cols = TraceColumns::gather(&base);
        let rc = controlled_logical_clock_columnar_parallel_with_deps(
            &mut cols,
            &ranks_of(&base),
            &deps,
            &LMIN,
            &params,
        )
        .unwrap();

        assert_eq!(ra.n_jumps(), rc.n_jumps());
        for (ja, jc) in ra.jumps.iter().zip(&rc.jumps) {
            assert_eq!(ja.event, jc.event);
            assert_eq!(ja.size, jc.size);
        }
        for (id, e) in aos.iter_events() {
            assert_eq!(cols.time(id), e.time);
        }
    }

    #[test]
    fn forward_only_variants_match() {
        let base = fixture(4, 12);
        let params = ClcParams { backward: false, ..ClcParams::default() };
        let deps = crate::clc::extract_deps(&base).unwrap();

        let mut aos = base.clone();
        controlled_logical_clock(&mut aos, &LMIN, &params).unwrap();

        let mut cols = TraceColumns::gather(&base);
        controlled_logical_clock_columnar_with_deps(
            &mut cols,
            &ranks_of(&base),
            &deps,
            &LMIN,
            &params,
        )
        .unwrap();

        for (id, e) in aos.iter_events() {
            assert_eq!(cols.time(id), e.time);
        }
    }

    #[test]
    fn bad_params_rejected() {
        let base = fixture(2, 3);
        let deps = crate::clc::extract_deps(&base).unwrap();
        let mut cols = TraceColumns::gather(&base);
        let err = controlled_logical_clock_columnar_with_deps(
            &mut cols,
            &ranks_of(&base),
            &deps,
            &LMIN,
            &ClcParams { mu: 0.0, ..ClcParams::default() },
        );
        assert!(matches!(err, Err(ClcError::BadParams(_))));
    }
}
