//! CLC kernels over columnar timestamp storage and the CSR graph.
//!
//! These re-implement the serial forward/backward passes of [`super`] as
//! tight loops over dense `i64` picosecond columns ([`TraceColumns`])
//! driven by the flat [`DepGraph`] instead of per-record struct walks and
//! hash-map probes. The arithmetic is copied statement for statement, and
//! the structural differences cannot change behaviour:
//!
//! * the AoS passes dispatch on `EventKind` before consulting the
//!   dependency maps; the CSR passes consult `in_of`/`out_of` directly.
//!   Only matched receives and collective ends have in-edges, only matched
//!   sends and collective begins out-edges, so a non-empty edge slice
//!   implies exactly the kind the AoS match required and an empty one
//!   leaves the event unconstrained in both versions;
//! * the remote bound is a `max` over the same contribution set (edge
//!   latencies are baked in at build, equal in both directions of every
//!   edge), and `max` is order-independent — though the CSR in-edge order
//!   equals the AoS dispatch order anyway, so even the round-robin blocking
//!   schedule (break at the first pending producer) is preserved;
//! * backward clamping takes a `min` over the same out-edge set against
//!   the same post-forward snapshot.
//!
//! Bit-identity is enforced by this module's tests against the AoS
//! reference and by the differential matrices in
//! `tests/columnar_differential.rs` and `tests/csr_differential.rs`.

use super::graph::DepGraph;
use super::{ClcError, ClcParams, ClcReport, Jump};
use simclock::{Dur, Time};
use tracefmt::{EventId, TraceColumns};

/// Serial CLC on timestamp columns over the CSR graph: the columnar twin
/// of [`super::controlled_logical_clock_with_deps`]. Latencies live on the
/// graph edges, so no latency model is consulted here.
pub(crate) fn controlled_logical_clock_columnar_csr(
    cols: &mut TraceColumns,
    graph: &DepGraph,
    params: &ClcParams,
) -> Result<ClcReport, ClcError> {
    validate(params)?;
    let originals = flatten_by_gid(cols);
    let mut report = forward_pass_csr(cols, graph, &originals, params.mu)?;
    if params.backward {
        backward_amortization_csr(cols, graph, params, &report.jumps, false);
        let post = flatten_by_gid(cols);
        let _ = forward_pass_csr(cols, graph, &post, 1.0)?;
    }
    report.events_total = cols.n_events();
    report.events_moved = events_moved(cols, &originals);
    Ok(report)
}

/// Snapshot the columns as one dense `i64` slab indexed by gid — the
/// layout every CSR kernel reads its snapshots and originals in. The
/// columns' own slab is already timeline-major in gid order, so this is a
/// single `memcpy` of live storage.
pub(crate) fn flatten_by_gid(cols: &TraceColumns) -> Vec<i64> {
    cols.flat().to_vec()
}

pub(crate) fn validate(params: &ClcParams) -> Result<(), ClcError> {
    if !(params.mu > 0.0 && params.mu <= 1.0) {
        return Err(ClcError::BadParams(format!("mu = {}", params.mu)));
    }
    if params.backward && params.backward_window_factor <= 0.0 {
        return Err(ClcError::BadParams("non-positive backward window".into()));
    }
    Ok(())
}

/// Count events whose corrected time differs from the original. Branchless
/// compare-and-sum over two dense `i64` runs — the autovectorizer turns
/// each timeline into packed compares.
pub(crate) fn events_moved(cols: &TraceColumns, originals: &[i64]) -> usize {
    cols.flat()
        .iter()
        .zip(originals)
        .map(|(&a, &b)| usize::from(a != b))
        .sum()
}

/// The forward pass over CSR in-edges: assign corrected times in
/// dependency order, round-robin across timelines, exactly like
/// [`super::forward_pass`].
///
/// `originals` is the pre-pass trace flattened by gid
/// ([`flatten_by_gid`]); corrected times accumulate in a flat slab of the
/// same shape so the hot loop touches exactly two dense `i64` arrays — no
/// column indirection, no binary-search `locate` (the producer-pending
/// check compares raw gids against a per-timeline frontier). Columns are
/// overwritten from the slab once the pass completes; on
/// [`ClcError::CyclicTrace`] they are left untouched. The arithmetic is
/// statement-identical to the AoS reference.
pub(crate) fn forward_pass_csr(
    cols: &mut TraceColumns,
    graph: &DepGraph,
    originals: &[i64],
    mu: f64,
) -> Result<ClcReport, ClcError> {
    let n = cols.n_procs();
    let lens: Vec<usize> = (0..n).map(|p| cols.col(p).len()).collect();
    let mut corr: Vec<i64> = vec![0; originals.len()];
    // frontier[p]: gid of the next uncorrected event of timeline p. A
    // producer gid is corrected iff it is below its timeline's frontier —
    // the same predicate as the AoS `j >= pc[q]` check, without locate.
    let mut frontier: Vec<u32> = (0..n).map(|p| graph.base(p)).collect();
    let mut prev_orig = vec![Time::MIN; n];
    let mut prev_corr = vec![Time::MIN; n];
    let mut report = ClcReport::default();

    loop {
        let mut progressed = false;
        for p in 0..n {
            let base = graph.base(p) as usize;
            let end = base + lens[p];
            'events: while (frontier[p] as usize) < end {
                let gid = frontier[p] as usize;
                let i = gid - base;
                let orig = Time::from_ps(originals[gid]);

                // Remote constraint: max over in-edge producers, walked in
                // dependency-dispatch order so the pass blocks on the same
                // first pending producer as the AoS reference.
                let mut remote: Option<Time> = None;
                let (srcs, lats) = graph.in_of(gid as u32);
                for (&src, &lat) in srcs.iter().zip(lats) {
                    if src >= frontier[graph.proc_of(src)] {
                        break 'events; // producer not yet corrected
                    }
                    let c = Time::from_ps(corr[src as usize]).saturating_add(Dur::from_ps(lat));
                    remote = Some(remote.map_or(c, |b: Time| b.max(c)));
                }

                // Amortized local candidate. Saturating arithmetic: tenant
                // streams may carry timestamps at the `i64` edges, where
                // plain ops debug-panic; saturation equals the plain result
                // whenever no overflow occurs, so bit-identity across the
                // engines is preserved.
                let candidate = if i == 0 {
                    orig
                } else {
                    let gap = orig.saturating_since(prev_orig[p]).max(Dur::ZERO);
                    orig.max(prev_corr[p].saturating_add(gap.scale(mu)))
                };
                let corrected = match remote {
                    Some(r) if r > candidate => {
                        let size = r.saturating_since(candidate);
                        report.jumps.push(Jump { event: EventId::new(p, i), size });
                        report.max_jump = report.max_jump.max(size);
                        r
                    }
                    _ => candidate,
                };
                corr[gid] = corrected.as_ps();
                prev_orig[p] = orig;
                prev_corr[p] = corrected;
                frontier[p] += 1;
                progressed = true;
            }
        }
        if (0..n).all(|p| frontier[p] as usize == graph.base(p) as usize + lens[p]) {
            // `corr` is gid-indexed and the slab is timeline-major in gid
            // order, so the writeback is one bulk copy.
            cols.flat_mut().copy_from_slice(&corr);
            return Ok(report);
        }
        if !progressed {
            return Err(ClcError::CyclicTrace);
        }
    }
}

/// Backward amortization over columns and CSR out-edges: smooth each jump
/// over a window of preceding events, clamped against a snapshot — the CSR
/// twin of the serial `backward_amortization`. With `threaded` the
/// per-timeline kernels run on scoped threads (timelines are independent
/// here, so threading cannot change the result).
pub(crate) fn backward_amortization_csr(
    cols: &mut TraceColumns,
    graph: &DepGraph,
    params: &ClcParams,
    jumps: &[Jump],
    threaded: bool,
) {
    // Flatten the snapshot by gid: backward clamping reads remote times by
    // out-edge target, which is already a gid.
    let snapshot = flatten_by_gid(cols);
    let snapshot_ref = &snapshot;
    let mut per_proc: Vec<Vec<Jump>> = vec![Vec::new(); cols.n_procs()];
    for j in jumps {
        per_proc[j.event.p()].push(*j);
    }
    for list in per_proc.iter_mut() {
        list.sort_by_key(|j| j.event.i());
    }
    if threaded {
        std::thread::scope(|scope| {
            for (p, col) in cols.iter_mut_slices() {
                let my_jumps = std::mem::take(&mut per_proc[p]);
                if my_jumps.is_empty() {
                    continue;
                }
                scope.spawn(move || {
                    backward_pass_csr(p, col, &my_jumps, graph, params, snapshot_ref);
                });
            }
        });
    } else {
        for (p, col) in cols.iter_mut_slices() {
            backward_pass_csr(p, col, &per_proc[p], graph, params, snapshot_ref);
        }
    }
}

/// The per-timeline backward kernel over a raw picosecond slice and CSR
/// out-edges — the twin of [`super::backward_pass_proc`], statement for
/// statement. `snapshot` is the post-forward trace flattened by gid.
fn backward_pass_csr(
    p: usize,
    col: &mut [i64],
    jumps: &[Jump],
    graph: &DepGraph,
    params: &ClcParams,
    snapshot: &[i64],
) {
    let base = graph.base(p);
    for jump in jumps {
        let k = jump.event.i();
        if k == 0 {
            continue;
        }
        let delta = jump.size;
        let t_pre = Time::from_ps(col[k]).saturating_sub(delta);
        let window = delta.scale(params.backward_window_factor);
        let w_start = t_pre.saturating_sub(window);
        // Walk backward applying min(ramp, cap, shift_of_successor).
        let mut shift_above = delta;
        for i in (0..k).rev() {
            let t_i = Time::from_ps(col[i]);
            if t_i <= w_start {
                break;
            }
            let frac = t_i.saturating_since(w_start).as_ps() as f64
                / window.as_ps().max(1) as f64;
            let ramp = delta.scale(frac.clamp(0.0, 1.0));
            let mut cap = Dur::MAX;
            let (dsts, lats) = graph.out_of(base + i as u32);
            for (&dst, &lat) in dsts.iter().zip(lats) {
                cap = cap.min(
                    Time::from_ps(snapshot[dst as usize])
                        .saturating_sub(Dur::from_ps(lat))
                        .saturating_since(t_i),
                );
            }
            let shift = ramp.min(cap).min(shift_above).max(Dur::ZERO);
            col[i] = t_i.saturating_add(shift).as_ps();
            shift_above = shift;
            if shift == Dur::ZERO {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clc::{controlled_logical_clock, fixtures, ClcParams};
    use tracefmt::{match_collectives, match_messages, Trace, UniformLatency};

    const LMIN: UniformLatency = UniformLatency(Dur::from_ps(4_000_000));

    fn graph_of(t: &Trace) -> DepGraph {
        let matching = match_messages(t);
        let insts = match_collectives(t).unwrap();
        DepGraph::from_trace(t, &matching, &insts, &LMIN)
    }

    #[test]
    fn columnar_csr_serial_matches_aos_serial() {
        for (procs, rounds) in [(2, 8), (5, 17), (8, 25)] {
            let base = fixtures::mixed_trace(procs, rounds);
            let params = ClcParams::default();

            let mut aos = base.clone();
            let ra = controlled_logical_clock(&mut aos, &LMIN, &params).unwrap();

            let graph = graph_of(&base);
            let mut cols = TraceColumns::gather(&base);
            let rc = controlled_logical_clock_columnar_csr(&mut cols, &graph, &params).unwrap();

            assert_eq!(ra.n_jumps(), rc.n_jumps());
            assert_eq!(ra.max_jump, rc.max_jump);
            assert_eq!(ra.events_moved, rc.events_moved);
            for (ja, jc) in ra.jumps.iter().zip(&rc.jumps) {
                assert_eq!(ja.event, jc.event);
                assert_eq!(ja.size, jc.size);
            }
            for (id, e) in aos.iter_events() {
                assert_eq!(cols.time(id), e.time, "{procs}x{rounds} event {id:?}");
            }
        }
    }

    #[test]
    fn forward_only_variants_match() {
        let base = fixtures::mixed_trace(4, 12);
        let params = ClcParams { backward: false, ..ClcParams::default() };

        let mut aos = base.clone();
        controlled_logical_clock(&mut aos, &LMIN, &params).unwrap();

        let graph = graph_of(&base);
        let mut cols = TraceColumns::gather(&base);
        controlled_logical_clock_columnar_csr(&mut cols, &graph, &params).unwrap();

        for (id, e) in aos.iter_events() {
            assert_eq!(cols.time(id), e.time);
        }
    }

    #[test]
    fn local_cycle_is_reported_not_looped() {
        use simclock::Time;
        use tracefmt::{EventKind, Rank, Tag};
        let mut t = Trace::for_ranks(1);
        t.procs[0].push(
            Time::from_us(5),
            EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 },
        );
        t.procs[0].push(
            Time::from_us(10),
            EventKind::Send { to: Rank(0), tag: Tag(0), bytes: 0 },
        );
        let graph = graph_of(&t);
        let mut cols = TraceColumns::gather(&t);
        let err = controlled_logical_clock_columnar_csr(&mut cols, &graph, &ClcParams::default());
        assert!(matches!(err, Err(ClcError::CyclicTrace)));
    }

    #[test]
    fn i64_edge_timestamps_do_not_panic_and_engines_agree() {
        use simclock::Time;
        use tracefmt::{EventKind, Rank, RegionId, Tag};
        // Timestamps pinned to the i64 edges: the remote bound, the
        // amortized-gap arithmetic and the backward-window extrapolation
        // all overflow plain i64 ops here. Saturating kernels must accept
        // the trace, and every engine must agree bit for bit.
        let mut t = Trace::for_ranks(2);
        t.procs[0].push(Time::from_ps(i64::MIN + 3), EventKind::Enter { region: RegionId(0) });
        t.procs[0].push(
            Time::from_ps(i64::MAX - 2),
            EventKind::Send { to: Rank(1), tag: Tag(0), bytes: 0 },
        );
        t.procs[1].push(Time::from_ps(i64::MIN), EventKind::Enter { region: RegionId(0) });
        t.procs[1].push(
            Time::from_ps(i64::MIN + 10),
            EventKind::Recv { from: Rank(0), tag: Tag(0), bytes: 0 },
        );
        t.procs[1].push(Time::from_ps(i64::MAX - 1), EventKind::Exit { region: RegionId(0) });
        let params = ClcParams::default();

        let mut aos = t.clone();
        let ra = controlled_logical_clock(&mut aos, &LMIN, &params).unwrap();

        let graph = graph_of(&t);
        let mut cols = TraceColumns::gather(&t);
        let rc = controlled_logical_clock_columnar_csr(&mut cols, &graph, &params).unwrap();

        let mut rep_cols = TraceColumns::gather(&t);
        let (rr, _) = crate::clc::replay::controlled_logical_clock_replay_csr(
            &mut rep_cols,
            &graph,
            &params,
        )
        .unwrap();

        assert_eq!(ra.n_jumps(), rc.n_jumps());
        assert_eq!(rc.n_jumps(), rr.n_jumps());
        assert_eq!(ra.max_jump, rc.max_jump);
        for (id, e) in aos.iter_events() {
            assert_eq!(cols.time(id), e.time, "columnar vs aos at {id:?}");
            assert_eq!(rep_cols.time(id), e.time, "replay vs aos at {id:?}");
        }
    }

    #[test]
    fn bad_params_rejected() {
        let base = fixtures::mixed_trace(2, 3);
        let graph = graph_of(&base);
        let mut cols = TraceColumns::gather(&base);
        let err = controlled_logical_clock_columnar_csr(
            &mut cols,
            &graph,
            &ClcParams { mu: 0.0, ..ClcParams::default() },
        );
        assert!(matches!(err, Err(ClcError::BadParams(_))));
    }
}
